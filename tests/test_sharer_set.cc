/**
 * @file
 * Directory sharer-set representations (DESIGN.md §16): NodeMask and
 * SharerSet unit tests for all three representations, the
 * pointer-eviction and overflow-broadcast protocol paths end to end,
 * 16-node representation-neutrality against the full-map directory,
 * and 64-node chaos runs under the coherence invariant checker.
 */

#include <gtest/gtest.h>

#include "check/checker.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "proto/sharer_set.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

DirectoryParams
limptr(unsigned pointers, DirOverflowPolicy policy)
{
    DirectoryParams d;
    d.rep = DirRep::LimitedPtr;
    d.pointers = pointers;
    d.overflow = policy;
    return d;
}

DirectoryParams
coarse(unsigned k)
{
    DirectoryParams d;
    d.rep = DirRep::CoarseVector;
    d.coarseness = k;
    return d;
}

// ---------------------------------------------------------------------------
// NodeMask
// ---------------------------------------------------------------------------

TEST(NodeMask, SetTestClearAcrossWords)
{
    NodeMask m;
    EXPECT_TRUE(m.none());
    m.set(0);
    m.set(63);
    m.set(64);   // second word
    m.set(255);  // last representable node
    EXPECT_EQ(m.count(), 4u);
    EXPECT_TRUE(m.test(64));
    EXPECT_FALSE(m.test(65));
    EXPECT_EQ(m.low64(), (std::uint64_t(1) << 63) | 1u);
    m.clear(64);
    EXPECT_FALSE(m.test(64));
    EXPECT_EQ(m.count(), 3u);
}

TEST(NodeMask, ForEachVisitsAscending)
{
    NodeMask m;
    m.set(200);
    m.set(3);
    m.set(64);
    std::vector<NodeId> seen;
    m.forEach([&](NodeId n) { seen.push_back(n); });
    EXPECT_EQ(seen, (std::vector<NodeId>{3, 64, 200}));
}

// ---------------------------------------------------------------------------
// SharerSet: full map
// ---------------------------------------------------------------------------

TEST(SharerSet, FullMapIsExactAtEveryCount)
{
    SharerConfig cfg(DirectoryParams{}, 256);
    SharerSet s;
    EXPECT_TRUE(s.empty(cfg));
    EXPECT_EQ(s.add(cfg, 5), SharerSet::AddOutcome::Added);
    EXPECT_EQ(s.add(cfg, 5), SharerSet::AddOutcome::AlreadyPresent);
    EXPECT_EQ(s.add(cfg, 200), SharerSet::AddOutcome::Added);
    EXPECT_TRUE(s.exact(cfg));
    EXPECT_TRUE(s.preciseContains(cfg, 200));
    EXPECT_FALSE(s.preciseContains(cfg, 6));
    NodeMask expect;
    expect.set(5);
    expect.set(200);
    EXPECT_EQ(s.expand(cfg), expect);
    EXPECT_EQ(s.expandedCount(cfg), 2u);
    s.remove(cfg, 5);
    EXPECT_EQ(s.expand(cfg), NodeMask::single(200));
    s.setOnly(cfg, 7);
    EXPECT_EQ(s.expand(cfg), NodeMask::single(7));
}

// ---------------------------------------------------------------------------
// SharerSet: limited pointers
// ---------------------------------------------------------------------------

TEST(SharerSet, LimitedPtrOverflowsToBroadcast)
{
    SharerConfig cfg(limptr(2, DirOverflowPolicy::Broadcast), 8);
    SharerSet s;
    EXPECT_EQ(s.add(cfg, 1), SharerSet::AddOutcome::Added);
    EXPECT_EQ(s.add(cfg, 2), SharerSet::AddOutcome::Added);
    EXPECT_TRUE(s.exact(cfg));
    EXPECT_TRUE(s.preciseContains(cfg, 1));

    EXPECT_EQ(s.add(cfg, 3), SharerSet::AddOutcome::WentBroadcast);
    EXPECT_TRUE(s.broadcasting());
    EXPECT_FALSE(s.exact(cfg));
    EXPECT_FALSE(s.preciseContains(cfg, 1));
    EXPECT_EQ(s.expandedCount(cfg), 8u);  // everyone
    NodeMask all;
    for (NodeId n = 0; n < 8; ++n)
        all.set(n);
    EXPECT_EQ(s.expand(cfg), all);

    // Imprecise sets cannot shrink: removal is a no-op...
    s.remove(cfg, 1);
    EXPECT_EQ(s.expandedCount(cfg), 8u);
    // ...and further adds are already implied.
    EXPECT_EQ(s.add(cfg, 4), SharerSet::AddOutcome::AlreadyPresent);

    // Ownership grants reset the degradation.
    s.setOnly(cfg, 6);
    EXPECT_FALSE(s.broadcasting());
    EXPECT_TRUE(s.exact(cfg));
    EXPECT_EQ(s.expand(cfg), NodeMask::single(6));
}

TEST(SharerSet, LimitedPtrEvictionLeavesStateUntouched)
{
    SharerConfig cfg(limptr(2, DirOverflowPolicy::Evict), 8);
    SharerSet s;
    EXPECT_EQ(s.add(cfg, 4), SharerSet::AddOutcome::Added);
    EXPECT_EQ(s.add(cfg, 1), SharerSet::AddOutcome::Added);

    // A full set refuses the add and nominates the oldest pointer.
    EXPECT_EQ(s.add(cfg, 7), SharerSet::AddOutcome::NeedsEviction);
    EXPECT_EQ(s.victim(cfg), 4u);
    NodeMask before;
    before.set(4);
    before.set(1);
    EXPECT_EQ(s.expand(cfg), before);  // nothing changed

    // The directory invalidates the victim, then retries.
    s.remove(cfg, 4);
    EXPECT_EQ(s.add(cfg, 7), SharerSet::AddOutcome::Added);
    NodeMask after;
    after.set(1);
    after.set(7);
    EXPECT_EQ(s.expand(cfg), after);
    // FIFO order: node 1 is now the oldest.
    s.add(cfg, 2);  // refill to capacity? cap is 2 — NeedsEviction
    EXPECT_EQ(s.victim(cfg), 1u);
}

TEST(SharerSet, LimitedPtrRemoveCompactsInOrder)
{
    SharerConfig cfg(limptr(4, DirOverflowPolicy::Evict), 16);
    SharerSet s;
    s.add(cfg, 10);
    s.add(cfg, 11);
    s.add(cfg, 12);
    s.remove(cfg, 10);  // oldest leaves; 11 becomes the victim
    s.add(cfg, 13);
    s.add(cfg, 14);     // full again (11, 12, 13, 14)
    EXPECT_EQ(s.add(cfg, 15), SharerSet::AddOutcome::NeedsEviction);
    EXPECT_EQ(s.victim(cfg), 11u);
}

// ---------------------------------------------------------------------------
// SharerSet: coarse vector
// ---------------------------------------------------------------------------

TEST(SharerSet, CoarseVectorExpandsWholeGroups)
{
    SharerConfig cfg(coarse(4), 256);
    SharerSet s;
    EXPECT_EQ(s.add(cfg, 5), SharerSet::AddOutcome::Added);
    // 5 lives in group 1 = nodes 4..7.
    NodeMask group;
    for (NodeId n = 4; n < 8; ++n)
        group.set(n);
    EXPECT_EQ(s.expand(cfg), group);
    EXPECT_EQ(s.expandedCount(cfg), 4u);
    EXPECT_FALSE(s.exact(cfg));
    EXPECT_FALSE(s.preciseContains(cfg, 5));

    // Same group: no new bit.
    EXPECT_EQ(s.add(cfg, 6), SharerSet::AddOutcome::AlreadyPresent);
    // Removal cannot prove the rest of the group absent: no-op.
    s.remove(cfg, 5);
    EXPECT_EQ(s.expand(cfg), group);
    s.clearAll();
    EXPECT_TRUE(s.empty(cfg));
    EXPECT_TRUE(s.exact(cfg));  // the empty set is exact
}

TEST(SharerSet, CoarseVectorClipsTheLastGroupAtNumNodes)
{
    SharerConfig cfg(coarse(4), 10);
    SharerSet s;
    s.add(cfg, 9);  // group 2 covers 8..11, but only 8..9 exist
    NodeMask expect;
    expect.set(8);
    expect.set(9);
    EXPECT_EQ(s.expand(cfg), expect);
    EXPECT_EQ(s.expandedCount(cfg), 2u);
}

TEST(SharerSet, CoarsenessOneIsJustAFullMap)
{
    SharerConfig cfg(coarse(1), 64);
    SharerSet s;
    s.add(cfg, 3);
    s.add(cfg, 40);
    EXPECT_TRUE(s.exact(cfg));
    NodeMask expect;
    expect.set(3);
    expect.set(40);
    EXPECT_EQ(s.expand(cfg), expect);
}

// ---------------------------------------------------------------------------
// Protocol paths: overflow broadcast / pointer eviction / coarse groups
// ---------------------------------------------------------------------------

TEST(DirectoryScaling, BroadcastOverflowDegradesTheSnapshot)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 8;
    params.directory = limptr(2, DirOverflowPolicy::Broadcast);
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 50);

    // All eight read: the 2-pointer set must degrade to broadcast.
    std::vector<std::uint32_t> got(8, 0);
    sys.run([&](Processor &p, unsigned id) { got[id] = p.read32(a); });
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], 50u);

    std::uint64_t overflows = 0;
    for (NodeId n = 0; n < 8; ++n)
        overflows += sys.dir(n).overflowBroadcasts();
    EXPECT_GT(overflows, 0u);

    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.exact);
    EXPECT_EQ(snap.presence, 0xffull);  // everyone, conservatively
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryScaling, BroadcastOverflowStaysCoherent)
{
    // Phase 1: all read (overflow to broadcast). Phase 2: one node
    // writes — the whole broadcast set must be invalidated. Phase 3:
    // everyone re-reads the new value.
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 8;
    params.directory = limptr(2, DirOverflowPolicy::Broadcast);
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 50);

    sys.run([&](Processor &p, unsigned id) {
        std::uint32_t v = p.read32(a);
        EXPECT_EQ(v, 50u);
        p.compute(50'000);
        if (id == 3) {
            p.write32(a, 51);
            p.releaseFence();
        }
        p.compute(50'000);
        EXPECT_EQ(p.read32(a), 51u);
    });

    std::uint64_t overflows = 0;
    for (NodeId n = 0; n < 8; ++n)
        overflows += sys.dir(n).overflowBroadcasts();
    EXPECT_GT(overflows, 0u);
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryScaling, PointerEvictionStaysCoherent)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 8;
    params.directory = limptr(2, DirOverflowPolicy::Evict);
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 60);

    sys.run([&](Processor &p, unsigned id) {
        std::uint32_t v = p.read32(a);
        EXPECT_EQ(v, 60u);
        p.compute(50'000);
        if (id == 5) {
            p.write32(a, 61);
            p.releaseFence();
        }
        p.compute(50'000);
        EXPECT_EQ(p.read32(a), 61u);
    });

    std::uint64_t evictions = 0, overflows = 0;
    for (NodeId n = 0; n < 8; ++n) {
        evictions += sys.dir(n).pointerEvictions();
        overflows += sys.dir(n).overflowBroadcasts();
    }
    EXPECT_GT(evictions, 0u);  // 8 readers through 2 pointers
    EXPECT_EQ(overflows, 0u);  // Evict never degrades the set

    // The set stays exact, and at most `pointers` sharers remain.
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.exact);
    EXPECT_LE(snap.sharers.count(), 2u);
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryScaling, CoarseVectorStaysCoherent)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 8;
    params.directory = coarse(4);
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 70);

    sys.run([&](Processor &p, unsigned id) {
        std::uint32_t v = p.read32(a);
        EXPECT_EQ(v, 70u);
        p.compute(50'000);
        if (id == 0) {
            p.write32(a, 71);
            p.releaseFence();
        }
        p.compute(50'000);
        EXPECT_EQ(p.read32(a), 71u);
    });
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryScaling, CoarseVectorSnapshotCoversWholeGroups)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 8;
    params.directory = coarse(4);
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 70);

    std::vector<std::uint32_t> got(8, 0);
    sys.run([&](Processor &p, unsigned id) {
        if (id == 1 || id == 6)
            got[id] = p.read32(a);
    });
    EXPECT_EQ(got[1], 70u);
    EXPECT_EQ(got[6], 70u);

    // Two sharers in different groups: the expansion covers both
    // whole groups — a superset of the true holders.
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.exact);
    EXPECT_TRUE(snap.sharers.test(1));
    EXPECT_TRUE(snap.sharers.test(6));
    EXPECT_GE(snap.sharers.count(), 2u);
}

TEST(DirectoryScaling, TwoHundredFiftySixNodesReadTheSameBlock)
{
    // Past the old 64-bit presence word: every node reads one block.
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 256;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 9);

    std::vector<std::uint32_t> got(256, 0);
    sys.run([&](Processor &p, unsigned id) { got[id] = p.read32(a); });
    for (unsigned i = 0; i < 256; ++i)
        EXPECT_EQ(got[i], 9u);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_EQ(snap.sharers.count(), 256u);
    EXPECT_TRUE(snap.exact);
    EXPECT_FALSE(snap.inService);
}

// ---------------------------------------------------------------------------
// 16 nodes: a limited-pointer directory that never overflows is
// bit-identical to the full map (the refactor is representation-
// neutral where representations agree).
// ---------------------------------------------------------------------------

TEST(DirectoryScaling, SixteenPointersMatchFullMapBitForBit)
{
    std::string stats[2];
    Tick times[2];
    for (int i = 0; i < 2; ++i) {
        MachineParams params = makeParams(ProtocolConfig::pcwm());
        params.numProcs = 16;
        if (i == 1)
            params.directory =
                limptr(16, DirOverflowPolicy::Broadcast);
        System sys(params);
        auto w = makeWorkload("stress", 0.2, 7);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified);
        times[i] = run.execTime;
        stats[i] = formatSystemStats(sys);
    }
    EXPECT_EQ(times[0], times[1]);
    EXPECT_EQ(stats[0], stats[1]);
}

// ---------------------------------------------------------------------------
// 64 nodes under chaos, all three representations, invariant-checked
// ---------------------------------------------------------------------------

class ScaledChaosSweep
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ScaledChaosSweep, SixtyFourNodesHoldInvariantsUnderChaos)
{
    MachineParams params = makeParams(ProtocolConfig::pcwm());
    params.numProcs = 64;
    ASSERT_TRUE(params.directory.parseSpec(GetParam()));
    params.chaos.enabled = true;
    params.chaos.seed = 11;
    System sys(params);

    CoherenceChecker::Options copts;
    copts.failFast = false;
    CoherenceChecker checker(sys, copts);

    auto w = makeWorkload("stress", 0.1, 11);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/2'000'000'000);

    EXPECT_TRUE(run.verified) << GetParam();
    EXPECT_TRUE(sys.quiescent());
    checker.checkQuiescent();
    EXPECT_EQ(checker.violationCount(), 0u)
        << GetParam() << ": " << checker.violations()[0];
    EXPECT_GT(checker.checksRun(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRepresentations, ScaledChaosSweep,
    ::testing::Values("fullmap", "limptr4B", "limptr4E", "coarse4"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

// ---------------------------------------------------------------------------
// DirectoryParams spec parsing
// ---------------------------------------------------------------------------

TEST(DirectoryParams, ParsesAndNamesEverySpec)
{
    DirectoryParams d;
    EXPECT_TRUE(d.parseSpec("fullmap"));
    EXPECT_EQ(d.rep, DirRep::FullMap);
    EXPECT_EQ(d.name(), "fullmap");

    EXPECT_TRUE(d.parseSpec("limptr8B"));
    EXPECT_EQ(d.rep, DirRep::LimitedPtr);
    EXPECT_EQ(d.pointers, 8u);
    EXPECT_EQ(d.overflow, DirOverflowPolicy::Broadcast);
    EXPECT_EQ(d.name(), "limptr8B");

    EXPECT_TRUE(d.parseSpec("limptr4E"));
    EXPECT_EQ(d.overflow, DirOverflowPolicy::Evict);
    EXPECT_EQ(d.name(), "limptr4E");

    EXPECT_TRUE(d.parseSpec("coarse4"));
    EXPECT_EQ(d.rep, DirRep::CoarseVector);
    EXPECT_EQ(d.coarseness, 4u);
    EXPECT_EQ(d.name(), "coarse4");

    EXPECT_FALSE(d.parseSpec(""));
    EXPECT_FALSE(d.parseSpec("limptrB"));
    EXPECT_FALSE(d.parseSpec("limptr4X"));
    EXPECT_FALSE(d.parseSpec("coarse0"));
    EXPECT_FALSE(d.parseSpec("coarse4x"));
    EXPECT_FALSE(d.parseSpec("dir64"));
}

} // anonymous namespace
} // namespace cpx
