/**
 * @file
 * Randomized protocol stress sweep: the seeded "stress" workload runs
 * under the coherence invariant checker with the chaos network
 * injecting latency jitter, for every valid protocol/consistency
 * combination (8 × RC + 4 × SC) on both network models. Each cell
 * must verify functionally, drain to quiescence, and report zero
 * invariant violations.
 */

#include <gtest/gtest.h>

#include "check/checker.hh"
#include "check/watchdog.hh"
#include "core/config.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

struct StressCase
{
    ProtocolConfig protocol;
    Consistency consistency;
    NetworkKind network;
};

std::vector<StressCase>
allCases()
{
    std::vector<StressCase> cases;
    for (NetworkKind net :
         {NetworkKind::Uniform, NetworkKind::Mesh}) {
        for (const ProtocolConfig &pc : figure2Protocols()) {
            cases.push_back(
                {pc, Consistency::ReleaseConsistency, net});
            if (!pc.compUpdate) {
                cases.push_back(
                    {pc, Consistency::SequentialConsistency, net});
            }
        }
    }
    return cases;
}

class StressSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(StressSweep, VerifiesAndHoldsInvariantsUnderChaos)
{
    StressCase c = allCases()[static_cast<unsigned>(GetParam())];

    MachineParams params =
        makeParams(c.protocol, c.consistency, c.network);
    params.numProcs = 8;
    params.chaos.enabled = true;
    params.chaos.seed = 7;
    System sys(params);

    CoherenceChecker::Options copts;
    copts.failFast = false;
    CoherenceChecker checker(sys, copts);
    Watchdog::Options wopts;
    wopts.interval = 200'000;
    wopts.abortOnStall = false;
    Watchdog dog(sys, wopts);
    dog.arm();

    auto w = makeWorkload("stress", 0.2, /*seed=*/7);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/500'000'000);

    EXPECT_TRUE(run.verified)
        << c.protocol.name() << " "
        << (c.consistency == Consistency::SequentialConsistency
                ? "SC" : "RC");
    EXPECT_TRUE(sys.quiescent());
    EXPECT_FALSE(dog.fired());

    checker.checkQuiescent();
    EXPECT_EQ(checker.violationCount(), 0u)
        << checker.violations()[0];
    EXPECT_GT(checker.checksRun(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolCombos, StressSweep,
    ::testing::Range(0, static_cast<int>(allCases().size())),
    [](const ::testing::TestParamInfo<int> &info) {
        StressCase c =
            allCases()[static_cast<unsigned>(info.param)];
        std::string name = c.protocol.name();
        for (char &ch : name)
            if (ch == '+')
                ch = '_';
        name += c.consistency == Consistency::SequentialConsistency
                    ? "_SC" : "_RC";
        name += c.network == NetworkKind::Mesh ? "_mesh" : "_uniform";
        return name;
    });

TEST(Stress, DeterministicForSameSeed)
{
    Tick times[2];
    for (int i = 0; i < 2; ++i) {
        MachineParams params = makeParams(ProtocolConfig::pcwm());
        params.numProcs = 8;
        params.chaos.enabled = true;
        System sys(params);
        auto w = makeWorkload("stress", 0.2, 99);
        times[i] = runWorkload(sys, *w).execTime;
    }
    EXPECT_EQ(times[0], times[1]);
}

TEST(Stress, SeedChangesTheRun)
{
    Tick times[2];
    for (int i = 0; i < 2; ++i) {
        MachineParams params = makeParams(ProtocolConfig::pcwm());
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("stress", 0.2, 100 + i);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified);
        times[i] = run.execTime;
    }
    EXPECT_NE(times[0], times[1]);
}

TEST(Stress, SeedReachesReadonlyWorkload)
{
    // The --seed plumbing must actually change the generated access
    // pattern of the seeded synthetic workloads, not just be parsed.
    Tick times[2];
    for (int i = 0; i < 2; ++i) {
        MachineParams params = makeParams(ProtocolConfig::basic());
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("readonly", 0.2, 1 + i * 1000);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified);
        times[i] = run.execTime;
    }
    EXPECT_NE(times[0], times[1]);
}

} // anonymous namespace
} // namespace cpx
