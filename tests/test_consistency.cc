/**
 * @file
 * Consistency-model tests: SC stalls writes until globally
 * performed, RC hides them behind the write buffers; releases drain
 * pending ownership requests; full buffers stall the processor.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/system.hh"

namespace cpx
{
namespace
{

MachineParams
machine(ProtocolConfig proto, Consistency c)
{
    MachineParams params = makeParams(proto, c);
    params.numProcs = 4;
    return params;
}

/** A burst of writes to distinct blocks. */
void
writeBurst(Processor &p, Addr base, unsigned blocks)
{
    for (unsigned i = 0; i < blocks; ++i)
        p.write32(base + i * 32, i);
}

TEST(Consistency, ScStallsOnEveryWrite)
{
    System sys(machine(ProtocolConfig::basic(),
                       Consistency::SequentialConsistency));
    Addr base = sys.heap().allocBlockAligned(32 * 32);
    sys.run([&](Processor &p, unsigned id) {
        if (id == 0)
            writeBurst(p, base, 16);
    });
    const auto &t = sys.processor(0).times();
    EXPECT_GT(t.writeStall, 0u);
    // Each write waited for its full transaction: far more stall
    // than the 16 busy cycles.
    EXPECT_GT(t.writeStall, 16u * 20u);
}

TEST(Consistency, RcHidesWriteLatency)
{
    System sys(machine(ProtocolConfig::basic(),
                       Consistency::ReleaseConsistency));
    Addr base = sys.heap().allocBlockAligned(32 * 32);
    sys.run([&](Processor &p, unsigned id) {
        if (id == 0) {
            writeBurst(p, base, 8);  // fits in FLWB (8) + SLWB (16)
            p.compute(10000);        // plenty of time to drain
        }
    });
    EXPECT_EQ(sys.processor(0).times().writeStall, 0u);
    EXPECT_TRUE(sys.quiescent());
}

TEST(Consistency, RcIsFasterThanScForWriteHeavyCode)
{
    auto run = [](Consistency c) {
        System sys(machine(ProtocolConfig::basic(), c));
        Addr base = sys.heap().allocBlockAligned(64 * 32);
        return sys.run([&](Processor &p, unsigned id) {
            if (id == 0)
                writeBurst(p, base, 32);
        });
    };
    EXPECT_LT(run(Consistency::ReleaseConsistency),
              run(Consistency::SequentialConsistency));
}

TEST(Consistency, FullWriteBuffersStallTheProcessor)
{
    MachineParams params =
        machine(ProtocolConfig::basic(),
                Consistency::ReleaseConsistency);
    params.flwbEntries = 2;
    params.slwbEntries = 2;
    System sys(params);
    Addr base = sys.heap().allocBlockAligned(64 * 32);
    sys.run([&](Processor &p, unsigned id) {
        if (id == 0)
            writeBurst(p, base, 32);
    });
    EXPECT_GT(sys.processor(0).times().writeStall, 0u);
}

TEST(Consistency, ReleaseWaitsForPendingOwnership)
{
    System sys(machine(ProtocolConfig::basic(),
                       Consistency::ReleaseConsistency));
    Addr a = sys.heap().allocBlockAligned(32);
    Addr lock = sys.heap().allocLock();
    sys.run([&](Processor &p, unsigned id) {
        if (id == 0) {
            p.lock(lock);
            p.write32(a, 1);
            p.unlock(lock);  // must wait for the write to perform
        }
    });
    EXPECT_GT(sys.processor(0).times().releaseStall, 0u);
    // After the release, memory and directory agree.
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.modified);
    EXPECT_EQ(snap.owner, 0u);
}

TEST(Consistency, ReleaseFenceAloneDrains)
{
    System sys(machine(ProtocolConfig::cw(),
                       Consistency::ReleaseConsistency));
    Addr a = sys.heap().allocBlockAligned(32);
    sys.run([&](Processor &p, unsigned id) {
        if (id == 0) {
            p.write32(a, 42);
            p.releaseFence();
        }
    });
    // The combined write reached memory without any lock involved.
    EXPECT_EQ(sys.store().read32(a), 42u);
    EXPECT_FALSE(sys.node(0).slc.writeCacheUnit().contains(a));
}

TEST(Consistency, ScReadsAndWritesStillInterleaveCorrectly)
{
    System sys(machine(ProtocolConfig::basic(),
                       Consistency::SequentialConsistency));
    Addr a = sys.heap().allocBlockAligned(32);
    Addr lock = sys.heap().allocLock();
    sys.store().write32(a, 0);
    sys.run([&](Processor &p, unsigned id) {
        for (int i = 0; i < 8; ++i) {
            p.lock(lock);
            std::uint32_t v = p.read32(a);
            p.write32(a, v + 1);
            p.unlock(lock);
            p.compute(13 * (id + 1));
        }
    });
    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 32u);
}

TEST(Consistency, AppliedDefaultsShrinkBuffersUnderSc)
{
    MachineParams rc = makeParams(ProtocolConfig::basic(),
                                  Consistency::ReleaseConsistency);
    EXPECT_EQ(rc.flwbEntries, 8u);
    EXPECT_EQ(rc.slwbEntries, 16u);

    MachineParams sc = makeParams(ProtocolConfig::basic(),
                                  Consistency::SequentialConsistency);
    EXPECT_EQ(sc.flwbEntries, 1u);
    EXPECT_EQ(sc.slwbEntries, 1u);

    // P under SC keeps SLWB room for pending prefetches (§5.2).
    MachineParams psc = makeParams(ProtocolConfig::p(),
                                   Consistency::SequentialConsistency);
    EXPECT_EQ(psc.slwbEntries, 16u);
}

} // anonymous namespace
} // namespace cpx
