/**
 * @file
 * Tests for the parallel sweep runner (bench/runner.hh) and the
 * multi-system fixes that make it safe: concurrent Systems on
 * separate host threads must produce bit-identical statistics to the
 * same configurations run serially, the shared checked-parse helpers
 * must reject malformed numbers, and the JSON results document must
 * round-trip through the bundled parser.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/runner.hh"
#include "sim/event_queue.hh"
#include "sim/parse.hh"

namespace cpx
{
namespace
{

using ::testing::ExitedWithCode;
using namespace cpx::bench;

// Small but non-trivial configurations: different protocols,
// consistency models and networks, so the two concurrent systems
// exercise genuinely different code paths.
struct TestConfig
{
    const char *app;
    MachineParams params;
};

std::vector<TestConfig>
testConfigs()
{
    return {
        {"migratory", makeParams(ProtocolConfig::pcwm())},
        {"producer_consumer",
         makeParams(ProtocolConfig::pm(),
                    Consistency::SequentialConsistency)},
        {"false_sharing",
         makeParams(ProtocolConfig::cw(),
                    Consistency::ReleaseConsistency,
                    NetworkKind::Mesh, 32)},
    };
}

RunResult
runConfig(const TestConfig &c)
{
    MachineParams params = c.params;
    params.numProcs = 4;
    System sys(params);
    auto w = makeWorkload(c.app, 0.2);
    return runWorkload(sys, *w).stats;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.busy, b.busy);
    EXPECT_EQ(a.readStall, b.readStall);
    EXPECT_EQ(a.writeStall, b.writeStall);
    EXPECT_EQ(a.acquireStall, b.acquireStall);
    EXPECT_EQ(a.releaseStall, b.releaseStall);
    EXPECT_EQ(a.sharedAccesses, b.sharedAccesses);
    EXPECT_EQ(a.coldReadMisses, b.coldReadMisses);
    EXPECT_EQ(a.cohReadMisses, b.cohReadMisses);
    EXPECT_EQ(a.replReadMisses, b.replReadMisses);
    EXPECT_EQ(a.writeMissesTotal, b.writeMissesTotal);
    EXPECT_EQ(a.netBytes, b.netBytes);
    EXPECT_EQ(a.netMessages, b.netMessages);
    EXPECT_EQ(a.invalidationsSent, b.invalidationsSent);
    EXPECT_EQ(a.updatesForwarded, b.updatesForwarded);
    EXPECT_EQ(a.migratoryDetections, b.migratoryDetections);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.combinedWrites, b.combinedWrites);
    EXPECT_EQ(a.avgReadMissLatency, b.avgReadMissLatency);
}

TEST(SweepDeterminism, ConcurrentSystemsMatchSerial)
{
    auto configs = testConfigs();

    // Serial reference, one System at a time on this thread.
    std::vector<RunResult> serial;
    for (const TestConfig &c : configs)
        serial.push_back(runConfig(c));

    // All configurations at once, each on its own host thread.
    std::vector<RunResult> parallel(configs.size());
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        threads.emplace_back([&configs, &parallel, i]() {
            parallel[i] = runConfig(configs[i]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE(configs[i].app);
        expectBitIdentical(serial[i], parallel[i]);
    }
}

TEST(SweepDeterminism, RunnerMatchesSerialAcrossJobCounts)
{
    auto runSweep = [](unsigned jobs) {
        Options opts;
        opts.scale = 0.2;
        opts.procs = 4;
        opts.jobs = jobs;
        SweepRunner runner(opts);
        for (const TestConfig &c : testConfigs())
            runner.add(c.app, c.params, "determinism");
        runner.runAll();
        return runner.results();
    };

    auto one = runSweep(1);
    auto four = runSweep(4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        SCOPED_TRACE(one[i].point.app);
        EXPECT_EQ(one[i].run.execTime, four[i].run.execTime);
        EXPECT_TRUE(one[i].run.verified);
        EXPECT_TRUE(four[i].run.verified);
        expectBitIdentical(one[i].run.stats, four[i].run.stats);
    }
}

TEST(TickSource, ClearedWhenQueueDies)
{
    // A destroyed EventQueue must deregister itself: a trace after
    // its death stamps tick 0 instead of dereferencing freed memory.
    {
        EventQueue queue;
        queue.schedule(1234, []() {});
        queue.run();
    }
    Logger::enable("SweepTest");
    testing::internal::CaptureStderr();
    CPX_TRACE("SweepTest", "after queue death");
    std::string log = testing::internal::GetCapturedStderr();
    Logger::disableAll();
    EXPECT_NE(log.find("         0: "), std::string::npos) << log;
}

TEST(TickSource, NewerQueueOnSameThreadWins)
{
    // Destroying an older queue must not clobber the tick source of
    // a newer queue on the same thread.
    auto old_queue = std::make_unique<EventQueue>();
    EventQueue active;
    active.schedule(777, []() {});
    active.run();
    old_queue.reset();

    Logger::enable("SweepTest");
    testing::internal::CaptureStderr();
    CPX_TRACE("SweepTest", "stamped by the newer queue");
    std::string log = testing::internal::GetCapturedStderr();
    Logger::disableAll();
    EXPECT_NE(log.find("       777: "), std::string::npos) << log;
}

TEST(CheckedParseDeathTest, RejectsMalformedNumbers)
{
    EXPECT_EXIT((void)parseUnsigned("abc", "--procs"),
                ExitedWithCode(1), "--procs: malformed number");
    EXPECT_EXIT((void)parseUnsigned("", "--procs"), ExitedWithCode(1),
                "--procs: empty value");
    EXPECT_EXIT((void)parseUnsigned("12x", "--procs"),
                ExitedWithCode(1), "--procs: malformed number");
    EXPECT_EXIT((void)parseU64("-3", "--seed"), ExitedWithCode(1),
                "--seed: negative value");
    EXPECT_EXIT((void)parseDouble("1.5x", "--scale"),
                ExitedWithCode(1), "--scale: malformed number");
    EXPECT_EXIT((void)parsePositiveDouble("0", "--scale"),
                ExitedWithCode(1), "--scale: must be positive");
    EXPECT_EXIT((void)parsePositiveUnsigned("0", "--procs"),
                ExitedWithCode(1), "--procs: must be positive");
    EXPECT_EXIT((void)parseUnsigned("99999999999", "--procs"),
                ExitedWithCode(1), "--procs: value .* out of range");
}

TEST(CheckedParseDeathTest, BenchOptionsRejectBadValues)
{
    auto parse = [](std::vector<const char *> args) {
        args.insert(args.begin(), "bench");
        bench::parseOptions(static_cast<int>(args.size()),
                            const_cast<char **>(args.data()));
    };
    EXPECT_EXIT(parse({"--procs=0"}), ExitedWithCode(1),
                "--procs: must be positive");
    EXPECT_EXIT(parse({"--procs=abc"}), ExitedWithCode(1),
                "--procs: malformed number");
    EXPECT_EXIT(parse({"--scale=-1"}), ExitedWithCode(1),
                "--scale: must be positive");
    EXPECT_EXIT(parse({"--jobs=0"}), ExitedWithCode(1),
                "--jobs: must be positive");
    EXPECT_EXIT(parse({"--sample-interval=abc"}), ExitedWithCode(1),
                "--sample-interval: malformed number");
    EXPECT_EXIT(parse({"--sample-interval=-5"}), ExitedWithCode(1),
                "--sample-interval: negative value");
    EXPECT_EXIT(parse({"--bogus"}), ExitedWithCode(1),
                "unknown option");
}

TEST(CheckedParse, AcceptsWellFormedNumbers)
{
    EXPECT_EQ(parseUnsigned("16", "--procs"), 16u);
    EXPECT_EQ(parseU64("0x10", "--seed"), 16u);
    EXPECT_EQ(parseU64("5000", "--sample-interval"), 5000u);
    EXPECT_DOUBLE_EQ(parseDouble("0.25", "--scale"), 0.25);
    EXPECT_EQ(parsePositiveUnsigned("4", "--jobs"), 4u);
}

TEST(SweepJson, RoundTripsThroughParser)
{
    Options opts;
    opts.scale = 0.2;
    opts.procs = 4;
    opts.jobs = 2;
    SweepRunner runner(opts);
    std::size_t h0 =
        runner.add("migratory", makeParams(ProtocolConfig::pcw()),
                   "json/migratory");
    std::size_t h1 = runner.add(
        "producer_consumer", makeParams(ProtocolConfig::basic()),
        "json/producer");
    runner.runAll();

    std::string path = testing::TempDir() + "cpx_sweep_test.json";
    writeJson(path, "test_sweep", opts, runner.results(),
              runner.totalHostSeconds());

    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text, doc, error)) << error;
    EXPECT_EQ(doc.at("schema").text, "cpx-sweep-1");
    EXPECT_EQ(doc.at("suite").text, "test_sweep");

    const auto &points = doc.at("points").items;
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].at("app").text, "migratory");
    EXPECT_EQ(points[0].at("tag").text, "json/migratory");
    EXPECT_EQ(points[0].at("config").at("protocol").text, "P+CW");
    EXPECT_TRUE(points[0].at("verified").boolean);
    EXPECT_EQ(points[0].at("execTime").number,
              static_cast<double>(runner[h0].run.execTime));
    EXPECT_EQ(points[1].at("app").text, "producer_consumer");
    EXPECT_EQ(points[1].at("execTime").number,
              static_cast<double>(runner[h1].run.execTime));
    EXPECT_EQ(points[1].at("traffic").at("bytes").number,
              static_cast<double>(runner[h1].run.stats.netBytes));

    // The validation entry point used by CI agrees.
    EXPECT_TRUE(validateResultsFile(path, error)) << error;
    std::remove(path.c_str());
}

TEST(SweepJson, ValidationCatchesBadDocuments)
{
    std::string error;

    EXPECT_FALSE(validateResultsFile("/nonexistent/path.json",
                                     error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);

    auto writeFile = [](const std::string &path,
                        const std::string &content) {
        std::ofstream out(path, std::ios::trunc);
        out << content;
    };
    std::string path = testing::TempDir() + "cpx_sweep_bad.json";

    writeFile(path, "{ not json");
    EXPECT_FALSE(validateResultsFile(path, error));

    writeFile(path, "{\"schema\": \"something-else\"}");
    EXPECT_FALSE(validateResultsFile(path, error));
    EXPECT_NE(error.find("schema"), std::string::npos);

    writeFile(path,
              "{\"schema\": \"cpx-sweep-1\", \"points\": ["
              "{\"app\": \"mp3d\", \"config\": {}, \"execTime\": 1, "
              "\"verified\": false}]}");
    EXPECT_FALSE(validateResultsFile(path, error));
    EXPECT_NE(error.find("unverified"), std::string::npos);
    std::remove(path.c_str());
}

TEST(SweepJson, ParserHandlesEscapesAndNesting)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(
        R"({"a": [1, -2.5e3, "x\"\\\nA"], "b": {"c": null, "d": true}})",
        doc, error))
        << error;
    EXPECT_EQ(doc.at("a").items.size(), 3u);
    EXPECT_EQ(doc.at("a").items[1].number, -2500.0);
    EXPECT_EQ(doc.at("a").items[2].text, "x\"\\\nA");
    EXPECT_EQ(doc.at("b").at("c").kind, JsonValue::Kind::Null);
    EXPECT_TRUE(doc.at("b").at("d").boolean);

    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", doc, error));
    EXPECT_FALSE(parseJson("[1, 2", doc, error));
    EXPECT_FALSE(parseJson("", doc, error));
}

TEST(SweepRunnerDeathTest, ReportsFullConfigurationOnFailure)
{
    // The stress workload's verify() fails when the run is truncated;
    // instead, check the message format directly: it must name app,
    // protocol, consistency, network and seed so the point can be
    // reproduced from the error alone.
    SweepPoint point{"mp3d",
                     makeParams(ProtocolConfig::pcw(),
                                Consistency::ReleaseConsistency,
                                NetworkKind::Mesh, 32),
                     "tag", 0.5, 42};
    point.params.numProcs = 8;
    std::string text = describePoint(point);
    EXPECT_NE(text.find("mp3d"), std::string::npos);
    EXPECT_NE(text.find("P+CW"), std::string::npos);
    EXPECT_NE(text.find("RC"), std::string::npos);
    EXPECT_NE(text.find("mesh32"), std::string::npos);
    EXPECT_NE(text.find("8 procs"), std::string::npos);
    EXPECT_NE(text.find("seed 42"), std::string::npos);
    EXPECT_NE(text.find("scale 0.50"), std::string::npos);
}

} // anonymous namespace
} // namespace cpx
