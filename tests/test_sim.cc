/**
 * @file
 * Unit tests for the simulation kernel: event queue, statistics,
 * RNG, resources, and fibers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fiber/fiber.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace cpx
{
namespace
{

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, BreaksTiesByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 6u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 10u);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AccumulatorTracksMoments)
{
    Accumulator a;
    a.sample(1.0);
    a.sample(3.0);
    a.sample(2.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(10, 4);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);   // overflow
    h.sample(1000); // overflow
    EXPECT_EQ(h.bucketCounts()[0], 2u);
    EXPECT_EQ(h.bucketCounts()[1], 1u);
    EXPECT_EQ(h.bucketCounts()[3], 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
}

TEST(Stats, AccumulatorMergeMatchesCombinedSampling)
{
    Accumulator a, b, ref;
    for (double v : {4.0, 1.0})
        a.sample(v), ref.sample(v);
    for (double v : {9.0, 2.0, 5.0})
        b.sample(v), ref.sample(v);
    a.merge(b);
    EXPECT_EQ(a.count(), ref.count());
    EXPECT_DOUBLE_EQ(a.sum(), ref.sum());
    EXPECT_DOUBLE_EQ(a.min(), ref.min());
    EXPECT_DOUBLE_EQ(a.max(), ref.max());

    Accumulator empty;
    a.merge(empty);  // no-op
    EXPECT_EQ(a.count(), ref.count());
    empty.merge(a);  // copies
    EXPECT_DOUBLE_EQ(empty.mean(), ref.mean());
}

TEST(Stats, HistogramMergeAddsBuckets)
{
    Histogram a(10, 4), b(10, 4);
    a.sample(5);
    a.sample(100);  // overflow
    b.sample(5);
    b.sample(25);
    a.merge(b);
    EXPECT_EQ(a.bucketCounts()[0], 2u);
    EXPECT_EQ(a.bucketCounts()[2], 1u);
    EXPECT_EQ(a.overflowCount(), 1u);
    EXPECT_EQ(a.summary().count(), 4u);
    EXPECT_DOUBLE_EQ(a.summary().max(), 100.0);
}

TEST(Stats, StatGroupDumpNeverTruncatesLongNames)
{
    // Regression: dump() used a 256-byte line buffer, silently
    // truncating long group/stat names. Build a line far past that.
    std::string group_name(300, 'g');
    std::string stat_name(300, 's');
    StatGroup group(group_name);
    Counter c;
    c += 42;
    group.addCounter(stat_name, &c);
    Accumulator acc;
    acc.sample(1.5);
    group.addAccumulator(stat_name + "2", &acc);

    std::string out;
    group.dump(out);
    EXPECT_NE(out.find(group_name + "." + stat_name + " 42\n"),
              std::string::npos);
    EXPECT_NE(out.find(stat_name + "2 count=1 mean=1.5000"),
              std::string::npos);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7), b(7), c(8);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Resource, GrantsBackToBack)
{
    Resource r;
    EXPECT_EQ(r.reserve(0, 10), 0u);
    EXPECT_EQ(r.reserve(0, 10), 10u);   // queued behind first
    EXPECT_EQ(r.reserve(50, 10), 50u);  // idle gap
    EXPECT_EQ(r.totalBusy(), 30u);
    EXPECT_EQ(r.totalWait(), 10u);
}

TEST(Fiber, RunsToCompletion)
{
    int state = 0;
    Fiber f([&] { state = 42; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(state, 42);
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> trace;
    Fiber f([&] {
        trace.push_back(1);
        Fiber::yield();
        trace.push_back(3);
        Fiber::yield();
        trace.push_back(5);
    });
    f.resume();
    trace.push_back(2);
    f.resume();
    trace.push_back(4);
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksRunningFiber)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ManyFibersInterleave)
{
    std::vector<int> log;
    std::vector<std::unique_ptr<Fiber>> fibers;
    for (int i = 0; i < 4; ++i) {
        fibers.push_back(std::make_unique<Fiber>([&log, i] {
            log.push_back(i);
            Fiber::yield();
            log.push_back(i + 10);
        }));
    }
    for (auto &f : fibers)
        f->resume();
    for (auto &f : fibers)
        f->resume();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

} // anonymous namespace
} // namespace cpx
