/**
 * @file
 * Unit tests for the interconnect models: uniform network latency
 * and traffic accounting, mesh geometry, dimension-order routing,
 * flit arithmetic, and per-link contention.
 */

#include <gtest/gtest.h>

#include "net/mesh.hh"
#include "net/network.hh"
#include "obs/metrics.hh"

namespace cpx
{
namespace
{

TEST(UniformNetwork, FixedHopLatency)
{
    EventQueue eq;
    UniformNetwork net(eq, 54, 2);
    Tick arrival = 0;
    net.send(0, 5, 32, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 54u);
}

TEST(UniformNetwork, LocalDeliverySkipsTheHop)
{
    EventQueue eq;
    UniformNetwork net(eq, 54, 2);
    Tick arrival = 0;
    net.send(3, 3, 32, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 2u);
    // Local traffic is not network traffic.
    EXPECT_EQ(net.totalBytes(), 0u);
    EXPECT_EQ(net.totalMessages(), 0u);
}

TEST(UniformNetwork, CountsHeaderPlusPayload)
{
    EventQueue eq;
    UniformNetwork net(eq, 54);
    net.send(0, 1, 32, [] {});
    net.send(1, 2, 0, [] {});
    eq.run();
    EXPECT_EQ(net.totalMessages(), 2u);
    EXPECT_EQ(net.totalBytes(), (32u + 8u) + (0u + 8u));
}

TEST(Mesh, GeometryFor16Nodes)
{
    EventQueue eq;
    MeshNetwork mesh(eq, 16, 64);
    EXPECT_EQ(mesh.columns(), 4u);
    EXPECT_EQ(mesh.rows(), 4u);
}

TEST(Mesh, HopCountIsManhattanDistance)
{
    EventQueue eq;
    MeshNetwork mesh(eq, 16, 64);
    EXPECT_EQ(mesh.hopCount(0, 0), 0u);
    EXPECT_EQ(mesh.hopCount(0, 3), 3u);   // same row
    EXPECT_EQ(mesh.hopCount(0, 12), 3u);  // same column
    EXPECT_EQ(mesh.hopCount(0, 15), 6u);  // opposite corner
    EXPECT_EQ(mesh.hopCount(5, 10), 2u);
}

TEST(Mesh, LatencyGrowsWithDistanceAndShrinkingLinks)
{
    auto one_hop_latency = [](NodeId dst, unsigned bits) {
        EventQueue eq;
        MeshNetwork mesh(eq, 16, bits);
        Tick arrival = 0;
        mesh.send(0, dst, 32, [&] { arrival = eq.now(); });
        eq.run();
        return arrival;
    };
    // Farther destinations take longer.
    EXPECT_LT(one_hop_latency(1, 64), one_hop_latency(3, 64));
    EXPECT_LT(one_hop_latency(3, 64), one_hop_latency(15, 64));
    // Narrower links take longer for the same payload.
    EXPECT_LT(one_hop_latency(15, 64), one_hop_latency(15, 16));
}

TEST(Mesh, FlitCountMatchesLinkWidth)
{
    // 32B payload + 8B header = 40 bytes = 320 bits.
    {
        EventQueue eq;
        MeshNetwork mesh(eq, 16, 64);
        mesh.send(0, 1, 32, [] {});
        eq.run();
        EXPECT_EQ(mesh.totalFlits(), 5u);  // 320/64
    }
    {
        EventQueue eq;
        MeshNetwork mesh(eq, 16, 16);
        mesh.send(0, 1, 32, [] {});
        eq.run();
        EXPECT_EQ(mesh.totalFlits(), 20u);  // 320/16
    }
}

TEST(Mesh, ContentionSerializesASharedLink)
{
    // Two messages injected simultaneously over the same link: the
    // second's tail arrives roughly one message-duration later.
    EventQueue eq;
    MeshNetwork mesh(eq, 16, 16);
    Tick first = 0, second = 0;
    mesh.send(0, 1, 32, [&] { first = eq.now(); });
    mesh.send(0, 1, 32, [&] { second = eq.now(); });
    eq.run();
    EXPECT_GT(second, first);
    EXPECT_GE(second - first, 20u);  // >= one 20-flit train
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    EventQueue eq;
    MeshNetwork mesh(eq, 16, 16);
    Tick a = 0, b = 0;
    mesh.send(0, 1, 32, [&] { a = eq.now(); });
    mesh.send(4, 5, 32, [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, b);  // same geometry, no shared links
}

TEST(Mesh, NonSquareNodeCountsGetValidGeometries)
{
    EventQueue eq;
    MeshNetwork mesh6(eq, 6, 32);
    EXPECT_EQ(mesh6.columns() * mesh6.rows() >= 6, true);
    // Every pair routes and delivers.
    unsigned delivered = 0;
    for (NodeId s = 0; s < 6; ++s)
        for (NodeId d = 0; d < 6; ++d)
            mesh6.send(s, d, 16, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 36u);
}

TEST(Mesh, EndToEndOnTinyMachine)
{
    // A full protocol run over a 2x2 mesh.
    EventQueue eq;
    MeshNetwork mesh(eq, 4, 16);
    Tick arrival = 0;
    mesh.send(0, 3, 32, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_GT(arrival, 0u);
    EXPECT_EQ(mesh.hopCount(0, 3), 2u);
}

TEST(Mesh, GeometryScalesTo64And256Nodes)
{
    EventQueue eq;
    MeshNetwork m64(eq, 64, 64);
    EXPECT_EQ(m64.columns(), 8u);
    EXPECT_EQ(m64.rows(), 8u);
    EXPECT_EQ(m64.hopCount(0, 63), 14u);  // opposite corner of 8x8

    MeshNetwork m256(eq, 256, 64);
    EXPECT_EQ(m256.columns(), 16u);
    EXPECT_EQ(m256.rows(), 16u);
    EXPECT_EQ(m256.hopCount(0, 255), 30u);
}

TEST(Mesh, ThirtyTwoNodesRouteAroundTheHoles)
{
    // 32 nodes factor as 6x6 with four unused positions in the last
    // row; every real pair must still route and deliver.
    EventQueue eq;
    MeshNetwork mesh(eq, 32, 32);
    ASSERT_EQ(mesh.columns(), 6u);
    ASSERT_EQ(mesh.rows(), 6u);
    unsigned delivered = 0;
    for (NodeId s = 0; s < 32; ++s)
        for (NodeId d = 0; d < 32; ++d)
            mesh.send(s, d, 16, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 32u * 32u);
    // Node 31 sits at (1, 5): |1-0| + |5-0| hops from node 0.
    EXPECT_EQ(mesh.hopCount(0, 31), 6u);
}

TEST(Mesh, MetricNamesArePaddedOnWideGrids)
{
    EventQueue eq;

    // Grids up to 10 columns keep the historical single-digit names
    // (the committed smoke baseline depends on them).
    MeshNetwork m16(eq, 16, 64);
    MetricRegistry reg16;
    m16.registerMetrics(reg16);
    bool narrow = false;
    for (std::size_t i = 0; i < reg16.size(); ++i)
        narrow |= reg16.name(i) == "mesh.x0y0.east.flits";
    EXPECT_TRUE(narrow);

    // A 16x16 grid zero-pads so names stay unambiguous ("x1y1" can
    // no longer be a prefix of "x11y1") and sort in grid order.
    MeshNetwork m256(eq, 256, 64);
    MetricRegistry reg256;
    m256.registerMetrics(reg256);
    bool padded = false, unpadded = false, wide = false;
    for (std::size_t i = 0; i < reg256.size(); ++i) {
        padded |= reg256.name(i) == "mesh.x00y00.east.flits";
        unpadded |= reg256.name(i) == "mesh.x0y0.east.flits";
        wide |= reg256.name(i) == "mesh.x14y15.east.flits";
    }
    EXPECT_TRUE(padded);
    EXPECT_TRUE(wide);
    EXPECT_FALSE(unpadded);
}

TEST(MeshDeathTest, RejectsMoreThanMaxNodes)
{
    EXPECT_EXIT(
        {
            EventQueue eq;
            MeshNetwork mesh(eq, maxNodes + 1, 64);
        },
        ::testing::ExitedWithCode(1), "at most");
}

TEST(Mesh, LatencySamplesAccumulate)
{
    EventQueue eq;
    MeshNetwork mesh(eq, 16, 64);
    mesh.send(0, 15, 32, [] {});
    mesh.send(0, 1, 32, [] {});
    eq.run();
    EXPECT_EQ(mesh.latencyStats().count(), 2u);
    EXPECT_GT(mesh.latencyStats().max(),
              mesh.latencyStats().min());
}

} // anonymous namespace
} // namespace cpx
