/**
 * @file
 * Tests for the stress-and-diagnostics subsystem (src/check):
 * the coherence invariant checker (including proof that it catches
 * deliberately injected violations), the stall watchdog and the
 * System::run diagnostics dump (on deliberately wedged runs), and
 * the chaos network decorator.
 */

#include <gtest/gtest.h>

#include "check/checker.hh"
#include "check/watchdog.hh"
#include "core/config.hh"
#include "net/chaos_network.hh"
#include "proto/slc.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

MachineParams
smallParams(unsigned procs = 4)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = procs;
    return params;
}

// ---------------------------------------------------------------------------
// CoherenceChecker: clean runs stay clean
// ---------------------------------------------------------------------------

TEST(CoherenceChecker, CleanRunHasNoViolations)
{
    System sys(smallParams());
    CoherenceChecker checker(sys);

    auto w = makeWorkload("migratory", 0.1);
    WorkloadRun run = runWorkload(sys, *w);

    EXPECT_TRUE(run.verified);
    checker.checkQuiescent();
    EXPECT_EQ(checker.violationCount(), 0u);
    EXPECT_TRUE(checker.violations().empty());
    EXPECT_GT(checker.checksRun(), 0u);
    EXPECT_GT(checker.messagesObserved(), 0u);
}

TEST(CoherenceChecker, ObserverUninstallsOnDestruction)
{
    System sys(smallParams());
    {
        CoherenceChecker checker(sys);
        EXPECT_EQ(sys.observer(), &checker);
    }
    EXPECT_EQ(sys.observer(), nullptr);
}

// ---------------------------------------------------------------------------
// CoherenceChecker: injected violations are caught
// ---------------------------------------------------------------------------

/** Find a stable CLEAN block with a valid copy at some node. */
bool
findCleanCopy(System &sys, Addr &block_out, NodeId &node_out)
{
    for (NodeId home = 0; home < sys.params().numProcs; ++home) {
        for (Addr block : sys.dir(home).knownBlocks()) {
            auto snap = sys.dir(home).inspect(block);
            if (snap.modified || snap.inService)
                continue;
            for (NodeId n = 0; n < sys.params().numProcs; ++n) {
                const auto *line = sys.slc(n).findLine(block);
                if (line && line->valid) {
                    block_out = block;
                    node_out = n;
                    return true;
                }
            }
        }
    }
    return false;
}

TEST(CoherenceChecker, CatchesInjectedSwmrViolation)
{
    System sys(smallParams());
    auto w = makeWorkload("producer_consumer", 0.1);
    WorkloadRun run = runWorkload(sys, *w);
    ASSERT_TRUE(run.verified);

    Addr block = 0;
    NodeId node = 0;
    ASSERT_TRUE(findCleanCopy(sys, block, node));

    // Fault injection: promote a SHARED copy to Dirty behind the
    // directory's back — a second writer the directory knows nothing
    // about, the canonical single-writer/multiple-reader violation.
    sys.slc(node).findLineMutable(block)->state =
        SlcController::LineState::Dirty;

    CoherenceChecker::Options opts;
    opts.failFast = false;
    CoherenceChecker checker(sys, opts);
    checker.checkAll();

    ASSERT_GT(checker.violationCount(), 0u);
    bool found = false;
    for (const std::string &v : checker.violations())
        if (v.find("Dirty") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << checker.violations()[0];
}

TEST(CoherenceChecker, CatchesInjectedDataCorruption)
{
    System sys(smallParams());
    auto w = makeWorkload("producer_consumer", 0.1);
    WorkloadRun run = runWorkload(sys, *w);
    ASSERT_TRUE(run.verified);

    Addr block = 0;
    NodeId node = 0;
    ASSERT_TRUE(findCleanCopy(sys, block, node));

    // Flip one word of a clean cached copy: the copy now disagrees
    // with the backing store.
    auto *line = sys.slc(node).findLineMutable(block);
    ASSERT_FALSE(line->data.empty());
    line->data[0] ^= 0xdeadbeef;

    CoherenceChecker::Options opts;
    opts.failFast = false;
    CoherenceChecker checker(sys, opts);
    checker.checkAll();

    ASSERT_GT(checker.violationCount(), 0u);
    EXPECT_NE(checker.violations()[0].find("memory has"),
              std::string::npos)
        << checker.violations()[0];
}

TEST(CoherenceChecker, CatchesModifiedOwnerInSharedState)
{
    // Single processor: after a write, the block is MODIFIED with
    // the owner's line Dirty. Demoting the line to Shared while the
    // directory still says MODIFIED breaks directory/cache agreement.
    System sys(smallParams(1));
    Addr word = sys.heap().allocBlockAligned(wordBytes);
    sys.run([&](Processor &p, unsigned) { p.write32(word, 77); });

    Addr block = sys.amap().blockAddr(word);
    auto snap = sys.dir(sys.amap().home(block)).inspect(block);
    ASSERT_TRUE(snap.modified);
    auto *line = sys.slc(snap.owner).findLineMutable(block);
    ASSERT_NE(line, nullptr);
    line->state = SlcController::LineState::Shared;

    CoherenceChecker::Options opts;
    opts.failFast = false;
    CoherenceChecker checker(sys, opts);
    checker.checkAll();

    ASSERT_GT(checker.violationCount(), 0u);
    EXPECT_NE(checker.violations()[0].find("Shared state"),
              std::string::npos)
        << checker.violations()[0];
}

TEST(CoherenceChecker, ViolationListIsCapped)
{
    System sys(smallParams());
    auto w = makeWorkload("readonly", 0.1);
    (void)runWorkload(sys, *w);

    // Corrupt every cached copy everywhere.
    for (NodeId home = 0; home < sys.params().numProcs; ++home)
        for (Addr block : sys.dir(home).knownBlocks())
            for (NodeId n = 0; n < sys.params().numProcs; ++n)
                if (auto *l = sys.slc(n).findLineMutable(block))
                    if (l->valid && !l->data.empty())
                        l->data[0] ^= 1;

    CoherenceChecker::Options opts;
    opts.failFast = false;
    opts.maxViolations = 5;
    CoherenceChecker checker(sys, opts);
    checker.checkAll();

    EXPECT_GT(checker.violationCount(), 5u);
    EXPECT_EQ(checker.violations().size(), 5u);
}

// ---------------------------------------------------------------------------
// Watchdog + stall diagnostics on deliberately wedged runs
// ---------------------------------------------------------------------------

/** Wedge recipe: proc 0 takes the lock and finishes without ever
 *  releasing it; proc 1 waits on it forever. */
void
runWedged(System &sys, Addr lock)
{
    sys.run([lock](Processor &p, unsigned id) {
        if (id == 0) {
            p.lock(lock);
            // exits the parallel section holding the lock
        } else {
            p.compute(50);
            p.lock(lock);  // never granted
            p.unlock(lock);
        }
    });
}

TEST(WatchdogDeathTest, AbortsWithDiagnosticsOnStall)
{
    EXPECT_DEATH(
        {
            System sys(smallParams(2));
            Addr lock = sys.heap().allocLock();
            Watchdog::Options opts;
            opts.interval = 10'000;
            Watchdog dog(sys, opts);
            dog.arm();
            runWedged(sys, lock);
        },
        "watchdog: no progress");
}

TEST(WatchdogDeathTest, DumpNamesTheHeldLock)
{
    // The diagnostics dump must identify the protocol-level wait
    // cycle: the held lock with a waiter, and the stalled processor.
    EXPECT_DEATH(
        {
            System sys(smallParams(2));
            Addr lock = sys.heap().allocLock();
            Watchdog::Options opts;
            opts.interval = 10'000;
            Watchdog dog(sys, opts);
            dog.arm();
            runWedged(sys, lock);
        },
        "held by node 0, 1 waiting");
}

TEST(SystemRunDeathTest, DumpsDiagnosticsWhenQueueDrains)
{
    // Without a watchdog the event queue simply drains with proc 1
    // still suspended; System::run prints the same dump and panics.
    EXPECT_DEATH(
        {
            System sys(smallParams(2));
            Addr lock = sys.heap().allocLock();
            runWedged(sys, lock);
        },
        "protocol stall diagnostics");
}

TEST(Watchdog, DoesNotFireOnHealthyRun)
{
    System sys(smallParams());
    Watchdog::Options opts;
    opts.interval = 1'000;
    opts.abortOnStall = false;
    Watchdog dog(sys, opts);
    dog.arm();

    auto w = makeWorkload("migratory", 0.1);
    WorkloadRun run = runWorkload(sys, *w);

    EXPECT_TRUE(run.verified);
    EXPECT_FALSE(dog.fired());
    EXPECT_GT(dog.samples(), 0u);
}

// ---------------------------------------------------------------------------
// ChaosNetwork
// ---------------------------------------------------------------------------

ChaosParams
chaosConfig(std::uint64_t seed, bool fifo)
{
    ChaosParams c;
    c.enabled = true;
    c.seed = seed;
    c.maxJitter = 200;
    c.preservePairFifo = fifo;
    return c;
}

TEST(ChaosNetwork, DeterministicForSameSeed)
{
    EventQueue eq1, eq2;
    ChaosNetwork a(eq1, std::make_unique<UniformNetwork>(eq1),
                   chaosConfig(42, true));
    ChaosNetwork b(eq2, std::make_unique<UniformNetwork>(eq2),
                   chaosConfig(42, true));
    for (unsigned i = 0; i < 500; ++i) {
        NodeId src = i % 7, dst = (i * 3 + 1) % 7;
        EXPECT_EQ(a.route(src, dst, 40, 0), b.route(src, dst, 40, 0));
    }
    EXPECT_EQ(a.jitterInjected(), b.jitterInjected());
}

TEST(ChaosNetwork, DifferentSeedsDiverge)
{
    EventQueue eq1, eq2;
    ChaosNetwork a(eq1, std::make_unique<UniformNetwork>(eq1),
                   chaosConfig(1, true));
    ChaosNetwork b(eq2, std::make_unique<UniformNetwork>(eq2),
                   chaosConfig(2, true));
    bool diverged = false;
    for (unsigned i = 0; i < 100 && !diverged; ++i)
        diverged = a.route(0, 1, 40, 0) != b.route(0, 1, 40, 0);
    EXPECT_TRUE(diverged);
}

TEST(ChaosNetwork, PreservesPairwiseFifoWhenAsked)
{
    EventQueue eq;
    ChaosNetwork net(eq, std::make_unique<UniformNetwork>(eq),
                     chaosConfig(7, true));
    Tick last = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        Tick arrival = net.route(0, 1, 40, 0);
        EXPECT_GE(arrival, last);
        last = arrival;
    }
    // With jitter up to 200 on a 54-tick base latency, clamping must
    // actually have happened — otherwise the test proves nothing.
    EXPECT_GT(net.fifoClamps(), 0u);
    EXPECT_EQ(net.reorderedDeliveries(), 0u);
}

TEST(ChaosNetwork, ReordersAcrossAPairWhenAllowed)
{
    EventQueue eq;
    ChaosNetwork net(eq, std::make_unique<UniformNetwork>(eq),
                     chaosConfig(7, false));
    bool reordered = false;
    Tick last = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        Tick arrival = net.route(0, 1, 40, 0);
        if (arrival < last)
            reordered = true;
        if (arrival > last)
            last = arrival;
    }
    EXPECT_TRUE(reordered);
    EXPECT_GT(net.reorderedDeliveries(), 0u);
    EXPECT_EQ(net.fifoClamps(), 0u);
}

TEST(ChaosNetwork, LocalDeliveryIsNeverPerturbed)
{
    EventQueue eq_plain, eq_chaos;
    UniformNetwork plain(eq_plain);
    ChaosNetwork net(eq_chaos,
                     std::make_unique<UniformNetwork>(eq_chaos),
                     chaosConfig(3, true));
    for (unsigned i = 0; i < 50; ++i)
        EXPECT_EQ(net.route(2, 2, 40, 0), plain.route(2, 2, 40, 0));
}

TEST(ChaosNetwork, SystemWiresDecoratorWhenEnabled)
{
    MachineParams params = smallParams();
    params.chaos.enabled = true;
    params.chaos.seed = 5;
    System sys(params);
    EXPECT_NE(dynamic_cast<ChaosNetwork *>(&sys.net()), nullptr);

    auto w = makeWorkload("migratory", 0.1);
    WorkloadRun run = runWorkload(sys, *w);
    EXPECT_TRUE(run.verified);
    EXPECT_TRUE(sys.quiescent());

    auto &chaos = static_cast<ChaosNetwork &>(sys.net());
    EXPECT_GT(chaos.jitterInjected(), 0u);
}

TEST(ChaosNetwork, MeshStatsStayReachableUnderChaos)
{
    MachineParams params = smallParams();
    params.networkKind = NetworkKind::Mesh;
    params.chaos.enabled = true;
    System sys(params);
    ASSERT_NE(sys.mesh(), nullptr);

    auto w = makeWorkload("migratory", 0.1);
    WorkloadRun run = runWorkload(sys, *w);
    EXPECT_TRUE(run.verified);
}

} // anonymous namespace
} // namespace cpx
