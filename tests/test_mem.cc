/**
 * @file
 * Unit tests for the memory substrate: address mapping, tag stores,
 * miss classification, backing store, shared heap, write cache and
 * the first-level cache.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "mem/flc.hh"
#include "mem/miss_class.hh"
#include "mem/shared_heap.hh"
#include "mem/tag_store.hh"
#include "mem/write_cache.hh"

namespace cpx
{
namespace
{

TEST(AddressMap, BlockArithmetic)
{
    AddressMap amap(32, 4096, 16);
    EXPECT_EQ(amap.blockAddr(0x1234), 0x1220u);
    EXPECT_EQ(amap.blockOffset(0x1234), 0x14u);
    EXPECT_EQ(amap.wordInBlock(0x1234), 5u);
    EXPECT_TRUE(amap.sameBlock(0x1220, 0x123f));
    EXPECT_FALSE(amap.sameBlock(0x121f, 0x1220));
    EXPECT_EQ(amap.wordsPerBlock(), 8u);
}

TEST(AddressMap, RoundRobinHomePlacement)
{
    AddressMap amap(32, 4096, 16);
    EXPECT_EQ(amap.home(0), 0u);
    EXPECT_EQ(amap.home(4096), 1u);
    EXPECT_EQ(amap.home(15 * 4096), 15u);
    EXPECT_EQ(amap.home(16 * 4096), 0u);  // wraps
    // Every address within a page has the same home.
    EXPECT_EQ(amap.home(4096), amap.home(4096 + 4095));
}

TEST(AddressMapDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(AddressMap(33, 4096, 16),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(AddressMap(32, 16, 16), ::testing::ExitedWithCode(1),
                "page size");
    EXPECT_EXIT(AddressMap(32, 4096, 0), ::testing::ExitedWithCode(1),
                "node");
}

struct TestLine
{
    bool valid = false;
    int tagValue = 0;
};

TEST(TagStore, InfiniteNeverEvicts)
{
    TagStore<TestLine> tags(32, 0);
    ASSERT_TRUE(tags.infinite());
    for (Addr a = 0; a < 100 * 32; a += 32)
        tags.insert(a);
    EXPECT_EQ(tags.size(), 100u);
    for (Addr a = 0; a < 100 * 32; a += 32)
        EXPECT_NE(tags.find(a), nullptr);
    auto [victim_addr, victim] = tags.victimFor(12345);
    EXPECT_EQ(victim, nullptr);
}

TEST(TagStore, FiniteDirectMappedConflicts)
{
    TagStore<TestLine> tags(32, 4);  // 4 sets
    tags.insert(0);                  // set 0
    tags.insert(32);                 // set 1
    EXPECT_NE(tags.find(0), nullptr);

    // 4*32 = 128 maps to set 0 again: conflict with address 0.
    auto [victim_addr, victim] = tags.victimFor(128);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim_addr, 0u);

    tags.insert(128);
    EXPECT_EQ(tags.find(0), nullptr);
    EXPECT_NE(tags.find(128), nullptr);
    EXPECT_NE(tags.find(32), nullptr);
}

TEST(TagStore, EraseAndForEach)
{
    TagStore<TestLine> tags(32, 0);
    tags.insert(0)->tagValue = 1;
    tags.insert(32)->tagValue = 2;
    tags.erase(0);
    EXPECT_EQ(tags.find(0), nullptr);
    int sum = 0;
    tags.forEach([&](Addr, TestLine &l) { sum += l.tagValue; });
    EXPECT_EQ(sum, 2);
}

TEST(TagStore, SubBlockAddressesAlias)
{
    TagStore<TestLine> tags(32, 16);
    tags.insert(0x100);
    EXPECT_EQ(tags.find(0x100), tags.find(0x11f));
    EXPECT_EQ(tags.find(0x120), nullptr);
}

TEST(MissClassifier, ColdThenCauses)
{
    MissClassifier mc;
    EXPECT_EQ(mc.classify(0x100), MissKind::Cold);
    mc.noteRemoval(0x100, RemovalCause::Invalidation);
    EXPECT_EQ(mc.classify(0x100), MissKind::Coherence);
    mc.noteRemoval(0x100, RemovalCause::Replacement);
    EXPECT_EQ(mc.classify(0x100), MissKind::Replacement);
    // A second classify without removal keeps the last cause.
    EXPECT_EQ(mc.classify(0x100), MissKind::Replacement);
    EXPECT_EQ(mc.classify(0x200), MissKind::Cold);
    EXPECT_EQ(mc.blocksSeen(), 2u);
}

TEST(BackingStore, ReadWriteRoundTrip)
{
    BackingStore store(4096);
    store.write32(0x1000, 0xdeadbeef);
    EXPECT_EQ(store.read32(0x1000), 0xdeadbeefu);
    store.write64(0x2000, 0x0123456789abcdefull);
    EXPECT_EQ(store.read64(0x2000), 0x0123456789abcdefull);
    store.writeDouble(0x3000, 3.14159);
    EXPECT_DOUBLE_EQ(store.readDouble(0x3000), 3.14159);
}

TEST(BackingStore, UntouchedMemoryReadsZero)
{
    BackingStore store(4096);
    EXPECT_EQ(store.read32(0x99999), 0u);
    EXPECT_EQ(store.pagesAllocated(), 0u);
    store.write32(0x99999, 1);
    EXPECT_EQ(store.pagesAllocated(), 1u);
}

TEST(BackingStore, CrossPageAccess)
{
    BackingStore store(4096);
    // A 4-byte value straddling a page boundary.
    store.write32(4094, 0x11223344);
    EXPECT_EQ(store.read32(4094), 0x11223344u);
    EXPECT_EQ(store.pagesAllocated(), 2u);
}

TEST(SharedHeap, AlignmentAndPlacement)
{
    AddressMap amap(32, 4096, 16);
    SharedHeap heap(amap);
    Addr a = heap.alloc(10, 8);
    EXPECT_EQ(a % 8, 0u);
    Addr b = heap.allocBlockAligned(100);
    EXPECT_EQ(b % 32, 0u);
    EXPECT_GE(b, a + 10);
    Addr lock = heap.allocLock();
    EXPECT_EQ(lock % 32, 0u);
}

TEST(SharedHeap, IsolatedAllocationsLeaveAGap)
{
    AddressMap amap(32, 4096, 16);
    SharedHeap heap(amap);
    Addr a = heap.allocIsolated(4);
    Addr b = heap.allocIsolated(4);
    EXPECT_GE(b - a, 16u * 32u);
}

TEST(SharedHeap, PadToNextPageSteersHomes)
{
    AddressMap amap(32, 4096, 16);
    SharedHeap heap(amap);
    heap.alloc(100);
    heap.padToNextPage();
    Addr a = heap.alloc(4);
    EXPECT_EQ(a % 4096, 0u);
}

TEST(WriteCache, CombinesWritesToOneBlock)
{
    AddressMap amap(32, 4096, 16);
    WriteCache wc(amap, 4);
    WriteCacheFlush victim;
    EXPECT_FALSE(wc.writeWord(0x100, 1, victim));
    EXPECT_FALSE(wc.writeWord(0x104, 2, victim));
    EXPECT_FALSE(wc.writeWord(0x108, 3, victim));
    EXPECT_EQ(wc.combinedWrites().value(), 2u);
    EXPECT_EQ(wc.occupancy(), 1u);

    std::uint32_t v = 0;
    EXPECT_TRUE(wc.readWord(0x104, v));
    EXPECT_EQ(v, 2u);
    EXPECT_FALSE(wc.readWord(0x10c, v));  // clean word

    auto flushed = wc.flushAll();
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0].blockAddr, 0x100u);
    EXPECT_EQ(flushed[0].dirtyWords(), 3u);
    EXPECT_EQ(flushed[0].words[1], 2u);
    EXPECT_EQ(wc.occupancy(), 0u);
}

TEST(WriteCache, FullyAssociativeAliasesCoexist)
{
    AddressMap amap(32, 4096, 16);
    WriteCache wc(amap, 4);
    WriteCacheFlush victim;
    // 0x000/0x080/0x100/0x180 would all collide in a direct-mapped
    // buffer of 4 frames; the paper's write cache is fully
    // associative, so all four blocks stay resident together.
    EXPECT_FALSE(wc.writeWord(0x000, 7, victim));
    EXPECT_FALSE(wc.writeWord(0x080, 9, victim));
    EXPECT_FALSE(wc.writeWord(0x100, 11, victim));
    EXPECT_FALSE(wc.writeWord(0x180, 13, victim));
    EXPECT_EQ(wc.victimFlushes().value(), 0u);
    EXPECT_EQ(wc.occupancy(), 4u);
    EXPECT_TRUE(wc.contains(0x000));
    EXPECT_TRUE(wc.contains(0x080));
    EXPECT_TRUE(wc.contains(0x100));
    EXPECT_TRUE(wc.contains(0x180));
}

TEST(WriteCache, VictimizesOldestWhenFull)
{
    AddressMap amap(32, 4096, 16);
    WriteCache wc(amap, 4);
    WriteCacheFlush victim;
    EXPECT_FALSE(wc.writeWord(0x000, 7, victim));
    EXPECT_FALSE(wc.writeWord(0x020, 8, victim));
    EXPECT_FALSE(wc.writeWord(0x040, 9, victim));
    EXPECT_FALSE(wc.writeWord(0x060, 10, victim));
    // Combining into the oldest block must not refresh its FIFO
    // position: 0x000 is still the next victim.
    EXPECT_FALSE(wc.writeWord(0x004, 77, victim));
    EXPECT_TRUE(wc.writeWord(0x080, 11, victim));
    EXPECT_EQ(victim.blockAddr, 0x000u);
    EXPECT_EQ(victim.words[0], 7u);
    EXPECT_EQ(victim.words[1], 77u);
    EXPECT_EQ(victim.dirtyWords(), 2u);
    EXPECT_EQ(wc.victimFlushes().value(), 1u);
    EXPECT_FALSE(wc.contains(0x000));
    EXPECT_TRUE(wc.contains(0x080));

    // Next allocation displaces the next-oldest block, 0x020.
    EXPECT_TRUE(wc.writeWord(0x0a0, 12, victim));
    EXPECT_EQ(victim.blockAddr, 0x020u);
}

TEST(WriteCache, FlushAllReturnsInsertionOrder)
{
    AddressMap amap(32, 4096, 16);
    WriteCache wc(amap, 4);
    WriteCacheFlush victim;
    wc.writeWord(0x100, 1, victim);
    wc.writeWord(0x000, 2, victim);
    wc.writeWord(0x180, 3, victim);
    wc.writeWord(0x104, 4, victim);  // combines; keeps 0x100 oldest

    auto flushed = wc.flushAll();
    ASSERT_EQ(flushed.size(), 3u);
    EXPECT_EQ(flushed[0].blockAddr, 0x100u);
    EXPECT_EQ(flushed[1].blockAddr, 0x000u);
    EXPECT_EQ(flushed[2].blockAddr, 0x180u);
    EXPECT_EQ(wc.occupancy(), 0u);
}

TEST(WriteCache, DropRemovesEntry)
{
    AddressMap amap(32, 4096, 16);
    WriteCache wc(amap, 4);
    WriteCacheFlush victim;
    wc.writeWord(0x40, 1, victim);
    wc.drop(0x44);  // any address in the block
    EXPECT_FALSE(wc.contains(0x40));
    EXPECT_TRUE(wc.flushAll().empty());
}

TEST(Flc, WriteThroughNoAllocate)
{
    AddressMap amap(32, 4096, 16);
    Flc flc(amap, 4096);
    EXPECT_FALSE(flc.writeProbe(0x100));  // miss, no allocation
    EXPECT_FALSE(flc.readProbe(0x100));
    flc.fill(0x100);
    EXPECT_TRUE(flc.readProbe(0x104));   // same block
    EXPECT_TRUE(flc.writeProbe(0x108));  // write hit
    flc.invalidate(0x100);
    EXPECT_FALSE(flc.readProbe(0x100));
    EXPECT_EQ(flc.readHitCount().value(), 1u);
    EXPECT_EQ(flc.readMissCount().value(), 2u);
}

TEST(Flc, DirectMappedCapacityConflicts)
{
    AddressMap amap(32, 4096, 16);
    Flc flc(amap, 128);  // 4 lines
    flc.fill(0x000);
    flc.fill(0x080);  // conflicts with 0x000 (4 lines * 32B = 128)
    EXPECT_FALSE(flc.readProbe(0x000));
    EXPECT_TRUE(flc.readProbe(0x080));
}

} // anonymous namespace
} // namespace cpx
