/**
 * @file
 * End-to-end integration tests: whole-system runs of the synthetic
 * workloads across every protocol combination and both consistency
 * models, checking functional correctness, protocol quiescence, and
 * the per-processor time-accounting identity.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

struct Combo
{
    ProtocolConfig protocol;
    Consistency consistency;
};

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (const ProtocolConfig &pc : figure2Protocols()) {
        combos.push_back({pc, Consistency::ReleaseConsistency});
        if (!pc.compUpdate)
            combos.push_back({pc, Consistency::SequentialConsistency});
    }
    return combos;
}

class SyntheticAllProtocols
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(SyntheticAllProtocols, RunsCorrectlyAndQuiesces)
{
    const auto &[workload_name, combo_idx] = GetParam();
    Combo combo = allCombos()[combo_idx];

    MachineParams params =
        makeParams(combo.protocol, combo.consistency);
    params.numProcs = 8;
    System sys(params);
    auto w = makeWorkload(workload_name, 0.25);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/500'000'000);

    EXPECT_TRUE(run.verified)
        << workload_name << " under " << combo.protocol.name();
    EXPECT_TRUE(sys.quiescent());
    EXPECT_GT(run.execTime, 0u);

    // Per-processor accounting identity: busy + stalls == runtime.
    for (NodeId i = 0; i < params.numProcs; ++i) {
        const Processor &p = sys.processor(i);
        EXPECT_EQ(p.times().total(), p.finishTick())
            << "processor " << i << " accounting leak";
    }
}

std::vector<std::tuple<std::string, int>>
allCases()
{
    std::vector<std::tuple<std::string, int>> cases;
    for (const char *w : {"migratory", "producer_consumer", "readonly",
                          "false_sharing"}) {
        for (std::size_t c = 0; c < allCombos().size(); ++c)
            cases.emplace_back(w, static_cast<int>(c));
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<std::tuple<std::string, int>>
             &info)
{
    Combo combo = allCombos()[std::get<1>(info.param)];
    std::string proto = combo.protocol.name();
    for (char &ch : proto)
        if (ch == '+')
            ch = '_';
    return std::get<0>(info.param) + "_" + proto + "_" +
           (combo.consistency == Consistency::ReleaseConsistency
                ? "RC"
                : "SC");
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SyntheticAllProtocols,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(SystemBasics, RejectsCwUnderSc)
{
    MachineParams params = makeParams(
        ProtocolConfig::cw(), Consistency::SequentialConsistency);
    EXPECT_EXIT(System sys(params), ::testing::ExitedWithCode(1),
                "release consistency");
}

TEST(SystemBasics, DeterministicAcrossRuns)
{
    auto run_once = [] {
        MachineParams params = makeParams(ProtocolConfig::pcw());
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("migratory", 0.25);
        return runWorkload(sys, *w).execTime;
    };
    Tick first = run_once();
    EXPECT_EQ(first, run_once());
}

TEST(SystemBasics, SameResultAcrossProtocolsDifferentTiming)
{
    // Functional results must be identical under every protocol;
    // only the timing may differ.
    std::vector<Tick> times;
    for (const ProtocolConfig &pc : figure2Protocols()) {
        MachineParams params = makeParams(pc);
        params.numProcs = 4;
        System sys(params);
        auto w = makeWorkload("false_sharing", 0.25);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified) << pc.name();
        times.push_back(run.execTime);
    }
    // At least two protocols should produce different timings.
    bool any_diff = false;
    for (Tick t : times)
        if (t != times.front())
            any_diff = true;
    EXPECT_TRUE(any_diff);
}

} // anonymous namespace
} // namespace cpx
