/**
 * @file
 * Directory edge cases: per-block service serialization, write-back
 * races with re-fetches (the stale-write-back path), prefetches
 * hitting dirty remote blocks, and CW updates colliding with
 * migratory-exclusive owners.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/system.hh"

namespace cpx
{
namespace
{

TEST(DirectoryEdges, ManySimultaneousReadersAllGetCopies)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 16;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 77);

    std::vector<std::uint32_t> got(16, 0);
    sys.run([&](Processor &p, unsigned id) {
        got[id] = p.read32(a);  // all at t=0: the home serializes
    });

    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(got[i], 77u);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_EQ(snap.presence, 0xffffull);
    EXPECT_FALSE(snap.modified);
    EXPECT_FALSE(snap.inService);
}

TEST(DirectoryEdges, WriteBackRacedByRefetchKeepsNewData)
{
    // Owner evicts a dirty block (write-back in flight) and
    // immediately writes it again: the home re-grants exclusivity
    // and must drop the overtaken write-back, not the new data.
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 2;
    params.slcBytes = 4 * 32;  // 4 lines
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    Addr conflict = a + 4 * 32;  // same direct-mapped set

    sys.run([&](Processor &p, unsigned id) {
        if (id != 0)
            return;
        p.write32(a, 1);
        (void)p.read32(conflict);  // evicts a: write-back departs
        p.write32(a, 2);           // re-fetch races the write-back
        p.compute(5000);
    });

    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 2u);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    // Either proc 0 still owns it or the final write-back landed;
    // in both cases memory/directory agree and nothing is stuck.
    EXPECT_FALSE(snap.inService);
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryEdges, RepeatedEvictWriteCycles)
{
    // Hammer the write-back/re-fetch race many times.
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 2;
    params.slcBytes = 4 * 32;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    Addr conflict = a + 4 * 32;

    sys.run([&](Processor &p, unsigned id) {
        if (id != 0)
            return;
        for (std::uint32_t i = 1; i <= 30; ++i) {
            p.write32(a, i);
            (void)p.read32(conflict);
            std::uint32_t v = p.read32(a);
            EXPECT_EQ(v, i);
        }
    });
    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 30u);
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryEdges, PrefetchOfADirtyRemoteBlockDowngradesTheOwner)
{
    MachineParams params = makeParams(ProtocolConfig::p());
    params.numProcs = 2;
    System sys(params);
    Addr base = sys.heap().allocBlockAligned(8 * 32);

    sys.run([&](Processor &p, unsigned id) {
        if (id == 1) {
            p.write32(base + 32, 123);  // owns block base+32 dirty
            p.compute(8000);
        } else {
            p.compute(3000);
            // Demand miss on `base` prefetches base+32, which is
            // dirty at node 1: a 4-hop prefetch.
            (void)p.read32(base);
            p.compute(4000);
            // The prefetched copy must carry node 1's data.
            EXPECT_EQ(p.read32(base + 32), 123u);
        }
    });

    auto snap = sys.dir(sys.amap().home(base + 32)).inspect(base + 32);
    EXPECT_FALSE(snap.modified);  // downgraded by the prefetch
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryEdges, CwUpdateToMigratoryOwnerMergesBothWrites)
{
    // Under CW+M: node 0 holds a block migratory-exclusive (dirty),
    // node 1 writes another word of it through the write cache. The
    // home recalls the owner, merges the update, and both values
    // must survive.
    MachineParams params = makeParams(ProtocolConfig::cwm());
    params.numProcs = 4;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    Addr lock = sys.heap().allocLock();

    auto rmw = [&](Processor &p, unsigned word, std::uint32_t v) {
        p.lock(lock);
        p.write32(a + word * 4, v);
        p.unlock(lock);
    };

    sys.run([&](Processor &p, unsigned id) {
        switch (id) {
          case 0:
            rmw(p, 0, 10);
            break;
          case 1:
            p.compute(4000);
            rmw(p, 0, 20);
            break;
          case 2:
            p.compute(8000);
            rmw(p, 0, 30);  // by now the block is migratory
            p.write32(a + 4, 44);  // and this write goes via the wc
            p.releaseFence();
            break;
          default:
            break;
        }
    });

    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 30u);
    EXPECT_EQ(sys.store().read32(a + 4), 44u);
    EXPECT_TRUE(sys.quiescent());
}

TEST(DirectoryEdges, HomeNodeLocalAccessesWork)
{
    // A block homed at the accessing node: the protocol runs with
    // local (non-network) messages end to end.
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 4;
    System sys(params);
    // Page 0 of the heap is homed at node 0 (round-robin).
    Addr a = sys.heap().allocBlockAligned(32);
    ASSERT_EQ(sys.amap().home(a), 0u);

    std::uint32_t got = 0;
    sys.run([&](Processor &p, unsigned id) {
        if (id == 0) {
            p.write32(a, 5);
            got = p.read32(a);
            p.compute(2000);
        }
    });
    EXPECT_EQ(got, 5u);
    // Purely local traffic: the network saw nothing.
    EXPECT_EQ(sys.net().totalBytes(), 0u);
}

TEST(DirectoryEdges, SixtyFourNodeMachineWorks)
{
    // The presence vector is 64 bits wide: the maximum configuration
    // must work end to end.
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 64;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 9);

    std::vector<std::uint32_t> got(64, 0);
    sys.run([&](Processor &p, unsigned id) { got[id] = p.read32(a); });
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(got[i], 9u);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_EQ(snap.presence, ~0ull);
}

} // anonymous namespace
} // namespace cpx
