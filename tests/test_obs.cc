/**
 * @file
 * Tests for the protocol flight recorder (src/obs): the record ring,
 * the zero-cost disabled path, the Chrome-trace-event exporter, the
 * human-readable tail dumps, and their integration with the stall
 * diagnostics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench/runner.hh"
#include "check/watchdog.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

MachineParams
smallParams(unsigned procs = 4)
{
    MachineParams params = makeParams(ProtocolConfig::pcwm());
    params.numProcs = procs;
    return params;
}

TraceRecord
rec(Tick tick, TraceKind kind, Addr addr = 0)
{
    TraceRecord r;
    r.tick = tick;
    r.kind = kind;
    r.addr = addr;
    return r;
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TEST(TraceRing, FillsToCapacity)
{
    TraceRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 0u);
    for (Tick t = 1; t <= 3; ++t)
        ring.push(rec(t, TraceKind::MsgSend));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.total(), 3u);
    EXPECT_EQ(ring.overwritten(), 0u);

    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap.front().tick, 1u);
    EXPECT_EQ(snap.back().tick, 3u);
}

TEST(TraceRing, OverwritesOldestWhenFull)
{
    TraceRing ring(3);
    for (Tick t = 1; t <= 7; ++t)
        ring.push(rec(t, TraceKind::TxnStart, 0x100 * t));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.total(), 7u);
    EXPECT_EQ(ring.overwritten(), 4u);

    // The survivors are the newest three, oldest first.
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].tick, 5u);
    EXPECT_EQ(snap[1].tick, 6u);
    EXPECT_EQ(snap[2].tick, 7u);
}

TEST(TraceRing, ExactlyFullSnapshotsInOrder)
{
    TraceRing ring(3);
    for (Tick t = 1; t <= 3; ++t)
        ring.push(rec(t, TraceKind::MsgRecv));
    EXPECT_EQ(ring.overwritten(), 0u);
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].tick, 1u);
    EXPECT_EQ(snap[2].tick, 3u);
}

// ---------------------------------------------------------------------------
// CPX_RECORD disabled path
// ---------------------------------------------------------------------------

TEST(TraceMacro, DisabledPathEvaluatesNoArguments)
{
    TraceSink *no_sink = nullptr;
    unsigned evaluations = 0;
    auto expensive = [&evaluations]() -> Addr {
        ++evaluations;
        return 0x100;
    };
    CPX_RECORD(no_sink, 0, TraceKind::MsgSend, expensive());
    EXPECT_EQ(evaluations, 0u);
}

TEST(TraceMacro, RecordsThroughAnInstalledSink)
{
    EventQueue eq;
    TraceSink sink(2, 8);
    TraceSink *installed = &sink;
    CPX_RECORD(installed, 1, TraceKind::LockAcquire, 0x40, 0, 7);
    EXPECT_EQ(sink.recorded(), 1u);
    auto snap = sink.ring(1).snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].kind, TraceKind::LockAcquire);
    EXPECT_EQ(snap[0].addr, 0x40u);
    EXPECT_EQ(snap[0].aux, 7u);
    EXPECT_EQ(sink.ring(0).size(), 0u);
}

// ---------------------------------------------------------------------------
// Observation-only: tracing cannot change simulated behaviour
// ---------------------------------------------------------------------------

TEST(TraceSinkIntegration, TracedRunStatsAreBitIdentical)
{
    MachineParams params = smallParams();

    System plain(params);
    auto w1 = makeWorkload("migratory", 0.1);
    WorkloadRun r1 = runWorkload(plain, *w1);

    System traced(params);
    TraceSink sink(params.numProcs, 64);
    traced.setTracer(&sink);
    auto w2 = makeWorkload("migratory", 0.1);
    WorkloadRun r2 = runWorkload(traced, *w2);

    EXPECT_GT(sink.recorded(), 0u);
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_TRUE(r1.verified);
    EXPECT_TRUE(r2.verified);
    // The full stats dump covers every simulated counter.
    EXPECT_EQ(formatSystemStats(plain), formatSystemStats(traced));
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(TraceSinkIntegration, ExportsBalancedChromeTraceJson)
{
    MachineParams params = smallParams();
    System sys(params);
    TraceSink sink(params.numProcs);
    sys.setTracer(&sink);
    auto w = makeWorkload("migratory", 0.1);
    WorkloadRun run = runWorkload(sys, *w);
    ASSERT_TRUE(run.verified);

    std::string json = sink.chromeTraceJson();
    bench::JsonValue doc;
    std::string error;
    ASSERT_TRUE(bench::parseJson(json, doc, error)) << error;
    ASSERT_TRUE(doc.has("traceEvents"));
    const auto &events = doc.at("traceEvents").items;
    EXPECT_GT(events.size(), params.numProcs);  // beyond metadata

    // Transactions become async spans; begins and ends must pair up
    // per id, and a real run produces at least one span.
    std::map<std::string, long> balance;
    std::size_t begins = 0;
    for (const bench::JsonValue &ev : events) {
        const std::string &ph = ev.at("ph").text;
        if (ph == "b" || ph == "e") {
            balance[ev.at("id").text] += ph == "b" ? 1 : -1;
            begins += ph == "b";
        }
    }
    EXPECT_GT(begins, 0u);
    for (const auto &[id, b] : balance)
        EXPECT_EQ(b, 0) << "unbalanced span id " << id;

    // The file form passes the harness validator used by CI.
    const std::string path = "test_obs_trace.json";
    ASSERT_TRUE(sink.writeChromeTrace(path, error)) << error;
    EXPECT_TRUE(bench::validateTraceFile(path, error)) << error;
    std::remove(path.c_str());
}

TEST(TraceSinkIntegration, FormatTailsDescribesRecentEvents)
{
    MachineParams params = smallParams(2);
    System sys(params);
    TraceSink sink(params.numProcs, 32);
    sys.setTracer(&sink);
    auto w = makeWorkload("migratory", 0.1);
    (void)runWorkload(sys, *w);

    std::string tails = sink.formatTails(4);
    EXPECT_NE(tails.find("=== flight recorder"), std::string::npos);
    EXPECT_NE(tails.find("node 0"), std::string::npos);
    EXPECT_NE(tails.find("node 1"), std::string::npos);
    EXPECT_NE(tails.find("txn-"), std::string::npos);
    EXPECT_NE(tails.find("recorded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stall diagnostics integration
// ---------------------------------------------------------------------------

TEST(TraceDeathTest, WatchdogStallDumpsFlightRecorderTails)
{
    EXPECT_DEATH(
        {
            MachineParams params = smallParams(2);
            System sys(params);
            TraceSink sink(params.numProcs, 64);
            sys.setTracer(&sink);
            Addr lock = sys.heap().allocLock();
            Watchdog::Options opts;
            opts.interval = 10'000;
            Watchdog dog(sys, opts);
            dog.arm();
            sys.run([lock](Processor &p, unsigned id) {
                if (id == 0) {
                    p.lock(lock);
                    // exits the parallel section holding the lock
                } else {
                    p.compute(50);
                    p.lock(lock);  // never granted
                    p.unlock(lock);
                }
            });
        },
        "flight recorder");
}

TEST(TraceDeathTest, FailureHookDumpsTailsOnPanic)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            TraceSink sink(1, 8);
            sink.record(0, TraceKind::MsgSend, 64, 1,
                        traceMsgAux(0, 0));
            sink.installFailureDump();
            panic("deliberate test panic");
        },
        "msg-send");  // only the tail dump prints record kinds
}

} // anonymous namespace
} // namespace cpx
