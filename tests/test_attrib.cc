/**
 * @file
 * Tests for causal stall attribution (src/obs/attrib.hh): recording
 * neutrality (full stats-dump bit-identity with the sink installed,
 * at one and at four kernel workers), worker-count independence of
 * the aggregate, the telescoping segment-sum invariant, the exact
 * two-pointer join on synthesized records, deterministic hot-table
 * tie-breaks, the cpx-wire-1 round trip, Perfetto counter tracks in
 * the Chrome-trace exporter, sparse-input robustness of the report
 * generator, and a golden-file check of the report's attribution
 * sections against the committed sweep in tests/data/.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/report_gen.hh"
#include "bench/runner.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "obs/attrib.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

MachineParams
smallParams(unsigned procs = 4)
{
    MachineParams params = makeParams(ProtocolConfig::pcwm());
    params.numProcs = procs;
    return params;
}

unsigned
uniformHop(NodeId src, NodeId dst)
{
    return src == dst ? 0 : 1;
}

/** Run mp3d (locks + coherence traffic) with an attribution sink. */
WorkloadRun
attributedRun(unsigned sim_threads)
{
    MachineParams params = smallParams();
    System sys(params, sim_threads);
    AttribSink sink(params.numProcs);
    sys.setAttrib(&sink);
    auto w = makeWorkload("mp3d", 0.1);
    return runWorkload(sys, *w);
}

// ---------------------------------------------------------------------------
// Neutrality: attribution cannot change simulated behaviour
// ---------------------------------------------------------------------------

TEST(AttribNeutrality, FullStatsDumpBitIdentical)
{
    MachineParams params = smallParams();

    System plain(params);
    auto w1 = makeWorkload("mp3d", 0.1);
    WorkloadRun r1 = runWorkload(plain, *w1);

    System attributed(params);
    AttribSink sink(params.numProcs);
    attributed.setAttrib(&sink);
    auto w2 = makeWorkload("mp3d", 0.1);
    WorkloadRun r2 = runWorkload(attributed, *w2);

    ASSERT_TRUE(r1.verified);
    ASSERT_TRUE(r2.verified);
    EXPECT_GT(sink.recorded(), 0u);
    EXPECT_GT(r2.stats.attribution.matchedTxns, 0u);
    EXPECT_EQ(r1.execTime, r2.execTime);
    // The sink schedules no events and touches no protocol state, so
    // even the kernel telemetry lines must match — the FULL dump is
    // compared, with nothing stripped.
    EXPECT_EQ(formatSystemStats(plain), formatSystemStats(attributed));
}

TEST(AttribNeutrality, FullStatsDumpBitIdenticalUnderParallelKernel)
{
    MachineParams params = smallParams();

    System plain(params, 4);
    auto w1 = makeWorkload("mp3d", 0.1);
    WorkloadRun r1 = runWorkload(plain, *w1);

    System attributed(params, 4);
    AttribSink sink(params.numProcs);
    attributed.setAttrib(&sink);
    auto w2 = makeWorkload("mp3d", 0.1);
    WorkloadRun r2 = runWorkload(attributed, *w2);

    ASSERT_TRUE(r1.verified);
    ASSERT_TRUE(r2.verified);
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_EQ(formatSystemStats(plain), formatSystemStats(attributed));
}

// ---------------------------------------------------------------------------
// Slab safety: the aggregate is independent of --sim-threads
// ---------------------------------------------------------------------------

TEST(AttribParallel, AggregateIdenticalAcrossWorkerCounts)
{
    WorkloadRun w1 = attributedRun(1);
    WorkloadRun w4 = attributedRun(4);
    ASSERT_TRUE(w1.verified);
    ASSERT_TRUE(w4.verified);

    const AttributionResult &a = w1.stats.attribution;
    const AttributionResult &b = w4.stats.attribution;
    EXPECT_GT(a.matchedTxns, 0u);
    EXPECT_EQ(a.matchedTxns, b.matchedTxns);
    EXPECT_EQ(a.unmatchedDir, b.unmatchedDir);
    EXPECT_EQ(a.matchedLocks, b.matchedLocks);
    EXPECT_EQ(a.fanoutTotal, b.fanoutTotal);
    EXPECT_EQ(a.fanoutImprecise, b.fanoutImprecise);
    // The rendered aggregate covers every matrix cell, home row, and
    // hot-table entry, so string equality is full-struct equality.
    EXPECT_EQ(formatAttribution(a), formatAttribution(b));
}

// ---------------------------------------------------------------------------
// Segment telescoping: attributed ticks never exceed measured latency
// ---------------------------------------------------------------------------

TEST(AttribInvariants, SegmentSumNeverExceedsLatency)
{
    WorkloadRun run = attributedRun(1);
    ASSERT_TRUE(run.verified);
    const AttributionResult &ar = run.stats.attribution;
    ASSERT_TRUE(ar.enabled);

    bool any = false;
    for (unsigned c = 0; c < numAttribClasses; ++c) {
        const AttribSegments &row = ar.classes[c];
        if (!row.count)
            continue;
        any = true;
        EXPECT_LE(row.segmentSum(), row.latency)
            << attribClassName(c);
        EXPECT_GT(row.latency, 0u) << attribClassName(c);
    }
    EXPECT_TRUE(any);

    // mp3d takes locks; the home-queue share can never exceed the
    // end-to-end acquire latency, and the split must telescope.
    EXPECT_GT(ar.locks.count, 0u);
    EXPECT_LE(ar.locks.homeQueue, ar.locks.latency);
    EXPECT_EQ(ar.locks.homeQueue + ar.locks.transfer,
              ar.locks.latency);
}

// ---------------------------------------------------------------------------
// The two-pointer join, on synthesized records
// ---------------------------------------------------------------------------

AttribRecord
txnDone(NodeId node, Addr addr, unsigned kind_code, Tick issue,
        Tick delivered, Tick completed)
{
    AttribRecord r;
    r.kind = AttribRecord::Kind::TxnDone;
    r.node = static_cast<std::uint16_t>(node);
    r.aux = kind_code;
    r.addr = addr;
    r.t0 = issue;
    r.t1 = delivered;
    r.t2 = completed;
    return r;
}

AttribRecord
dirDone(NodeId home, Addr addr, NodeId requester, unsigned cls,
        Tick enq, Tick deq, Tick acted, Tick fanout_sent,
        Tick last_resp, Tick done, std::uint8_t flags = 0)
{
    AttribRecord r;
    r.kind = AttribRecord::Kind::DirDone;
    r.flags = flags;
    r.node = static_cast<std::uint16_t>(home);
    r.aux = requester | (cls << 16);
    r.addr = addr;
    r.t0 = enq;
    r.t1 = deq;
    r.t2 = acted;
    r.t3 = fanout_sent;
    r.t4 = last_resp;
    r.t5 = done;
    return r;
}

TEST(AttribJoin, TelescopesOneReadExactly)
{
    AttribSink sink(2);
    sink.record(0, dirDone(0, 0x100, 1, 0 /* Read */, 10, 12, 14, 0,
                           0, 20));
    sink.record(1, txnDone(1, 0x100, 0 /* Read */, 5, 25, 30));

    AttributionResult ar = aggregateAttribution(
        sink, [](NodeId s, NodeId d) { return s == d ? 0u : 3u; });

    EXPECT_EQ(ar.matchedTxns, 1u);
    EXPECT_EQ(ar.unmatchedDir, 0u);
    const AttribSegments &row =
        ar.classes[static_cast<unsigned>(AttribClass::Read)];
    EXPECT_EQ(row.count, 1u);
    EXPECT_EQ(row.latency, 25u);     // 30 - 5
    EXPECT_EQ(row.request, 5u);      // 10 - 5
    EXPECT_EQ(row.dirQueue, 2u);     // 12 - 10
    EXPECT_EQ(row.dirService, 2u);   // 14 - 12
    EXPECT_EQ(row.ownerFetch, 0u);
    EXPECT_EQ(row.invalFanout, 0u);
    EXPECT_EQ(row.ackCollect, 0u);
    EXPECT_EQ(row.dataReturn, 5u);   // 25 - 20
    EXPECT_EQ(row.fill, 5u);         // 30 - 25
    EXPECT_EQ(row.dataHops, 3u);
    EXPECT_LE(row.segmentSum(), row.latency);

    ASSERT_EQ(ar.homes.size(), 1u);
    EXPECT_EQ(ar.homes[0].node, 0u);
    EXPECT_EQ(ar.homes[0].dirRequests, 1u);
    EXPECT_EQ(ar.homes[0].dirWaitTotal, 2u);
}

TEST(AttribJoin, FanOutSegmentsAndPrecisionCounters)
{
    AttribSink sink(2);
    sink.record(0, dirDone(0, 0x200, 1, 2 /* WriteMiss */, 10, 11,
                           13, 14, 18, 19,
                           AttribRecord::flagImprecise));
    sink.record(1, txnDone(1, 0x200, 2 /* WriteMiss */, 5, 22, 24));

    AttributionResult ar =
        aggregateAttribution(sink, uniformHop);

    const AttribSegments &row =
        ar.classes[static_cast<unsigned>(AttribClass::WriteMiss)];
    EXPECT_EQ(row.count, 1u);
    EXPECT_EQ(row.invalFanout, 4u);  // 18 - 14: max-over-sharers RTT
    EXPECT_EQ(row.ackCollect, 1u);   // 19 - 18
    EXPECT_EQ(row.ownerFetch, 0u);
    EXPECT_EQ(ar.fanoutTotal, 1u);
    EXPECT_EQ(ar.fanoutImprecise, 1u);
}

TEST(AttribJoin, WriteBackAggregatesHomeOnly)
{
    AttribSink sink(1);
    sink.record(0, dirDone(0, 0x300, 0, 5 /* WriteBack */, 100, 104,
                           106, 0, 0, 110));

    AttributionResult ar =
        aggregateAttribution(sink, uniformHop);

    EXPECT_EQ(ar.matchedTxns, 0u);
    EXPECT_EQ(ar.unmatchedDir, 0u);  // write-backs are not "unmatched"
    const AttribSegments &row =
        ar.classes[static_cast<unsigned>(AttribClass::WriteBack)];
    EXPECT_EQ(row.count, 1u);
    EXPECT_EQ(row.latency, 10u);
    EXPECT_EQ(row.dirQueue, 4u);
    EXPECT_EQ(row.dirService, 2u);
}

TEST(AttribJoin, TruncatedRunCountsUnmatched)
{
    AttribSink sink(2);
    // A home record whose transaction never completed (run hit
    // --limit): no requester-side record exists.
    sink.record(0, dirDone(0, 0x400, 1, 0, 10, 12, 14, 0, 0, 20));

    AttributionResult ar =
        aggregateAttribution(sink, uniformHop);
    EXPECT_EQ(ar.matchedTxns, 0u);
    EXPECT_EQ(ar.unmatchedDir, 1u);
}

// ---------------------------------------------------------------------------
// Lock split and deterministic hot-table tie-breaks
// ---------------------------------------------------------------------------

AttribRecord
lockGrant(NodeId home, Addr addr, NodeId grantee, Tick arrived,
          Tick sent)
{
    AttribRecord r;
    r.kind = AttribRecord::Kind::LockGrant;
    r.node = static_cast<std::uint16_t>(home);
    r.aux = grantee;
    r.addr = addr;
    r.t0 = arrived;
    r.t1 = sent;
    return r;
}

AttribRecord
lockDone(NodeId node, Addr addr, Tick issue, Tick granted)
{
    AttribRecord r;
    r.kind = AttribRecord::Kind::LockDone;
    r.node = static_cast<std::uint16_t>(node);
    r.addr = addr;
    r.t0 = issue;
    r.t1 = granted;
    return r;
}

TEST(AttribLocks, SplitsHomeQueueFromTransferAndBreaksTiesByAddr)
{
    AttribSink sink(2);
    // Lock 0x100: one acquire, 100 ticks queued at the home.
    sink.record(0, lockGrant(0, 0x100, 1, 10, 110));
    sink.record(1, lockDone(1, 0x100, 0, 150));
    // Lock 0x200: two acquires, 50 ticks queued each — the same
    // 100-tick total as 0x100, so the tie must break on address.
    sink.record(0, lockGrant(0, 0x200, 1, 200, 250));
    sink.record(0, lockGrant(0, 0x200, 1, 300, 350));
    sink.record(1, lockDone(1, 0x200, 190, 260));
    sink.record(1, lockDone(1, 0x200, 290, 360));

    AttributionResult ar =
        aggregateAttribution(sink, uniformHop);

    EXPECT_EQ(ar.matchedLocks, 3u);
    EXPECT_EQ(ar.locks.count, 3u);
    EXPECT_EQ(ar.locks.latency, 290u);    // 150 + 70 + 70
    EXPECT_EQ(ar.locks.homeQueue, 200u);  // 100 + 50 + 50
    EXPECT_EQ(ar.locks.transfer, 90u);

    ASSERT_EQ(ar.hotLocks.size(), 2u);
    EXPECT_EQ(ar.hotLocks[0].addr, 0x100u);  // tie -> lower address
    EXPECT_EQ(ar.hotLocks[0].count, 1u);
    EXPECT_EQ(ar.hotLocks[0].totalWait, 100u);
    EXPECT_EQ(ar.hotLocks[1].addr, 0x200u);
    EXPECT_EQ(ar.hotLocks[1].count, 2u);
    EXPECT_EQ(ar.hotLocks[1].totalWait, 100u);
}

// ---------------------------------------------------------------------------
// cpx-wire-1 round trip
// ---------------------------------------------------------------------------

TEST(AttribWire, RoundTripsThroughWireFormat)
{
    // A real aggregate with every table populated.
    AttribSink sink(2);
    sink.record(0, dirDone(0, 0x100, 1, 0, 10, 12, 14, 0, 0, 20));
    sink.record(1, txnDone(1, 0x100, 0, 5, 25, 30));
    sink.record(0, lockGrant(0, 0x500, 1, 10, 110));
    sink.record(1, lockDone(1, 0x500, 0, 150));

    bench::SweepResult res;
    res.status = bench::PointStatus::Ok;
    res.run.verified = true;
    res.run.execTime = 1234;
    res.run.stats.attribution =
        aggregateAttribution(sink, uniformHop);

    std::string line = bench::serializeWireResult(res);
    bench::SweepResult parsed;
    std::string error;
    ASSERT_TRUE(bench::parseWireResult(line, parsed, error)) << error;

    const AttributionResult &a = res.run.stats.attribution;
    const AttributionResult &b = parsed.run.stats.attribution;
    ASSERT_TRUE(b.enabled);
    EXPECT_EQ(a.matchedTxns, b.matchedTxns);
    EXPECT_EQ(a.unmatchedDir, b.unmatchedDir);
    EXPECT_EQ(a.matchedLocks, b.matchedLocks);
    EXPECT_EQ(a.unmatchedLocks, b.unmatchedLocks);
    EXPECT_EQ(a.fanoutTotal, b.fanoutTotal);
    EXPECT_EQ(a.fanoutImprecise, b.fanoutImprecise);
    ASSERT_EQ(a.homes.size(), b.homes.size());
    for (std::size_t i = 0; i < a.homes.size(); ++i) {
        EXPECT_EQ(a.homes[i].node, b.homes[i].node);
        EXPECT_EQ(a.homes[i].dirRequests, b.homes[i].dirRequests);
        EXPECT_EQ(a.homes[i].dirWaitTotal, b.homes[i].dirWaitTotal);
        EXPECT_EQ(a.homes[i].dirWaitP99, b.homes[i].dirWaitP99);
        EXPECT_EQ(a.homes[i].lockGrants, b.homes[i].lockGrants);
        EXPECT_EQ(a.homes[i].lockWaitTotal, b.homes[i].lockWaitTotal);
        EXPECT_EQ(a.homes[i].lockWaitP99, b.homes[i].lockWaitP99);
    }
    // The rendered form covers the matrix and both hot tables
    // (doubles included, via the %.17g wire encoding).
    EXPECT_EQ(formatAttribution(a), formatAttribution(b));
}

TEST(AttribWire, AbsentBlockParsesAsDisabled)
{
    bench::SweepResult res;
    res.status = bench::PointStatus::Ok;
    res.run.verified = true;
    ASSERT_FALSE(res.run.stats.attribution.enabled);

    std::string line = bench::serializeWireResult(res);
    EXPECT_EQ(line.find("attribution"), std::string::npos);
    bench::SweepResult parsed;
    std::string error;
    ASSERT_TRUE(bench::parseWireResult(line, parsed, error)) << error;
    EXPECT_FALSE(parsed.run.stats.attribution.enabled);
}

// ---------------------------------------------------------------------------
// Perfetto counter tracks in the Chrome-trace exporter
// ---------------------------------------------------------------------------

TEST(AttribCounterTracks, ExporterEmitsValidCounterEvents)
{
    EventQueue eq;  // installs the tick source record() stamps with
    TraceSink sink(1, 8);
    TraceSink *installed = &sink;
    CPX_RECORD(installed, 0, TraceKind::MsgSend, 0x40, 1, 0);

    MetricTimeSeries series;
    series.interval = 100;
    series.names = {"net.bytes", "node0.busy"};
    series.ticks = {100, 200};
    series.deltas = {5, 9, 7, 11};  // row-major, 2 rows x 2 cols

    std::string json = sink.chromeTraceJson(&series);
    bench::JsonValue doc;
    std::string error;
    ASSERT_TRUE(bench::parseJson(json, doc, error)) << error;
    std::size_t counters = 0;
    for (const bench::JsonValue &ev : doc.at("traceEvents").items) {
        if (ev.at("ph").text != "C")
            continue;
        ++counters;
        EXPECT_TRUE(ev.has("args"));
        EXPECT_TRUE(ev.at("args").has("value"));
    }
    EXPECT_EQ(counters, 4u);

    const std::string path = "test_attrib_trace.json";
    ASSERT_TRUE(sink.writeChromeTrace(path, error, &series)) << error;
    EXPECT_TRUE(bench::validateTraceFile(path, error)) << error;
    std::remove(path.c_str());
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << content;
}

TEST(AttribCounterTracks, ValidatorRejectsMalformedCounters)
{
    const std::string path = "test_attrib_bad_trace.json";
    std::string error;

    // Counter without a numeric args.value.
    writeFile(path,
              "{\"traceEvents\":["
              "{\"ph\":\"C\",\"pid\":0,\"ts\":10,\"name\":\"m\"}"
              "]}");
    EXPECT_FALSE(bench::validateTraceFile(path, error));
    EXPECT_NE(error.find("args.value"), std::string::npos) << error;

    // Counter track going backwards in time.
    writeFile(path,
              "{\"traceEvents\":["
              "{\"ph\":\"C\",\"pid\":0,\"ts\":200,\"name\":\"m\","
              "\"args\":{\"value\":1}},"
              "{\"ph\":\"C\",\"pid\":0,\"ts\":100,\"name\":\"m\","
              "\"args\":{\"value\":2}}"
              "]}");
    EXPECT_FALSE(bench::validateTraceFile(path, error));
    EXPECT_NE(error.find("backwards"), std::string::npos) << error;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Report generator: sparse inputs and the attribution sections
// ---------------------------------------------------------------------------

std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << "cannot open " << path;
    return std::string(std::istreambuf_iterator<char>(file),
                       std::istreambuf_iterator<char>());
}

TEST(AttribReport, SparseInputsRenderNoDataNotes)
{
    bench::ReportOptions opts;
    std::string report, error;

    // Zero points: well-formed report, not a failure.
    bench::JsonValue doc;
    ASSERT_TRUE(bench::parseJson(
        "{\"schema\": \"cpx-sweep-1\", \"points\": []}", doc, error))
        << error;
    ASSERT_TRUE(bench::generateReport(doc, opts, report, error))
        << error;
    EXPECT_NE(report.find("no usable sweep points"),
              std::string::npos);
    EXPECT_NE(report.find("Where the cycles went"),
              std::string::npos);
    EXPECT_NE(report.find("no data"), std::string::npos);

    // Every point failed: same degradation. (parseJson appends into
    // its output value, so each parse gets a fresh document.)
    bench::JsonValue failed_doc;
    ASSERT_TRUE(bench::parseJson(
        "{\"schema\": \"cpx-sweep-1\", \"points\": [{\"tag\": \"t\","
        " \"app\": \"mp3d\", \"status\": \"crash\","
        " \"error\": \"boom\", \"verified\": false}]}",
        failed_doc, error))
        << error;
    ASSERT_TRUE(bench::generateReport(failed_doc, opts, report,
                                      error))
        << error;
    EXPECT_NE(report.find("skipped: 1 failed point"),
              std::string::npos);

    // Only a missing schema marker is a hard failure.
    bench::JsonValue bare_doc;
    ASSERT_TRUE(bench::parseJson("{\"points\": []}", bare_doc, error))
        << error;
    EXPECT_FALSE(bench::generateReport(bare_doc, opts, report,
                                       error));
}

TEST(AttribReport, GoldenAttributionSections)
{
    std::string json = readFile(std::string(CPX_TEST_DATA_DIR) +
                                "/attrib_sweep.json");
    bench::JsonValue doc;
    std::string error;
    ASSERT_TRUE(bench::parseJson(json, doc, error)) << error;

    std::string report;
    ASSERT_TRUE(bench::generateReport(doc, bench::ReportOptions{},
                                      report, error))
        << error;
    EXPECT_EQ(report, readFile(std::string(CPX_TEST_DATA_DIR) +
                               "/attrib_sweep_report.md"));
}

TEST(AttribReport, AttribSweepValidatesAsResultsFile)
{
    std::string error;
    EXPECT_TRUE(bench::validateResultsFile(
        std::string(CPX_TEST_DATA_DIR) + "/attrib_sweep.json", error))
        << error;
}

} // anonymous namespace
} // namespace cpx
