/**
 * @file
 * Tests for statistics collection, report formatting, the stats
 * dump, and the logging switchboard.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/report.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

WorkloadRun
smallRun(System &sys)
{
    auto w = makeWorkload("migratory", 0.2);
    return runWorkload(sys, *w);
}

TEST(Report, CollectStatsAggregatesPerProcessorTimes)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 4;
    System sys(params);
    WorkloadRun run = smallRun(sys);

    const RunResult &r = run.stats;
    EXPECT_EQ(r.protocol, "BASIC");
    EXPECT_EQ(r.consistency, "RC");
    EXPECT_GT(r.sharedAccesses, 0u);
    EXPECT_GT(r.busy, 0.0);

    // The average breakdown must equal the mean of the processors'.
    double busy_sum = 0;
    for (NodeId i = 0; i < params.numProcs; ++i)
        busy_sum += static_cast<double>(sys.processor(i).times().busy);
    EXPECT_NEAR(r.busy, busy_sum / params.numProcs, 1.0);
}

TEST(Report, MissRatesAreConsistentWithCounts)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 4;
    System sys(params);
    WorkloadRun run = smallRun(sys);
    const RunResult &r = run.stats;
    EXPECT_NEAR(r.coldMissRate(),
                100.0 * r.coldReadMisses / r.sharedAccesses, 1e-9);
    EXPECT_NEAR(r.cohMissRate(),
                100.0 * r.cohReadMisses / r.sharedAccesses, 1e-9);
}

TEST(Report, StatsDumpContainsEveryComponent)
{
    MachineParams params = makeParams(ProtocolConfig::pcwm());
    params.numProcs = 2;
    System sys(params);
    smallRun(sys);

    std::string dump = formatSystemStats(sys);
    for (const char *key :
         {"system.protocol P+CW+M", "system.numProcs 2",
          "network.bytes", "network.bytes.sync", "proc0.busy",
          "proc1.readStall", "node0.flc.readHits",
          "node1.slc.readMissCold", "node0.writeCache.combinedWrites",
          "node1.dir.ownershipRequests", "node0.locks.acquires",
          "node1.bus.busyTicks", "node0.prefetch.issued"}) {
        EXPECT_NE(dump.find(key), std::string::npos)
            << "missing '" << key << "'";
    }
}

TEST(Report, PrintersDoNotCrash)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 2;
    System sys(params);
    WorkloadRun run = smallRun(sys);
    std::vector<RunResult> results{run.stats, run.stats};
    printRelativeExecutionTimes("test", results, results[0]);
    printRelativeTraffic("test", results, results[0]);
}

TEST(Report, StatGroupRendersCountersAndAccumulators)
{
    Counter c;
    c += 7;
    Accumulator a;
    a.sample(2.0);
    a.sample(4.0);
    StatGroup group("g");
    group.addCounter("events", &c);
    group.addAccumulator("latency", &a);
    std::string out;
    group.dump(out);
    EXPECT_NE(out.find("g.events 7"), std::string::npos);
    EXPECT_NE(out.find("g.latency count=2 mean=3.0000"),
              std::string::npos);
}

TEST(Logging, TagSwitchboard)
{
    Logger::disableAll();
    EXPECT_FALSE(Logger::enabled("SLC"));
    Logger::enable("SLC");
    EXPECT_TRUE(Logger::enabled("SLC"));
    EXPECT_FALSE(Logger::enabled("Dir"));
    Logger::enableAll();
    EXPECT_TRUE(Logger::enabled("Dir"));
    Logger::disableAll();
    EXPECT_FALSE(Logger::enabled("SLC"));
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, FatalExitsCleanly)
{
    EXPECT_EXIT(fatal("config error %s", "xyz"),
                ::testing::ExitedWithCode(1), "config error xyz");
}

} // anonymous namespace
} // namespace cpx
