/**
 * @file
 * Regression tests for protocol races found during bring-up. Each
 * test pins one failure mode with a deterministic scenario:
 *
 *  1. store-to-load forwarding from the FLWB (a processor must see
 *     its own buffered writes);
 *  2. the release fence draining the FLWB before the SLWB (a write
 *     still in the FLWB must not escape a release);
 *  3. pending-write survival across an invalidated SHARED line when
 *     a merged write's upgrade is reissued as a write miss;
 *  4. FLC inclusion with write-cache-served reads (an FLC copy
 *     without an SLC line must never form);
 *  5. write-cache absorption into a migratory-exclusive line under
 *     CW+M (concurrent writers to one block under different locks).
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/system.hh"
#include "workloads/barrier.hh"

namespace cpx
{
namespace
{

MachineParams
machine(ProtocolConfig proto)
{
    MachineParams params = makeParams(proto);
    params.numProcs = 8;
    return params;
}

TEST(Races, ProcessorSeesItsOwnBufferedWrites)
{
    // Under RC a write sits in the FLWB for a while; an immediately
    // following read of the same word must return the new value.
    System sys(machine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(32);
    std::vector<std::uint32_t> seen;
    sys.run([&](Processor &p, unsigned id) {
        if (id != 0)
            return;
        for (std::uint32_t i = 1; i <= 32; ++i) {
            p.write32(a, i);
            seen.push_back(p.read32(a));  // no time for the drain
        }
    });
    for (std::uint32_t i = 1; i <= 32; ++i)
        EXPECT_EQ(seen[i - 1], i);
}

TEST(Races, ReleaseDrainsTheFlwbFirst)
{
    // The lost-update shape: increment under a lock with the write
    // still in the FLWB at unlock time. Every increment must
    // survive, under every protocol.
    for (const ProtocolConfig &proto : figure2Protocols()) {
        System sys(machine(proto));
        Addr lock = sys.heap().allocLock();
        Addr a = sys.heap().allocIsolated(wordBytes);
        sys.store().write32(a, 0);
        sys.run([&](Processor &p, unsigned) {
            for (int i = 0; i < 20; ++i) {
                p.lock(lock);
                p.write32(a, p.read32(a) + 1);
                p.unlock(lock);  // immediately after the write
            }
        });
        sys.flushFunctionalState();
        EXPECT_EQ(sys.store().read32(a), 160u) << proto.name();
    }
}

TEST(Races, MergedWriteSurvivesInvalidationOfItsReadTxn)
{
    // Processor 0's write merges into its own outstanding read;
    // processor 1 races ownership of the same block. Both writes
    // must land.
    for (int attempt = 0; attempt < 8; ++attempt) {
        System sys(machine(ProtocolConfig::basic()));
        Addr a = sys.heap().allocBlockAligned(32);
        sys.run([&](Processor &p, unsigned id) {
            if (id == 0) {
                // Read then immediately write word 0: the write
                // merges with the outstanding read transaction.
                p.write32(a, 100);
            } else if (id == 1) {
                p.compute(static_cast<Tick>(10 + attempt * 17));
                p.write32(a + 4, 200);
            }
        });
        sys.flushFunctionalState();
        EXPECT_EQ(sys.store().read32(a), 100u) << attempt;
        EXPECT_EQ(sys.store().read32(a + 4), 200u) << attempt;
    }
}

TEST(Races, FlcNeverOutlivesTheSlcLine)
{
    // Hammer one block from all 8 processors under every protocol
    // and verify the per-word sums: any FLC-inclusion hole shows up
    // as a lost or duplicated increment.
    for (const ProtocolConfig &proto : figure2Protocols()) {
        System sys(machine(proto));
        Addr base = sys.heap().allocBlockAligned(32);
        std::vector<Addr> locks(8);
        for (unsigned w = 0; w < 8; ++w) {
            locks[w] = sys.heap().allocLock();
            sys.store().write32(base + w * 4, 0);
        }
        const unsigned iters = 24;
        sys.run([&](Processor &p, unsigned id) {
            for (unsigned i = 0; i < iters; ++i) {
                unsigned w = (id + i) % 8;
                p.lock(locks[w]);
                p.write32(base + w * 4,
                          p.read32(base + w * 4) + 1);
                p.unlock(locks[w]);
                p.compute(7);
            }
        });
        sys.flushFunctionalState();
        std::uint64_t total = 0;
        for (unsigned w = 0; w < 8; ++w)
            total += sys.store().read32(base + w * 4);
        EXPECT_EQ(total, 8u * iters) << proto.name();
    }
}

TEST(Races, WriteCacheAbsorbedByMigratoryExclusiveLine)
{
    // The water-shaped CW+M failure: items of three doubles span
    // block boundaries, per-item locks, concurrent writers in one
    // block. Integer-valued doubles make verification exact.
    System sys(machine(ProtocolConfig::cwm()));
    const unsigned n = 16, steps = 3;
    SimBarrier barrier;
    barrier.init(sys, 8);
    Addr force = sys.heap().allocBlockAligned(n * 3 * 8);
    std::vector<Addr> locks(n);
    for (unsigned i = 0; i < n; ++i)
        locks[i] = sys.heap().allocLock();
    for (unsigned i = 0; i < n * 3; ++i)
        sys.store().writeDouble(force + i * 8, 0.0);

    std::vector<double> host(n * 3, 0.0);
    for (unsigned s = 0; s < steps; ++s)
        for (unsigned i = 0; i < n; ++i)
            for (unsigned j = i + 1; j < n; ++j)
                for (unsigned d = 0; d < 3; ++d) {
                    host[i * 3 + d] += 1.0;
                    host[j * 3 + d] -= 1.0;
                }

    sys.run([&](Processor &p, unsigned id) {
        for (unsigned s = 0; s < steps; ++s) {
            for (unsigned i = id; i < n; i += 8) {
                for (unsigned d = 0; d < 3; ++d)
                    (void)p.readDouble(force + (i * 3 + d) * 8);
            }
            barrier.wait(p, id);
            for (unsigned i = id; i < n; i += 8) {
                for (unsigned j = i + 1; j < n; ++j) {
                    p.lock(locks[i]);
                    for (unsigned d = 0; d < 3; ++d) {
                        Addr w = force + (i * 3 + d) * 8;
                        p.writeDouble(w, p.readDouble(w) + 1.0);
                    }
                    p.unlock(locks[i]);
                    p.lock(locks[j]);
                    for (unsigned d = 0; d < 3; ++d) {
                        Addr w = force + (j * 3 + d) * 8;
                        p.writeDouble(w, p.readDouble(w) - 1.0);
                    }
                    p.unlock(locks[j]);
                }
            }
            barrier.wait(p, id);
        }
    });
    sys.flushFunctionalState();
    for (unsigned i = 0; i < n * 3; ++i)
        EXPECT_EQ(sys.store().readDouble(force + i * 8), host[i])
            << "word " << i;
}

TEST(Races, BarrierSenseFlipPropagatesUnderCw)
{
    // The CW deadlock shape: without release semantics on the sense
    // write, spinners never observe the flip. A bounded-time run
    // through many barriers proves liveness.
    System sys(machine(ProtocolConfig::cw()));
    SimBarrier barrier;
    barrier.init(sys, 8);
    std::vector<unsigned> reached(8, 0);
    Tick t = sys.run(
        [&](Processor &p, unsigned id) {
            for (unsigned i = 0; i < 50; ++i) {
                p.compute(10 + id);
                barrier.wait(p, id);
                reached[id] = i + 1;
            }
        },
        /*limit=*/50'000'000);
    EXPECT_GT(t, 0u);
    for (unsigned id = 0; id < 8; ++id)
        EXPECT_EQ(reached[id], 50u);
}

} // anonymous namespace
} // namespace cpx
