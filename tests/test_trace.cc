/**
 * @file
 * Tests for the trace-replay workload and its parser, plus the FFT
 * extension workload.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "workloads/trace.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

TEST(TraceParser, ParsesEveryEventKind)
{
    auto events = parseTrace("# a comment\n"
                             "0 r 10\n"
                             "1 w 20 99\n"
                             "0 c 50\n"
                             "1 l 2\n"
                             "1 u 2\n"
                             "0 b\n"
                             "\n");
    ASSERT_EQ(events.size(), 6u);
    EXPECT_EQ(events[0].first, 0u);
    EXPECT_EQ(events[0].second.kind, TraceEvent::Kind::Read);
    EXPECT_EQ(events[0].second.addr, 0x10u);
    EXPECT_EQ(events[1].second.kind, TraceEvent::Kind::Write);
    EXPECT_EQ(events[1].second.addr, 0x20u);
    EXPECT_EQ(events[1].second.value, 99u);
    EXPECT_EQ(events[2].second.cycles, 50u);
    EXPECT_EQ(events[3].second.lockIndex, 2u);
    EXPECT_EQ(events[5].second.kind, TraceEvent::Kind::Barrier);
}

TEST(TraceParserDeath, RejectsMalformedLines)
{
    EXPECT_EXIT((void)parseTrace("0 r\n"),
                ::testing::ExitedWithCode(1), "address");
    EXPECT_EXIT((void)parseTrace("0 x 10\n"),
                ::testing::ExitedWithCode(1), "unknown operation");
    EXPECT_EXIT((void)parseTrace("zebra r 10\n"),
                ::testing::ExitedWithCode(1), "processor id");
}

TEST(TraceReplay, SingleWriterValuesLand)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 4;
    System sys(params);
    TraceWorkload trace("0 w 0 11\n"
                        "1 w 40 22\n"
                        "0 c 100\n"
                        "0 w 0 33\n"
                        "0 b\n1 b\n2 b\n3 b\n",
                        256);
    WorkloadRun run = runWorkload(sys, trace);
    EXPECT_TRUE(run.verified);
    EXPECT_EQ(sys.store().read32(trace.regionBase() + 0x00), 33u);
    EXPECT_EQ(sys.store().read32(trace.regionBase() + 0x40), 22u);
}

TEST(TraceReplay, LockProtectedSharingAcrossProtocols)
{
    // Two processors ping-ponging a counter under a lock, expressed
    // as a trace. The final value must be exact in every protocol.
    std::string text;
    for (int i = 0; i < 10; ++i) {
        // The replay engine preserves per-processor program order;
        // the lock serializes the read-modify-write... but a trace
        // cannot express data-dependent values, so each processor
        // writes a distinct word and the single-writer check
        // verifies delivery.
        text += "0 l 0\n0 w 0 " + std::to_string(i) + "\n0 u 0\n";
        text += "1 l 0\n1 w 40 " + std::to_string(100 + i) +
                "\n1 u 0\n";
    }
    text += "0 b\n1 b\n2 b\n3 b\n4 b\n5 b\n6 b\n7 b\n";
    for (const ProtocolConfig &proto :
         {ProtocolConfig::basic(), ProtocolConfig::pcw(),
          ProtocolConfig::pcwm()}) {
        MachineParams params = makeParams(proto);
        params.numProcs = 8;
        System sys(params);
        TraceWorkload trace(text, 256);
        WorkloadRun run = runWorkload(sys, trace);
        EXPECT_TRUE(run.verified) << proto.name();
        EXPECT_TRUE(sys.quiescent()) << proto.name();
    }
}

TEST(TraceReplayDeath, RejectsOutOfRegionAccess)
{
    EXPECT_EXIT(TraceWorkload("0 r 1000\n", 256),
                ::testing::ExitedWithCode(1), "beyond");
}

class FftAllProtocols
    : public ::testing::TestWithParam<ProtocolConfig>
{
};

TEST_P(FftAllProtocols, TransformsCorrectly)
{
    MachineParams params = makeParams(GetParam());
    params.numProcs = 8;
    System sys(params);
    auto w = makeWorkload("fft", 0.5);  // 256 points
    WorkloadRun run = runWorkload(sys, *w);
    EXPECT_TRUE(run.verified) << GetParam().name();
    EXPECT_TRUE(sys.quiescent());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, FftAllProtocols,
    ::testing::Values(ProtocolConfig::basic(), ProtocolConfig::p(),
                      ProtocolConfig::pcw(), ProtocolConfig::pm(),
                      ProtocolConfig::pcwm()),
    [](const ::testing::TestParamInfo<ProtocolConfig> &info) {
        std::string n = info.param.name();
        for (char &c : n)
            if (c == '+')
                c = '_';
        return n;
    });

TEST(Fft, StridedPhasesThrottleThePrefetcher)
{
    // FFT's large-stride butterflies defeat sequential prefetching;
    // the adaptive controller must not stay at a high degree with a
    // low useful fraction. Sanity: useful/issued under FFT is worse
    // than under the sequential-scan-dominated LU.
    auto usefulness = [](const char *app) {
        MachineParams params = makeParams(ProtocolConfig::p());
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload(app, 0.5);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified);
        return run.stats.prefetchesIssued
                   ? static_cast<double>(run.stats.prefetchesUseful) /
                         run.stats.prefetchesIssued
                   : 0.0;
    };
    EXPECT_LT(usefulness("fft"), usefulness("lu"));
}

} // anonymous namespace
} // namespace cpx
