/**
 * @file
 * Parallel DES kernel tests (DESIGN.md §15): the simulated statistics
 * must be bit-identical at every --sim-threads value, for every
 * network model and under adversarial (chaos) schedules, and the
 * backing store's slab write overlays must implement exactly the
 * canonical race semantics the determinism argument relies on.
 *
 * The cross-thread comparisons hash the entire formatSystemStats()
 * dump — every per-node counter, histogram bucket, resource and
 * network statistic — so any divergence anywhere in the machine
 * fails the test, not just the headline numbers.
 *
 * Registered with the ctest label "threads" so the ThreadSanitizer
 * CI lane can run exactly this suite: ctest -L threads.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/checker.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "mem/backing_store.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

/** Run one workload and return the full gem5-style stats dump. */
std::string
runDump(MachineParams params, const std::string &app, double scale,
        std::uint64_t seed, unsigned sim_threads)
{
    System sys(params, sim_threads);
    auto w = makeWorkload(app, scale, seed);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/500'000'000);
    EXPECT_TRUE(run.verified)
        << app << " seed " << seed << " sim_threads " << sim_threads;
    return formatSystemStats(sys);
}

// --- bit-identity across worker counts ---------------------------------

TEST(ParallelKernel, RandomizedSchedulesMatchSequentialReference)
{
    // Slab-boundary tie-break determinism: the stress workload's
    // seeded random access pattern lands events on both sides of
    // slab boundaries differently for every seed; each schedule must
    // still reproduce the sequential reference exactly. W=3 leaves
    // the 8 nodes unevenly partitioned on purpose.
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 8;
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        std::string reference =
            runDump(params, "stress", 0.25, seed, 1);
        EXPECT_EQ(reference, runDump(params, "stress", 0.25, seed, 3))
            << "seed " << seed;
    }
}

TEST(ParallelKernel, MailboxOrderingUnderChaosNetwork)
{
    // The chaos decorator jitters and reorders deliveries from one
    // RNG whose draw order is part of the simulated semantics. The
    // barrier drains mailboxes in canonical (send tick, source,
    // sequence) order, so the RNG history — and with it every
    // delivery time — must not depend on the worker count.
    MachineParams params = makeParams(ProtocolConfig::pcwm());
    params.numProcs = 8;
    params.chaos.enabled = true;
    params.chaos.maxJitter = 96;
    params.chaos.seed = 3;
    EXPECT_EQ(runDump(params, "migratory", 0.25, 1, 1),
              runDump(params, "migratory", 0.25, 1, 4));
}

TEST(ParallelKernel, MeshSmallLookaheadMatchesSequential)
{
    // The mesh's minimum cross-node latency (= lookahead) is only a
    // few ticks, so slabs are short and nearly every protocol
    // message crosses a barrier — the stress case for mailbox
    // ordering and slab-boundary handling.
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 16;
    params.networkKind = NetworkKind::Mesh;
    EXPECT_EQ(runDump(params, "false_sharing", 0.25, 1, 1),
              runDump(params, "false_sharing", 0.25, 1, 4));
}

TEST(ParallelKernel, TwoRunIdentityAtFourThreads)
{
    // Same configuration, same thread count, two fresh systems: the
    // parallel kernel must also be deterministic against itself, not
    // just against the sequential reference.
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 8;
    EXPECT_EQ(runDump(params, "producer_consumer", 0.25, 1, 4),
              runDump(params, "producer_consumer", 0.25, 1, 4));
}

// --- argument validation and clamping ----------------------------------

TEST(ParallelKernel, RejectsZeroAndOversizedSimThreads)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    EXPECT_EXIT(System sys(params, 0),
                ::testing::ExitedWithCode(1), "sim-threads");
    EXPECT_EXIT(System sys(params, 65),
                ::testing::ExitedWithCode(1), "sim-threads");
}

TEST(ParallelKernel, WorkersClampToNodeCount)
{
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 4;
    System sys(params, 16);
    auto w = makeWorkload("readonly", 0.25);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/500'000'000);
    EXPECT_TRUE(run.verified);
    EXPECT_EQ(sys.kernelTelemetry().simThreads, 4u);
}

TEST(ParallelKernel, TelemetryPopulatedAfterRun)
{
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 8;
    System sys(params, 2);
    auto w = makeWorkload("migratory", 0.25);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/500'000'000);
    EXPECT_TRUE(run.verified);
    const SlabTelemetry &t = sys.kernelTelemetry();
    EXPECT_GT(t.slabRounds, 0u);
    EXPECT_GT(t.crossMessages, 0u);
    EXPECT_GT(t.lookahead, 0u);
    EXPECT_EQ(t.simThreads, 2u);
}

TEST(ParallelKernel, ObserverForcesSequentialExecution)
{
    // The coherence checker keeps cross-node order-dependent state;
    // the system must silently fall back to one worker rather than
    // race through it.
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 8;
    System sys(params, 4);
    CoherenceChecker::Options copts;
    copts.failFast = true;
    CoherenceChecker checker(sys, copts);
    auto w = makeWorkload("migratory", 0.25);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/500'000'000);
    EXPECT_TRUE(run.verified);
    EXPECT_EQ(sys.kernelTelemetry().simThreads, 1u);
    checker.checkQuiescent();
}

// --- slab write overlays (functional memory) ---------------------------

TEST(SlabOverlays, ReadsOwnWritesOthersSeeSlabStartImage)
{
    BackingStore store(256);
    store.write32(0x100, 11);
    store.beginSlabOverlays(2);

    store.enterNode(0);
    store.write32(0x100, 22);
    EXPECT_EQ(store.read32(0x100), 22u); // read-your-own-writes
    store.leaveNode();

    store.enterNode(1);
    EXPECT_EQ(store.read32(0x100), 11u); // frozen slab-start image
    store.leaveNode();

    store.commitSlab();
    EXPECT_EQ(store.read32(0x100), 22u); // committed at the barrier
    store.endSlabOverlays();
}

TEST(SlabOverlays, SameSlabCollisionResolvesToHighestNode)
{
    BackingStore store(256);
    store.beginSlabOverlays(3);
    store.enterNode(2);
    store.write32(0x40, 222);
    store.leaveNode();
    store.enterNode(0);
    store.write32(0x40, 100);
    store.write32(0x44, 101); // no collision: survives regardless
    store.leaveNode();
    store.commitSlab();
    EXPECT_EQ(store.read32(0x40), 222u); // ascending order: node 2 last
    EXPECT_EQ(store.read32(0x44), 101u);
    store.endSlabOverlays();
}

TEST(SlabOverlays, DirtyByteGranularityPreservesNeighbors)
{
    // Committing must copy only the bytes the node wrote, not whole
    // shadow pages — else a stale shadow byte could clobber another
    // node's earlier-slab write to the same page.
    BackingStore store(256);
    store.write32(0x10, 0xAABBCCDD);
    store.beginSlabOverlays(2);
    store.enterNode(0);
    store.writeBytes(0x10, "\x11", 1);
    store.leaveNode();
    store.commitSlab();
    store.endSlabOverlays();
    EXPECT_EQ(store.read32(0x10) & 0xFFu, 0x11u);
    EXPECT_EQ(store.read32(0x10) >> 8, 0xAABBCCu);
}

TEST(SlabOverlays, PersistAcrossSlabsUntilEnd)
{
    BackingStore store(256);
    store.beginSlabOverlays(2);
    // Slab 1: node 0 writes, barrier commits.
    store.enterNode(0);
    store.write32(0x200, 1);
    store.leaveNode();
    store.commitSlab();
    // Slab 2: node 1 sees the committed value and overwrites it;
    // endSlabOverlays commits the straggler.
    store.enterNode(1);
    EXPECT_EQ(store.read32(0x200), 1u);
    store.write32(0x200, 2);
    store.leaveNode();
    store.endSlabOverlays();
    EXPECT_EQ(store.read32(0x200), 2u);
}

} // anonymous namespace
} // namespace cpx
