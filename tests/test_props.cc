/**
 * @file
 * Property-based sweeps (parameterized): the protocol must deliver
 * functionally correct, quiescent, accounting-clean executions for
 * every combination of block size, processor count, buffer sizing,
 * network model and protocol extension — and a handful of monotone
 * invariants must hold (latency scaling, flit inflation, traffic
 * ordering).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/config.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

void
expectCleanRun(System &sys, WorkloadRun &run, const std::string &what)
{
    EXPECT_TRUE(run.verified) << what;
    EXPECT_TRUE(sys.quiescent()) << what;
    for (NodeId i = 0; i < sys.params().numProcs; ++i) {
        const Processor &p = sys.processor(i);
        EXPECT_EQ(p.times().total(), p.finishTick())
            << what << " proc " << i;
    }
}

// --- block size × workload ----------------------------------------------

using BlockCase = std::tuple<unsigned, std::string>;

class BlockSizeSweep : public ::testing::TestWithParam<BlockCase>
{
};

TEST_P(BlockSizeSweep, VerifiesAcrossGeometries)
{
    auto [block_bytes, app] = GetParam();
    for (const ProtocolConfig &proto :
         {ProtocolConfig::basic(), ProtocolConfig::pcwm()}) {
        MachineParams params = makeParams(proto);
        params.blockBytes = block_bytes;
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload(app, 0.2);
        WorkloadRun run = runWorkload(sys, *w);
        expectCleanRun(sys, run,
                       app + "/" + proto.name() + "/bs" +
                           std::to_string(block_bytes));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BlockSizeSweep,
    ::testing::Combine(::testing::Values(16u, 32u, 64u),
                       ::testing::Values("migratory",
                                         "producer_consumer",
                                         "false_sharing")),
    [](const ::testing::TestParamInfo<BlockCase> &info) {
        return std::get<1>(info.param) + "_bs" +
               std::to_string(std::get<0>(info.param));
    });

// --- processor count -------------------------------------------------------

class ProcCountSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ProcCountSweep, AnyProcessorCountWorks)
{
    unsigned procs = GetParam();
    for (const ProtocolConfig &proto :
         {ProtocolConfig::basic(), ProtocolConfig::pcw(),
          ProtocolConfig::pm()}) {
        MachineParams params = makeParams(proto);
        params.numProcs = procs;
        System sys(params);
        auto w = makeWorkload("migratory", 0.2);
        WorkloadRun run = runWorkload(sys, *w);
        expectCleanRun(sys, run,
                       proto.name() + "/p" + std::to_string(procs));
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, ProcCountSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u,
                                           23u));

// --- buffer sizing ----------------------------------------------------------

using BufferCase = std::tuple<unsigned, unsigned>;

class BufferSweep : public ::testing::TestWithParam<BufferCase>
{
};

TEST_P(BufferSweep, TinyBuffersStillCorrect)
{
    auto [flwb, slwb] = GetParam();
    for (const ProtocolConfig &proto :
         {ProtocolConfig::basic(), ProtocolConfig::p(),
          ProtocolConfig::cw()}) {
        MachineParams params = makeParams(proto);
        params.flwbEntries = flwb;
        params.slwbEntries = slwb;
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("producer_consumer", 0.2);
        WorkloadRun run = runWorkload(sys, *w);
        expectCleanRun(sys, run,
                       proto.name() + "/flwb" + std::to_string(flwb) +
                           "/slwb" + std::to_string(slwb));
    }
}

INSTANTIATE_TEST_SUITE_P(Buffers, BufferSweep,
                         ::testing::Combine(::testing::Values(1u, 2u,
                                                              8u),
                                            ::testing::Values(1u, 2u,
                                                              16u)));

// --- finite SLC sizes -------------------------------------------------------

class SlcSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SlcSizeSweep, FiniteCachesStayCorrect)
{
    unsigned slc_bytes = GetParam();
    for (const ProtocolConfig &proto :
         {ProtocolConfig::basic(), ProtocolConfig::pcwm()}) {
        MachineParams params = makeParams(proto);
        params.slcBytes = slc_bytes;
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("migratory", 0.2);
        WorkloadRun run = runWorkload(sys, *w);
        expectCleanRun(sys, run,
                       proto.name() + "/slc" +
                           std::to_string(slc_bytes));
    }
}

INSTANTIATE_TEST_SUITE_P(SlcSizes, SlcSizeSweep,
                         ::testing::Values(4u * 32u, 16u * 32u,
                                           16u * 1024u));

// --- competitive threshold / write cache size -------------------------------

class CwParamSweep : public ::testing::TestWithParam<BufferCase>
{
};

TEST_P(CwParamSweep, CwVariantsStayCorrect)
{
    auto [threshold, wc_blocks] = GetParam();
    MachineParams params = makeParams(ProtocolConfig::cw());
    params.competitiveThreshold = threshold;
    params.writeCacheBlocks = wc_blocks;
    params.numProcs = 8;
    System sys(params);
    auto w = makeWorkload("migratory", 0.3);
    WorkloadRun run = runWorkload(sys, *w);
    expectCleanRun(sys, run,
                   "C" + std::to_string(threshold) + "/wc" +
                       std::to_string(wc_blocks));
}

INSTANTIATE_TEST_SUITE_P(
    CwParams, CwParamSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 2u, 4u, 16u)));

class NoWriteCacheSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(NoWriteCacheSweep, PlainCompetitiveUpdateIsCorrect)
{
    // The update-based protocol of [10]: no write cache, one update
    // per write, threshold swept.
    for (const char *app : {"migratory", "producer_consumer",
                            "false_sharing"}) {
        MachineParams params = makeParams(ProtocolConfig::cw());
        params.writeCacheEnabled = false;
        params.competitiveThreshold = GetParam();
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload(app, 0.2);
        WorkloadRun run = runWorkload(sys, *w);
        expectCleanRun(sys, run,
                       std::string(app) + "/noWC/C" +
                           std::to_string(GetParam()));
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, NoWriteCacheSweep,
                         ::testing::Values(1u, 4u));

TEST(Invariants, WriteCacheCombiningSavesTraffic)
{
    // The paper's §3.3 comparison: threshold 1 *with* write caches
    // generates less traffic than the plain competitive-update
    // protocol of [10] at its recommended threshold of 4.
    auto traffic = [](bool wc, unsigned threshold) {
        MachineParams params = makeParams(ProtocolConfig::cw());
        params.writeCacheEnabled = wc;
        params.competitiveThreshold = threshold;
        params.numProcs = 8;
        System sys(params);
        // The producer writes whole arrays between barriers: plenty
        // of same-block writes for the write cache to combine.
        auto w = makeWorkload("producer_consumer", 0.5);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified);
        return run.stats.netBytes;
    };
    EXPECT_LT(traffic(true, 1), traffic(false, 4));
}

// --- monotone invariants ------------------------------------------------------

TEST(Invariants, ExecutionTimeGrowsWithNetworkLatency)
{
    auto run_with_latency = [](Tick hop) {
        MachineParams params = makeParams(ProtocolConfig::basic());
        params.uniformHopLatency = hop;
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("migratory", 0.2);
        return runWorkload(sys, *w).execTime;
    };
    Tick fast = run_with_latency(10);
    Tick slow = run_with_latency(200);
    EXPECT_LT(fast, slow);
}

TEST(Invariants, NarrowerMeshLinksCarryMoreFlits)
{
    auto flits_at = [](unsigned bits) {
        MachineParams params =
            makeParams(ProtocolConfig::basic(),
                       Consistency::ReleaseConsistency,
                       NetworkKind::Mesh, bits);
        params.numProcs = 16;
        System sys(params);
        auto w = makeWorkload("producer_consumer", 0.2);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified);
        return sys.mesh()->totalFlits();
    };
    EXPECT_LT(flits_at(64), flits_at(16));
}

TEST(Invariants, MigratoryOptimizationNeverAddsTraffic)
{
    auto traffic = [](ProtocolConfig proto) {
        MachineParams params = makeParams(proto);
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("migratory", 0.5);
        return runWorkload(sys, *w).stats.netBytes;
    };
    EXPECT_LE(traffic(ProtocolConfig::m()),
              traffic(ProtocolConfig::basic()));
}

TEST(Invariants, PureReadSharingIsUnaffectedByM)
{
    // Without any writes there is nothing to migrate: execution is
    // bit-identical and no block is ever deemed migratory. (The
    // readonly *workload* still uses a barrier, whose counter is
    // legitimately migratory, so this property is checked with a
    // lock-free pure-read script.)
    auto exec = [](ProtocolConfig proto) {
        MachineParams params = makeParams(proto);
        params.numProcs = 8;
        System sys(params);
        Addr table = sys.heap().allocBlockAligned(64 * 32);
        Tick t = sys.run([&](Processor &p, unsigned id) {
            for (unsigned i = 0; i < 256; ++i)
                (void)p.read32(table + ((i * 37 + id) % 512) * 4);
        });
        std::uint64_t detections = 0;
        for (NodeId n = 0; n < params.numProcs; ++n)
            detections += sys.node(n).dir.migratoryDetections();
        EXPECT_EQ(detections, 0u);
        return t;
    };
    EXPECT_EQ(exec(ProtocolConfig::m()),
              exec(ProtocolConfig::basic()));
}

TEST(Invariants, TrafficClassesPartitionTheTotal)
{
    MachineParams params = makeParams(ProtocolConfig::pcwm());
    params.numProcs = 8;
    System sys(params);
    auto w = makeWorkload("migratory", 0.5);
    WorkloadRun run = runWorkload(sys, *w);
    ASSERT_TRUE(run.verified);
    std::uint64_t sum = 0;
    for (unsigned k = 0;
         k < static_cast<unsigned>(MsgClass::NumClasses); ++k)
        sum += run.stats.classBytes[k];
    EXPECT_EQ(sum, run.stats.netBytes);
    EXPECT_GT(run.stats.bytesOf(MsgClass::Sync), 0u);
    EXPECT_GT(run.stats.bytesOf(MsgClass::Data), 0u);
    EXPECT_GT(run.stats.bytesOf(MsgClass::Request), 0u);
}

TEST(Invariants, UpdateTrafficOnlyUnderCw)
{
    auto update_bytes = [](ProtocolConfig proto) {
        MachineParams params = makeParams(proto);
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("producer_consumer", 0.3);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified);
        return run.stats.bytesOf(MsgClass::Update);
    };
    EXPECT_EQ(update_bytes(ProtocolConfig::basic()), 0u);
    EXPECT_GT(update_bytes(ProtocolConfig::cw()), 0u);
}

TEST(Invariants, PrefetchNeverBreaksFalseSharing)
{
    // §3.1: unlike a larger block size, sequential prefetching must
    // not *increase* the false-sharing miss component. Check the
    // false-sharing kernel's coherence misses do not blow up.
    auto coh = [](ProtocolConfig proto) {
        MachineParams params = makeParams(proto);
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("false_sharing", 0.5);
        return runWorkload(sys, *w).stats.cohReadMisses;
    };
    std::uint64_t basic = coh(ProtocolConfig::basic());
    std::uint64_t p = coh(ProtocolConfig::p());
    EXPECT_LE(p, basic + basic / 4);
}

} // anonymous namespace
} // namespace cpx
