/**
 * @file
 * Death tests for the fatal() configuration-validation paths.
 * fatal() flags user errors and exits cleanly with status 1 (unlike
 * panic(), which aborts), so EXPECT_EXIT can assert both the exit
 * code and the message.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "workloads/trace.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

using ::testing::ExitedWithCode;

TEST(FatalDeathTest, CompetitiveUpdateRejectsSequentialConsistency)
{
    MachineParams params =
        makeParams(ProtocolConfig::cw(),
                   Consistency::SequentialConsistency);
    EXPECT_EXIT({ System sys(params); }, ExitedWithCode(1),
                "competitive-update .* requires");
}

TEST(FatalDeathTest, RejectsZeroProcessors)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = 0;
    // The address map (a member, built before System's own checks
    // run) is the first to object.
    EXPECT_EXIT({ System sys(params); }, ExitedWithCode(1),
                "need at least one node");
}

TEST(FatalDeathTest, RejectsMoreProcessorsThanMaxNodes)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.numProcs = maxNodes + 1;
    EXPECT_EXIT({ System sys(params); }, ExitedWithCode(1),
                "maxNodes");
}

TEST(FatalDeathTest, RejectsSinglePointerDirectory)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.directory.rep = DirRep::LimitedPtr;
    params.directory.pointers = 1;
    EXPECT_EXIT({ System sys(params); }, ExitedWithCode(1),
                "limited-pointer directory needs");
}

TEST(FatalDeathTest, RejectsOversizedPointerDirectory)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.directory.rep = DirRep::LimitedPtr;
    params.directory.pointers = 17;
    EXPECT_EXIT({ System sys(params); }, ExitedWithCode(1),
                "limited-pointer directory needs");
}

TEST(FatalDeathTest, RejectsZeroWriteBufferEntries)
{
    MachineParams params = makeParams(ProtocolConfig::basic());
    params.slwbEntries = 0;
    EXPECT_EXIT({ System sys(params); }, ExitedWithCode(1),
                "write buffers need at least one entry");
}

TEST(FatalDeathTest, RejectsUnknownWorkloadName)
{
    EXPECT_EXIT({ makeWorkload("no_such_workload"); },
                ExitedWithCode(1), "unknown workload");
}

TEST(FatalDeathTest, TraceRejectsMalformedProcessorId)
{
    EXPECT_EXIT({ parseTrace("bogus r 40\n"); }, ExitedWithCode(1),
                "expected processor id");
}

TEST(FatalDeathTest, TraceRejectsReadWithoutAddress)
{
    EXPECT_EXIT({ parseTrace("0 r\n"); }, ExitedWithCode(1),
                "read needs an address");
}

TEST(FatalDeathTest, TraceRejectsWriteWithoutValue)
{
    EXPECT_EXIT({ parseTrace("0 w 40\n"); }, ExitedWithCode(1),
                "write needs address and value");
}

TEST(FatalDeathTest, TraceRejectsUnknownOperation)
{
    EXPECT_EXIT({ parseTrace("0 q 1\n"); }, ExitedWithCode(1),
                "unknown operation");
}

TEST(FatalDeathTest, TraceLineNumbersPointAtTheBadLine)
{
    EXPECT_EXIT({ parseTrace("0 r 40\n0 c 5\n0 x\n"); },
                ExitedWithCode(1), "trace line 3");
}

} // anonymous namespace
} // namespace cpx
