/**
 * @file
 * Tests for fault-isolated sweep execution (bench/runner.hh,
 * DESIGN.md §14): the forked-worker supervisor must classify every
 * failure class as a per-point outcome instead of dying, retry
 * transients, journal completed points durably enough to resume
 * without re-executing them, quarantine corrupt journal lines, and —
 * the load-bearing property — produce bit-identical statistics to
 * the in-process thread pool.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/runner.hh"

namespace cpx
{
namespace
{

using namespace cpx::bench;

Options
isolateOptions()
{
    Options opts;
    opts.scale = 0.2;
    opts.procs = 4;
    opts.jobs = 4;
    opts.isolate = IsolateMode::Process;
    opts.retries = 0;
    opts.timeoutSec = 30.0;  // generous guard against a real hang
    return opts;
}

MachineParams
smallParams()
{
    MachineParams params = makeParams(ProtocolConfig::pcw());
    params.numProcs = 4;
    return params;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.busy, b.busy);
    EXPECT_EQ(a.readStall, b.readStall);
    EXPECT_EQ(a.writeStall, b.writeStall);
    EXPECT_EQ(a.acquireStall, b.acquireStall);
    EXPECT_EQ(a.releaseStall, b.releaseStall);
    EXPECT_EQ(a.sharedAccesses, b.sharedAccesses);
    EXPECT_EQ(a.coldReadMisses, b.coldReadMisses);
    EXPECT_EQ(a.cohReadMisses, b.cohReadMisses);
    EXPECT_EQ(a.replReadMisses, b.replReadMisses);
    EXPECT_EQ(a.writeMissesTotal, b.writeMissesTotal);
    EXPECT_EQ(a.netBytes, b.netBytes);
    EXPECT_EQ(a.netMessages, b.netMessages);
    EXPECT_EQ(a.invalidationsSent, b.invalidationsSent);
    EXPECT_EQ(a.updatesForwarded, b.updatesForwarded);
    EXPECT_EQ(a.migratoryDetections, b.migratoryDetections);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.combinedWrites, b.combinedWrites);
    EXPECT_EQ(a.avgReadMissLatency, b.avgReadMissLatency);
}

TEST(IsolateClassification, FaultWorkersBecomePerPointStatuses)
{
    SweepRunner runner(isolateOptions());
    std::size_t h_crash =
        runner.add("__crash", smallParams(), "crash");
    std::size_t h_exit = runner.add("__exit", smallParams(), "exit");
    std::size_t h_garbage =
        runner.add("__garbage", smallParams(), "garbage");
    std::size_t h_bad =
        runner.add("__unverified", smallParams(), "unverified");
    std::size_t h_ok =
        runner.add("migratory", smallParams(), "healthy");
    runner.runAll();

    EXPECT_EQ(runner[h_crash].status, PointStatus::Signal);
    EXPECT_EQ(runner[h_exit].status, PointStatus::NonzeroExit);
    EXPECT_EQ(runner[h_garbage].status, PointStatus::Garbage);
    EXPECT_EQ(runner[h_bad].status, PointStatus::InvariantFailure);
    EXPECT_TRUE(runner[h_ok].ok());
    EXPECT_TRUE(runner.ok(h_ok));
    EXPECT_FALSE(runner.ok(h_crash));

    // Each failure carries a human-readable reason.
    EXPECT_NE(runner[h_crash].error.find("signal"),
              std::string::npos);
    EXPECT_FALSE(runner[h_exit].error.empty());
    EXPECT_NE(runner[h_garbage].error.find("unparseable"),
              std::string::npos);
    EXPECT_NE(runner[h_bad].error.find("verification"),
              std::string::npos);
    EXPECT_TRUE(runner[h_ok].error.empty());

    EXPECT_TRUE(runner.anyFailed());
    EXPECT_EQ(runner.failedCount(), 4u);
    EXPECT_FALSE(runner.interrupted());
    std::string summary = runner.failureSummary();
    EXPECT_NE(summary.find("signal"), std::string::npos);
    EXPECT_NE(summary.find("exit"), std::string::npos);
}

TEST(IsolateClassification, HangingWorkerTimesOut)
{
    Options opts = isolateOptions();
    opts.timeoutSec = 1.0;
    SweepRunner runner(opts);
    std::size_t h = runner.add("__hang", smallParams(), "hang");
    runner.runAll();

    EXPECT_EQ(runner[h].status, PointStatus::Timeout);
    EXPECT_NE(runner[h].error.find("timed out"), std::string::npos);
    EXPECT_EQ(runner.failedCount(), 1u);
}

TEST(IsolateRetry, FlakyPointSucceedsOnSecondAttempt)
{
    Options opts = isolateOptions();
    opts.retries = 1;
    const std::string marker =
        testing::TempDir() + "cpx_isolate_flaky.marker";
    std::remove(marker.c_str());
    ::setenv("CPX_FLAKY_MARKER", marker.c_str(), 1);

    SweepRunner runner(opts);
    std::size_t h = runner.add("__flaky", smallParams(), "flaky");
    runner.runAll();
    ::unsetenv("CPX_FLAKY_MARKER");
    std::remove(marker.c_str());

    EXPECT_TRUE(runner[h].ok());
    EXPECT_EQ(runner[h].attempts, 2u);
    EXPECT_FALSE(runner.anyFailed());
}

TEST(IsolateRetry, ExhaustedRetriesKeepLastFailure)
{
    // With no marker env the flaky worker fails every attempt; the
    // supervisor must consume the retry budget and then surface the
    // final outcome instead of looping.
    Options opts = isolateOptions();
    opts.retries = 1;
    ::unsetenv("CPX_FLAKY_MARKER");

    SweepRunner runner(opts);
    std::size_t h = runner.add("__flaky", smallParams(), "flaky");
    runner.runAll();

    EXPECT_EQ(runner[h].status, PointStatus::NonzeroExit);
    EXPECT_EQ(runner[h].attempts, 2u);
    EXPECT_TRUE(runner.anyFailed());
}

TEST(IsolateDeterminism, ProcessModeMatchesInProcess)
{
    struct Config
    {
        const char *app;
        MachineParams params;
    };
    const std::vector<Config> configs{
        {"migratory", makeParams(ProtocolConfig::pcwm())},
        {"producer_consumer",
         makeParams(ProtocolConfig::pm(),
                    Consistency::SequentialConsistency)},
        {"false_sharing",
         makeParams(ProtocolConfig::cw(),
                    Consistency::ReleaseConsistency,
                    NetworkKind::Mesh, 32)},
    };

    auto runSweep = [&configs](IsolateMode mode) {
        Options opts = isolateOptions();
        opts.isolate = mode;
        if (mode == IsolateMode::None)
            opts.timeoutSec = 0;  // in-process mode has no deadline
        SweepRunner runner(opts);
        for (const Config &c : configs)
            runner.add(c.app, c.params, "determinism");
        runner.runAll();
        return runner.results();
    };

    auto inproc = runSweep(IsolateMode::None);
    auto forked = runSweep(IsolateMode::Process);
    ASSERT_EQ(inproc.size(), forked.size());
    for (std::size_t i = 0; i < inproc.size(); ++i) {
        SCOPED_TRACE(inproc[i].point.app);
        EXPECT_TRUE(forked[i].ok());
        EXPECT_EQ(inproc[i].configHash, forked[i].configHash);
        EXPECT_EQ(inproc[i].run.execTime, forked[i].run.execTime);
        EXPECT_EQ(inproc[i].run.verified, forked[i].run.verified);
        expectBitIdentical(inproc[i].run.stats, forked[i].run.stats);
    }
}

TEST(IsolateWire, RoundTripPreservesResult)
{
    Options opts = isolateOptions();
    SweepRunner runner(opts);
    std::size_t h =
        runner.add("migratory", smallParams(), "wire");
    runner.runAll();
    ASSERT_TRUE(runner[h].ok());

    std::string line = serializeWireResult(runner[h]);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    SweepResult parsed;
    std::string error;
    ASSERT_TRUE(parseWireResult(line, parsed, error)) << error;
    EXPECT_EQ(parsed.status, PointStatus::Ok);
    EXPECT_EQ(parsed.configHash, runner[h].configHash);
    EXPECT_EQ(parsed.attempts, runner[h].attempts);
    EXPECT_EQ(parsed.run.execTime, runner[h].run.execTime);
    EXPECT_TRUE(parsed.run.verified);
    expectBitIdentical(parsed.run.stats, runner[h].run.stats);

    EXPECT_FALSE(parseWireResult("{\"schema\": \"bogus\"}", parsed,
                                 error));
    EXPECT_FALSE(parseWireResult("not json at all", parsed, error));
}

TEST(IsolateJournal, ResumeSkipsExactlyTheCompletedSet)
{
    const std::string journal =
        testing::TempDir() + "cpx_isolate_resume.jsonl";
    std::remove(journal.c_str());

    auto addAll = [](SweepRunner &runner) {
        std::vector<std::size_t> handles;
        handles.push_back(runner.add(
            "migratory", makeParams(ProtocolConfig::pcw()), "j"));
        handles.push_back(runner.add(
            "producer_consumer", makeParams(ProtocolConfig::basic()),
            "j"));
        handles.push_back(runner.add(
            "false_sharing", makeParams(ProtocolConfig::cw()), "j"));
        return handles;
    };

    Options opts = isolateOptions();
    opts.journalPath = journal;
    SweepRunner first(opts);
    auto handles = addAll(first);
    first.runAll();
    EXPECT_EQ(first.executedCount(), handles.size());

    // Same grid, resuming from the journal: nothing re-executes, and
    // every reused result is bit-identical.
    Options resume = isolateOptions();
    resume.resumePath = journal;
    SweepRunner second(resume);
    auto handles2 = addAll(second);
    second.runAll();
    EXPECT_EQ(second.executedCount(), 0u);
    for (std::size_t i = 0; i < handles.size(); ++i) {
        SCOPED_TRACE(first[handles[i]].point.app);
        EXPECT_EQ(second[handles2[i]].source, ResultSource::Journal);
        EXPECT_TRUE(second[handles2[i]].ok());
        expectBitIdentical(first[handles[i]].run.stats,
                           second[handles2[i]].run.stats);
    }

    // A grid with one extra point resumes the three and runs only it.
    Options partial = isolateOptions();
    partial.resumePath = journal;
    SweepRunner third(partial);
    auto handles3 = addAll(third);
    std::size_t h_new = third.add(
        "migratory", makeParams(ProtocolConfig::pm()), "j/new");
    third.runAll();
    EXPECT_EQ(third.executedCount(), 1u);
    EXPECT_TRUE(third[h_new].ok());
    EXPECT_EQ(third[h_new].source, ResultSource::Executed);
    (void)handles3;

    std::remove(journal.c_str());
}

TEST(IsolateJournal, CorruptLinesAreQuarantinedNotDropped)
{
    const std::string journal =
        testing::TempDir() + "cpx_isolate_corrupt.jsonl";
    const std::string quarantine = journal + ".quarantine";
    std::remove(journal.c_str());
    std::remove(quarantine.c_str());

    Options opts = isolateOptions();
    opts.journalPath = journal;
    SweepRunner runner(opts);
    std::size_t h =
        runner.add("migratory", smallParams(), "corrupt");
    runner.runAll();
    ASSERT_TRUE(runner[h].ok());

    // Simulate a crash mid-append (truncated line) plus plain
    // corruption; the valid record must survive both.
    {
        std::ofstream out(journal, std::ios::app);
        out << "{\"schema\": \"cpx-wire-1\", \"status\":\n";
        out << "** not json **\n";
    }

    JournalLoad load = loadJournal(journal);
    EXPECT_EQ(load.entries, 1u);
    EXPECT_EQ(load.quarantined, 2u);
    EXPECT_EQ(load.byHash.count(runner[h].configHash), 1u);
    EXPECT_EQ(load.quarantineFile, quarantine);

    std::ifstream qf(quarantine);
    ASSERT_TRUE(qf.good());
    std::string text((std::istreambuf_iterator<char>(qf)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("** not json **"), std::string::npos);

    // A missing journal is an empty load, not an error.
    JournalLoad missing = loadJournal(journal + ".nonexistent");
    EXPECT_EQ(missing.entries, 0u);
    EXPECT_EQ(missing.quarantined, 0u);

    std::remove(journal.c_str());
    std::remove(quarantine.c_str());
}

TEST(IsolateJson, AtomicWriteLeavesNoTempFile)
{
    Options opts = isolateOptions();
    SweepRunner runner(opts);
    std::size_t h_ok =
        runner.add("migratory", smallParams(), "json");
    std::size_t h_bad =
        runner.add("__crash", smallParams(), "json/crash");
    runner.runAll();
    ASSERT_TRUE(runner[h_ok].ok());
    ASSERT_FALSE(runner[h_bad].ok());

    std::string path = testing::TempDir() + "cpx_isolate_out.json";
    writeJson(path, "test_isolate", opts, runner.results(),
              runner.totalHostSeconds());
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
    EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);

    // The document validates only when failed points are allowed,
    // and the failed point carries its status/error block.
    std::string error;
    EXPECT_FALSE(validateResultsFile(path, error));
    EXPECT_NE(error.find("signal"), std::string::npos);
    EXPECT_TRUE(validateResultsFile(path, error, true)) << error;

    JsonValue doc;
    std::ifstream file(path);
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    ASSERT_TRUE(parseJson(text, doc, error)) << error;
    const auto &points = doc.at("points").items;
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].at("status").text, "ok");
    EXPECT_EQ(points[1].at("status").text, "signal");
    EXPECT_FALSE(points[1].at("error").text.empty());
    EXPECT_FALSE(points[1].has("execTime"));

    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cpx
