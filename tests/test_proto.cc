/**
 * @file
 * Protocol-level tests: directory state transitions, cache states,
 * miss classification, the migratory optimization (both detection
 * schemes), the competitive-update machinery, write-backs with a
 * finite SLC, the queue-based locks, and the adaptive prefetcher.
 *
 * Scenarios run on a real (small) System; processors execute
 * scripted bodies ordered by compute() delays, which is
 * deterministic by construction.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/config.hh"
#include "core/system.hh"
#include "proto/prefetcher.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

using Script = std::function<void(Processor &)>;

/** Run one scripted body per processor; returns after quiescence. */
void
runScripts(System &sys, const std::vector<Script> &scripts)
{
    sys.run([&scripts](Processor &p, unsigned id) {
        if (id < scripts.size() && scripts[id])
            scripts[id](p);
    });
}

MachineParams
smallMachine(ProtocolConfig proto,
             Consistency c = Consistency::ReleaseConsistency)
{
    MachineParams params = makeParams(proto, c);
    params.numProcs = 4;
    return params;
}

TEST(Directory, ReadMissInstallsSharedAndSetsPresence)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);
    sys.store().write32(a, 42);

    std::uint32_t got = 0;
    runScripts(sys, {[&](Processor &p) { got = p.read32(a); },
                     [&](Processor &p) {
                         p.compute(2000);
                         (void)p.read32(a);
                     }});

    EXPECT_EQ(got, 42u);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.modified);
    EXPECT_EQ(snap.presence, 0b0011u);  // procs 0 and 1

    const auto *line0 = sys.node(0).slc.findLine(a);
    ASSERT_NE(line0, nullptr);
    EXPECT_EQ(line0->state, SlcController::LineState::Shared);
}

TEST(Directory, WriteMissTakesExclusiveOwnership)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);

    runScripts(sys, {[&](Processor &p) { p.write32(a, 7); }});

    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.modified);
    EXPECT_EQ(snap.owner, 0u);
    EXPECT_EQ(snap.presence, 0b0001u);
    const auto *line = sys.node(0).slc.findLine(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, SlcController::LineState::Dirty);
    EXPECT_EQ(sys.store().read32(a), 0u);  // not yet written back
    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 7u);
}

TEST(Directory, SecondWriterInvalidatesFirst)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);

    runScripts(sys, {[&](Processor &p) { p.write32(a, 1); },
                     [&](Processor &p) {
                         p.compute(2000);
                         p.write32(a, 2);
                     }});

    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.modified);
    EXPECT_EQ(snap.owner, 1u);
    EXPECT_EQ(sys.node(0).slc.findLine(a), nullptr);
    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 2u);
}

TEST(Directory, InvalidationMakesTheNextMissACoherenceMiss)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);

    runScripts(sys,
               {[&](Processor &p) {
                    (void)p.read32(a);   // cold miss
                    p.compute(4000);     // proc 1 writes meanwhile
                    (void)p.read32(a);   // coherence miss
                },
                [&](Processor &p) {
                    p.compute(2000);
                    p.write32(a, 5);
                }});

    const auto &slc0 = sys.node(0).slc;
    EXPECT_EQ(slc0.readMisses(MissKind::Cold), 1u);
    EXPECT_EQ(slc0.readMisses(MissKind::Coherence), 1u);
    EXPECT_EQ(slc0.readMisses(MissKind::Replacement), 0u);
}

TEST(Directory, ReaderDowngradesTheOwner)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);

    std::uint32_t got = 0;
    runScripts(sys, {[&](Processor &p) { p.write32(a, 9); },
                     [&](Processor &p) {
                         p.compute(2000);
                         got = p.read32(a);
                     }});

    EXPECT_EQ(got, 9u);  // dirty data supplied through the home
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.modified);
    EXPECT_EQ(snap.presence, 0b0011u);
    const auto *line0 = sys.node(0).slc.findLine(a);
    ASSERT_NE(line0, nullptr);
    EXPECT_EQ(line0->state, SlcController::LineState::Shared);
}

// ---------------------------------------------------------------------------
// Migratory optimization (M)
// ---------------------------------------------------------------------------

/** Read-modify-write of @p a by each processor in turn. */
std::vector<Script>
migratingRmw(Addr a, unsigned procs)
{
    std::vector<Script> scripts;
    for (unsigned i = 0; i < procs; ++i) {
        scripts.push_back([a, i](Processor &p) {
            p.compute(1 + i * 3000);
            std::uint32_t v = p.read32(a);
            p.write32(a, v + 1);
        });
    }
    return scripts;
}

TEST(Migratory, DetectedAfterMigratingRmws)
{
    System sys(smallMachine(ProtocolConfig::m()));
    Addr a = sys.heap().allocBlockAligned(64);
    sys.store().write32(a, 0);

    runScripts(sys, migratingRmw(a, 4));

    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.migratory);
    EXPECT_GT(sys.dir(sys.amap().home(a)).migratoryDetections(), 0u);
    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 4u);
}

TEST(Migratory, MigratoryReadGetsAnExclusiveCopy)
{
    System sys(smallMachine(ProtocolConfig::m()));
    Addr a = sys.heap().allocBlockAligned(64);

    runScripts(sys,
               {[&](Processor &p) {
                    std::uint32_t v = p.read32(a);
                    p.write32(a, v + 1);
                },
                [&](Processor &p) {
                    p.compute(3000);
                    std::uint32_t v = p.read32(a);
                    p.write32(a, v + 1);
                },
                [&](Processor &p) {
                    p.compute(6000);
                    // Detection happened; this read must return an
                    // exclusive (DIRTY) copy without a write.
                    (void)p.read32(a);
                }});

    const auto *line2 = sys.node(2).slc.findLine(a);
    ASSERT_NE(line2, nullptr);
    EXPECT_EQ(line2->state, SlcController::LineState::Dirty);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.modified);
    EXPECT_EQ(snap.owner, 2u);
    // The previous keeper was invalidated by the handoff.
    EXPECT_EQ(sys.node(1).slc.findLine(a), nullptr);
}

TEST(Migratory, NoOwnershipRequestsAfterDetection)
{
    MachineParams m_params = smallMachine(ProtocolConfig::m());
    MachineParams b_params = smallMachine(ProtocolConfig::basic());
    std::uint64_t own_m, own_b;
    {
        System sys(m_params);
        Addr a = sys.heap().allocBlockAligned(64);
        runScripts(sys, migratingRmw(a, 4));
        own_m = sys.dir(sys.amap().home(a)).ownershipRequests();
    }
    {
        System sys(b_params);
        Addr a = sys.heap().allocBlockAligned(64);
        runScripts(sys, migratingRmw(a, 4));
        own_b = sys.dir(sys.amap().home(a)).ownershipRequests();
    }
    EXPECT_LT(own_m, own_b);
}

TEST(Migratory, DemotedWhenReadOnlySharingResumes)
{
    System sys(smallMachine(ProtocolConfig::m()));
    Addr a = sys.heap().allocBlockAligned(64);

    runScripts(sys,
               {[&](Processor &p) {
                    std::uint32_t v = p.read32(a);
                    p.write32(a, v + 1);
                },
                [&](Processor &p) {
                    p.compute(3000);
                    std::uint32_t v = p.read32(a);
                    p.write32(a, v + 1);  // now migratory
                },
                [&](Processor &p) {
                    p.compute(6000);
                    (void)p.read32(a);  // exclusive grant, no write
                },
                [&](Processor &p) {
                    p.compute(9000);
                    // Keeper never wrote: the home demotes and this
                    // read is served SHARED.
                    (void)p.read32(a);
                }});

    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.migratory);
    EXPECT_FALSE(snap.modified);
    EXPECT_GT(sys.dir(sys.amap().home(a)).migratoryDemotions(), 0u);
    const auto *line3 = sys.node(3).slc.findLine(a);
    ASSERT_NE(line3, nullptr);
    EXPECT_EQ(line3->state, SlcController::LineState::Shared);
}

// ---------------------------------------------------------------------------
// Competitive update (CW)
// ---------------------------------------------------------------------------

TEST(CompetitiveUpdate, WritesLandInTheWriteCacheNotTheSlc)
{
    System sys(smallMachine(ProtocolConfig::cw()));
    Addr a = sys.heap().allocBlockAligned(64);

    runScripts(sys, {[&](Processor &p) { p.write32(a, 3); }});

    // No SLC line was fetched for the write miss.
    EXPECT_EQ(sys.node(0).slc.findLine(a), nullptr);
    EXPECT_TRUE(sys.node(0).slc.writeCacheUnit().contains(a));
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.modified);  // no ownership request
    EXPECT_EQ(sys.dir(sys.amap().home(a)).ownershipRequests(), 0u);
}

TEST(CompetitiveUpdate, ReleaseFlushesCombinedWritesToMemory)
{
    System sys(smallMachine(ProtocolConfig::cw()));
    Addr a = sys.heap().allocBlockAligned(64);
    Addr lock = sys.heap().allocLock();

    runScripts(sys, {[&](Processor &p) {
        p.lock(lock);
        p.write32(a, 1);
        p.write32(a + 4, 2);
        p.write32(a + 8, 3);
        p.unlock(lock);  // release: the flush must complete
    }});

    // The release fence guarantees memory is current (no functional
    // flush needed).
    EXPECT_EQ(sys.store().read32(a), 1u);
    EXPECT_EQ(sys.store().read32(a + 4), 2u);
    EXPECT_EQ(sys.store().read32(a + 8), 3u);
    EXPECT_FALSE(sys.node(0).slc.writeCacheUnit().contains(a));
}

TEST(CompetitiveUpdate, SharedCopyUpdatedInPlaceThenInvalidated)
{
    MachineParams params = smallMachine(ProtocolConfig::cw());
    params.competitiveThreshold = 2;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(64);
    Addr lock = sys.heap().allocLock();

    runScripts(sys,
               {[&](Processor &p) {
                    (void)p.read32(a);  // proc 0 caches the block
                    p.compute(20000);
                },
                [&](Processor &p) {
                    p.compute(2000);
                    // Two updates with no intervening access by
                    // proc 0: first updates its copy, second expires
                    // the competitive counter.
                    p.lock(lock);
                    p.write32(a, 11);
                    p.unlock(lock);
                    p.lock(lock);
                    p.write32(a, 22);
                    p.unlock(lock);
                }});

    EXPECT_EQ(sys.node(0).slc.findLine(a), nullptr);
    EXPECT_GT(sys.node(0).slc.counterInvalidations(), 0u);
    EXPECT_EQ(sys.store().read32(a), 22u);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_EQ(snap.presence & 0b0001u, 0u);  // proc 0 pruned
}

TEST(CompetitiveUpdate, LocalAccessResetsTheCounter)
{
    MachineParams params = smallMachine(ProtocolConfig::cw());
    params.competitiveThreshold = 2;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(64);
    Addr lock = sys.heap().allocLock();

    runScripts(sys,
               {[&](Processor &p) {
                    (void)p.read32(a);
                    p.compute(6000);
                    (void)p.read32(a);  // reset between the updates
                    p.compute(20000);
                    (void)p.read32(a);
                },
                [&](Processor &p) {
                    p.compute(2000);
                    p.lock(lock);
                    p.write32(a, 11);
                    p.unlock(lock);
                    p.compute(8000);
                    p.lock(lock);
                    p.write32(a, 22);
                    p.unlock(lock);
                }});

    // The copy survived both updates thanks to the reset.
    const auto *line0 = sys.node(0).slc.findLine(a);
    ASSERT_NE(line0, nullptr);
    EXPECT_EQ(line0->data[0], 22u);  // updated in place
}

TEST(CompetitiveUpdate, ReadServedFromTheWriteCache)
{
    System sys(smallMachine(ProtocolConfig::cw()));
    Addr a = sys.heap().allocBlockAligned(64);

    std::uint32_t got = 0;
    runScripts(sys, {[&](Processor &p) {
        p.write32(a, 77);   // into the write cache
        got = p.read32(a);  // must be forwarded
    }});
    EXPECT_EQ(got, 77u);
    EXPECT_GT(sys.node(0).slc.writeCacheReadHits(), 0u);
}

// ---------------------------------------------------------------------------
// CW + M: probe-based migratory detection (§3.4)
// ---------------------------------------------------------------------------

TEST(CwPlusM, ProbeDetectsMigratorySharing)
{
    System sys(smallMachine(ProtocolConfig::cwm()));
    Addr a = sys.heap().allocBlockAligned(64);
    Addr lock = sys.heap().allocLock();

    auto rmw = [&](Processor &p) {
        p.lock(lock);
        std::uint32_t v = p.read32(a);
        p.write32(a, v + 1);
        p.unlock(lock);
    };
    runScripts(sys, {[&](Processor &p) { rmw(p); },
                     [&](Processor &p) {
                         p.compute(4000);
                         rmw(p);
                     },
                     [&](Processor &p) {
                         p.compute(8000);
                         rmw(p);
                     }});

    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.migratory);
    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 3u);
}

TEST(CwPlusM, NoProbeWithoutMigratoryExtension)
{
    System sys(smallMachine(ProtocolConfig::cw()));
    Addr a = sys.heap().allocBlockAligned(64);
    Addr lock = sys.heap().allocLock();
    auto rmw = [&](Processor &p) {
        p.lock(lock);
        std::uint32_t v = p.read32(a);
        p.write32(a, v + 1);
        p.unlock(lock);
    };
    runScripts(sys, {[&](Processor &p) { rmw(p); },
                     [&](Processor &p) {
                         p.compute(4000);
                         rmw(p);
                     },
                     [&](Processor &p) {
                         p.compute(8000);
                         rmw(p);
                     }});
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.migratory);
}

// ---------------------------------------------------------------------------
// Finite SLC: replacements and write-backs
// ---------------------------------------------------------------------------

TEST(FiniteSlc, DirtyEvictionWritesBackAndClearsTheDirectory)
{
    MachineParams params = smallMachine(ProtocolConfig::basic());
    params.slcBytes = 4 * 32;  // 4 lines
    System sys(params);
    // Two addresses that conflict in a 4-line direct-mapped SLC.
    Addr a = sys.heap().allocBlockAligned(32);
    Addr b = a + 4 * 32;

    runScripts(sys, {[&](Processor &p) {
        p.write32(a, 123);
        p.compute(2000);
        (void)p.read32(b);  // evicts a (dirty): write-back
        p.compute(2000);
    }});

    EXPECT_EQ(sys.node(0).slc.findLine(a), nullptr);
    EXPECT_EQ(sys.store().read32(a), 123u);  // written back
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_FALSE(snap.modified);
    EXPECT_GT(sys.dir(sys.amap().home(a)).writeBacks(), 0u);
}

TEST(FiniteSlc, ReplacementMissesAreClassified)
{
    MachineParams params = smallMachine(ProtocolConfig::basic());
    params.slcBytes = 4 * 32;
    System sys(params);
    Addr a = sys.heap().allocBlockAligned(32);
    Addr b = a + 4 * 32;

    runScripts(sys, {[&](Processor &p) {
        (void)p.read32(a);  // cold
        (void)p.read32(b);  // cold, evicts a
        (void)p.read32(a);  // replacement miss
    }});

    const auto &slc = sys.node(0).slc;
    EXPECT_EQ(slc.readMisses(MissKind::Cold), 2u);
    EXPECT_EQ(slc.readMisses(MissKind::Replacement), 1u);
}

// ---------------------------------------------------------------------------
// Queue-based locks
// ---------------------------------------------------------------------------

TEST(Locks, MutualExclusionAndFifoHandoff)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr lock = sys.heap().allocLock();
    Addr a = sys.heap().allocBlockAligned(32);
    sys.store().write32(a, 0);

    std::vector<unsigned> order;
    std::vector<Script> scripts;
    for (unsigned i = 0; i < 4; ++i) {
        scripts.push_back([&, i](Processor &p) {
            p.compute(1 + i);  // all contend nearly at once
            p.lock(lock);
            order.push_back(i);
            std::uint32_t v = p.read32(a);
            p.compute(500);
            p.write32(a, v + 1);
            p.unlock(lock);
        });
    }
    runScripts(sys, scripts);

    sys.flushFunctionalState();
    EXPECT_EQ(sys.store().read32(a), 4u);
    EXPECT_EQ(order.size(), 4u);
    EXPECT_GT(sys.node(sys.amap().home(lock)).locks.queuedAcquires(),
              0u);
    EXPECT_EQ(sys.node(sys.amap().home(lock)).locks.heldLocks(), 0u);
}

// ---------------------------------------------------------------------------
// Adaptive prefetcher unit tests
// ---------------------------------------------------------------------------

TEST(Prefetcher, StartsAtTheConfiguredDegree)
{
    MachineParams params;
    Prefetcher pf(params);
    EXPECT_EQ(pf.degree(), 1u);
}

TEST(Prefetcher, RaisesDegreeWhenPrefetchesAreUseful)
{
    MachineParams params;
    Prefetcher pf(params);
    for (int i = 0; i < 16; ++i) {
        pf.notifyUseful();
        pf.notifyIssued();
    }
    EXPECT_EQ(pf.degree(), 2u);
    EXPECT_EQ(pf.degreeRaises(), 1u);
}

TEST(Prefetcher, DropsDegreeWhenPrefetchesAreUseless)
{
    MachineParams params;
    params.prefetchInitialDegree = 4;
    Prefetcher pf(params);
    ASSERT_EQ(pf.degree(), 4u);
    for (int i = 0; i < 16; ++i)
        pf.notifyIssued();  // no useful notifications
    EXPECT_EQ(pf.degree(), 2u);
    EXPECT_EQ(pf.degreeDrops(), 1u);
}

TEST(Prefetcher, ClimbsTheWholeLadderAndSaturates)
{
    MachineParams params;
    Prefetcher pf(params);
    for (int window = 0; window < 10; ++window) {
        for (int i = 0; i < 16; ++i) {
            pf.notifyUseful();
            pf.notifyIssued();
        }
    }
    EXPECT_EQ(pf.degree(), 16u);  // top of the ladder
}

TEST(Prefetcher, ZeroDegreeReenablesOnSequentialMisses)
{
    MachineParams params;
    params.prefetchInitialDegree = 0;
    Prefetcher pf(params);
    ASSERT_EQ(pf.degree(), 0u);
    // 16 misses, all of which would have been covered by degree-1
    // prefetching (predecessor missed recently).
    for (int i = 0; i < 16; ++i)
        pf.notifyDemandMiss(0x1000 + 32 * i, true);
    EXPECT_EQ(pf.degree(), 1u);
}

TEST(Prefetcher, ZeroDegreeStaysOffForRandomMisses)
{
    MachineParams params;
    params.prefetchInitialDegree = 0;
    Prefetcher pf(params);
    for (int i = 0; i < 64; ++i)
        pf.notifyDemandMiss(0x1000 + 9767 * i, false);
    EXPECT_EQ(pf.degree(), 0u);
}

TEST(Prefetcher, MaxDegreeZeroNeverReenables)
{
    MachineParams params;
    params.prefetchInitialDegree = 0;
    params.prefetchMaxDegree = 0;  // clipped ladder is just {0}
    Prefetcher pf(params);
    ASSERT_EQ(pf.degree(), 0u);
    // Sequential misses push the zero-degree re-enable counter past
    // its modulo; with no rung above 0 the degree must stay 0 (this
    // used to walk off the end of the ladder).
    for (int i = 0; i < 64; ++i)
        pf.notifyDemandMiss(0x1000 + 32 * i, true);
    EXPECT_EQ(pf.degree(), 0u);
}

TEST(Prefetcher, MaxDegreeClipsTheLadder)
{
    MachineParams params;
    params.prefetchMaxDegree = 4;
    Prefetcher pf(params);
    for (int window = 0; window < 10; ++window) {
        for (int i = 0; i < 16; ++i) {
            pf.notifyUseful();
            pf.notifyIssued();
        }
    }
    EXPECT_EQ(pf.degree(), 4u);
}

// ---------------------------------------------------------------------------
// Prefetch integration
// ---------------------------------------------------------------------------

TEST(PrefetchIntegration, SequentialScanTriggersUsefulPrefetches)
{
    System sys(smallMachine(ProtocolConfig::p()));
    Addr base = sys.heap().allocBlockAligned(64 * 32);

    runScripts(sys, {[&](Processor &p) {
        for (unsigned i = 0; i < 64 * 8; ++i)
            (void)p.read32(base + i * 4);
    }});

    const auto &pf = sys.node(0).slc.prefetchEngine();
    EXPECT_GT(pf.issued(), 0u);
    EXPECT_GT(pf.useful(), 0u);
    // A sequential scan is the best case: most prefetches useful.
    EXPECT_GT(pf.useful() * 10, pf.issued() * 5);
    // And demand misses shrink vs BASIC: the scan needs 64 blocks
    // but most were prefetched.
    EXPECT_LT(sys.node(0).slc.totalReadMisses(), 40u);
}

TEST(PrefetchIntegration, FixedDegreeModeNeverAdapts)
{
    MachineParams params;
    params.prefetchAdaptive = false;
    params.prefetchInitialDegree = 4;
    Prefetcher pf(params);
    for (int window = 0; window < 10; ++window) {
        for (int i = 0; i < 16; ++i) {
            pf.notifyUseful();
            pf.notifyIssued();
        }
    }
    EXPECT_EQ(pf.degree(), 4u);
    EXPECT_EQ(pf.degreeRaises(), 0u);
}

TEST(SoftwarePrefetch, BringsTheBlockInAhead)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);
    sys.store().write32(a, 31);

    Tick hit_latency = 0;
    runScripts(sys, {[&](Processor &p) {
        p.prefetch(a);
        p.compute(1000);  // plenty of time for the fill
        Tick t0 = sys.eq().now();
        std::uint32_t v = p.read32(a);
        hit_latency = sys.eq().now() - t0;
        EXPECT_EQ(v, 31u);
    }});

    // The read hit the prefetched (FLC-missing, SLC-resident) line:
    // far cheaper than a remote miss.
    EXPECT_LE(hit_latency, 12u);
    EXPECT_GT(sys.node(0).slc.softwarePrefetches(), 0u);
}

TEST(SoftwarePrefetch, ExclusiveVariantMakesTheWriteHit)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);

    runScripts(sys, {[&](Processor &p) {
        p.prefetch(a, /*exclusive=*/true);
        p.compute(1000);
        p.write32(a, 5);
        p.compute(100);
    }});

    const auto *line = sys.node(0).slc.findLine(a);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, SlcController::LineState::Dirty);
    auto snap = sys.dir(sys.amap().home(a)).inspect(a);
    EXPECT_TRUE(snap.modified);
    EXPECT_EQ(snap.owner, 0u);
    // No ownership request beyond the prefetch itself: the write
    // hit DIRTY locally.
    EXPECT_EQ(sys.dir(sys.amap().home(a)).ownershipRequests(), 1u);
}

TEST(SoftwarePrefetch, IsNonBinding)
{
    System sys(smallMachine(ProtocolConfig::basic()));
    Addr a = sys.heap().allocBlockAligned(64);

    std::uint32_t got = 0;
    runScripts(sys,
               {[&](Processor &p) {
                    p.prefetch(a);
                    p.compute(4000);
                    got = p.read32(a);  // after node 1's write
                },
                [&](Processor &p) {
                    p.compute(1500);
                    p.write32(a, 88);
                }});
    EXPECT_EQ(got, 88u);
}

TEST(SoftwarePrefetch, LuVariantVerifiesEverywhere)
{
    for (const ProtocolConfig &proto :
         {ProtocolConfig::basic(), ProtocolConfig::p(),
          ProtocolConfig::m(), ProtocolConfig::cw()}) {
        MachineParams params = makeParams(proto);
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("lu_swpf", 0.2);
        WorkloadRun run = runWorkload(sys, *w);
        EXPECT_TRUE(run.verified) << proto.name();
        EXPECT_TRUE(sys.quiescent());
    }
}

TEST(PrefetchIntegration, PrefetchedBlocksAreNonBinding)
{
    // A prefetched block must be invalidated by a later write from
    // another processor (non-binding property).
    System sys(smallMachine(ProtocolConfig::p()));
    Addr base = sys.heap().allocBlockAligned(8 * 32);

    std::uint32_t got = 0;
    runScripts(sys,
               {[&](Processor &p) {
                    (void)p.read32(base);  // prefetches base+32, ...
                    p.compute(4000);
                    got = p.read32(base + 32);  // after the write
                },
                [&](Processor &p) {
                    p.compute(2000);
                    p.write32(base + 32, 99);
                }});
    EXPECT_EQ(got, 99u);
}

} // anonymous namespace
} // namespace cpx
