/**
 * @file
 * Application workload tests: each of the paper's five applications
 * runs at reduced scale under representative protocol/consistency
 * combinations, and must produce functionally correct results with a
 * cleanly drained protocol.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

struct AppCase
{
    const char *workload;
    ProtocolConfig protocol;
    Consistency consistency;
};

std::vector<AppCase>
appCases()
{
    std::vector<AppCase> cases;
    const Consistency rc = Consistency::ReleaseConsistency;
    const Consistency sc = Consistency::SequentialConsistency;
    for (const char *w : {"mp3d", "cholesky", "water", "lu", "ocean"}) {
        cases.push_back({w, ProtocolConfig::basic(), rc});
        cases.push_back({w, ProtocolConfig::pcw(), rc});
        cases.push_back({w, ProtocolConfig::pcwm(), rc});
        cases.push_back({w, ProtocolConfig::basic(), sc});
        cases.push_back({w, ProtocolConfig::pm(), sc});
    }
    return cases;
}

std::string
appCaseName(const ::testing::TestParamInfo<AppCase> &info)
{
    std::string proto = info.param.protocol.name();
    for (char &ch : proto)
        if (ch == '+')
            ch = '_';
    return std::string(info.param.workload) + "_" + proto + "_" +
           (info.param.consistency == Consistency::ReleaseConsistency
                ? "RC"
                : "SC");
}

class Applications : public ::testing::TestWithParam<AppCase>
{
};

TEST_P(Applications, VerifiesAndQuiesces)
{
    const AppCase &c = GetParam();
    MachineParams params = makeParams(c.protocol, c.consistency);
    params.numProcs = 8;
    System sys(params);
    auto w = makeWorkload(c.workload, 0.25);
    WorkloadRun run = runWorkload(sys, *w, /*limit=*/2'000'000'000);

    EXPECT_TRUE(run.verified)
        << c.workload << " under " << c.protocol.name();
    EXPECT_TRUE(sys.quiescent());
    EXPECT_GT(run.stats.sharedAccesses, 0u);

    for (NodeId i = 0; i < params.numProcs; ++i) {
        const Processor &p = sys.processor(i);
        EXPECT_EQ(p.times().total(), p.finishTick())
            << "processor " << i << " accounting leak";
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, Applications,
                         ::testing::ValuesIn(appCases()), appCaseName);

TEST(Workloads, EveryApplicationIsDeterministic)
{
    for (const char *app : {"mp3d", "cholesky", "water", "lu",
                            "ocean", "fft"}) {
        auto run_once = [app] {
            MachineParams params = makeParams(ProtocolConfig::pcwm());
            params.numProcs = 8;
            System sys(params);
            auto w = makeWorkload(app, 0.2);
            return runWorkload(sys, *w).execTime;
        };
        Tick first = run_once();
        EXPECT_EQ(first, run_once()) << app;
    }
}

TEST(Workloads, FactoryRejectsUnknownName)
{
    EXPECT_EXIT((void)makeWorkload("nope"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Workloads, PaperApplicationListMatchesSection4)
{
    const auto &apps = paperApplications();
    ASSERT_EQ(apps.size(), 5u);
    EXPECT_EQ(apps[0], "mp3d");
    EXPECT_EQ(apps[4], "ocean");
}

} // anonymous namespace
} // namespace cpx
