/**
 * @file
 * The calendar-queue kernel against a reference heap.
 *
 * The rewritten EventQueue (two-level bucket calendar + event pool +
 * inline callbacks) must be observationally identical to the textbook
 * implementation it replaced: a binary heap ordered by (tick,
 * insertion sequence). These tests drive both models with the same
 * deterministic script — including nested scheduling from inside
 * callbacks, run-limit truncation and delays that straddle the ring /
 * overflow boundary — and require the execution orders to match
 * event-for-event. Pool reuse under cancel/reschedule and the
 * InlineFunction heap-fallback path are covered separately.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"

namespace cpx
{
namespace
{

/**
 * The pre-rewrite model: a binary heap of (when, insertion seq, id),
 * earliest tick first, same-tick ties broken by insertion order.
 * run(limit) mirrors EventQueue::run: execute everything with
 * when <= limit, then pin now to the limit if work remains.
 */
class ReferenceHeap
{
  public:
    void
    schedule(Tick when, int id)
    {
        heap.push({when, seq++, id});
    }

    template <typename Fire>
    Tick
    run(Tick limit, Fire &&fire)
    {
        while (!heap.empty() && heap.top().when <= limit) {
            Entry e = heap.top();
            heap.pop();
            now = e.when;
            fire(e.id);
        }
        if (!heap.empty() && now < limit)
            now = limit;
        return now;
    }

    Tick now = 0;

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        int id;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::uint64_t seq = 0;
};

/** splitmix64-style hash: one deterministic decision stream per id. */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t id)
{
    std::uint64_t x = seed * 0x9E3779B97F4A7C15ull +
                      id * 0xBF58476D1CE4E5B9ull +
                      0xD6E8FEB86659FD93ull;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

/**
 * Delays chosen to land in every region of the calendar: same tick,
 * next tick, deep inside the ring, exactly at and just past the
 * 2048-tick ring window (overflow tree), and far future (forces a
 * horizon jump when the ring drains).
 */
constexpr Tick delayTable[] = {0,    1,    2,    7,    63,   500,
                               2047, 2048, 2049, 5000, 100000};
constexpr std::size_t numDelays =
    sizeof(delayTable) / sizeof(delayTable[0]);

/**
 * Both models execute the same script: each event's id determines
 * (via mix) how many follow-ups it schedules and at which delays, so
 * identical execution order implies identical id assignment for the
 * follow-ups, inductively. Any divergence in ordering therefore shows
 * up as a difference in the recorded id sequences.
 */
struct ScriptedRun
{
    std::uint64_t seed;
    int cap;                 //!< stop spawning follow-ups past this
    int created = 0;
    std::vector<int> order;  //!< ids in execution order

    virtual ~ScriptedRun() = default;
    virtual void spawnAt(Tick when, int id) = 0;
    virtual Tick timeNow() const = 0;

    int
    spawn(Tick when)
    {
        int id = created++;
        spawnAt(when, id);
        return id;
    }

    void
    fire(int id)
    {
        order.push_back(id);
        std::uint64_t h = mix(seed, id);
        int followups = created < cap ? static_cast<int>(h % 3) : 0;
        for (int k = 0; k < followups; ++k) {
            Tick d = delayTable[(h >> (8 + 7 * k)) % numDelays];
            spawn(timeNow() + d);
        }
    }
};

struct RealRun : ScriptedRun
{
    EventQueue eq;

    void
    spawnAt(Tick when, int id) override
    {
        eq.schedule(when, [this, id] { fire(id); });
    }

    Tick timeNow() const override { return eq.now(); }
};

struct RefRun : ScriptedRun
{
    ReferenceHeap heap;

    void
    spawnAt(Tick when, int id) override
    {
        heap.schedule(when, id);
    }

    Tick timeNow() const override { return heap.now; }
};

TEST(EventQueueEquivalence, MatchesReferenceHeapOnRandomSchedules)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RealRun real;
        RefRun ref;
        real.seed = ref.seed = seed;
        real.cap = ref.cap = 4000;

        // Seed both models with the same initial batch, spread across
        // several ring windows.
        for (int i = 0; i < 64; ++i) {
            Tick when = mix(seed ^ 0xABCDEF, i) % 8000;
            real.spawn(when);
            ref.spawn(when);
        }
        ASSERT_EQ(real.created, ref.created);

        // Run in truncated chunks, injecting fresh events between the
        // chunks. After a chunk ends inside an empty stretch the real
        // queue's horizon may sit far ahead of now, so some of these
        // injections land below the ring window and exercise the
        // direct-from-overflow "gap" path.
        constexpr Tick limits[] = {700, 2500, 2600, 40000, maxTick};
        for (Tick limit : limits) {
            Tick tReal = real.eq.run(limit);
            Tick tRef = ref.heap.run(
                limit, [&ref](int id) { ref.fire(id); });
            ASSERT_EQ(tReal, tRef) << "seed " << seed << " limit "
                                   << limit;
            if (limit == maxTick)
                break;
            for (int i = 0; i < 4; ++i) {
                Tick d = delayTable[mix(seed ^ limit, i) % numDelays];
                real.spawn(tReal + d);
                ref.spawn(tRef + d);
            }
        }

        ASSERT_EQ(real.order, ref.order) << "seed " << seed;
        EXPECT_GT(real.order.size(), 100u) << "seed " << seed;
        EXPECT_TRUE(real.eq.empty());
        EXPECT_EQ(real.eq.executed(), real.order.size());
    }
}

TEST(EventQueueEquivalence, SameTickOrderSurvivesOverflowMigration)
{
    // Ten same-tick events, half scheduled while the tick is beyond
    // the ring window (overflow tree), half after a horizon advance
    // moved the tick into the ring. Insertion order must hold across
    // the migration.
    EventQueue eq;
    std::vector<int> order;
    constexpr Tick target = 5000;

    for (int i = 0; i < 5; ++i)
        eq.schedule(target, [&order, i] { order.push_back(i); });

    // Executing an event at 2996 pulls the horizon up; 5000 is then
    // inside [2996, 2996 + 2048) and the overflow list migrates into
    // a ring bucket.
    eq.schedule(2996, [&] {
        for (int i = 5; i < 10; ++i)
            eq.schedule(target, [&order, i] { order.push_back(i); });
    });

    eq.run();
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueEquivalence, GapEventBelowHorizonAfterTruncatedRun)
{
    // Only a far-future event is pending, so run(50) jumps the
    // horizon to 100000 while now is pinned back to 50. An event
    // scheduled at 60 now lies below the ring window ("gap") and must
    // still execute first.
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(100000, [&] { fired.push_back(eq.now()); });

    EXPECT_EQ(eq.run(50), 50u);
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(eq.pending(), 1u);

    eq.schedule(60, [&] { fired.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 60u);
    EXPECT_EQ(fired[1], 100000u);
}

TEST(EventQueuePool, CancelPreventsExecution)
{
    EventQueue eq;
    int ran = 0;
    EventQueue::EventId id =
        eq.schedule(100, [&ran] { ++ran; });
    ASSERT_TRUE(static_cast<bool>(id));
    EXPECT_EQ(eq.pending(), 1u);

    EXPECT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.cancel(id));  // second cancel: stale handle

    eq.schedule(100, [&ran] { ran += 10; });
    eq.run();
    EXPECT_EQ(ran, 10);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueuePool, StaleIdAfterExecutionIsRejected)
{
    // After the event fires its node returns to the pool and may be
    // handed to a new schedule(); the generation tag must keep the
    // old handle from cancelling the new tenant.
    EventQueue eq;
    int ran = 0;
    EventQueue::EventId id = eq.schedule(10, [&ran] { ++ran; });
    eq.run();
    EXPECT_EQ(ran, 1);
    EXPECT_FALSE(eq.cancel(id));

    int ran2 = 0;
    eq.schedule(20, [&ran2] { ++ran2; });
    EXPECT_FALSE(eq.cancel(id));  // node likely reused; still stale
    eq.run();
    EXPECT_EQ(ran2, 1);
}

TEST(EventQueuePool, ReuseUnderCancelRescheduleIsAllocationFree)
{
    EventQueue eq;

    // Warm the pool: one chunk refill is expected, then the free
    // list must satisfy everything below.
    int warm = 0;
    for (int i = 0; i < 32; ++i)
        eq.schedule(i, [&warm] { ++warm; });
    eq.run();
    EXPECT_EQ(warm, 32);
    std::uint64_t allocsAfterWarmup = eq.scheduleAllocs();

    int ran = 0;
    for (int round = 0; round < 10000; ++round) {
        Tick base = eq.now();
        EventQueue::EventId a =
            eq.schedule(base + 5, [&ran] { ++ran; });
        EventQueue::EventId b =
            eq.schedule(base + 5, [&ran] { ran += 100; });
        EXPECT_TRUE(eq.cancel(a));
        // Reschedule the same work later; the cancelled node is
        // reclaimed as the queue sweeps past its tick.
        eq.schedule(base + 7, [&ran] { ++ran; });
        eq.run(base + 10);
        EXPECT_FALSE(eq.cancel(b));  // already fired
    }
    EXPECT_EQ(ran, 10000 * 101);
    EXPECT_EQ(eq.executed(), 32u + 2 * 10000u);
    EXPECT_EQ(eq.pending(), 0u);

    // All small inline callbacks, pool always warm: zero further
    // allocations across 30000 schedules.
    EXPECT_EQ(eq.scheduleAllocs(), allocsAfterWarmup);
    EXPECT_GE(eq.peakPending(), 2u);
}

TEST(InlineCallback, SmallCaptureStaysInline)
{
    int x = 0;
    InlineFunction<80> f([&x] { x = 42; });
    EXPECT_TRUE(static_cast<bool>(f));
    EXPECT_FALSE(f.onHeap());
    f();
    EXPECT_EQ(x, 42);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap)
{
    std::array<char, 200> big{};
    big[0] = 7;
    big[199] = 9;
    int sum = 0;
    InlineFunction<80> f(
        [big, &sum] { sum = big[0] + big[199]; });
    EXPECT_TRUE(f.onHeap());
    f();
    EXPECT_EQ(sum, 16);

    // Move semantics transfer the heap cell, not copy it.
    InlineFunction<80> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_TRUE(g.onHeap());
    sum = 0;
    g();
    EXPECT_EQ(sum, 16);
}

TEST(InlineCallback, MoveOnlyCaptureWorks)
{
    auto p = std::make_unique<int>(11);
    int got = 0;
    InlineFunction<80> f([p = std::move(p), &got] { got = *p; });
    EXPECT_FALSE(f.onHeap());
    InlineFunction<80> g = std::move(f);
    g();
    EXPECT_EQ(got, 11);
}

TEST(InlineCallback, QueueCountsHeapFallbacksAsScheduleAllocs)
{
    EventQueue eq;

    // Drain one pool chunk's worth first so the only allocations
    // counted below come from the callback fallback path.
    for (int i = 0; i < 300; ++i)
        eq.schedule(i, [] {});
    eq.run();
    std::uint64_t base = eq.scheduleAllocs();

    int small = 0;
    eq.schedule(eq.now() + 1, [&small] { ++small; });
    EXPECT_EQ(eq.scheduleAllocs(), base);  // inline: no alloc

    std::array<char, 200> big{};
    big[5] = 1;
    int large = 0;
    eq.schedule(eq.now() + 2,
                [big, &large] { large = big[5]; });
    EXPECT_EQ(eq.scheduleAllocs(), base + 1);  // heap fallback

    eq.run();
    EXPECT_EQ(small, 1);
    EXPECT_EQ(large, 1);
}

} // namespace
} // namespace cpx
