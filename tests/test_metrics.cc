/**
 * @file
 * Tests for the interval metrics subsystem (src/obs/metrics.hh) and
 * its report pipeline: registry column order, the repeating sampler's
 * delta rows and self-stop, sampling neutrality (sampled runs must be
 * bit-identical to unsampled ones), mesh link instrumentation,
 * histogram percentiles, the Accumulator/Histogram merge fixes, and
 * a golden-file check of the cpxreport markdown generator against
 * the committed mini sweep in tests/data/.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <numeric>
#include <string>

#include "bench/report_gen.hh"
#include "bench/runner.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "net/mesh.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

namespace cpx
{
namespace
{

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistry, KeepsRegistrationOrderAndReadsLiveValues)
{
    MetricRegistry reg;
    Counter c;
    std::uint64_t v = 7;
    reg.addCounter("alpha", c);
    reg.addValue("beta", v);
    reg.add("gamma", [] { return std::uint64_t{42}; });

    ASSERT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.name(0), "alpha");
    EXPECT_EQ(reg.name(1), "beta");
    EXPECT_EQ(reg.name(2), "gamma");

    ++c;
    ++c;
    v = 11;
    std::vector<std::uint64_t> snap;
    reg.snapshot(snap);
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0], 2u);
    EXPECT_EQ(snap[1], 11u);
    EXPECT_EQ(snap[2], 42u);
}

// ---------------------------------------------------------------------------
// IntervalSampler
// ---------------------------------------------------------------------------

TEST(IntervalSampler, RecordsPerIntervalDeltasAndStopsItself)
{
    EventQueue eq;
    std::uint64_t counter = 0;
    MetricRegistry reg;
    reg.addValue("c", counter);

    // Bump the counter between sampling points; the run is "done"
    // once simulated time reaches 3000, so the firing at tick 3000
    // records the final row and unschedules the repeat.
    eq.schedule(500, [&counter] { counter += 1; });
    eq.schedule(1500, [&counter] { counter += 2; });
    eq.schedule(2500, [&counter] { counter += 3; });

    IntervalSampler sampler(eq, reg, 1000);
    sampler.start([&eq] { return eq.now() >= 3000; });
    eq.run();

    MetricTimeSeries series = sampler.takeSeries();
    EXPECT_EQ(series.interval, 1000u);
    ASSERT_EQ(series.names.size(), 1u);
    EXPECT_EQ(series.names[0], "c");
    ASSERT_EQ(series.rows(), 3u);
    EXPECT_EQ(series.ticks[0], 1000u);
    EXPECT_EQ(series.ticks[1], 2000u);
    EXPECT_EQ(series.ticks[2], 3000u);
    EXPECT_EQ(series.at(0, 0), 1u);
    EXPECT_EQ(series.at(1, 0), 2u);
    EXPECT_EQ(series.at(2, 0), 3u);

    // The sampler must not keep the queue alive after done(): the
    // queue drained, so simulated time stopped at the last firing.
    EXPECT_EQ(eq.now(), 3000u);
}

TEST(IntervalSamplerDeathTest, RejectsZeroInterval)
{
    EventQueue eq;
    MetricRegistry reg;
    EXPECT_DEATH({ IntervalSampler sampler(eq, reg, 0); },
                 "interval must be > 0");
}

// ---------------------------------------------------------------------------
// Sampling neutrality: observation cannot change simulated behaviour
// ---------------------------------------------------------------------------

MachineParams
meshParams(unsigned procs = 4)
{
    MachineParams params =
        makeParams(ProtocolConfig::pcwm(),
                   Consistency::ReleaseConsistency,
                   NetworkKind::Mesh, 32);
    params.numProcs = procs;
    return params;
}

// Drop the event-queue telemetry lines from a stats dump: the
// sampler's own events legitimately perturb eventsExecuted and
// peakPendingEvents, which is why the JSON baseline gate exempts the
// "kernel" block. Every simulated statistic must still match exactly.
std::string
stripKernelTelemetry(std::string dump)
{
    std::string out;
    std::size_t pos = 0;
    while (pos < dump.size()) {
        std::size_t end = dump.find('\n', pos);
        if (end == std::string::npos)
            end = dump.size();
        std::string line = dump.substr(pos, end - pos);
        if (line.rfind("system.eventsExecuted", 0) != 0 &&
            line.rfind("system.peakPendingEvents", 0) != 0 &&
            line.rfind("system.scheduleAllocs", 0) != 0)
            out += line + "\n";
        pos = end + 1;
    }
    return out;
}

TEST(SamplingNeutrality, SampledRunStatsAreBitIdentical)
{
    System plain(meshParams());
    auto w1 = makeWorkload("migratory", 0.1);
    WorkloadRun r1 = runWorkload(plain, *w1);

    System sampled(meshParams());
    auto w2 = makeWorkload("migratory", 0.1);
    WorkloadRun r2 = runWorkload(sampled, *w2, maxTick, 2000);

    ASSERT_TRUE(r1.verified);
    ASSERT_TRUE(r2.verified);
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_TRUE(r1.stats.timeseries.empty());
    EXPECT_FALSE(r2.stats.timeseries.empty());
    // The full stats dump covers every simulated counter.
    EXPECT_EQ(stripKernelTelemetry(formatSystemStats(plain)),
              stripKernelTelemetry(formatSystemStats(sampled)));
}

TEST(SamplingNeutrality, TwoSampledRunsProduceIdenticalSeries)
{
    auto sampleOnce = [] {
        System sys(meshParams());
        auto w = makeWorkload("migratory", 0.1);
        return runWorkload(sys, *w, maxTick, 2000).stats.timeseries;
    };
    MetricTimeSeries a = sampleOnce();
    MetricTimeSeries b = sampleOnce();

    EXPECT_EQ(a.interval, b.interval);
    EXPECT_EQ(a.names, b.names);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.deltas, b.deltas);
    EXPECT_GT(a.rows(), 1u);
}

// ---------------------------------------------------------------------------
// Mesh link instrumentation
// ---------------------------------------------------------------------------

TEST(MeshLinkMetrics, SeriesCarriesPerLinkFlitColumns)
{
    System sys(meshParams());
    auto w = makeWorkload("migratory", 0.1);
    WorkloadRun run = runWorkload(sys, *w, maxTick, 2000);
    ASSERT_TRUE(run.verified);
    const MetricTimeSeries &series = run.stats.timeseries;
    ASSERT_FALSE(series.empty());

    // Registration is deterministic: a fresh registry over the same
    // (finished) system reproduces the series' column set, and its
    // cumulative values bound the summed deltas (traffic after the
    // final sampling row is not in the series).
    MetricRegistry reg;
    sys.registerMetrics(reg);
    ASSERT_EQ(reg.size(), series.names.size());
    std::uint64_t mesh_columns = 0, mesh_traffic = 0;
    for (std::size_t col = 0; col < reg.size(); ++col) {
        ASSERT_EQ(reg.name(col), series.names[col]);
        if (series.names[col].rfind("mesh.", 0) != 0)
            continue;
        ++mesh_columns;
        std::uint64_t sum = 0;
        for (std::size_t row = 0; row < series.rows(); ++row)
            sum += series.at(row, col);
        EXPECT_LE(sum, reg.value(col)) << series.names[col];
        mesh_traffic += sum;
    }
    // 2x2 mesh: 2 metrics per in-grid unidirectional link.
    EXPECT_EQ(mesh_columns, 16u);
    EXPECT_GT(mesh_traffic, 0u);

    // The raw per-link hook agrees that traffic crossed the mesh.
    MeshNetwork *mesh = sys.mesh();
    ASSERT_NE(mesh, nullptr);
    std::uint64_t hook_flits = 0;
    for (unsigned y = 0; y < mesh->rows(); ++y)
        for (unsigned x = 0; x < mesh->columns(); ++x)
            for (unsigned d = 0; d < 4; ++d)
                hook_flits += mesh->linkFlitCount(x, y, d);
    EXPECT_GT(hook_flits, 0u);
}

// ---------------------------------------------------------------------------
// Histogram percentiles
// ---------------------------------------------------------------------------

TEST(HistogramPercentile, InterpolatesAndClampsToObservedRange)
{
    Histogram h(10, 10);
    for (std::uint64_t v = 5; v < 100; v += 10)  // one per bucket
        h.sample(v);

    // 10 evenly spread samples: the median sits mid-range and every
    // estimate stays inside the exact observed [min, max].
    EXPECT_GE(h.percentile(0.50), h.summary().min());
    EXPECT_LE(h.percentile(0.50), h.summary().max());
    EXPECT_NEAR(h.percentile(0.50), 45.0, 10.0);
    EXPECT_LE(h.percentile(0.99), h.summary().max());
    EXPECT_GE(h.percentile(0.99), h.percentile(0.90));
    EXPECT_GE(h.percentile(0.90), h.percentile(0.50));
}

TEST(HistogramPercentile, EmptyIsZeroAndOverflowReportsMax)
{
    Histogram empty(16, 4);
    EXPECT_EQ(empty.percentile(0.5), 0.0);

    Histogram h(16, 2);  // values >= 32 land in overflow
    h.sample(1);
    h.sample(100);
    h.sample(200);
    // Ranks in the overflow bucket cannot be resolved beyond the
    // observed maximum.
    EXPECT_EQ(h.percentile(0.99), 200.0);
}

// ---------------------------------------------------------------------------
// Merge fixes
// ---------------------------------------------------------------------------

TEST(AccumulatorMerge, EmptySideDoesNotCorruptMinMax)
{
    Accumulator a;
    a.sample(5.0);
    a.sample(9.0);

    Accumulator empty;
    a.merge(empty);  // no-op: empty's zero min/max must not leak in
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 5.0);
    EXPECT_EQ(a.max(), 9.0);

    Accumulator b;
    b.merge(a);  // adopt: min must be 5, not min(0, 5) = 0
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.min(), 5.0);
    EXPECT_EQ(b.max(), 9.0);
    EXPECT_EQ(b.mean(), 7.0);
}

TEST(HistogramMergeDeathTest, GeometryMismatchIsFatal)
{
    Histogram a(16, 8);
    Histogram b(32, 8);
    EXPECT_DEATH(a.merge(b), "geometry mismatch");
    Histogram c(16, 4);
    EXPECT_DEATH(a.merge(c), "geometry mismatch");
}

// ---------------------------------------------------------------------------
// Report generator (golden-filed against tests/data/)
// ---------------------------------------------------------------------------

std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << "cannot open " << path;
    return std::string(std::istreambuf_iterator<char>(file),
                       std::istreambuf_iterator<char>());
}

TEST(ReportGen, MiniSweepValidatesAsResultsFile)
{
    std::string error;
    EXPECT_TRUE(bench::validateResultsFile(
        std::string(CPX_TEST_DATA_DIR) + "/mini_sweep.json", error))
        << error;
}

TEST(ReportGen, MatchesGoldenMiniSweepReport)
{
    std::string json =
        readFile(std::string(CPX_TEST_DATA_DIR) + "/mini_sweep.json");
    bench::JsonValue doc;
    std::string error;
    ASSERT_TRUE(bench::parseJson(json, doc, error)) << error;

    std::string report;
    ASSERT_TRUE(bench::generateReport(doc, bench::ReportOptions{},
                                      report, error))
        << error;
    std::string golden = readFile(std::string(CPX_TEST_DATA_DIR) +
                                  "/mini_sweep_report.md");
    EXPECT_EQ(report, golden)
        << "regenerate with: cpxreport tests/data/mini_sweep.json "
           "--out=tests/data/mini_sweep_report.md";
}

TEST(ReportGen, RejectsDocumentsWithoutSchema)
{
    bench::JsonValue doc;
    std::string error;
    ASSERT_TRUE(bench::parseJson("{\"points\": []}", doc, error))
        << error;
    std::string report;
    EXPECT_FALSE(bench::generateReport(doc, bench::ReportOptions{},
                                       report, error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

} // anonymous namespace
} // namespace cpx
