/**
 * @file
 * Ablation (ours): processor-count scaling.
 *
 * The paper fixes the machine at 16 processors; this bench sweeps
 * the node count to show how the extensions' gains evolve with
 * scale — more processors mean more sharers per invalidation, more
 * update fan-out, and longer barrier chains, so the P+CW and P+M
 * advantages are scale-dependent.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    const std::vector<unsigned> counts{2, 4, 8, 16, 32};
    const std::vector<std::string> apps{"mp3d", "ocean"};

    struct Cell
    {
        std::size_t basic, pcw, pm;
    };
    // app-index -> count-index -> handles.
    std::vector<std::vector<Cell>> grid;
    for (const std::string &app : apps) {
        std::vector<Cell> row;
        for (unsigned procs : counts) {
            std::string tag =
                "ablation_scalability/p" + std::to_string(procs);
            row.push_back(Cell{
                runner.add(app, makeParams(ProtocolConfig::basic()),
                           tag, procs),
                runner.add(app, makeParams(ProtocolConfig::pcw()),
                           tag, procs),
                runner.add(app, makeParams(ProtocolConfig::pm()),
                           tag, procs)});
        }
        grid.push_back(std::move(row));
    }

    return [&runner, grid, counts, apps]() {
        printBanner(
            "Ablation — scaling the processor count (execution time "
            "in kilopclocks; ratio vs BASIC at the same count)",
            "(not in the paper — the extensions' gains vary with "
            "scale)");

        for (std::size_t a = 0; a < apps.size(); ++a) {
            std::printf("\n%s:\n%-7s %12s %16s %16s\n",
                        apps[a].c_str(), "procs", "BASIC", "P+CW",
                        "P+M");
            for (std::size_t c = 0; c < counts.size(); ++c) {
                const Cell &cell = grid[a][c];
                if (!rowOk(runner,
                           {cell.basic, cell.pcw, cell.pm},
                           "ablation_scalability " + apps[a] + " p" +
                               std::to_string(counts[c])))
                    continue;
                Tick tb = runner[cell.basic].run.execTime;
                Tick tc = runner[cell.pcw].run.execTime;
                Tick tm = runner[cell.pm].run.execTime;
                std::printf(
                    "%-7u %11lluk %10lluk %3.0f%% %10lluk %3.0f%%\n",
                    counts[c],
                    static_cast<unsigned long long>(tb / 1000),
                    static_cast<unsigned long long>(tc / 1000),
                    100.0 * tc / tb,
                    static_cast<unsigned long long>(tm / 1000),
                    100.0 * tm / tb);
            }
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(ablation_scalability,
                 "Ablation — processor-count scaling", 120, setup)
