/**
 * @file
 * Ablation (ours): processor-count scaling.
 *
 * The paper fixes the machine at 16 processors; this bench sweeps
 * the node count to show how the extensions' gains evolve with
 * scale — more processors mean more sharers per invalidation, more
 * update fan-out, and longer barrier chains, so the P+CW and P+M
 * advantages are scale-dependent.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Ablation — scaling the processor count (execution time in "
        "kilopclocks; ratio vs BASIC at the same count)",
        "(not in the paper — the extensions' gains vary with scale)");

    const unsigned counts[] = {2, 4, 8, 16, 32};
    const char *apps[] = {"mp3d", "ocean"};

    for (const char *app : apps) {
        std::printf("\n%s:\n%-7s %12s %16s %16s\n", app, "procs",
                    "BASIC", "P+CW", "P+M");
        for (unsigned procs : counts) {
            bench::Options scaled = opts;
            scaled.procs = procs;
            MachineParams basic = makeParams(ProtocolConfig::basic());
            MachineParams pcw = makeParams(ProtocolConfig::pcw());
            MachineParams pm = makeParams(ProtocolConfig::pm());
            Tick tb = bench::runOne(app, basic, scaled).execTime;
            Tick tc = bench::runOne(app, pcw, scaled).execTime;
            Tick tm = bench::runOne(app, pm, scaled).execTime;
            std::printf("%-7u %11lluk %10lluk %3.0f%% %10lluk %3.0f%%\n",
                        procs,
                        static_cast<unsigned long long>(tb / 1000),
                        static_cast<unsigned long long>(tc / 1000),
                        100.0 * tc / tb,
                        static_cast<unsigned long long>(tm / 1000),
                        100.0 * tm / tb);
        }
    }
    return 0;
}
