/**
 * @file
 * Ablation (DESIGN.md / §3.3): write-cache size.
 *
 * [4] reports that a direct-mapped write cache with only four blocks
 * is very effective at combining writes to the same block; this
 * bench sweeps the size and reports execution time, traffic, and
 * the write-combining rate.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Ablation — write-cache size sweep (CW under RC)",
        "four blocks already capture most write combining [4]; "
        "larger write caches mostly delay, not reduce, the updates");

    for (const std::string &app : paperApplications()) {
        std::printf("\n%s:\n%-10s %10s %12s %14s\n", app.c_str(),
                    "wc blocks", "exec", "net bytes",
                    "combined writes");
        Tick base = 0;
        for (unsigned blocks : {1u, 2u, 4u, 8u, 16u}) {
            MachineParams params = makeParams(ProtocolConfig::cw());
            params.writeCacheBlocks = blocks;
            WorkloadRun run = bench::runOne(app, params, opts);
            if (blocks == 1)
                base = run.execTime;
            std::printf("%-10u %9.1f%% %12llu %14llu\n", blocks,
                        100.0 * run.execTime / base,
                        static_cast<unsigned long long>(
                            run.stats.netBytes),
                        static_cast<unsigned long long>(
                            run.stats.combinedWrites));
        }
    }
    return 0;
}
