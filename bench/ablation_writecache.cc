/**
 * @file
 * Ablation (DESIGN.md / §3.3): write-cache size.
 *
 * [4] reports that a direct-mapped write cache with only four blocks
 * is very effective at combining writes to the same block; this
 * bench sweeps the size and reports execution time, traffic, and
 * the write-combining rate.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    const std::vector<unsigned> sizes{1, 2, 4, 8, 16};

    // app-index -> size-index -> handle.
    std::vector<std::vector<std::size_t>> grid;
    for (const std::string &app : paperApplications()) {
        std::vector<std::size_t> row;
        for (unsigned blocks : sizes) {
            MachineParams params = makeParams(ProtocolConfig::cw());
            params.writeCacheBlocks = blocks;
            row.push_back(runner.add(
                app, params,
                "ablation_writecache/wc" + std::to_string(blocks)));
        }
        grid.push_back(std::move(row));
    }

    return [&runner, grid, sizes]() {
        printBanner(
            "Ablation — write-cache size sweep (CW under RC)",
            "four blocks already capture most write combining [4]; "
            "larger write caches mostly delay, not reduce, the "
            "updates");

        for (std::size_t a = 0; a < grid.size(); ++a) {
            if (!rowOk(runner, grid[a],
                       "ablation_writecache " +
                           paperApplications()[a]))
                continue;
            std::printf("\n%s:\n%-10s %10s %12s %14s\n",
                        paperApplications()[a].c_str(), "wc blocks",
                        "exec", "net bytes", "combined writes");
            Tick base = runner[grid[a][0]].run.execTime;
            for (std::size_t s = 0; s < sizes.size(); ++s) {
                const SweepResult &r = runner[grid[a][s]];
                std::printf("%-10u %9.1f%% %12llu %14llu\n",
                            sizes[s],
                            100.0 * r.run.execTime / base,
                            static_cast<unsigned long long>(
                                r.run.stats.netBytes),
                            static_cast<unsigned long long>(
                                r.run.stats.combinedWrites));
            }
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(ablation_writecache,
                 "Ablation — write-cache size", 110, setup)
