/**
 * @file
 * Ablation (paper §6): hardware vs software-controlled prefetching.
 *
 * The paper contrasts its hardware scheme with Mowry & Gupta's
 * software-controlled prefetching [9] and conjectures that other
 * prefetching schemes would interact with M and CW the same way.
 * This bench runs LU with compiler-style software prefetches
 * (shared pivot column, exclusive target column) against the
 * hardware adaptive scheme, alone and combined with CW and M.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Ablation — hardware (P) vs software [9] prefetching on LU "
        "(execution time relative to BASIC = 100)",
        "§6: the hardware scheme needs no compiler support; software "
        "read-exclusive prefetching additionally attacks the write "
        "penalty, like P+M does in hardware");

    Tick base = bench::runOne("lu", makeParams(ProtocolConfig::basic()),
                              opts)
                    .execTime;

    struct Row
    {
        const char *label;
        const char *app;
        ProtocolConfig proto;
    };
    const Row rows[] = {
        {"hw P", "lu", ProtocolConfig::p()},
        {"sw prefetch", "lu_swpf", ProtocolConfig::basic()},
        {"sw + hw P", "lu_swpf", ProtocolConfig::p()},
        {"hw P+M", "lu", ProtocolConfig::pm()},
        {"sw + M", "lu_swpf", ProtocolConfig::m()},
        {"hw P+CW", "lu", ProtocolConfig::pcw()},
        {"sw + CW", "lu_swpf", ProtocolConfig::cw()},
    };

    std::printf("%-14s %10s %12s\n", "config", "rel.time",
                "sw prefetches");
    std::printf("%-14s %9.1f%% %12s\n", "BASIC", 100.0, "-");
    for (const Row &row : rows) {
        MachineParams params = makeParams(row.proto);
        params.numProcs = opts.procs;
        System sys(params);
        auto w = makeWorkload(row.app, opts.scale);
        WorkloadRun run = runWorkload(sys, *w);
        if (!run.verified)
            fatal("%s failed verification", row.label);
        std::uint64_t sw = 0;
        for (NodeId n = 0; n < params.numProcs; ++n)
            sw += sys.node(n).slc.softwarePrefetches();
        std::printf("%-14s %9.1f%% %12llu\n", row.label,
                    100.0 * run.execTime / base,
                    static_cast<unsigned long long>(sw));
    }
    return 0;
}
