/**
 * @file
 * Ablation (paper §6): hardware vs software-controlled prefetching.
 *
 * The paper contrasts its hardware scheme with Mowry & Gupta's
 * software-controlled prefetching [9] and conjectures that other
 * prefetching schemes would interact with M and CW the same way.
 * This bench runs LU with compiler-style software prefetches
 * (shared pivot column, exclusive target column) against the
 * hardware adaptive scheme, alone and combined with CW and M.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    struct Row
    {
        const char *label;
        const char *app;
        ProtocolConfig proto;
    };
    const std::vector<Row> rows{
        {"hw P", "lu", ProtocolConfig::p()},
        {"sw prefetch", "lu_swpf", ProtocolConfig::basic()},
        {"sw + hw P", "lu_swpf", ProtocolConfig::p()},
        {"hw P+M", "lu", ProtocolConfig::pm()},
        {"sw + M", "lu_swpf", ProtocolConfig::m()},
        {"hw P+CW", "lu", ProtocolConfig::pcw()},
        {"sw + CW", "lu_swpf", ProtocolConfig::cw()},
    };

    std::size_t baseline = runner.add(
        "lu", makeParams(ProtocolConfig::basic()),
        "ablation_swprefetch/BASIC");
    std::vector<std::size_t> handles;
    for (const Row &row : rows)
        handles.push_back(
            runner.add(row.app, makeParams(row.proto),
                       std::string("ablation_swprefetch/") +
                           row.label));

    return [&runner, rows, baseline, handles]() {
        printBanner(
            "Ablation — hardware (P) vs software [9] prefetching on "
            "LU (execution time relative to BASIC = 100)",
            "§6: the hardware scheme needs no compiler support; "
            "software read-exclusive prefetching additionally "
            "attacks the write penalty, like P+M does in hardware");

        if (!rowOk(runner, {baseline},
                   "ablation_swprefetch baseline"))
            return;
        Tick base = runner[baseline].run.execTime;

        std::printf("%-14s %10s %12s\n", "config", "rel.time",
                    "sw prefetches");
        std::printf("%-14s %9.1f%% %12s\n", "BASIC", 100.0, "-");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (!rowOk(runner, {handles[i]},
                       std::string("ablation_swprefetch ") +
                           rows[i].label))
                continue;
            const SweepResult &r = runner[handles[i]];
            std::printf("%-14s %9.1f%% %12llu\n", rows[i].label,
                        100.0 * r.run.execTime / base,
                        static_cast<unsigned long long>(
                            r.run.stats.softwarePrefetches));
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(ablation_swprefetch,
                 "Ablation — hw vs sw prefetching", 130, setup)
