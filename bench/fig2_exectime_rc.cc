/**
 * @file
 * Figure 2: execution times relative to BASIC under release
 * consistency, for every protocol combination and all five
 * applications, decomposed into busy / read-stall / acquire-stall
 * (plus write/release columns, which the paper folds away because
 * release consistency hides them).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Figure 2 — relative execution times under release "
        "consistency (BASIC = 100)",
        "P and CW are the best single extensions; P+CW approaches "
        "additive gains (speedup up to ~2 on MP3D/Cholesky); M alone "
        "only trims acquire stall; CW+M forfeits CW's gain on "
        "migratory applications");

    for (const std::string &app : paperApplications()) {
        std::vector<RunResult> results;
        for (const ProtocolConfig &proto : figure2Protocols()) {
            MachineParams params = makeParams(proto);
            results.push_back(bench::runOne(app, params, opts).stats);
        }
        printRelativeExecutionTimes(app + " (RC)", results,
                                    results.front());
    }
    return 0;
}
