/**
 * @file
 * Figure 2: execution times relative to BASIC under release
 * consistency, for every protocol combination and all five
 * applications, decomposed into busy / read-stall / acquire-stall
 * (plus write/release columns, which the paper folds away because
 * release consistency hides them).
 */

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    std::vector<std::vector<std::size_t>> grid;
    for (const std::string &app : paperApplications()) {
        std::vector<std::size_t> row;
        for (const ProtocolConfig &proto : figure2Protocols())
            row.push_back(runner.add(app, makeParams(proto),
                                     "fig2/" + app));
        grid.push_back(std::move(row));
    }

    return [&runner, grid]() {
        printBanner(
            "Figure 2 — relative execution times under release "
            "consistency (BASIC = 100)",
            "P and CW are the best single extensions; P+CW approaches "
            "additive gains (speedup up to ~2 on MP3D/Cholesky); M "
            "alone only trims acquire stall; CW+M forfeits CW's gain "
            "on migratory applications");
        for (std::size_t a = 0; a < grid.size(); ++a) {
            if (!rowOk(runner, grid[a],
                       "fig2 " + paperApplications()[a]))
                continue;
            std::vector<RunResult> results;
            for (std::size_t h : grid[a])
                results.push_back(runner[h].run.stats);
            printRelativeExecutionTimes(
                paperApplications()[a] + " (RC)", results,
                results.front());
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(fig2_exectime_rc,
                 "Figure 2 — execution time under RC", 20, setup)
