/**
 * @file
 * §5.4 sensitivity: write-buffer sizing. The paper reruns the §5.1
 * experiments with FLWB and SLWB reduced to 4 entries each and finds
 * that only BASIC and P suffer (from pending write requests), while
 * CW, M and their combinations are unaffected.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Sensitivity (§5.4) — 4-entry FLWB/SLWB vs the default "
        "8/16 (RC; percent slowdown from shrinking the buffers)",
        "only BASIC and P suffer from the small buffers (pending "
        "write requests); CW, M and their combinations are "
        "insensitive — P+CW and P+M need less buffering than BASIC");

    const ProtocolConfig protos[] = {
        ProtocolConfig::basic(), ProtocolConfig::p(),
        ProtocolConfig::cw(),    ProtocolConfig::m(),
        ProtocolConfig::pcw(),   ProtocolConfig::pm()};

    std::printf("%-10s", "protocol");
    for (const std::string &app : paperApplications())
        std::printf(" %9s", app.c_str());
    std::printf("\n");

    for (const ProtocolConfig &proto : protos) {
        std::printf("%-10s", proto.name().c_str());
        for (const std::string &app : paperApplications()) {
            MachineParams big = makeParams(proto);
            MachineParams small = makeParams(proto);
            small.flwbEntries = 4;
            small.slwbEntries = 4;
            Tick t_big = bench::runOne(app, big, opts).execTime;
            Tick t_small = bench::runOne(app, small, opts).execTime;
            std::printf(" %+8.1f%%",
                        100.0 * (static_cast<double>(t_small) -
                                 static_cast<double>(t_big)) /
                            static_cast<double>(t_big));
        }
        std::printf("\n");
    }
    return 0;
}
