/**
 * @file
 * §5.4 sensitivity: write-buffer sizing. The paper reruns the §5.1
 * experiments with FLWB and SLWB reduced to 4 entries each and finds
 * that only BASIC and P suffer (from pending write requests), while
 * CW, M and their combinations are unaffected.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

const std::vector<ProtocolConfig> &
sensProtocols()
{
    static const std::vector<ProtocolConfig> protos{
        ProtocolConfig::basic(), ProtocolConfig::p(),
        ProtocolConfig::cw(),    ProtocolConfig::m(),
        ProtocolConfig::pcw(),   ProtocolConfig::pm()};
    return protos;
}

RenderFn
setup(SweepRunner &runner, const Options &)
{
    struct Pair
    {
        std::size_t big, small;
    };
    // protocol-index -> app-index -> {default buffers, 4-entry}.
    std::vector<std::vector<Pair>> grid;
    for (const ProtocolConfig &proto : sensProtocols()) {
        std::vector<Pair> row;
        for (const std::string &app : paperApplications()) {
            MachineParams big = makeParams(proto);
            MachineParams small = makeParams(proto);
            small.flwbEntries = 4;
            small.slwbEntries = 4;
            row.push_back(
                Pair{runner.add(app, big, "sens_buffers/default"),
                     runner.add(app, small, "sens_buffers/4-entry")});
        }
        grid.push_back(std::move(row));
    }

    return [&runner, grid]() {
        printBanner(
            "Sensitivity (§5.4) — 4-entry FLWB/SLWB vs the default "
            "8/16 (RC; percent slowdown from shrinking the buffers)",
            "only BASIC and P suffer from the small buffers (pending "
            "write requests); CW, M and their combinations are "
            "insensitive — P+CW and P+M need less buffering than "
            "BASIC");

        std::printf("%-10s", "protocol");
        for (const std::string &app : paperApplications())
            std::printf(" %9s", app.c_str());
        std::printf("\n");

        for (std::size_t p = 0; p < grid.size(); ++p) {
            std::vector<std::size_t> needed;
            for (const Pair &pair : grid[p]) {
                needed.push_back(pair.big);
                needed.push_back(pair.small);
            }
            if (!rowOk(runner, needed,
                       "sens_buffers " +
                           sensProtocols()[p].name()))
                continue;
            std::printf("%-10s", sensProtocols()[p].name().c_str());
            for (const Pair &pair : grid[p]) {
                Tick t_big = runner[pair.big].run.execTime;
                Tick t_small = runner[pair.small].run.execTime;
                std::printf(" %+8.1f%%",
                            100.0 * (static_cast<double>(t_small) -
                                     static_cast<double>(t_big)) /
                                static_cast<double>(t_big));
            }
            std::printf("\n");
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(sens_buffers, "§5.4 — buffer sensitivity", 70, setup)
