/**
 * @file
 * Figure 3: execution times under sequential consistency for B-SC,
 * P, M-SC and P+M, relative to B-SC, with BASIC under release
 * consistency as the reference line (the paper's dashed line).
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Figure 3 — relative execution times under sequential "
        "consistency (B-SC = 100)",
        "M-SC cuts write+acquire stall on migratory apps (up to 39% "
        "on MP3D); P+M gains are additive (46% MP3D, 55% Cholesky); "
        "P+M under SC beats BASIC-RC for 3 of 5 applications");

    const Consistency sc = Consistency::SequentialConsistency;

    int pm_beats_rc = 0;
    for (const std::string &app : paperApplications()) {
        std::vector<RunResult> results;
        for (const ProtocolConfig &proto :
             {ProtocolConfig::basic(), ProtocolConfig::p(),
              ProtocolConfig::m(), ProtocolConfig::pm()}) {
            MachineParams params = makeParams(proto, sc);
            results.push_back(bench::runOne(app, params, opts).stats);
        }
        // The paper's dashed line: BASIC under release consistency.
        MachineParams rc_params = makeParams(ProtocolConfig::basic());
        RunResult rc = bench::runOne(app, rc_params, opts).stats;

        printRelativeExecutionTimes(app + " (SC; B-SC = 100)",
                                    results, results.front());
        std::printf("%-10s %8.1f   <-- BASIC under RC (the paper's "
                    "dashed line)\n",
                    "BASIC-RC",
                    100.0 * rc.execTime / results.front().execTime);
        if (results.back().execTime < rc.execTime)
            ++pm_beats_rc;
    }
    std::printf("\nP+M under SC beats BASIC under RC for %d of 5 "
                "applications (paper: 3 of 5)\n",
                pm_beats_rc);
    return 0;
}
