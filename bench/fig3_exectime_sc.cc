/**
 * @file
 * Figure 3: execution times under sequential consistency for B-SC,
 * P, M-SC and P+M, relative to B-SC, with BASIC under release
 * consistency as the reference line (the paper's dashed line).
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    const Consistency sc = Consistency::SequentialConsistency;

    struct AppRow
    {
        std::vector<std::size_t> scRuns; //!< B-SC, P, M-SC, P+M
        std::size_t rcBaseline;          //!< BASIC under RC
    };
    std::vector<AppRow> grid;
    for (const std::string &app : paperApplications()) {
        AppRow row;
        for (const ProtocolConfig &proto :
             {ProtocolConfig::basic(), ProtocolConfig::p(),
              ProtocolConfig::m(), ProtocolConfig::pm()}) {
            row.scRuns.push_back(runner.add(
                app, makeParams(proto, sc), "fig3/" + app));
        }
        // The paper's dashed line: BASIC under release consistency.
        row.rcBaseline = runner.add(
            app, makeParams(ProtocolConfig::basic()),
            "fig3/" + app + "/rc-ref");
        grid.push_back(std::move(row));
    }

    return [&runner, grid]() {
        printBanner(
            "Figure 3 — relative execution times under sequential "
            "consistency (B-SC = 100)",
            "M-SC cuts write+acquire stall on migratory apps (up to "
            "39% on MP3D); P+M gains are additive (46% MP3D, 55% "
            "Cholesky); P+M under SC beats BASIC-RC for 3 of 5 "
            "applications");

        int pm_beats_rc = 0;
        int rows_rendered = 0;
        for (std::size_t a = 0; a < grid.size(); ++a) {
            std::vector<std::size_t> needed = grid[a].scRuns;
            needed.push_back(grid[a].rcBaseline);
            if (!rowOk(runner, needed,
                       "fig3 " + paperApplications()[a]))
                continue;
            ++rows_rendered;
            std::vector<RunResult> results;
            for (std::size_t h : grid[a].scRuns)
                results.push_back(runner[h].run.stats);
            const RunResult &rc = runner[grid[a].rcBaseline].run.stats;

            printRelativeExecutionTimes(
                paperApplications()[a] + " (SC; B-SC = 100)", results,
                results.front());
            std::printf("%-10s %8.1f   <-- BASIC under RC (the "
                        "paper's dashed line)\n",
                        "BASIC-RC",
                        100.0 * rc.execTime /
                            results.front().execTime);
            if (results.back().execTime < rc.execTime)
                ++pm_beats_rc;
        }
        std::printf("\nP+M under SC beats BASIC under RC for %d of %d "
                    "applications (paper: 3 of 5)\n",
                    pm_beats_rc, rows_rendered);
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(fig3_exectime_sc,
                 "Figure 3 — execution time under SC", 40, setup)
