#include "bench/runner.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/attrib.hh"
#include "sim/parse.hh"

namespace cpx::bench
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

std::string
networkName(const MachineParams &params)
{
    if (params.networkKind == NetworkKind::Uniform)
        return "uniform";
    return "mesh" + std::to_string(params.meshLinkBits);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no infinities or NaNs; the stats never produce them,
    // but never emit an unparseable document if one slips through.
    if (std::strstr(buf, "inf") || std::strstr(buf, "nan"))
        return "null";
    return buf;
}

std::string
jsonNumber(std::uint64_t v)
{
    return std::to_string(v);
}

/**
 * Exact u64 readback: the parser keeps each number's raw token in
 * JsonValue::text, so integers beyond 2^53 (which a double cannot
 * hold exactly) still round-trip through the wire format.
 */
std::uint64_t
jsonU64(const JsonValue &v)
{
    if (!v.text.empty() &&
        v.text.find_first_of(".eE") == std::string::npos)
        return std::strtoull(v.text.c_str(), nullptr, 10);
    return static_cast<std::uint64_t>(v.number);
}

/** write(2) the whole buffer, riding out EINTR/short writes. */
bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Atomically replace @p path with @p content: write "<path><suffix>",
 * fsync it, then rename() into place, so readers never observe a
 * torn file. Returns false and fills @p error on any failure (the
 * temp file is removed).
 */
bool
atomicWriteFile(const std::string &path, const std::string &content,
                const std::string &suffix, std::string &error)
{
    const std::string tmp = path + suffix;
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file) {
        error = "cannot write '" + tmp + "': " + std::strerror(errno);
        return false;
    }
    bool ok =
        std::fwrite(content.data(), 1, content.size(), file) ==
            content.size() &&
        std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
    ok = (std::fclose(file) == 0) && ok;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok) {
        error = "atomic write to '" + path +
                "' failed: " + std::strerror(errno);
        std::remove(tmp.c_str());
    }
    return ok;
}

/** 64-bit FNV-1a over @p s. */
std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

// --- fault-injection synthetic points (process isolation only) -------------
//
// Reserved app names the forked worker intercepts before touching the
// simulator, used by `cpxbench --self-test-faults` and the isolation
// tests to prove the supervisor survives every failure class. They
// never reach makeWorkload() in-process: an unknown name there is a
// fatal() (by design — the fast path cannot survive a real crash).

constexpr const char *faultAppCrash = "__crash";        // SIGABRT
constexpr const char *faultAppExit = "__exit";          // _exit(9)
constexpr const char *faultAppHang = "__hang";          // never returns
constexpr const char *faultAppGarbage = "__garbage";    // bad output
constexpr const char *faultAppFlaky = "__flaky";        // fails once
constexpr const char *faultAppUnverified = "__unverified";

/** Marker-file env var driving faultAppFlaky (see runWorkerChild). */
constexpr const char *flakyMarkerEnv = "CPX_FLAKY_MARKER";

/**
 * Run one real (non-synthetic) point on the calling thread and
 * classify the outcome: Ok, or InvariantFailure when the simulation
 * completed but failed verification.
 */
SweepResult
executeRealPoint(const SweepPoint &point, Tick sample_interval,
                 unsigned sim_threads, bool attrib)
{
    SweepResult res;
    res.point = point;
    res.attempts = 1;
    auto start = SteadyClock::now();
    System sys(point.params, sim_threads);
    std::unique_ptr<AttribSink> attrib_sink;
    if (attrib) {
        attrib_sink = std::make_unique<AttribSink>(point.params.numProcs);
        sys.setAttrib(attrib_sink.get());
    }
    auto w = makeWorkload(point.app, point.scale, point.seed);
    res.run = runWorkload(sys, *w, maxTick, sample_interval);
    std::chrono::duration<double> elapsed = SteadyClock::now() - start;
    res.hostSeconds = elapsed.count();
    if (res.run.verified) {
        res.status = PointStatus::Ok;
    } else {
        res.status = PointStatus::InvariantFailure;
        res.error = "failed verification";
    }
    return res;
}

/**
 * Worker-subprocess body: run the point (or act out its synthetic
 * fault), write one cpx-wire-1 line to @p fd, and _exit. Never
 * returns. Runs straight after fork() from the single-threaded
 * supervisor, so arbitrary library code is safe here.
 */
[[noreturn]] void
runWorkerChild(const SweepPoint &point, Tick sample_interval,
               unsigned sim_threads, bool attrib, int fd,
               const std::string &hash, unsigned attempt)
{
    SweepPoint run_point = point;
    bool force_unverified = false;
    if (point.app == faultAppCrash) {
        std::abort();
    } else if (point.app == faultAppExit) {
        _exit(9);
    } else if (point.app == faultAppHang) {
        for (;;)
            ::pause();
    } else if (point.app == faultAppGarbage) {
        const char garbage[] = "** this is not a wire record **\n";
        writeAll(fd, garbage, sizeof(garbage) - 1);
        _exit(0);
    } else if (point.app == faultAppFlaky) {
        // Transient failure: crash while the marker file is absent,
        // creating it on the way down so the retry succeeds.
        const char *marker = std::getenv(flakyMarkerEnv);
        if (!marker)
            _exit(9);
        if (::access(marker, F_OK) != 0) {
            int mfd = ::open(marker, O_CREAT | O_WRONLY, 0644);
            if (mfd >= 0)
                ::close(mfd);
            std::abort();
        }
        run_point.app = "migratory";
    } else if (point.app == faultAppUnverified) {
        run_point.app = "migratory";
        force_unverified = true;
    }

    SweepResult res = executeRealPoint(run_point, sample_interval,
                                       sim_threads, attrib);
    res.point = point;
    res.configHash = hash;
    res.attempts = attempt;
    if (force_unverified) {
        res.run.verified = false;
        res.status = PointStatus::InvariantFailure;
        res.error = "self-test: forced verification failure";
    }
    std::string line = serializeWireResult(res);
    line += '\n';
    writeAll(fd, line.data(), line.size());
    ::close(fd);
    _exit(0);
}

/** Capped exponential backoff before retry @p attempt (1-based). */
double
backoffSeconds(unsigned attempt)
{
    double d = 0.25 * static_cast<double>(
                          1u << std::min(attempt - 1, 4u));
    return std::min(d, 4.0);
}

/** Set by the SIGINT/SIGTERM handler installed during supervision. */
volatile std::sig_atomic_t g_stopRequested = 0;

void
stopRequestHandler(int)
{
    g_stopRequested = 1;
}

} // anonymous namespace

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::NotRun:           return "not-run";
      case PointStatus::Ok:               return "ok";
      case PointStatus::NonzeroExit:      return "exit";
      case PointStatus::Signal:           return "signal";
      case PointStatus::Timeout:          return "timeout";
      case PointStatus::InvariantFailure: return "invariant";
      case PointStatus::Garbage:          return "garbage";
    }
    return "?";
}

bool
pointStatusRetryable(PointStatus status)
{
    // Host-transient failure classes are worth a retry; a failed
    // verification is deterministic simulated behavior and is
    // reported as-is.
    switch (status) {
      case PointStatus::NonzeroExit:
      case PointStatus::Signal:
      case PointStatus::Timeout:
      case PointStatus::Garbage:
        return true;
      default:
        return false;
    }
}

std::string
pointConfigHash(const SweepPoint &point, Tick sample_interval,
                bool attrib)
{
    const MachineParams &p = point.params;
    std::ostringstream key;
    auto d = [](double v) { return jsonNumber(v); };
    // Every field that determines the simulated result, pinned to a
    // versioned layout: changing the simulator's parameter space
    // should change the salt, invalidating stale caches.
    // --sim-threads is deliberately absent: the parallel kernel is
    // bit-identical at every worker count, so cached results are
    // interchangeable across thread configurations.
    key << "cpx-point-2|" << point.app << '|' << d(point.scale) << '|'
        << point.seed << '|' << sample_interval << '|' << p.numProcs
        << '|' << p.blockBytes << '|' << p.pageBytes << '|'
        << p.flcBytes << '|' << p.flcHitLatency << '|'
        << p.flcFillLatency << '|' << p.flwbEntries << '|'
        << p.slcBytes << '|' << p.slcAccessLatency << '|'
        << p.slwbEntries << '|' << p.busTransferLatency << '|'
        << p.memAccessLatency << '|'
        << static_cast<int>(p.networkKind) << '|'
        << p.uniformHopLatency << '|' << p.meshLinkBits << '|'
        << p.chaos.enabled << '|' << p.chaos.seed << '|'
        << p.chaos.maxJitter << '|' << p.chaos.spikePercent << '|'
        << p.chaos.preservePairFifo << '|'
        << static_cast<int>(p.consistency) << '|'
        << p.protocol.prefetch << '|' << p.protocol.migratory << '|'
        << p.protocol.compUpdate << '|' << p.prefetchMaxDegree << '|'
        << p.prefetchInitialDegree << '|' << p.prefetchAdaptive << '|'
        << d(p.prefetchHighMark) << '|' << d(p.prefetchLowMark) << '|'
        << p.competitiveThreshold << '|' << p.writeCacheBlocks << '|'
        << p.writeCacheEnabled << '|'
        << static_cast<int>(p.directory.rep) << '|'
        << p.directory.pointers << '|'
        << static_cast<int>(p.directory.overflow) << '|'
        << p.directory.coarseness;
    // Appended only when enabled so every pre-attribution cache and
    // journal hash stays valid. Attribution never changes simulated
    // stats, but an attributed result carries a block a plain run
    // cannot supply — reusing a plain cached result for an attributed
    // request would silently drop it.
    if (attrib)
        key << "|attrib";
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key.str())));
    return buf;
}

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    if (const char *env = std::getenv("CPX_SCALE"))
        opts.scale = parsePositiveDouble(env, "CPX_SCALE");
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0)
            opts.scale = parsePositiveDouble(arg + 8, "--scale");
        else if (std::strncmp(arg, "--procs=", 8) == 0)
            opts.procs = parsePositiveUnsigned(arg + 8, "--procs");
        else if (std::strncmp(arg, "--jobs=", 7) == 0)
            opts.jobs = parsePositiveUnsigned(arg + 7, "--jobs");
        else if (std::strncmp(arg, "--seed=", 7) == 0)
            opts.seed = parseU64(arg + 7, "--seed");
        else if (std::strncmp(arg, "--json=", 7) == 0)
            opts.jsonPath = arg + 7;
        else if (std::strncmp(arg, "--sample-interval=", 18) == 0)
            opts.sampleInterval =
                parseU64(arg + 18, "--sample-interval");
        else if (std::strcmp(arg, "--attrib") == 0)
            opts.attrib = true;
        else if (std::strncmp(arg, "--sim-threads=", 14) == 0)
            opts.simThreads =
                parsePositiveUnsigned(arg + 14, "--sim-threads");
        else if (std::strncmp(arg, "--isolate=", 10) == 0) {
            const char *mode = arg + 10;
            if (std::strcmp(mode, "none") == 0)
                opts.isolate = IsolateMode::None;
            else if (std::strcmp(mode, "process") == 0)
                opts.isolate = IsolateMode::Process;
            else
                fatal("bad --isolate mode '%s' (use none|process)",
                      mode);
        } else if (std::strncmp(arg, "--timeout=", 10) == 0)
            opts.timeoutSec =
                parsePositiveDouble(arg + 10, "--timeout");
        else if (std::strncmp(arg, "--retries=", 10) == 0)
            opts.retries = static_cast<unsigned>(
                parseU64(arg + 10, "--retries"));
        else if (std::strncmp(arg, "--journal=", 10) == 0)
            opts.journalPath = arg + 10;
        else if (std::strncmp(arg, "--resume=", 9) == 0) {
            // Resuming implies continuing the same journal so the
            // second run's completions land in the same file.
            opts.resumePath = arg + 9;
            if (opts.journalPath.empty())
                opts.journalPath = opts.resumePath;
        } else if (std::strncmp(arg, "--cache=", 8) == 0)
            opts.cachePath = arg + 8;
        else
            fatal("unknown option '%s' (use --scale=F --procs=N "
                  "--jobs=N --seed=N --json=PATH "
                  "--sample-interval=N --attrib --sim-threads=N "
                  "--isolate=none|process "
                  "--timeout=SECS --retries=N --journal=PATH "
                  "--resume=PATH --cache=DIR)",
                  arg);
    }
    // Journaling and result reuse work in both modes; a deadline
    // does not — an in-process point cannot be killed safely.
    if (opts.isolate == IsolateMode::None && opts.timeoutSec > 0)
        fatal("--timeout requires --isolate=process");
    return opts;
}

std::string
describePoint(const SweepPoint &point)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s under %s / %s / %s / %u procs "
                  "(scale %.2f, seed %llu)",
                  point.app.c_str(),
                  point.params.protocol.name().c_str(),
                  point.params.consistency ==
                          Consistency::SequentialConsistency
                      ? "SC"
                      : "RC",
                  networkName(point.params).c_str(),
                  point.params.numProcs, point.scale,
                  static_cast<unsigned long long>(point.seed));
    return buf;
}

SweepRunner::SweepRunner(const Options &opts_in) : opts(opts_in) {}

SweepRunner::~SweepRunner()
{
    if (journalFd >= 0)
        ::close(journalFd);
}

std::size_t
SweepRunner::add(const std::string &app, MachineParams params,
                 const std::string &tag, unsigned procs)
{
    params.numProcs = procs ? procs : opts.procs;
    SweepPoint point{app, params, tag, opts.scale, opts.seed};
    queued.push_back(std::move(point));
    return done.size() + queued.size() - 1;
}

void
SweepRunner::loadResumeJournal()
{
    if (opts.resumePath.empty() || resumeLoaded)
        return;
    resumeLoaded = true;
    JournalLoad load = loadJournal(opts.resumePath);
    resumeByHash = std::move(load.byHash);
    if (load.quarantined)
        std::fprintf(stderr,
                     "cpxbench: %zu corrupt journal line(s) in %s "
                     "quarantined to %s\n",
                     load.quarantined, opts.resumePath.c_str(),
                     load.quarantineFile.c_str());
    if (load.entries)
        std::fprintf(stderr,
                     "cpxbench: resume journal %s: %zu completed "
                     "point(s) loaded\n",
                     opts.resumePath.c_str(), load.entries);
}

void
SweepRunner::journalAppend(const SweepResult &res)
{
    if (opts.journalPath.empty())
        return;
    std::lock_guard<std::mutex> hold(journalMutex);
    if (journalFd < 0) {
        journalFd = ::open(opts.journalPath.c_str(),
                           O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (journalFd < 0)
            fatal("cannot open journal '%s': %s",
                  opts.journalPath.c_str(), std::strerror(errno));
    }
    std::string line = serializeWireResult(res);
    line += '\n';
    // Durability before ack: the record must be on disk before the
    // point counts as done, or a crash right after could leave a
    // resumed run believing less than it had finished (safe) — but
    // never more (unsafe).
    if (!writeAll(journalFd, line.data(), line.size()) ||
        ::fsync(journalFd) != 0)
        fatal("journal write to '%s' failed: %s",
              opts.journalPath.c_str(), std::strerror(errno));
}

void
SweepRunner::cacheStore(const SweepResult &res)
{
    if (opts.cachePath.empty() || res.status != PointStatus::Ok)
        return;
    ::mkdir(opts.cachePath.c_str(), 0755); // EEXIST is fine
    std::string path =
        opts.cachePath + "/" + res.configHash + ".json";
    std::string error;
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                  static_cast<long>(::getpid()));
    if (!atomicWriteFile(path, serializeWireResult(res) + "\n",
                         suffix, error))
        std::fprintf(stderr, "cpxbench: cache store failed: %s\n",
                     error.c_str());
}

bool
SweepRunner::cacheLookup(const std::string &hash,
                         SweepResult &out) const
{
    if (opts.cachePath.empty())
        return false;
    std::string path = opts.cachePath + "/" + hash + ".json";
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    std::string line;
    if (!std::getline(file, line))
        return false;
    std::string error;
    SweepResult parsed;
    if (!parseWireResult(line, parsed, error) ||
        parsed.status != PointStatus::Ok || parsed.configHash != hash) {
        std::fprintf(stderr,
                     "cpxbench: ignoring bad cache entry %s%s%s\n",
                     path.c_str(), error.empty() ? "" : ": ",
                     error.c_str());
        return false;
    }
    out = std::move(parsed);
    out.source = ResultSource::Cache;
    return true;
}

bool
SweepRunner::anyFailed() const
{
    for (const SweepResult &r : done)
        if (!r.ok())
            return true;
    return false;
}

std::size_t
SweepRunner::failedCount() const
{
    std::size_t n = 0;
    for (const SweepResult &r : done)
        if (!r.ok())
            ++n;
    return n;
}

std::string
SweepRunner::failureSummary() const
{
    std::string out;
    for (const SweepResult &r : done) {
        if (r.ok())
            continue;
        out += "\n  [" + std::string(pointStatusName(r.status)) +
               "] " + describePoint(r.point);
        if (!r.error.empty())
            out += ": " + r.error;
    }
    return out;
}

void
SweepRunner::runAll()
{
    if (queued.empty())
        return;
    loadResumeJournal();

    auto wall_start = SteadyClock::now();

    std::vector<SweepResult> batch(queued.size());
    std::vector<std::size_t> todo;
    std::size_t reused_journal = 0, reused_cache = 0;
    for (std::size_t i = 0; i < queued.size(); ++i) {
        std::string hash = pointConfigHash(
            queued[i], opts.sampleInterval, opts.attrib);
        auto it = resumeByHash.find(hash);
        if (it != resumeByHash.end()) {
            // The same config can appear under several tags; each
            // position gets a copy re-labelled with its own point.
            batch[i] = it->second;
            batch[i].point = queued[i];
            batch[i].source = ResultSource::Journal;
            ++reused_journal;
            continue;
        }
        SweepResult cached;
        if (cacheLookup(hash, cached)) {
            batch[i] = std::move(cached);
            batch[i].point = queued[i];
            // A cache hit still gets journaled so --resume of this
            // run's journal covers the full suite.
            journalAppend(batch[i]);
            ++reused_cache;
            continue;
        }
        batch[i].point = queued[i];
        batch[i].configHash = std::move(hash);
        todo.push_back(i);
    }
    if (reused_journal || reused_cache)
        std::fprintf(stderr,
                     "cpxbench: reusing %zu journaled and %zu cached "
                     "of %zu point(s); %zu to run\n",
                     reused_journal, reused_cache, queued.size(),
                     todo.size());

    if (!todo.empty()) {
        if (opts.isolate == IsolateMode::Process)
            runBatchProcess(batch, todo);
        else
            runBatchInProcess(batch, todo);
    }

    std::chrono::duration<double> wall =
        SteadyClock::now() - wall_start;
    hostSeconds += wall.count();

    if (interruptedFlag) {
        // Keep whatever finished (it is journaled); callers check
        // interrupted() and skip rendering/JSON.
        for (SweepResult &r : batch)
            done.push_back(std::move(r));
        queued.clear();
        return;
    }

    // The historical in-process contract: a failed point is fatal,
    // after every point has run, naming each failure so it can be
    // reproduced alone. Process isolation records failures as data
    // instead; callers consult anyFailed() for the exit policy.
    std::string failures;
    if (opts.isolate == IsolateMode::None) {
        for (const SweepResult &r : batch)
            if (!r.ok())
                failures += "\n  [" +
                            std::string(pointStatusName(r.status)) +
                            "] " + describePoint(r.point);
    }
    for (SweepResult &r : batch)
        done.push_back(std::move(r));
    queued.clear();
    if (!failures.empty())
        fatal("sweep point(s) failed verification:%s",
              failures.c_str());
}

void
SweepRunner::runBatchInProcess(std::vector<SweepResult> &batch,
                               const std::vector<std::size_t> &todo)
{
    std::atomic<std::size_t> next{0};
    auto wall_start = SteadyClock::now();

    // Per-point completion reporting: a live one-line ticker on a
    // terminal, one plain line per point otherwise (CI logs). Both
    // show running events/sec and an ETA extrapolated from the mean
    // host cost of the points completed so far — coarse under a
    // heterogeneous grid, but it replaces a silent multi-minute gap.
    const bool tty = isatty(fileno(stderr)) != 0;
    std::mutex progress_mutex;
    std::size_t completed = 0;
    std::uint64_t events_done = 0;
    auto report_progress = [&](const SweepResult &r) {
        std::lock_guard<std::mutex> hold(progress_mutex);
        ++completed;
        events_done += r.run.stats.eventsExecuted;
        std::chrono::duration<double> elapsed =
            SteadyClock::now() - wall_start;
        double secs = elapsed.count();
        double rate = secs > 0 ? events_done / secs : 0.0;
        double eta = completed ? secs / completed *
                                     (todo.size() - completed)
                               : 0.0;
        std::fprintf(stderr,
                     "%s[%zu/%zu] %s %s | %.3g Mev/s | ETA %.0fs%s",
                     tty ? "\r\033[K" : "", completed, todo.size(),
                     r.point.tag.empty() ? "point"
                                         : r.point.tag.c_str(),
                     r.point.app.c_str(), rate / 1e6, eta,
                     tty && completed != todo.size() ? "" : "\n");
    };

    auto worker = [&]() {
        for (;;) {
            std::size_t t = next.fetch_add(1);
            if (t >= todo.size())
                return;
            std::size_t i = todo[t];
            SweepResult res = executeRealPoint(
                queued[i], opts.sampleInterval, opts.simThreads,
                opts.attrib);
            res.point = queued[i];
            res.configHash = batch[i].configHash;
            journalAppend(res);
            cacheStore(res);
            batch[i] = std::move(res);
            report_progress(batch[i]);
        }
    };

    unsigned jobs = opts.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min<std::size_t>(jobs, todo.size());
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    executed += todo.size();
}

void
SweepRunner::runBatchProcess(std::vector<SweepResult> &batch,
                             const std::vector<std::size_t> &todo)
{
    // One forked worker per in-flight point; the supervisor stays
    // single-threaded (fork(2) from a multi-threaded parent can
    // deadlock on locks held by other threads), so parallelism comes
    // entirely from the worker processes.
    struct Pending
    {
        std::size_t index;
        unsigned attempt;
        SteadyClock::time_point readyAt;
    };
    struct Worker
    {
        pid_t pid;
        int fd;
        std::size_t index;
        unsigned attempt;
        std::string buf;
        SteadyClock::time_point started;
        SteadyClock::time_point deadline;
        bool timedOut = false;
    };

    std::deque<Pending> pending;
    for (std::size_t i : todo)
        pending.push_back({i, 1, SteadyClock::now()});
    std::vector<Worker> live;

    unsigned jobs = opts.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min<std::size_t>(jobs, todo.size());

    // SIGINT/SIGTERM request a graceful stop: no new dispatches,
    // live workers killed and reaped, journal already durable. No
    // SA_RESTART, so a signal wakes the poll() below immediately.
    struct sigaction sa{}, old_int{}, old_term{};
    sa.sa_handler = stopRequestHandler;
    sigemptyset(&sa.sa_mask);
    g_stopRequested = 0;
    sigaction(SIGINT, &sa, &old_int);
    sigaction(SIGTERM, &sa, &old_term);

    const bool tty = isatty(fileno(stderr)) != 0;
    std::size_t completed = 0;
    std::uint64_t events_done = 0;
    auto wall_start = SteadyClock::now();
    auto report_progress = [&](const SweepResult &r) {
        ++completed;
        events_done += r.run.stats.eventsExecuted;
        std::chrono::duration<double> elapsed =
            SteadyClock::now() - wall_start;
        double secs = elapsed.count();
        double rate = secs > 0 ? events_done / secs : 0.0;
        double eta = completed ? secs / completed *
                                     (todo.size() - completed)
                               : 0.0;
        std::fprintf(stderr,
                     "%s[%zu/%zu] %s %s%s%s | %.3g Mev/s | "
                     "ETA %.0fs%s",
                     tty ? "\r\033[K" : "", completed, todo.size(),
                     r.point.tag.empty() ? "point"
                                         : r.point.tag.c_str(),
                     r.point.app.c_str(), r.ok() ? "" : " !",
                     r.ok() ? "" : pointStatusName(r.status),
                     rate / 1e6, eta,
                     tty && completed != todo.size() ? "" : "\n");
    };

    auto spawn = [&](const Pending &p) {
        int fds[2];
        if (::pipe(fds) != 0)
            fatal("pipe: %s", std::strerror(errno));
        pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            ::close(fds[0]);
            // The child dies on its own signals; the parent owns
            // graceful-stop handling.
            std::signal(SIGINT, SIG_DFL);
            std::signal(SIGTERM, SIG_DFL);
            runWorkerChild(queued[p.index], opts.sampleInterval,
                           opts.simThreads, opts.attrib, fds[1],
                           batch[p.index].configHash, p.attempt);
        }
        ::close(fds[1]);
        int flags = ::fcntl(fds[0], F_GETFL, 0);
        ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
        auto now = SteadyClock::now();
        auto deadline =
            opts.timeoutSec > 0
                ? now + std::chrono::duration_cast<
                            SteadyClock::duration>(
                            std::chrono::duration<double>(
                                opts.timeoutSec))
                : SteadyClock::time_point::max();
        live.push_back(Worker{pid, fds[0], p.index, p.attempt, {},
                              now, deadline, false});
    };

    // Reap the worker, classify the outcome, and either re-queue the
    // point for a retry or finalize it (journal + cache + batch).
    auto finalize = [&](Worker &w) {
        int wstatus = 0;
        while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {}
        ::close(w.fd);
        std::chrono::duration<double> attempt_secs =
            SteadyClock::now() - w.started;

        SweepResult res;
        res.point = queued[w.index];
        res.configHash = batch[w.index].configHash;
        res.attempts = w.attempt;
        res.hostSeconds = attempt_secs.count();
        if (w.timedOut) {
            res.status = PointStatus::Timeout;
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          "timed out after %.1fs", opts.timeoutSec);
            res.error = buf;
        } else if (WIFSIGNALED(wstatus)) {
            res.status = PointStatus::Signal;
            res.error = std::string("killed by signal ") +
                        std::to_string(WTERMSIG(wstatus));
        } else if (WIFEXITED(wstatus) &&
                   WEXITSTATUS(wstatus) != 0) {
            res.status = PointStatus::NonzeroExit;
            res.error = "exited with status " +
                        std::to_string(WEXITSTATUS(wstatus));
        } else {
            // Clean exit: the single wire line is the result.
            std::string line = w.buf;
            while (!line.empty() && (line.back() == '\n' ||
                                     line.back() == '\r'))
                line.pop_back();
            SweepResult parsed;
            std::string perr;
            if (parseWireResult(line, parsed, perr)) {
                res.run = std::move(parsed.run);
                res.status = parsed.status;
                res.error = parsed.error;
                res.hostSeconds = parsed.hostSeconds;
            } else {
                res.status = PointStatus::Garbage;
                res.error = "unparseable worker output: " + perr;
            }
        }

        if (!res.ok() && pointStatusRetryable(res.status) &&
            w.attempt <= opts.retries) {
            double delay = backoffSeconds(w.attempt);
            std::fprintf(stderr,
                         "cpxbench: point '%s' %s (%s); retry %u/%u "
                         "in %.2gs\n",
                         queued[w.index].app.c_str(),
                         pointStatusName(res.status),
                         res.error.c_str(), w.attempt, opts.retries,
                         delay);
            pending.push_back(
                {w.index, w.attempt + 1,
                 SteadyClock::now() +
                     std::chrono::duration_cast<
                         SteadyClock::duration>(
                         std::chrono::duration<double>(delay))});
            return;
        }

        journalAppend(res);
        cacheStore(res);
        ++executed;
        batch[w.index] = std::move(res);
        report_progress(batch[w.index]);
    };

    while ((!pending.empty() || !live.empty()) && !g_stopRequested) {
        auto now = SteadyClock::now();

        // Dispatch pending points whose backoff has elapsed.
        while (live.size() < jobs && !pending.empty()) {
            auto ready = pending.end();
            for (auto it = pending.begin(); it != pending.end(); ++it)
                if (it->readyAt <= now) {
                    ready = it;
                    break;
                }
            if (ready == pending.end())
                break;
            Pending p = *ready;
            pending.erase(ready);
            spawn(p);
        }

        // How long may we sleep? Until the nearest worker deadline
        // or pending retry, capped so ticker math stays fresh.
        auto wake = now + std::chrono::milliseconds(500);
        for (const Worker &w : live)
            wake = std::min(wake, w.deadline);
        for (const Pending &p : pending)
            if (live.size() < jobs)
                wake = std::min(wake, p.readyAt);
        int timeout_ms = static_cast<int>(std::max<std::int64_t>(
            0, std::chrono::duration_cast<std::chrono::milliseconds>(
                   wake - now)
                   .count()));

        if (live.empty()) {
            ::poll(nullptr, 0, timeout_ms);
            continue;
        }

        std::vector<pollfd> fds(live.size());
        for (std::size_t i = 0; i < live.size(); ++i)
            fds[i] = pollfd{live[i].fd, POLLIN, 0};
        int rc = ::poll(fds.data(), fds.size(), timeout_ms);
        if (rc < 0 && errno != EINTR)
            fatal("poll: %s", std::strerror(errno));

        // Drain readable pipes; EOF means the worker is done.
        for (std::size_t i = 0; i < live.size();) {
            bool eof = false;
            if (rc > 0 && (fds[i].revents & (POLLIN | POLLHUP))) {
                char buf[65536];
                for (;;) {
                    ssize_t n = ::read(live[i].fd, buf, sizeof(buf));
                    if (n > 0) {
                        live[i].buf.append(buf, n);
                        continue;
                    }
                    if (n == 0)
                        eof = true;
                    break;
                }
            }
            if (eof) {
                finalize(live[i]);
                fds.erase(fds.begin() + i);
                live.erase(live.begin() + i);
            } else {
                ++i;
            }
        }

        // Enforce deadlines: SIGKILL, then let the EOF path reap.
        now = SteadyClock::now();
        for (Worker &w : live) {
            if (!w.timedOut && now >= w.deadline) {
                w.timedOut = true;
                ::kill(w.pid, SIGKILL);
            }
        }
    }

    if (g_stopRequested) {
        interruptedFlag = true;
        for (Worker &w : live) {
            ::kill(w.pid, SIGKILL);
            int wstatus = 0;
            while (::waitpid(w.pid, &wstatus, 0) < 0 &&
                   errno == EINTR) {}
            ::close(w.fd);
        }
        live.clear();
        std::fprintf(stderr,
                     "\ncpxbench: interrupted — %zu/%zu point(s) "
                     "completed%s\n",
                     completed, todo.size(),
                     opts.journalPath.empty()
                         ? ""
                         : "; journaled work is resumable with "
                           "--resume");
    }

    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);
}

const SweepResult &
SweepRunner::operator[](std::size_t handle) const
{
    if (handle >= done.size())
        fatal("sweep handle %zu not run yet (did you call "
              "runAll()?)",
              handle);
    return done[handle];
}

// --- JSON output -----------------------------------------------------------

void
writeJson(const std::string &path, const std::string &suite,
          const Options &opts,
          const std::vector<SweepResult> &results,
          double total_host_seconds)
{
    std::ostringstream out;
    auto str = [](const std::string &s) {
        return "\"" + jsonEscape(s) + "\"";
    };

    char timestamp[32] = "";
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc))
        std::strftime(timestamp, sizeof(timestamp),
                      "%Y-%m-%dT%H:%M:%SZ", &tm_utc);

    out << "{\n";
    out << "  \"schema\": \"cpx-sweep-1\",\n";
    out << "  \"suite\": " << str(suite) << ",\n";
    out << "  \"timestamp\": " << str(timestamp) << ",\n";
    out << "  \"jobs\": " << opts.jobs << ",\n";
    out << "  \"scale\": " << jsonNumber(opts.scale) << ",\n";
    out << "  \"procs\": " << opts.procs << ",\n";
    out << "  \"simThreads\": " << opts.simThreads << ",\n";
    out << "  \"hostSeconds\": " << jsonNumber(total_host_seconds)
        << ",\n";

    // Suite-level throughput: the perf trajectory CI tracks. Event
    // counts are simulated (bit-identical across hosts and --jobs);
    // only the divide by host time varies.
    std::uint64_t total_events = 0;
    for (const SweepResult &r : results)
        total_events += r.run.stats.eventsExecuted;
    out << "  \"totalEvents\": " << jsonNumber(total_events) << ",\n";
    out << "  \"eventsPerSec\": "
        << jsonNumber(total_host_seconds > 0
                          ? total_events / total_host_seconds
                          : 0.0)
        << ",\n";
    out << "  \"points\": [";

    bool first = true;
    for (const SweepResult &r : results) {
        const RunResult &s = r.run.stats;
        const MachineParams &p = r.point.params;
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\n";
        out << "      \"tag\": " << str(r.point.tag) << ",\n";
        out << "      \"app\": " << str(r.point.app) << ",\n";
        out << "      \"config\": {"
            << "\"protocol\": " << str(p.protocol.name()) << ", "
            << "\"consistency\": "
            << str(r.ok() ? s.consistency
                          : std::string(
                                p.consistency ==
                                        Consistency::
                                            SequentialConsistency
                                    ? "SC"
                                    : "RC"))
            << ", "
            << "\"network\": " << str(networkName(p)) << ", "
            << "\"procs\": " << p.numProcs << ", "
            << "\"scale\": " << jsonNumber(r.point.scale) << ", "
            << "\"seed\": " << jsonNumber(r.point.seed) << ", "
            << "\"slcBytes\": " << p.slcBytes << ", "
            << "\"threshold\": " << p.competitiveThreshold << ", "
            << "\"writeCache\": "
            << (p.writeCacheEnabled ? "true" : "false") << "},\n";
        // New members ride as siblings of the gated stats fields so
        // a pre-existing baseline stays comparable (see the gated[]
        // list in compareToBaseline). The directory block in
        // particular must NOT join the gated "config" object:
        // jsonEquals compares member counts, so growing "config"
        // would orphan every committed baseline.
        out << "      \"directory\": {"
            << "\"rep\": " << str(p.directory.name());
        if (r.ok())
            out << ", \"overflowBroadcasts\": "
                << jsonNumber(s.dirOverflowBroadcasts)
                << ", \"pointerEvictions\": "
                << jsonNumber(s.dirPointerEvictions);
        out << "},\n";
        if (!r.configHash.empty())
            out << "      \"configHash\": " << str(r.configHash)
                << ",\n";
        out << "      \"status\": "
            << str(pointStatusName(r.status)) << ",\n";
        out << "      \"attempts\": " << r.attempts << ",\n";
        if (!r.ok()) {
            // Failed point: no stats were produced (or none that can
            // be trusted) — record the classification and move on so
            // a partially-failed suite still yields a valid file.
            out << "      \"error\": " << str(r.error) << ",\n";
            out << "      \"verified\": false,\n";
            out << "      \"hostSeconds\": "
                << jsonNumber(r.hostSeconds) << "\n";
            out << "    }";
            continue;
        }
        out << "      \"verified\": "
            << (r.run.verified ? "true" : "false") << ",\n";
        out << "      \"execTime\": "
            << jsonNumber(static_cast<std::uint64_t>(r.run.execTime))
            << ",\n";
        out << "      \"breakdown\": {"
            << "\"busy\": " << jsonNumber(s.busy) << ", "
            << "\"readStall\": " << jsonNumber(s.readStall) << ", "
            << "\"writeStall\": " << jsonNumber(s.writeStall) << ", "
            << "\"acquireStall\": " << jsonNumber(s.acquireStall)
            << ", "
            << "\"releaseStall\": " << jsonNumber(s.releaseStall)
            << "},\n";
        out << "      \"misses\": {"
            << "\"coldPct\": " << jsonNumber(s.coldMissRate()) << ", "
            << "\"cohPct\": " << jsonNumber(s.cohMissRate()) << ", "
            << "\"sharedAccesses\": " << jsonNumber(s.sharedAccesses)
            << ", "
            << "\"coldRead\": " << jsonNumber(s.coldReadMisses) << ", "
            << "\"cohRead\": " << jsonNumber(s.cohReadMisses) << ", "
            << "\"replRead\": " << jsonNumber(s.replReadMisses) << ", "
            << "\"write\": " << jsonNumber(s.writeMissesTotal)
            << ", "
            << "\"avgReadLatency\": "
            << jsonNumber(s.avgReadMissLatency) << "},\n";
        out << "      \"traffic\": {"
            << "\"bytes\": " << jsonNumber(s.netBytes) << ", "
            << "\"messages\": " << jsonNumber(s.netMessages) << "},\n";
        out << "      \"protocolEvents\": {"
            << "\"prefetchesIssued\": "
            << jsonNumber(s.prefetchesIssued) << ", "
            << "\"prefetchesUseful\": "
            << jsonNumber(s.prefetchesUseful) << ", "
            << "\"softwarePrefetches\": "
            << jsonNumber(s.softwarePrefetches) << ", "
            << "\"combinedWrites\": " << jsonNumber(s.combinedWrites)
            << ", "
            << "\"migratoryDetections\": "
            << jsonNumber(s.migratoryDetections) << ", "
            << "\"invalidationsSent\": "
            << jsonNumber(s.invalidationsSent) << "},\n";
        auto hist = [&](const char *key, const Histogram &h,
                        const char *tail) {
            const Accumulator &a = h.summary();
            out << "\"" << key << "\": {"
                << "\"count\": " << jsonNumber(a.count()) << ", "
                << "\"mean\": " << jsonNumber(a.mean()) << ", "
                << "\"min\": " << jsonNumber(a.min()) << ", "
                << "\"max\": " << jsonNumber(a.max()) << ", "
                << "\"p50\": " << jsonNumber(h.percentile(0.50))
                << ", "
                << "\"p90\": " << jsonNumber(h.percentile(0.90))
                << ", "
                << "\"p99\": " << jsonNumber(h.percentile(0.99))
                << ", "
                << "\"bucketWidth\": "
                << jsonNumber(h.bucketWidth()) << ", "
                << "\"overflow\": "
                << jsonNumber(h.overflowCount()) << ", "
                << "\"buckets\": [";
            // Trim trailing zero buckets: the geometry is fixed, so
            // the baseline diff stays byte-stable and compact.
            const auto &counts = h.bucketCounts();
            std::size_t last = counts.size();
            while (last > 0 && counts[last - 1] == 0)
                --last;
            for (std::size_t b = 0; b < last; ++b)
                out << (b ? ", " : "") << jsonNumber(counts[b]);
            out << "]}" << tail;
        };
        out << "      \"latency\": {";
        hist("readMiss", s.readMissLatency, ", ");
        hist("ownership", s.ownershipLatency, ", ");
        hist("prefetchFill", s.prefetchFillLatency, "},\n");
        // Optional: interval-sampled series (--sample-interval > 0).
        // Deltas are row-major, one inner array per sampled window;
        // columns follow "metrics" order (DESIGN.md §13).
        if (!s.timeseries.empty()) {
            const MetricTimeSeries &ts = s.timeseries;
            out << "      \"timeseries\": {\n";
            out << "        \"interval\": "
                << jsonNumber(static_cast<std::uint64_t>(ts.interval))
                << ",\n";
            out << "        \"metrics\": [";
            for (std::size_t m = 0; m < ts.names.size(); ++m)
                out << (m ? ", " : "") << str(ts.names[m]);
            out << "],\n";
            out << "        \"ticks\": [";
            for (std::size_t row = 0; row < ts.ticks.size(); ++row)
                out << (row ? ", " : "")
                    << jsonNumber(
                           static_cast<std::uint64_t>(ts.ticks[row]));
            out << "],\n";
            out << "        \"deltas\": [";
            for (std::size_t row = 0; row < ts.rows(); ++row) {
                out << (row ? ",\n          [" : "\n          [");
                for (std::size_t m = 0; m < ts.names.size(); ++m)
                    out << (m ? ", " : "")
                        << jsonNumber(ts.at(row, m));
                out << "]";
            }
            out << "\n        ]\n      },\n";
        }
        // Optional: causal stall attribution (--attrib). Like the
        // timeseries block, a sibling of the gated stats fields, so a
        // baseline captured without --attrib stays byte-comparable to
        // an attributed run and vice versa (DESIGN.md §17).
        if (s.attribution.enabled) {
            const AttributionResult &ar = s.attribution;
            out << "      \"attribution\": {\n";
            out << "        \"classes\": {";
            bool first_cls = true;
            for (unsigned c = 0; c < numAttribClasses; ++c) {
                const AttribSegments &seg = ar.classes[c];
                if (!seg.count)
                    continue;  // zero rows restore to the default
                out << (first_cls ? "\n" : ",\n");
                first_cls = false;
                out << "          \"" << attribClassName(c) << "\": {"
                    << "\"count\": " << jsonNumber(seg.count) << ", "
                    << "\"latency\": " << jsonNumber(seg.latency)
                    << ", "
                    << "\"request\": " << jsonNumber(seg.request)
                    << ", "
                    << "\"dirQueue\": " << jsonNumber(seg.dirQueue)
                    << ", "
                    << "\"dirService\": "
                    << jsonNumber(seg.dirService) << ", "
                    << "\"ownerFetch\": "
                    << jsonNumber(seg.ownerFetch) << ", "
                    << "\"invalFanout\": "
                    << jsonNumber(seg.invalFanout) << ", "
                    << "\"ackCollect\": "
                    << jsonNumber(seg.ackCollect) << ", "
                    << "\"dataReturn\": "
                    << jsonNumber(seg.dataReturn) << ", "
                    << "\"fill\": " << jsonNumber(seg.fill) << ", "
                    << "\"dataHops\": " << jsonNumber(seg.dataHops)
                    << "}";
            }
            out << (first_cls ? "},\n" : "\n        },\n");
            out << "        \"locks\": {"
                << "\"count\": " << jsonNumber(ar.locks.count) << ", "
                << "\"latency\": " << jsonNumber(ar.locks.latency)
                << ", "
                << "\"homeQueue\": " << jsonNumber(ar.locks.homeQueue)
                << ", "
                << "\"transfer\": " << jsonNumber(ar.locks.transfer)
                << "},\n";
            out << "        \"homes\": [";
            for (std::size_t i = 0; i < ar.homes.size(); ++i) {
                const AttribHomeStats &h = ar.homes[i];
                out << (i ? ",\n          {" : "\n          {")
                    << "\"node\": " << h.node << ", "
                    << "\"dirRequests\": "
                    << jsonNumber(h.dirRequests) << ", "
                    << "\"dirWaitTotal\": "
                    << jsonNumber(h.dirWaitTotal) << ", "
                    << "\"dirWaitP99\": " << jsonNumber(h.dirWaitP99)
                    << ", "
                    << "\"lockGrants\": " << jsonNumber(h.lockGrants)
                    << ", "
                    << "\"lockWaitTotal\": "
                    << jsonNumber(h.lockWaitTotal) << ", "
                    << "\"lockWaitP99\": "
                    << jsonNumber(h.lockWaitP99) << "}";
            }
            out << (ar.homes.empty() ? "],\n" : "\n        ],\n");
            auto hot = [&](const char *key,
                           const std::vector<AttribHotSpot> &rows) {
                out << "        \"" << key << "\": [";
                for (std::size_t i = 0; i < rows.size(); ++i) {
                    const AttribHotSpot &h = rows[i];
                    out << (i ? ",\n          {" : "\n          {")
                        << "\"addr\": "
                        << jsonNumber(
                               static_cast<std::uint64_t>(h.addr))
                        << ", "
                        << "\"home\": " << h.home << ", "
                        << "\"count\": " << jsonNumber(h.count)
                        << ", "
                        << "\"totalWait\": "
                        << jsonNumber(h.totalWait) << ", "
                        << "\"p99Wait\": " << jsonNumber(h.p99Wait)
                        << "}";
                }
                out << (rows.empty() ? "],\n" : "\n        ],\n");
            };
            hot("hotBlocks", ar.hotBlocks);
            hot("hotLocks", ar.hotLocks);
            out << "        \"matchedTxns\": "
                << jsonNumber(ar.matchedTxns) << ",\n";
            out << "        \"unmatchedDir\": "
                << jsonNumber(ar.unmatchedDir) << ",\n";
            out << "        \"matchedLocks\": "
                << jsonNumber(ar.matchedLocks) << ",\n";
            out << "        \"unmatchedLocks\": "
                << jsonNumber(ar.unmatchedLocks) << ",\n";
            out << "        \"fanoutTotal\": "
                << jsonNumber(ar.fanoutTotal) << ",\n";
            out << "        \"fanoutImprecise\": "
                << jsonNumber(ar.fanoutImprecise) << "\n";
            out << "      },\n";
        }
        out << "      \"kernel\": {"
            << "\"eventsExecuted\": " << jsonNumber(s.eventsExecuted)
            << ", "
            << "\"peakPendingEvents\": "
            << jsonNumber(s.peakPendingEvents) << ", "
            << "\"scheduleAllocs\": " << jsonNumber(s.scheduleAllocs)
            << ", "
            << "\"slabRounds\": " << jsonNumber(s.slabRounds) << ", "
            << "\"crossMessages\": " << jsonNumber(s.crossMessages)
            << ", "
            << "\"lookahead\": " << jsonNumber(s.lookahead) << ", "
            << "\"simThreads\": " << s.simThreads << ", "
            << "\"eventsPerSec\": "
            << jsonNumber(r.hostSeconds > 0
                              ? s.eventsExecuted / r.hostSeconds
                              : 0.0)
            << "},\n";
        out << "      \"hostSeconds\": " << jsonNumber(r.hostSeconds)
            << "\n";
        out << "    }";
    }
    out << "\n  ]\n}\n";

    // Atomic replace (tmp + fsync + rename): a crash mid-write must
    // never leave a torn results file behind to poison a later
    // --baseline comparison.
    std::string error;
    if (!atomicWriteFile(path, out.str(), ".tmp", error))
        fatal("%s", error.c_str());
}

// --- JSON reader -----------------------------------------------------------

const JsonValue &
JsonValue::at(const std::string &key) const
{
    auto it = members.find(key);
    if (it == members.end())
        fatal("JSON object has no member '%s'", key.c_str());
    return it->second;
}

namespace
{

struct JsonParser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit JsonParser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &why)
    {
        if (error.empty())
            error = why + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (text.compare(pos, n, lit) != 0)
            return fail(std::string("bad literal (expected ") + lit +
                        ")");
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos++];
                switch (e) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/'; break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'n':  out += '\n'; break;
                  case 'r':  out += '\r'; break;
                  case 't':  out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            cp |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            cp |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    // Our documents only escape control characters;
                    // encode the BMP code point as UTF-8.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xc0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out.members.emplace(std::move(key),
                                    std::move(member));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    skipSpace();
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                out.items.push_back(std::move(item));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return parseLiteral("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return parseLiteral("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return parseLiteral("null");
        }
        // Number.
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("unexpected character");
        char *end = nullptr;
        std::string num = text.substr(start, pos - start);
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(num.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number '" + num + "'");
        // Keep the raw token: integer consumers (the subprocess wire
        // format) reread it with strtoull so values beyond 2^53
        // survive exactly; the double above is lossy there.
        out.text = std::move(num);
        return true;
    }
};

} // anonymous namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    JsonParser parser(text);
    if (!parser.parseValue(out)) {
        error = parser.error;
        return false;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        error = "trailing garbage at offset " +
                std::to_string(parser.pos);
        return false;
    }
    return true;
}

bool
validateResultsFile(const std::string &path, std::string &error,
                    bool allow_failed)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();

    JsonValue doc;
    if (!parseJson(text.str(), doc, error)) {
        error = path + ": " + error;
        return false;
    }
    if (doc.kind != JsonValue::Kind::Object ||
        !doc.has("schema") ||
        doc.at("schema").text != "cpx-sweep-1") {
        error = path + ": missing cpx-sweep-1 schema marker";
        return false;
    }
    if (!doc.has("points") ||
        doc.at("points").kind != JsonValue::Kind::Array ||
        doc.at("points").items.empty()) {
        error = path + ": no sweep points recorded";
        return false;
    }
    std::string failed;
    for (const JsonValue &point : doc.at("points").items) {
        if (point.kind != JsonValue::Kind::Object ||
            !point.has("verified") || !point.has("app") ||
            !point.has("config")) {
            error = path + ": malformed sweep point";
            return false;
        }
        // Points carry a "status" since the fault-isolation work;
        // files written before then are all-ok by construction.
        const std::string status =
            point.has("status") ? point.at("status").text
                                : std::string("ok");
        if (status != "ok") {
            if (!point.has("error")) {
                error = path + ": failed point without an error "
                        "message";
                return false;
            }
            failed += "\n  [" + status + "] '" +
                      (point.has("tag") ? point.at("tag").text
                                        : std::string()) +
                      "' app=" + point.at("app").text + ": " +
                      point.at("error").text;
            continue;
        }
        if (!point.has("execTime")) {
            error = path + ": malformed sweep point";
            return false;
        }
        if (!point.at("verified").boolean) {
            failed += "\n  [unverified] '" +
                      (point.has("tag") ? point.at("tag").text
                                        : std::string()) +
                      "' app=" + point.at("app").text;
            continue;
        }
        // The timeseries block is optional (only sampled runs carry
        // it), but when present it must be structurally sound: a
        // positive interval, named columns, and a rectangular deltas
        // matrix with one end tick per row.
        if (point.has("timeseries")) {
            const JsonValue &ts = point.at("timeseries");
            if (ts.kind != JsonValue::Kind::Object ||
                !ts.has("interval") || !ts.has("metrics") ||
                !ts.has("ticks") || !ts.has("deltas")) {
                error = path + ": malformed timeseries block";
                return false;
            }
            if (ts.at("interval").number <= 0) {
                error = path + ": timeseries interval must be > 0";
                return false;
            }
            const auto &metrics = ts.at("metrics").items;
            const auto &ticks = ts.at("ticks").items;
            const auto &deltas = ts.at("deltas").items;
            if (ts.at("metrics").kind != JsonValue::Kind::Array ||
                metrics.empty()) {
                error = path + ": timeseries has no metrics";
                return false;
            }
            if (deltas.size() != ticks.size()) {
                error = path + ": timeseries has " +
                        std::to_string(deltas.size()) +
                        " delta rows but " +
                        std::to_string(ticks.size()) + " ticks";
                return false;
            }
            for (const JsonValue &row : deltas) {
                if (row.kind != JsonValue::Kind::Array ||
                    row.items.size() != metrics.size()) {
                    error = path + ": ragged timeseries delta row";
                    return false;
                }
            }
        }
        // The attribution block is likewise optional (--attrib runs
        // only); when present it must carry the full shape cpxreport
        // renders from.
        if (point.has("attribution")) {
            const JsonValue &ar = point.at("attribution");
            if (ar.kind != JsonValue::Kind::Object ||
                !ar.has("classes") || !ar.has("locks") ||
                !ar.has("homes") || !ar.has("hotBlocks") ||
                !ar.has("hotLocks") || !ar.has("matchedTxns")) {
                error = path + ": malformed attribution block";
                return false;
            }
            if (ar.at("classes").kind != JsonValue::Kind::Object ||
                ar.at("homes").kind != JsonValue::Kind::Array ||
                ar.at("hotBlocks").kind != JsonValue::Kind::Array ||
                ar.at("hotLocks").kind != JsonValue::Kind::Array) {
                error = path + ": malformed attribution block";
                return false;
            }
            for (const auto &[name, row] :
                 ar.at("classes").members) {
                if (row.kind != JsonValue::Kind::Object ||
                    !row.has("count") || !row.has("latency") ||
                    !row.has("dirQueue")) {
                    error = path + ": malformed attribution class '" +
                            name + "'";
                    return false;
                }
            }
        }
    }
    if (!failed.empty() && !allow_failed) {
        error = path + ": failed sweep point(s):" + failed;
        return false;
    }
    return true;
}

bool
validateTraceFile(const std::string &path, std::string &error)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();

    JsonValue doc;
    if (!parseJson(text.str(), doc, error)) {
        error = path + ": " + error;
        return false;
    }
    if (doc.kind != JsonValue::Kind::Object ||
        !doc.has("traceEvents") ||
        doc.at("traceEvents").kind != JsonValue::Kind::Array) {
        error = path + ": missing traceEvents array";
        return false;
    }
    const auto &events = doc.at("traceEvents").items;
    if (events.empty()) {
        error = path + ": empty traceEvents array";
        return false;
    }

    // Async transaction spans must pair up: per id, as many "b"
    // begins as "e" ends (the exporter degrades unmatched spans to
    // instants, so an imbalance means exporter breakage). Counter
    // events ("C", the interval-metric tracks) must each carry a
    // numeric args.value and be non-decreasing in time per track.
    std::map<std::string, long> open_spans;
    std::map<std::string, double> counter_last_ts;
    std::size_t spans = 0;
    for (const JsonValue &ev : events) {
        if (ev.kind != JsonValue::Kind::Object || !ev.has("ph") ||
            !ev.has("pid")) {
            error = path + ": malformed trace event";
            return false;
        }
        const std::string &ph = ev.at("ph").text;
        if (ph == "M")
            continue;  // metadata: process/thread names
        if (!ev.has("ts") || !ev.has("name")) {
            error = path + ": trace event missing ts/name";
            return false;
        }
        if (ph == "b" || ph == "e") {
            if (!ev.has("id")) {
                error = path + ": async event missing id";
                return false;
            }
            open_spans[ev.at("id").text] += ph == "b" ? 1 : -1;
            ++spans;
        } else if (ph == "C") {
            if (!ev.has("args") ||
                ev.at("args").kind != JsonValue::Kind::Object ||
                !ev.at("args").has("value") ||
                ev.at("args").at("value").kind !=
                    JsonValue::Kind::Number) {
                error = path +
                        ": counter event missing numeric args.value";
                return false;
            }
            const std::string &track = ev.at("name").text;
            double ts = ev.at("ts").number;
            auto it = counter_last_ts.find(track);
            if (it != counter_last_ts.end() && ts < it->second) {
                error = path + ": counter track '" + track +
                        "' goes backwards in time";
                return false;
            }
            counter_last_ts[track] = ts;
        } else if (ph != "i") {
            error = path + ": unexpected phase '" + ph + "'";
            return false;
        }
    }
    for (const auto &[id, balance] : open_spans) {
        if (balance != 0) {
            error = path + ": unbalanced b/e events for id " + id;
            return false;
        }
    }
    (void)spans;
    return true;
}

namespace
{

/** Read a file and parse it as a cpx-sweep-1 document. */
bool
loadSweepDoc(const std::string &path, JsonValue &doc,
             std::string &error)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();
    if (!parseJson(text.str(), doc, error)) {
        error = path + ": " + error;
        return false;
    }
    if (doc.kind != JsonValue::Kind::Object || !doc.has("schema") ||
        doc.at("schema").text != "cpx-sweep-1") {
        error = path + ": missing cpx-sweep-1 schema marker";
        return false;
    }
    return true;
}

bool
jsonEquals(const JsonValue &a, const JsonValue &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case JsonValue::Kind::Null:
        return true;
      case JsonValue::Kind::Bool:
        return a.boolean == b.boolean;
      case JsonValue::Kind::Number:
        // %.17g round-trips doubles exactly, so simulated stats from
        // identical runs parse back to identical values.
        return a.number == b.number;
      case JsonValue::Kind::String:
        return a.text == b.text;
      case JsonValue::Kind::Array:
        if (a.items.size() != b.items.size())
            return false;
        for (std::size_t i = 0; i < a.items.size(); ++i)
            if (!jsonEquals(a.items[i], b.items[i]))
                return false;
        return true;
      case JsonValue::Kind::Object:
        if (a.members.size() != b.members.size())
            return false;
        for (const auto &[key, value] : a.members) {
            auto it = b.members.find(key);
            if (it == b.members.end() ||
                !jsonEquals(value, it->second))
                return false;
        }
        return true;
    }
    return false;
}

std::string
pointLabel(const JsonValue &point)
{
    std::string label =
        point.has("tag") ? point.at("tag").text : std::string();
    if (point.has("app"))
        label += (label.empty() ? "" : "/") + point.at("app").text;
    return label.empty() ? "?" : label;
}

} // anonymous namespace

bool
compareToBaseline(const std::string &path,
                  const std::string &baseline_path,
                  std::string &error, std::string &warning)
{
    JsonValue cur, base;
    if (!loadSweepDoc(path, cur, error) ||
        !loadSweepDoc(baseline_path, base, error))
        return false;
    if (!cur.has("points") || !base.has("points") ||
        cur.at("points").kind != JsonValue::Kind::Array ||
        base.at("points").kind != JsonValue::Kind::Array) {
        error = "missing points array";
        return false;
    }
    const auto &cur_pts = cur.at("points").items;
    const auto &base_pts = base.at("points").items;
    if (cur_pts.size() != base_pts.size()) {
        error = path + ": " + std::to_string(cur_pts.size()) +
                " points vs " + std::to_string(base_pts.size()) +
                " in baseline " + baseline_path;
        return false;
    }

    // Every simulated stat is gated; hostSeconds and the kernel
    // throughput block are host-dependent and exempt.
    static const char *const gated[] = {
        "tag",      "app",    "config",  "verified",
        "execTime", "breakdown", "misses", "traffic",
        "protocolEvents", "latency", "timeseries",
    };
    // Collect every divergent point (with its config hash, so the
    // culprit can be re-run or evicted from a result cache by name)
    // instead of bailing at the first: one look at the message shows
    // whether a drift is a single config or systemic.
    std::vector<std::string> diffs;
    for (std::size_t i = 0; i < cur_pts.size(); ++i) {
        const JsonValue &c = cur_pts[i];
        const JsonValue &b = base_pts[i];
        for (const char *field : gated) {
            const bool in_c = c.has(field);
            const bool in_b = b.has(field);
            if (in_c != in_b ||
                (in_c && !jsonEquals(c.at(field), b.at(field)))) {
                std::string hash =
                    c.has("configHash") ? c.at("configHash").text
                                        : std::string("?");
                diffs.push_back("point " + std::to_string(i) + " (" +
                                pointLabel(c) + ", hash=" + hash +
                                ") drifted in '" + field + "'");
                break;
            }
        }
    }
    if (!diffs.empty()) {
        constexpr std::size_t max_listed = 40;
        error = path + ": " + std::to_string(diffs.size()) +
                " point(s) drifted from baseline " + baseline_path +
                ":";
        for (std::size_t i = 0;
             i < diffs.size() && i < max_listed; ++i)
            error += "\n  " + diffs[i];
        if (diffs.size() > max_listed)
            error += "\n  … and " +
                     std::to_string(diffs.size() - max_listed) +
                     " more";
        return false;
    }

    if (cur.has("eventsPerSec") && base.has("eventsPerSec")) {
        double now = cur.at("eventsPerSec").number;
        double then = base.at("eventsPerSec").number;
        if (then > 0 && now < 0.8 * then) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "events/sec regressed >20%% vs baseline: "
                          "%.3g now vs %.3g then",
                          now, then);
            warning = buf;
        }
    }
    return true;
}

bool
printPerfSummary(const std::string &path, std::string &error,
                 const std::string &reference_path)
{
    JsonValue doc;
    if (!loadSweepDoc(path, doc, error))
        return false;

    auto num = [&doc](const char *key) {
        return doc.has(key) ? doc.at(key).number : 0.0;
    };
    std::printf("perf summary for %s\n", path.c_str());
    std::printf("  suite:        %s\n",
                doc.has("suite") ? doc.at("suite").text.c_str() : "?");
    std::printf("  timestamp:    %s\n",
                doc.has("timestamp") ? doc.at("timestamp").text.c_str()
                                     : "?");
    std::printf("  points:       %zu\n",
                doc.has("points") ? doc.at("points").items.size() : 0);
    std::printf("  simThreads:   %.0f\n",
                doc.has("simThreads") ? doc.at("simThreads").number
                                      : 1.0);
    std::printf("  hostSeconds:  %.2f\n", num("hostSeconds"));
    std::printf("  totalEvents:  %.0f\n", num("totalEvents"));
    std::printf("  eventsPerSec: %.3g\n", num("eventsPerSec"));

    if (!reference_path.empty()) {
        JsonValue ref;
        if (!loadSweepDoc(reference_path, ref, error))
            return false;
        auto rnum = [&ref](const char *key) {
            return ref.has(key) ? ref.at(key).number : 0.0;
        };
        double ref_threads =
            ref.has("simThreads") ? ref.at("simThreads").number : 1.0;
        double cur_secs = num("hostSeconds");
        double ref_secs = rnum("hostSeconds");
        double cur_eps = num("eventsPerSec");
        double ref_eps = rnum("eventsPerSec");
        std::printf("  speedup vs %s (simThreads=%.0f):\n",
                    reference_path.c_str(), ref_threads);
        std::printf("    wall-clock:  %.2fx (%.2fs vs %.2fs)\n",
                    cur_secs > 0 ? ref_secs / cur_secs : 0.0,
                    cur_secs, ref_secs);
        std::printf("    events/sec:  %.2fx (%.3g vs %.3g)\n",
                    ref_eps > 0 ? cur_eps / ref_eps : 0.0, cur_eps,
                    ref_eps);
    }

    if (!doc.has("points"))
        return true;
    // Per-tag aggregation, in first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, std::pair<double, double>> by_tag;
    for (const JsonValue &p : doc.at("points").items) {
        if (p.kind != JsonValue::Kind::Object || !p.has("tag"))
            continue;
        const std::string &tag = p.at("tag").text;
        if (!by_tag.count(tag))
            order.push_back(tag);
        auto &[events, secs] = by_tag[tag];
        if (p.has("kernel") && p.at("kernel").has("eventsExecuted"))
            events += p.at("kernel").at("eventsExecuted").number;
        if (p.has("hostSeconds"))
            secs += p.at("hostSeconds").number;
    }
    if (!order.empty()) {
        std::printf("  %-18s %14s %12s %14s\n", "tag", "events",
                    "hostSec", "events/sec");
        for (const std::string &tag : order) {
            auto [events, secs] = by_tag[tag];
            std::printf("  %-18s %14.0f %12.3f %14.4g\n", tag.c_str(),
                        events, secs, secs > 0 ? events / secs : 0.0);
        }
    }
    return true;
}

// --- subprocess wire format (cpx-wire-1) -----------------------------------
//
// One JSON object per line; a worker writes exactly one before
// exiting, and the journal is a sequence of them. Every stat is
// carried at full fidelity — u64 counters as exact decimal integers
// (reread with strtoull, not through a double), doubles as %.17g
// (round-trips exactly) — so a result that crossed the pipe or was
// reloaded from a journal is bit-identical to one computed in
// process.

namespace
{

bool
pointStatusFromName(const std::string &name, PointStatus &out)
{
    static const PointStatus all[] = {
        PointStatus::NotRun,      PointStatus::Ok,
        PointStatus::NonzeroExit, PointStatus::Signal,
        PointStatus::Timeout,     PointStatus::InvariantFailure,
        PointStatus::Garbage,
    };
    for (PointStatus s : all) {
        if (name == pointStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

void
serializeHistogram(std::ostringstream &out, const Histogram &h)
{
    const Accumulator &a = h.summary();
    out << "{\"buckets\":[";
    const auto &counts = h.bucketCounts();
    std::size_t last = counts.size();
    while (last > 0 && counts[last - 1] == 0)
        --last;
    for (std::size_t b = 0; b < last; ++b)
        out << (b ? "," : "") << jsonNumber(counts[b]);
    out << "],\"overflow\":" << jsonNumber(h.overflowCount())
        << ",\"count\":" << jsonNumber(a.count())
        << ",\"sum\":" << jsonNumber(a.sum())
        << ",\"min\":" << jsonNumber(a.min())
        << ",\"max\":" << jsonNumber(a.max()) << "}";
}

/**
 * Field accessors over a parsed wire object that collect the first
 * missing/mistyped member into @p error instead of fatal()ing like
 * JsonValue::at — a corrupt journal line must be reportable, not a
 * process abort.
 */
struct WireReader
{
    const JsonValue &obj;
    std::string &error;
    bool ok = true;

    const JsonValue *
    get(const char *key, JsonValue::Kind kind)
    {
        if (!ok)
            return nullptr;
        auto it = obj.members.find(key);
        if (it == obj.members.end() || it->second.kind != kind) {
            error = std::string("missing or mistyped '") + key + "'";
            ok = false;
            return nullptr;
        }
        return &it->second;
    }

    double
    num(const char *key)
    {
        const JsonValue *v = get(key, JsonValue::Kind::Number);
        return v ? v->number : 0.0;
    }

    std::uint64_t
    u64(const char *key)
    {
        const JsonValue *v = get(key, JsonValue::Kind::Number);
        return v ? jsonU64(*v) : 0;
    }

    /**
     * Like u64(), but an absent member yields @p fallback instead of
     * failing the record. For fields added to cpx-wire-1 after its
     * introduction (the parallel-kernel telemetry): journals and
     * caches written by older binaries stay loadable.
     */
    std::uint64_t
    u64Opt(const char *key, std::uint64_t fallback)
    {
        if (!ok)
            return fallback;
        auto it = obj.members.find(key);
        if (it == obj.members.end())
            return fallback;
        if (it->second.kind != JsonValue::Kind::Number) {
            error = std::string("mistyped '") + key + "'";
            ok = false;
            return fallback;
        }
        return jsonU64(it->second);
    }

    std::string
    str(const char *key)
    {
        const JsonValue *v = get(key, JsonValue::Kind::String);
        return v ? v->text : std::string();
    }

    bool
    boolean(const char *key)
    {
        const JsonValue *v = get(key, JsonValue::Kind::Bool);
        return v && v->boolean;
    }
};

bool
parseHistogram(const JsonValue &v, Histogram &h, std::string &error)
{
    if (v.kind != JsonValue::Kind::Object) {
        error = "histogram is not an object";
        return false;
    }
    WireReader r{v, error};
    const JsonValue *buckets =
        r.get("buckets", JsonValue::Kind::Array);
    std::uint64_t overflow = r.u64("overflow");
    std::uint64_t count = r.u64("count");
    double sum = r.num("sum"), min = r.num("min"),
           max = r.num("max");
    if (!r.ok)
        return false;
    std::vector<std::uint64_t> counts;
    counts.reserve(buckets->items.size());
    for (const JsonValue &item : buckets->items) {
        if (item.kind != JsonValue::Kind::Number) {
            error = "non-numeric histogram bucket";
            return false;
        }
        counts.push_back(jsonU64(item));
    }
    Accumulator acc;
    acc.restore(count, sum, min, max);
    if (!h.restore(counts, overflow, acc)) {
        error = "histogram geometry mismatch (" +
                std::to_string(counts.size()) + " buckets)";
        return false;
    }
    return true;
}

} // anonymous namespace

std::string
serializeWireResult(const SweepResult &res)
{
    std::ostringstream out;
    auto str = [](const std::string &s) {
        return "\"" + jsonEscape(s) + "\"";
    };
    out << "{\"schema\":\"cpx-wire-1\""
        << ",\"hash\":" << str(res.configHash)
        << ",\"status\":" << str(pointStatusName(res.status))
        << ",\"error\":" << str(res.error)
        << ",\"attempts\":" << res.attempts
        << ",\"hostSeconds\":" << jsonNumber(res.hostSeconds);

    // Only outcomes that actually produced stats carry the payload;
    // crash/timeout/garbage records are classification-only.
    const bool payload = res.status == PointStatus::Ok ||
                         res.status == PointStatus::InvariantFailure;
    if (payload) {
        const RunResult &s = res.run.stats;
        out << ",\"execTime\":"
            << jsonNumber(static_cast<std::uint64_t>(res.run.execTime))
            << ",\"verified\":"
            << (res.run.verified ? "true" : "false");
        out << ",\"stats\":{"
            << "\"protocol\":" << str(s.protocol)
            << ",\"consistency\":" << str(s.consistency)
            << ",\"execTime\":"
            << jsonNumber(static_cast<std::uint64_t>(s.execTime))
            << ",\"busy\":" << jsonNumber(s.busy)
            << ",\"readStall\":" << jsonNumber(s.readStall)
            << ",\"writeStall\":" << jsonNumber(s.writeStall)
            << ",\"acquireStall\":" << jsonNumber(s.acquireStall)
            << ",\"releaseStall\":" << jsonNumber(s.releaseStall)
            << ",\"sharedAccesses\":" << jsonNumber(s.sharedAccesses)
            << ",\"coldReadMisses\":" << jsonNumber(s.coldReadMisses)
            << ",\"cohReadMisses\":" << jsonNumber(s.cohReadMisses)
            << ",\"replReadMisses\":" << jsonNumber(s.replReadMisses)
            << ",\"writeMissesTotal\":"
            << jsonNumber(s.writeMissesTotal)
            << ",\"netBytes\":" << jsonNumber(s.netBytes)
            << ",\"netMessages\":" << jsonNumber(s.netMessages);
        out << ",\"classBytes\":[";
        constexpr unsigned num_classes =
            static_cast<unsigned>(MsgClass::NumClasses);
        for (unsigned k = 0; k < num_classes; ++k)
            out << (k ? "," : "") << jsonNumber(s.classBytes[k]);
        out << "]";
        out << ",\"ownershipRequests\":"
            << jsonNumber(s.ownershipRequests)
            << ",\"invalidationsSent\":"
            << jsonNumber(s.invalidationsSent)
            << ",\"updatesForwarded\":"
            << jsonNumber(s.updatesForwarded)
            << ",\"migratoryDetections\":"
            << jsonNumber(s.migratoryDetections)
            << ",\"prefetchesIssued\":"
            << jsonNumber(s.prefetchesIssued)
            << ",\"prefetchesUseful\":"
            << jsonNumber(s.prefetchesUseful)
            << ",\"softwarePrefetches\":"
            << jsonNumber(s.softwarePrefetches)
            << ",\"combinedWrites\":" << jsonNumber(s.combinedWrites)
            << ",\"counterInvalidations\":"
            << jsonNumber(s.counterInvalidations)
            << ",\"dirOverflowBroadcasts\":"
            << jsonNumber(s.dirOverflowBroadcasts)
            << ",\"dirPointerEvictions\":"
            << jsonNumber(s.dirPointerEvictions)
            << ",\"avgReadMissLatency\":"
            << jsonNumber(s.avgReadMissLatency);
        out << ",\"readMissLatency\":";
        serializeHistogram(out, s.readMissLatency);
        out << ",\"ownershipLatency\":";
        serializeHistogram(out, s.ownershipLatency);
        out << ",\"prefetchFillLatency\":";
        serializeHistogram(out, s.prefetchFillLatency);
        out << ",\"eventsExecuted\":" << jsonNumber(s.eventsExecuted)
            << ",\"peakPendingEvents\":"
            << jsonNumber(s.peakPendingEvents)
            << ",\"scheduleAllocs\":"
            << jsonNumber(s.scheduleAllocs)
            << ",\"slabRounds\":" << jsonNumber(s.slabRounds)
            << ",\"crossMessages\":" << jsonNumber(s.crossMessages)
            << ",\"lookahead\":" << jsonNumber(s.lookahead)
            << ",\"simThreads\":" << s.simThreads;
        if (!s.timeseries.empty()) {
            const MetricTimeSeries &ts = s.timeseries;
            out << ",\"timeseries\":{\"interval\":"
                << jsonNumber(static_cast<std::uint64_t>(ts.interval))
                << ",\"metrics\":[";
            for (std::size_t m = 0; m < ts.names.size(); ++m)
                out << (m ? "," : "") << str(ts.names[m]);
            out << "],\"ticks\":[";
            for (std::size_t i = 0; i < ts.ticks.size(); ++i)
                out << (i ? "," : "")
                    << jsonNumber(
                           static_cast<std::uint64_t>(ts.ticks[i]));
            out << "],\"deltas\":[";
            for (std::size_t i = 0; i < ts.deltas.size(); ++i)
                out << (i ? "," : "") << jsonNumber(ts.deltas[i]);
            out << "]}";
        }
        if (s.attribution.enabled) {
            // Positional arrays (field order fixed by the parser
            // below): compact, and exact — u64 via jsonNumber's
            // integer path, doubles via %.17g.
            const AttributionResult &ar = s.attribution;
            out << ",\"attribution\":{\"classes\":[";
            for (unsigned c = 0; c < numAttribClasses; ++c) {
                const AttribSegments &g = ar.classes[c];
                out << (c ? "," : "") << "[" << jsonNumber(g.count)
                    << "," << jsonNumber(g.latency) << ","
                    << jsonNumber(g.request) << ","
                    << jsonNumber(g.dirQueue) << ","
                    << jsonNumber(g.dirService) << ","
                    << jsonNumber(g.ownerFetch) << ","
                    << jsonNumber(g.invalFanout) << ","
                    << jsonNumber(g.ackCollect) << ","
                    << jsonNumber(g.dataReturn) << ","
                    << jsonNumber(g.fill) << ","
                    << jsonNumber(g.dataHops) << "]";
            }
            out << "],\"locks\":[" << jsonNumber(ar.locks.count)
                << "," << jsonNumber(ar.locks.latency) << ","
                << jsonNumber(ar.locks.homeQueue) << ","
                << jsonNumber(ar.locks.transfer) << "]";
            out << ",\"homes\":[";
            for (std::size_t i = 0; i < ar.homes.size(); ++i) {
                const AttribHomeStats &h = ar.homes[i];
                out << (i ? "," : "") << "["
                    << jsonNumber(
                           static_cast<std::uint64_t>(h.node))
                    << "," << jsonNumber(h.dirRequests) << ","
                    << jsonNumber(h.dirWaitTotal) << ","
                    << jsonNumber(h.dirWaitP99) << ","
                    << jsonNumber(h.lockGrants) << ","
                    << jsonNumber(h.lockWaitTotal) << ","
                    << jsonNumber(h.lockWaitP99) << "]";
            }
            out << "]";
            auto hot = [&](const char *key,
                           const std::vector<AttribHotSpot> &rows) {
                out << ",\"" << key << "\":[";
                for (std::size_t i = 0; i < rows.size(); ++i) {
                    const AttribHotSpot &h = rows[i];
                    out << (i ? "," : "") << "["
                        << jsonNumber(
                               static_cast<std::uint64_t>(h.addr))
                        << ","
                        << jsonNumber(
                               static_cast<std::uint64_t>(h.home))
                        << "," << jsonNumber(h.count) << ","
                        << jsonNumber(h.totalWait) << ","
                        << jsonNumber(h.p99Wait) << "]";
                }
                out << "]";
            };
            hot("hotBlocks", ar.hotBlocks);
            hot("hotLocks", ar.hotLocks);
            out << ",\"matchedTxns\":" << jsonNumber(ar.matchedTxns)
                << ",\"unmatchedDir\":"
                << jsonNumber(ar.unmatchedDir) << ",\"matchedLocks\":"
                << jsonNumber(ar.matchedLocks)
                << ",\"unmatchedLocks\":"
                << jsonNumber(ar.unmatchedLocks) << ",\"fanoutTotal\":"
                << jsonNumber(ar.fanoutTotal)
                << ",\"fanoutImprecise\":"
                << jsonNumber(ar.fanoutImprecise) << "}";
        }
        out << "}";
    }
    out << "}";
    return out.str();
}

bool
parseWireResult(const std::string &line, SweepResult &out,
                std::string &error)
{
    JsonValue doc;
    if (!parseJson(line, doc, error))
        return false;
    if (doc.kind != JsonValue::Kind::Object || !doc.has("schema") ||
        doc.at("schema").kind != JsonValue::Kind::String ||
        doc.at("schema").text != "cpx-wire-1") {
        error = "missing cpx-wire-1 schema marker";
        return false;
    }

    out = SweepResult{};
    WireReader top{doc, error};
    out.configHash = top.str("hash");
    std::string status_name = top.str("status");
    out.error = top.str("error");
    out.attempts = static_cast<unsigned>(top.u64("attempts"));
    out.hostSeconds = top.num("hostSeconds");
    if (!top.ok)
        return false;
    if (!pointStatusFromName(status_name, out.status)) {
        error = "unknown status '" + status_name + "'";
        return false;
    }

    const bool payload = out.status == PointStatus::Ok ||
                         out.status == PointStatus::InvariantFailure;
    if (!payload)
        return true;

    out.run.execTime = static_cast<Tick>(top.u64("execTime"));
    out.run.verified = top.boolean("verified");
    const JsonValue *stats_v =
        top.get("stats", JsonValue::Kind::Object);
    if (!top.ok)
        return false;

    RunResult &s = out.run.stats;
    WireReader r{*stats_v, error};
    s.protocol = r.str("protocol");
    s.consistency = r.str("consistency");
    s.execTime = static_cast<Tick>(r.u64("execTime"));
    s.busy = r.num("busy");
    s.readStall = r.num("readStall");
    s.writeStall = r.num("writeStall");
    s.acquireStall = r.num("acquireStall");
    s.releaseStall = r.num("releaseStall");
    s.sharedAccesses = r.u64("sharedAccesses");
    s.coldReadMisses = r.u64("coldReadMisses");
    s.cohReadMisses = r.u64("cohReadMisses");
    s.replReadMisses = r.u64("replReadMisses");
    s.writeMissesTotal = r.u64("writeMissesTotal");
    s.netBytes = r.u64("netBytes");
    s.netMessages = r.u64("netMessages");
    s.ownershipRequests = r.u64("ownershipRequests");
    s.invalidationsSent = r.u64("invalidationsSent");
    s.updatesForwarded = r.u64("updatesForwarded");
    s.migratoryDetections = r.u64("migratoryDetections");
    s.prefetchesIssued = r.u64("prefetchesIssued");
    s.prefetchesUseful = r.u64("prefetchesUseful");
    s.softwarePrefetches = r.u64("softwarePrefetches");
    s.combinedWrites = r.u64("combinedWrites");
    s.counterInvalidations = r.u64("counterInvalidations");
    s.dirOverflowBroadcasts = r.u64Opt("dirOverflowBroadcasts", 0);
    s.dirPointerEvictions = r.u64Opt("dirPointerEvictions", 0);
    s.avgReadMissLatency = r.num("avgReadMissLatency");
    s.eventsExecuted = r.u64("eventsExecuted");
    s.peakPendingEvents = r.u64("peakPendingEvents");
    s.scheduleAllocs = r.u64("scheduleAllocs");
    s.slabRounds = r.u64Opt("slabRounds", 0);
    s.crossMessages = r.u64Opt("crossMessages", 0);
    s.lookahead = r.u64Opt("lookahead", 0);
    s.simThreads =
        static_cast<unsigned>(r.u64Opt("simThreads", 1));
    const JsonValue *class_bytes =
        r.get("classBytes", JsonValue::Kind::Array);
    if (!r.ok)
        return false;
    constexpr unsigned num_classes =
        static_cast<unsigned>(MsgClass::NumClasses);
    if (class_bytes->items.size() != num_classes) {
        error = "classBytes has " +
                std::to_string(class_bytes->items.size()) +
                " entries, expected " + std::to_string(num_classes);
        return false;
    }
    for (unsigned k = 0; k < num_classes; ++k)
        s.classBytes[k] = jsonU64(class_bytes->items[k]);

    const std::pair<const char *, Histogram *> hists[] = {
        {"readMissLatency", &s.readMissLatency},
        {"ownershipLatency", &s.ownershipLatency},
        {"prefetchFillLatency", &s.prefetchFillLatency},
    };
    for (auto [key, hist] : hists) {
        const JsonValue *v = r.get(key, JsonValue::Kind::Object);
        if (!r.ok)
            return false;
        if (!parseHistogram(*v, *hist, error))
            return false;
    }

    if (stats_v->has("timeseries")) {
        const JsonValue &ts_v = stats_v->at("timeseries");
        if (ts_v.kind != JsonValue::Kind::Object) {
            error = "timeseries is not an object";
            return false;
        }
        WireReader t{ts_v, error};
        MetricTimeSeries &ts = s.timeseries;
        ts.interval = static_cast<Tick>(t.u64("interval"));
        const JsonValue *metrics =
            t.get("metrics", JsonValue::Kind::Array);
        const JsonValue *ticks =
            t.get("ticks", JsonValue::Kind::Array);
        const JsonValue *deltas =
            t.get("deltas", JsonValue::Kind::Array);
        if (!t.ok)
            return false;
        for (const JsonValue &name : metrics->items)
            ts.names.push_back(name.text);
        for (const JsonValue &tick : ticks->items)
            ts.ticks.push_back(static_cast<Tick>(jsonU64(tick)));
        for (const JsonValue &d : deltas->items)
            ts.deltas.push_back(jsonU64(d));
        if (ts.names.empty() ||
            ts.deltas.size() != ts.ticks.size() * ts.names.size()) {
            error = "ragged timeseries in wire record";
            return false;
        }
    }

    // Tolerant like timeseries: absent means the point ran without
    // --attrib, not a malformed record.
    if (stats_v->has("attribution")) {
        const JsonValue &ar_v = stats_v->at("attribution");
        if (ar_v.kind != JsonValue::Kind::Object) {
            error = "attribution is not an object";
            return false;
        }
        WireReader a{ar_v, error};
        AttributionResult &ar = s.attribution;
        ar.enabled = true;
        auto row = [&error](const JsonValue &v, std::size_t want,
                            const char *what) -> bool {
            if (v.kind != JsonValue::Kind::Array ||
                v.items.size() != want) {
                error = std::string("bad attribution ") + what +
                        " row";
                return false;
            }
            return true;
        };
        const JsonValue *classes =
            a.get("classes", JsonValue::Kind::Array);
        const JsonValue *locks = a.get("locks", JsonValue::Kind::Array);
        const JsonValue *homes = a.get("homes", JsonValue::Kind::Array);
        const JsonValue *hot_blocks =
            a.get("hotBlocks", JsonValue::Kind::Array);
        const JsonValue *hot_locks =
            a.get("hotLocks", JsonValue::Kind::Array);
        ar.matchedTxns = a.u64("matchedTxns");
        ar.unmatchedDir = a.u64("unmatchedDir");
        ar.matchedLocks = a.u64("matchedLocks");
        ar.unmatchedLocks = a.u64("unmatchedLocks");
        ar.fanoutTotal = a.u64("fanoutTotal");
        ar.fanoutImprecise = a.u64("fanoutImprecise");
        if (!a.ok)
            return false;
        if (classes->items.size() != numAttribClasses) {
            error = "attribution classes has " +
                    std::to_string(classes->items.size()) +
                    " rows, expected " +
                    std::to_string(numAttribClasses);
            return false;
        }
        for (unsigned c = 0; c < numAttribClasses; ++c) {
            const JsonValue &v = classes->items[c];
            if (!row(v, 11, "class"))
                return false;
            AttribSegments &g = ar.classes[c];
            g.count = jsonU64(v.items[0]);
            g.latency = jsonU64(v.items[1]);
            g.request = jsonU64(v.items[2]);
            g.dirQueue = jsonU64(v.items[3]);
            g.dirService = jsonU64(v.items[4]);
            g.ownerFetch = jsonU64(v.items[5]);
            g.invalFanout = jsonU64(v.items[6]);
            g.ackCollect = jsonU64(v.items[7]);
            g.dataReturn = jsonU64(v.items[8]);
            g.fill = jsonU64(v.items[9]);
            g.dataHops = jsonU64(v.items[10]);
        }
        if (!row(*locks, 4, "locks"))
            return false;
        ar.locks.count = jsonU64(locks->items[0]);
        ar.locks.latency = jsonU64(locks->items[1]);
        ar.locks.homeQueue = jsonU64(locks->items[2]);
        ar.locks.transfer = jsonU64(locks->items[3]);
        for (const JsonValue &v : homes->items) {
            if (!row(v, 7, "home"))
                return false;
            AttribHomeStats h;
            h.node = static_cast<NodeId>(jsonU64(v.items[0]));
            h.dirRequests = jsonU64(v.items[1]);
            h.dirWaitTotal = jsonU64(v.items[2]);
            h.dirWaitP99 = v.items[3].number;
            h.lockGrants = jsonU64(v.items[4]);
            h.lockWaitTotal = jsonU64(v.items[5]);
            h.lockWaitP99 = v.items[6].number;
            ar.homes.push_back(h);
        }
        auto hot = [&](const JsonValue *rows,
                       std::vector<AttribHotSpot> &dst) -> bool {
            for (const JsonValue &v : rows->items) {
                if (!row(v, 5, "hot-spot"))
                    return false;
                AttribHotSpot h;
                h.addr = static_cast<Addr>(jsonU64(v.items[0]));
                h.home = static_cast<NodeId>(jsonU64(v.items[1]));
                h.count = jsonU64(v.items[2]);
                h.totalWait = jsonU64(v.items[3]);
                h.p99Wait = v.items[4].number;
                dst.push_back(h);
            }
            return true;
        };
        if (!hot(hot_blocks, ar.hotBlocks) ||
            !hot(hot_locks, ar.hotLocks))
            return false;
    }
    return true;
}

JournalLoad
loadJournal(const std::string &path)
{
    JournalLoad load;
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return load;
    std::ofstream quarantine;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(file, line)) {
        ++lineno;
        if (line.empty())
            continue;
        SweepResult res;
        std::string err;
        if (!parseWireResult(line, res, err)) {
            // A corrupt or truncated line (e.g. a crash mid-append on
            // a filesystem without ordered data) is preserved in a
            // sidecar, never silently dropped: losing a record is
            // recoverable, hiding the corruption is not.
            if (!quarantine.is_open()) {
                load.quarantineFile = path + ".quarantine";
                quarantine.open(load.quarantineFile,
                                std::ios::binary | std::ios::app);
            }
            quarantine << line << "\n";
            ++load.quarantined;
            std::fprintf(stderr,
                         "cpxbench: %s:%zu: corrupt journal line "
                         "(%s)\n",
                         path.c_str(), lineno, err.c_str());
            continue;
        }
        res.source = ResultSource::Journal;
        load.byHash[res.configHash] = std::move(res);
        ++load.entries;
    }
    return load;
}

// --- fault-injection self-test ---------------------------------------------

int
runFaultSelfTest(const Options &base)
{
    char tmpl[] = "/tmp/cpx-selftest-XXXXXX";
    if (!::mkdtemp(tmpl)) {
        std::fprintf(stderr, "self-test: mkdtemp: %s\n",
                     std::strerror(errno));
        return 1;
    }
    const std::string dir = tmpl;

    // Small, fast grid parameters; the self-test exercises the
    // supervisor, not the simulator.
    Options opts = base;
    opts.isolate = IsolateMode::Process;
    opts.scale = std::min(opts.scale, 0.2);
    opts.procs = 4;
    opts.retries = 0;
    if (opts.timeoutSec <= 0)
        opts.timeoutSec = 5.0;
    if (opts.jobs == 0)
        opts.jobs = 4;
    MachineParams params;

    int failures = 0;
    auto check = [&](bool cond, const char *what) {
        std::printf("  %s: %s\n", cond ? "ok" : "FAIL", what);
        if (!cond)
            ++failures;
    };

    std::printf("[1/4] outcome classification under --isolate="
                "process\n");
    std::size_t h_crash, h_exit, h_hang, h_garbage, h_unverified,
        h_ok;
    {
        Options o = opts;
        o.journalPath = dir + "/classify.jsonl";
        SweepRunner runner(o);
        h_crash = runner.add(faultAppCrash, params, "crash");
        h_exit = runner.add(faultAppExit, params, "exit");
        h_hang = runner.add(faultAppHang, params, "hang");
        h_garbage = runner.add(faultAppGarbage, params, "garbage");
        h_unverified =
            runner.add(faultAppUnverified, params, "unverified");
        h_ok = runner.add("migratory", params, "healthy");
        runner.runAll();
        check(runner[h_crash].status == PointStatus::Signal,
              "crashing worker classified as signal");
        check(runner[h_exit].status == PointStatus::NonzeroExit,
              "exiting worker classified as nonzero-exit");
        check(runner[h_hang].status == PointStatus::Timeout,
              "hanging worker classified as timeout");
        check(runner[h_garbage].status == PointStatus::Garbage,
              "garbage-emitting worker classified as garbage");
        check(runner[h_unverified].status ==
                  PointStatus::InvariantFailure,
              "unverified worker classified as invariant-failure");
        check(runner[h_ok].ok(), "healthy point completed ok");
        check(runner.failedCount() == 5,
              "exactly the five injected faults failed");
    }

    std::printf("[2/4] transient-failure retry\n");
    {
        Options o = opts;
        o.retries = 1;
        const std::string marker = dir + "/flaky.marker";
        ::setenv(flakyMarkerEnv, marker.c_str(), 1);
        SweepRunner runner(o);
        std::size_t h = runner.add(faultAppFlaky, params, "flaky");
        runner.runAll();
        ::unsetenv(flakyMarkerEnv);
        std::remove(marker.c_str());
        check(runner[h].ok(), "flaky point succeeded after retry");
        check(runner[h].attempts == 2,
              "flaky point took exactly two attempts");
    }

    std::printf("[3/4] subprocess stats bit-identical to "
                "in-process\n");
    const char *apps[] = {"migratory", "producer_consumer",
                          "false_sharing"};
    // hostSeconds is the one legitimately host-dependent field;
    // everything else must match to the bit.
    auto wire_no_host = [](SweepResult r) {
        r.hostSeconds = 0;
        return serializeWireResult(r);
    };
    {
        Options in = opts;
        in.isolate = IsolateMode::None;
        in.timeoutSec = 0;
        SweepRunner r_in(in);
        SweepRunner r_proc(opts);
        for (const char *app : apps) {
            r_in.add(app, params, app);
            r_proc.add(app, params, app);
        }
        r_in.runAll();
        r_proc.runAll();
        bool identical = true;
        for (std::size_t i = 0; i < 3; ++i)
            identical = identical && wire_no_host(r_in[i]) ==
                                         wire_no_host(r_proc[i]);
        check(identical,
              "all healthy points bit-identical across modes");
    }

    std::printf("[4/4] journal resume skips completed points\n");
    {
        Options first = opts;
        first.journalPath = dir + "/resume.jsonl";
        SweepRunner r1(first);
        for (const char *app : apps)
            r1.add(app, params, app);
        r1.runAll();
        check(r1.executedCount() == 3, "first run executed all");

        Options second = first;
        second.resumePath = first.journalPath;
        SweepRunner r2(second);
        for (const char *app : apps)
            r2.add(app, params, app);
        r2.runAll();
        check(r2.executedCount() == 0,
              "resumed run re-executed nothing");
        bool identical = true;
        for (std::size_t i = 0; i < 3; ++i)
            identical = identical && wire_no_host(r1[i]) ==
                                         wire_no_host(r2[i]);
        check(identical, "resumed stats identical to first run");
    }

    // Best-effort cleanup of the scratch dir.
    for (const char *name :
         {"classify.jsonl", "flaky.marker", "resume.jsonl"})
        std::remove((dir + "/" + name).c_str());
    ::rmdir(dir.c_str());

    if (failures) {
        std::printf("self-test: %d check(s) FAILED\n", failures);
        return 1;
    }
    std::printf("self-test: all checks passed\n");
    return 0;
}

// --- bench-module registry -------------------------------------------------

namespace
{

std::vector<BenchDef> &
mutableRegistry()
{
    static std::vector<BenchDef> registry;
    return registry;
}

} // anonymous namespace

detail::BenchRegistrar::BenchRegistrar(const BenchDef &def)
{
    mutableRegistry().push_back(def);
}

const std::vector<BenchDef> &
benchRegistry()
{
    std::vector<BenchDef> &registry = mutableRegistry();
    std::stable_sort(registry.begin(), registry.end(),
                     [](const BenchDef &a, const BenchDef &b) {
                         return a.order < b.order;
                     });
    return registry;
}

int
standaloneMain(int argc, char **argv, const BenchDef &def)
{
    Options opts = parseOptions(argc, argv);
    SweepRunner runner(opts);
    RenderFn render = def.setup(runner, opts);
    runner.runAll();
    if (runner.interrupted()) {
        // Completed points are journaled; nothing else is
        // trustworthy enough to render or write.
        return exitCodeInterrupted;
    }
    if (render)
        render();
    if (!opts.jsonPath.empty())
        writeJson(opts.jsonPath, def.name, opts, runner.results(),
                  runner.totalHostSeconds());
    if (runner.anyFailed()) {
        std::fprintf(stderr,
                     "%s: %zu sweep point(s) failed:%s\n",
                     std::string(def.name).c_str(),
                     runner.failedCount(),
                     runner.failureSummary().c_str());
        return exitCodePointsFailed;
    }
    return 0;
}

} // namespace cpx::bench
