#include "bench/runner.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "sim/parse.hh"

namespace cpx::bench
{

namespace
{

std::string
networkName(const MachineParams &params)
{
    if (params.networkKind == NetworkKind::Uniform)
        return "uniform";
    return "mesh" + std::to_string(params.meshLinkBits);
}

} // anonymous namespace

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    if (const char *env = std::getenv("CPX_SCALE"))
        opts.scale = parsePositiveDouble(env, "CPX_SCALE");
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0)
            opts.scale = parsePositiveDouble(arg + 8, "--scale");
        else if (std::strncmp(arg, "--procs=", 8) == 0)
            opts.procs = parsePositiveUnsigned(arg + 8, "--procs");
        else if (std::strncmp(arg, "--jobs=", 7) == 0)
            opts.jobs = parsePositiveUnsigned(arg + 7, "--jobs");
        else if (std::strncmp(arg, "--seed=", 7) == 0)
            opts.seed = parseU64(arg + 7, "--seed");
        else if (std::strncmp(arg, "--json=", 7) == 0)
            opts.jsonPath = arg + 7;
        else if (std::strncmp(arg, "--sample-interval=", 18) == 0)
            opts.sampleInterval =
                parseU64(arg + 18, "--sample-interval");
        else
            fatal("unknown option '%s' (use --scale=F --procs=N "
                  "--jobs=N --seed=N --json=PATH "
                  "--sample-interval=N)",
                  arg);
    }
    return opts;
}

std::string
describePoint(const SweepPoint &point)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s under %s / %s / %s / %u procs "
                  "(scale %.2f, seed %llu)",
                  point.app.c_str(),
                  point.params.protocol.name().c_str(),
                  point.params.consistency ==
                          Consistency::SequentialConsistency
                      ? "SC"
                      : "RC",
                  networkName(point.params).c_str(),
                  point.params.numProcs, point.scale,
                  static_cast<unsigned long long>(point.seed));
    return buf;
}

SweepRunner::SweepRunner(const Options &opts_in) : opts(opts_in) {}

std::size_t
SweepRunner::add(const std::string &app, MachineParams params,
                 const std::string &tag, unsigned procs)
{
    params.numProcs = procs ? procs : opts.procs;
    SweepPoint point{app, params, tag, opts.scale, opts.seed};
    queued.push_back(std::move(point));
    return done.size() + queued.size() - 1;
}

void
SweepRunner::runAll()
{
    if (queued.empty())
        return;

    std::vector<SweepResult> batch(queued.size());
    std::atomic<std::size_t> next{0};

    auto wall_start = std::chrono::steady_clock::now();

    // Per-point completion reporting: a live one-line ticker on a
    // terminal, one plain line per point otherwise (CI logs). Both
    // show running events/sec and an ETA extrapolated from the mean
    // host cost of the points completed so far — coarse under a
    // heterogeneous grid, but it replaces a silent multi-minute gap.
    const bool tty = isatty(fileno(stderr)) != 0;
    std::mutex progress_mutex;
    std::size_t completed = 0;
    std::uint64_t events_done = 0;
    auto report_progress = [&](const SweepResult &r) {
        std::lock_guard<std::mutex> hold(progress_mutex);
        ++completed;
        events_done += r.run.stats.eventsExecuted;
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - wall_start;
        double secs = elapsed.count();
        double rate = secs > 0 ? events_done / secs : 0.0;
        double eta = completed ? secs / completed *
                                     (queued.size() - completed)
                               : 0.0;
        std::fprintf(stderr,
                     "%s[%zu/%zu] %s %s | %.3g Mev/s | ETA %.0fs%s",
                     tty ? "\r\033[K" : "", completed, queued.size(),
                     r.point.tag.empty() ? "point"
                                         : r.point.tag.c_str(),
                     r.point.app.c_str(), rate / 1e6, eta,
                     tty && completed != queued.size() ? "" : "\n");
    };

    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= queued.size())
                return;
            const SweepPoint &point = queued[i];
            auto start = std::chrono::steady_clock::now();
            System sys(point.params);
            auto w = makeWorkload(point.app, point.scale, point.seed);
            WorkloadRun run =
                runWorkload(sys, *w, maxTick, opts.sampleInterval);
            std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            batch[i] = SweepResult{point, std::move(run),
                                   elapsed.count()};
            report_progress(batch[i]);
        }
    };

    unsigned jobs = opts.jobs;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min<std::size_t>(jobs, queued.size());
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    hostSeconds += wall.count();

    // Report verification failures only after every worker has
    // joined: fatal() exits the process, and a failing point must
    // name its full configuration so it can be reproduced alone.
    std::string failures;
    for (const SweepResult &r : batch) {
        if (!r.run.verified)
            failures += "\n  " + describePoint(r.point);
    }
    for (SweepResult &r : batch)
        done.push_back(std::move(r));
    queued.clear();
    if (!failures.empty())
        fatal("sweep point(s) failed verification:%s",
              failures.c_str());
}

const SweepResult &
SweepRunner::operator[](std::size_t handle) const
{
    if (handle >= done.size())
        fatal("sweep handle %zu not run yet (did you call "
              "runAll()?)",
              handle);
    return done[handle];
}

// --- JSON output -----------------------------------------------------------

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no infinities or NaNs; the stats never produce them,
    // but never emit an unparseable document if one slips through.
    if (std::strstr(buf, "inf") || std::strstr(buf, "nan"))
        return "null";
    return buf;
}

std::string
jsonNumber(std::uint64_t v)
{
    return std::to_string(v);
}

} // anonymous namespace

void
writeJson(const std::string &path, const std::string &suite,
          const Options &opts,
          const std::vector<SweepResult> &results,
          double total_host_seconds)
{
    std::ostringstream out;
    auto str = [](const std::string &s) {
        return "\"" + jsonEscape(s) + "\"";
    };

    char timestamp[32] = "";
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc))
        std::strftime(timestamp, sizeof(timestamp),
                      "%Y-%m-%dT%H:%M:%SZ", &tm_utc);

    out << "{\n";
    out << "  \"schema\": \"cpx-sweep-1\",\n";
    out << "  \"suite\": " << str(suite) << ",\n";
    out << "  \"timestamp\": " << str(timestamp) << ",\n";
    out << "  \"jobs\": " << opts.jobs << ",\n";
    out << "  \"scale\": " << jsonNumber(opts.scale) << ",\n";
    out << "  \"procs\": " << opts.procs << ",\n";
    out << "  \"hostSeconds\": " << jsonNumber(total_host_seconds)
        << ",\n";

    // Suite-level throughput: the perf trajectory CI tracks. Event
    // counts are simulated (bit-identical across hosts and --jobs);
    // only the divide by host time varies.
    std::uint64_t total_events = 0;
    for (const SweepResult &r : results)
        total_events += r.run.stats.eventsExecuted;
    out << "  \"totalEvents\": " << jsonNumber(total_events) << ",\n";
    out << "  \"eventsPerSec\": "
        << jsonNumber(total_host_seconds > 0
                          ? total_events / total_host_seconds
                          : 0.0)
        << ",\n";
    out << "  \"points\": [";

    bool first = true;
    for (const SweepResult &r : results) {
        const RunResult &s = r.run.stats;
        const MachineParams &p = r.point.params;
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\n";
        out << "      \"tag\": " << str(r.point.tag) << ",\n";
        out << "      \"app\": " << str(r.point.app) << ",\n";
        out << "      \"config\": {"
            << "\"protocol\": " << str(p.protocol.name()) << ", "
            << "\"consistency\": " << str(s.consistency) << ", "
            << "\"network\": " << str(networkName(p)) << ", "
            << "\"procs\": " << p.numProcs << ", "
            << "\"scale\": " << jsonNumber(r.point.scale) << ", "
            << "\"seed\": " << jsonNumber(r.point.seed) << ", "
            << "\"slcBytes\": " << p.slcBytes << ", "
            << "\"threshold\": " << p.competitiveThreshold << ", "
            << "\"writeCache\": "
            << (p.writeCacheEnabled ? "true" : "false") << "},\n";
        out << "      \"verified\": "
            << (r.run.verified ? "true" : "false") << ",\n";
        out << "      \"execTime\": "
            << jsonNumber(static_cast<std::uint64_t>(r.run.execTime))
            << ",\n";
        out << "      \"breakdown\": {"
            << "\"busy\": " << jsonNumber(s.busy) << ", "
            << "\"readStall\": " << jsonNumber(s.readStall) << ", "
            << "\"writeStall\": " << jsonNumber(s.writeStall) << ", "
            << "\"acquireStall\": " << jsonNumber(s.acquireStall)
            << ", "
            << "\"releaseStall\": " << jsonNumber(s.releaseStall)
            << "},\n";
        out << "      \"misses\": {"
            << "\"coldPct\": " << jsonNumber(s.coldMissRate()) << ", "
            << "\"cohPct\": " << jsonNumber(s.cohMissRate()) << ", "
            << "\"sharedAccesses\": " << jsonNumber(s.sharedAccesses)
            << ", "
            << "\"coldRead\": " << jsonNumber(s.coldReadMisses) << ", "
            << "\"cohRead\": " << jsonNumber(s.cohReadMisses) << ", "
            << "\"replRead\": " << jsonNumber(s.replReadMisses) << ", "
            << "\"write\": " << jsonNumber(s.writeMissesTotal)
            << ", "
            << "\"avgReadLatency\": "
            << jsonNumber(s.avgReadMissLatency) << "},\n";
        out << "      \"traffic\": {"
            << "\"bytes\": " << jsonNumber(s.netBytes) << ", "
            << "\"messages\": " << jsonNumber(s.netMessages) << "},\n";
        out << "      \"protocolEvents\": {"
            << "\"prefetchesIssued\": "
            << jsonNumber(s.prefetchesIssued) << ", "
            << "\"prefetchesUseful\": "
            << jsonNumber(s.prefetchesUseful) << ", "
            << "\"softwarePrefetches\": "
            << jsonNumber(s.softwarePrefetches) << ", "
            << "\"combinedWrites\": " << jsonNumber(s.combinedWrites)
            << ", "
            << "\"migratoryDetections\": "
            << jsonNumber(s.migratoryDetections) << ", "
            << "\"invalidationsSent\": "
            << jsonNumber(s.invalidationsSent) << "},\n";
        auto hist = [&](const char *key, const Histogram &h,
                        const char *tail) {
            const Accumulator &a = h.summary();
            out << "\"" << key << "\": {"
                << "\"count\": " << jsonNumber(a.count()) << ", "
                << "\"mean\": " << jsonNumber(a.mean()) << ", "
                << "\"min\": " << jsonNumber(a.min()) << ", "
                << "\"max\": " << jsonNumber(a.max()) << ", "
                << "\"p50\": " << jsonNumber(h.percentile(0.50))
                << ", "
                << "\"p90\": " << jsonNumber(h.percentile(0.90))
                << ", "
                << "\"p99\": " << jsonNumber(h.percentile(0.99))
                << ", "
                << "\"bucketWidth\": "
                << jsonNumber(h.bucketWidth()) << ", "
                << "\"overflow\": "
                << jsonNumber(h.overflowCount()) << ", "
                << "\"buckets\": [";
            // Trim trailing zero buckets: the geometry is fixed, so
            // the baseline diff stays byte-stable and compact.
            const auto &counts = h.bucketCounts();
            std::size_t last = counts.size();
            while (last > 0 && counts[last - 1] == 0)
                --last;
            for (std::size_t b = 0; b < last; ++b)
                out << (b ? ", " : "") << jsonNumber(counts[b]);
            out << "]}" << tail;
        };
        out << "      \"latency\": {";
        hist("readMiss", s.readMissLatency, ", ");
        hist("ownership", s.ownershipLatency, ", ");
        hist("prefetchFill", s.prefetchFillLatency, "},\n");
        // Optional: interval-sampled series (--sample-interval > 0).
        // Deltas are row-major, one inner array per sampled window;
        // columns follow "metrics" order (DESIGN.md §13).
        if (!s.timeseries.empty()) {
            const MetricTimeSeries &ts = s.timeseries;
            out << "      \"timeseries\": {\n";
            out << "        \"interval\": "
                << jsonNumber(static_cast<std::uint64_t>(ts.interval))
                << ",\n";
            out << "        \"metrics\": [";
            for (std::size_t m = 0; m < ts.names.size(); ++m)
                out << (m ? ", " : "") << str(ts.names[m]);
            out << "],\n";
            out << "        \"ticks\": [";
            for (std::size_t row = 0; row < ts.ticks.size(); ++row)
                out << (row ? ", " : "")
                    << jsonNumber(
                           static_cast<std::uint64_t>(ts.ticks[row]));
            out << "],\n";
            out << "        \"deltas\": [";
            for (std::size_t row = 0; row < ts.rows(); ++row) {
                out << (row ? ",\n          [" : "\n          [");
                for (std::size_t m = 0; m < ts.names.size(); ++m)
                    out << (m ? ", " : "")
                        << jsonNumber(ts.at(row, m));
                out << "]";
            }
            out << "\n        ]\n      },\n";
        }
        out << "      \"kernel\": {"
            << "\"eventsExecuted\": " << jsonNumber(s.eventsExecuted)
            << ", "
            << "\"peakPendingEvents\": "
            << jsonNumber(s.peakPendingEvents) << ", "
            << "\"scheduleAllocs\": " << jsonNumber(s.scheduleAllocs)
            << ", "
            << "\"eventsPerSec\": "
            << jsonNumber(r.hostSeconds > 0
                              ? s.eventsExecuted / r.hostSeconds
                              : 0.0)
            << "},\n";
        out << "      \"hostSeconds\": " << jsonNumber(r.hostSeconds)
            << "\n";
        out << "    }";
    }
    out << "\n  ]\n}\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        fatal("cannot write JSON results to '%s'", path.c_str());
    file << out.str();
    if (!file.flush())
        fatal("short write to '%s'", path.c_str());
}

// --- JSON reader -----------------------------------------------------------

const JsonValue &
JsonValue::at(const std::string &key) const
{
    auto it = members.find(key);
    if (it == members.end())
        fatal("JSON object has no member '%s'", key.c_str());
    return it->second;
}

namespace
{

struct JsonParser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit JsonParser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &why)
    {
        if (error.empty())
            error = why + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (text.compare(pos, n, lit) != 0)
            return fail(std::string("bad literal (expected ") + lit +
                        ")");
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos++];
                switch (e) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/'; break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'n':  out += '\n'; break;
                  case 'r':  out += '\r'; break;
                  case 't':  out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            cp |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            cp |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    // Our documents only escape control characters;
                    // encode the BMP code point as UTF-8.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xc0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out.members.emplace(std::move(key),
                                    std::move(member));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    skipSpace();
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                out.items.push_back(std::move(item));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return parseLiteral("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return parseLiteral("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return parseLiteral("null");
        }
        // Number.
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("unexpected character");
        char *end = nullptr;
        std::string num = text.substr(start, pos - start);
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(num.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number '" + num + "'");
        return true;
    }
};

} // anonymous namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    JsonParser parser(text);
    if (!parser.parseValue(out)) {
        error = parser.error;
        return false;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        error = "trailing garbage at offset " +
                std::to_string(parser.pos);
        return false;
    }
    return true;
}

bool
validateResultsFile(const std::string &path, std::string &error)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();

    JsonValue doc;
    if (!parseJson(text.str(), doc, error)) {
        error = path + ": " + error;
        return false;
    }
    if (doc.kind != JsonValue::Kind::Object ||
        !doc.has("schema") ||
        doc.at("schema").text != "cpx-sweep-1") {
        error = path + ": missing cpx-sweep-1 schema marker";
        return false;
    }
    if (!doc.has("points") ||
        doc.at("points").kind != JsonValue::Kind::Array ||
        doc.at("points").items.empty()) {
        error = path + ": no sweep points recorded";
        return false;
    }
    for (const JsonValue &point : doc.at("points").items) {
        if (point.kind != JsonValue::Kind::Object ||
            !point.has("verified") || !point.has("app") ||
            !point.has("config") || !point.has("execTime")) {
            error = path + ": malformed sweep point";
            return false;
        }
        if (!point.at("verified").boolean) {
            error = path + ": unverified sweep point '" +
                    (point.has("tag") ? point.at("tag").text
                                      : std::string()) +
                    "' app=" + point.at("app").text;
            return false;
        }
        // The timeseries block is optional (only sampled runs carry
        // it), but when present it must be structurally sound: a
        // positive interval, named columns, and a rectangular deltas
        // matrix with one end tick per row.
        if (point.has("timeseries")) {
            const JsonValue &ts = point.at("timeseries");
            if (ts.kind != JsonValue::Kind::Object ||
                !ts.has("interval") || !ts.has("metrics") ||
                !ts.has("ticks") || !ts.has("deltas")) {
                error = path + ": malformed timeseries block";
                return false;
            }
            if (ts.at("interval").number <= 0) {
                error = path + ": timeseries interval must be > 0";
                return false;
            }
            const auto &metrics = ts.at("metrics").items;
            const auto &ticks = ts.at("ticks").items;
            const auto &deltas = ts.at("deltas").items;
            if (ts.at("metrics").kind != JsonValue::Kind::Array ||
                metrics.empty()) {
                error = path + ": timeseries has no metrics";
                return false;
            }
            if (deltas.size() != ticks.size()) {
                error = path + ": timeseries has " +
                        std::to_string(deltas.size()) +
                        " delta rows but " +
                        std::to_string(ticks.size()) + " ticks";
                return false;
            }
            for (const JsonValue &row : deltas) {
                if (row.kind != JsonValue::Kind::Array ||
                    row.items.size() != metrics.size()) {
                    error = path + ": ragged timeseries delta row";
                    return false;
                }
            }
        }
    }
    return true;
}

bool
validateTraceFile(const std::string &path, std::string &error)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();

    JsonValue doc;
    if (!parseJson(text.str(), doc, error)) {
        error = path + ": " + error;
        return false;
    }
    if (doc.kind != JsonValue::Kind::Object ||
        !doc.has("traceEvents") ||
        doc.at("traceEvents").kind != JsonValue::Kind::Array) {
        error = path + ": missing traceEvents array";
        return false;
    }
    const auto &events = doc.at("traceEvents").items;
    if (events.empty()) {
        error = path + ": empty traceEvents array";
        return false;
    }

    // Async transaction spans must pair up: per id, as many "b"
    // begins as "e" ends (the exporter degrades unmatched spans to
    // instants, so an imbalance means exporter breakage).
    std::map<std::string, long> open_spans;
    std::size_t spans = 0;
    for (const JsonValue &ev : events) {
        if (ev.kind != JsonValue::Kind::Object || !ev.has("ph") ||
            !ev.has("pid")) {
            error = path + ": malformed trace event";
            return false;
        }
        const std::string &ph = ev.at("ph").text;
        if (ph == "M")
            continue;  // metadata: process/thread names
        if (!ev.has("ts") || !ev.has("name")) {
            error = path + ": trace event missing ts/name";
            return false;
        }
        if (ph == "b" || ph == "e") {
            if (!ev.has("id")) {
                error = path + ": async event missing id";
                return false;
            }
            open_spans[ev.at("id").text] += ph == "b" ? 1 : -1;
            ++spans;
        } else if (ph != "i") {
            error = path + ": unexpected phase '" + ph + "'";
            return false;
        }
    }
    for (const auto &[id, balance] : open_spans) {
        if (balance != 0) {
            error = path + ": unbalanced b/e events for id " + id;
            return false;
        }
    }
    (void)spans;
    return true;
}

namespace
{

/** Read a file and parse it as a cpx-sweep-1 document. */
bool
loadSweepDoc(const std::string &path, JsonValue &doc,
             std::string &error)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();
    if (!parseJson(text.str(), doc, error)) {
        error = path + ": " + error;
        return false;
    }
    if (doc.kind != JsonValue::Kind::Object || !doc.has("schema") ||
        doc.at("schema").text != "cpx-sweep-1") {
        error = path + ": missing cpx-sweep-1 schema marker";
        return false;
    }
    return true;
}

bool
jsonEquals(const JsonValue &a, const JsonValue &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case JsonValue::Kind::Null:
        return true;
      case JsonValue::Kind::Bool:
        return a.boolean == b.boolean;
      case JsonValue::Kind::Number:
        // %.17g round-trips doubles exactly, so simulated stats from
        // identical runs parse back to identical values.
        return a.number == b.number;
      case JsonValue::Kind::String:
        return a.text == b.text;
      case JsonValue::Kind::Array:
        if (a.items.size() != b.items.size())
            return false;
        for (std::size_t i = 0; i < a.items.size(); ++i)
            if (!jsonEquals(a.items[i], b.items[i]))
                return false;
        return true;
      case JsonValue::Kind::Object:
        if (a.members.size() != b.members.size())
            return false;
        for (const auto &[key, value] : a.members) {
            auto it = b.members.find(key);
            if (it == b.members.end() ||
                !jsonEquals(value, it->second))
                return false;
        }
        return true;
    }
    return false;
}

std::string
pointLabel(const JsonValue &point)
{
    std::string label =
        point.has("tag") ? point.at("tag").text : std::string();
    if (point.has("app"))
        label += (label.empty() ? "" : "/") + point.at("app").text;
    return label.empty() ? "?" : label;
}

} // anonymous namespace

bool
compareToBaseline(const std::string &path,
                  const std::string &baseline_path,
                  std::string &error, std::string &warning)
{
    JsonValue cur, base;
    if (!loadSweepDoc(path, cur, error) ||
        !loadSweepDoc(baseline_path, base, error))
        return false;
    if (!cur.has("points") || !base.has("points") ||
        cur.at("points").kind != JsonValue::Kind::Array ||
        base.at("points").kind != JsonValue::Kind::Array) {
        error = "missing points array";
        return false;
    }
    const auto &cur_pts = cur.at("points").items;
    const auto &base_pts = base.at("points").items;
    if (cur_pts.size() != base_pts.size()) {
        error = path + ": " + std::to_string(cur_pts.size()) +
                " points vs " + std::to_string(base_pts.size()) +
                " in baseline " + baseline_path;
        return false;
    }

    // Every simulated stat is gated; hostSeconds and the kernel
    // throughput block are host-dependent and exempt.
    static const char *const gated[] = {
        "tag",      "app",    "config",  "verified",
        "execTime", "breakdown", "misses", "traffic",
        "protocolEvents", "latency", "timeseries",
    };
    for (std::size_t i = 0; i < cur_pts.size(); ++i) {
        const JsonValue &c = cur_pts[i];
        const JsonValue &b = base_pts[i];
        for (const char *field : gated) {
            const bool in_c = c.has(field);
            const bool in_b = b.has(field);
            if (in_c != in_b ||
                (in_c && !jsonEquals(c.at(field), b.at(field)))) {
                error = path + ": point " + std::to_string(i) + " (" +
                        pointLabel(c) + ") drifted from baseline in '" +
                        field + "'";
                return false;
            }
        }
    }

    if (cur.has("eventsPerSec") && base.has("eventsPerSec")) {
        double now = cur.at("eventsPerSec").number;
        double then = base.at("eventsPerSec").number;
        if (then > 0 && now < 0.8 * then) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "events/sec regressed >20%% vs baseline: "
                          "%.3g now vs %.3g then",
                          now, then);
            warning = buf;
        }
    }
    return true;
}

bool
printPerfSummary(const std::string &path, std::string &error)
{
    JsonValue doc;
    if (!loadSweepDoc(path, doc, error))
        return false;

    auto num = [&doc](const char *key) {
        return doc.has(key) ? doc.at(key).number : 0.0;
    };
    std::printf("perf summary for %s\n", path.c_str());
    std::printf("  suite:        %s\n",
                doc.has("suite") ? doc.at("suite").text.c_str() : "?");
    std::printf("  timestamp:    %s\n",
                doc.has("timestamp") ? doc.at("timestamp").text.c_str()
                                     : "?");
    std::printf("  points:       %zu\n",
                doc.has("points") ? doc.at("points").items.size() : 0);
    std::printf("  hostSeconds:  %.2f\n", num("hostSeconds"));
    std::printf("  totalEvents:  %.0f\n", num("totalEvents"));
    std::printf("  eventsPerSec: %.3g\n", num("eventsPerSec"));

    if (!doc.has("points"))
        return true;
    // Per-tag aggregation, in first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, std::pair<double, double>> by_tag;
    for (const JsonValue &p : doc.at("points").items) {
        if (p.kind != JsonValue::Kind::Object || !p.has("tag"))
            continue;
        const std::string &tag = p.at("tag").text;
        if (!by_tag.count(tag))
            order.push_back(tag);
        auto &[events, secs] = by_tag[tag];
        if (p.has("kernel") && p.at("kernel").has("eventsExecuted"))
            events += p.at("kernel").at("eventsExecuted").number;
        if (p.has("hostSeconds"))
            secs += p.at("hostSeconds").number;
    }
    if (!order.empty()) {
        std::printf("  %-18s %14s %12s %14s\n", "tag", "events",
                    "hostSec", "events/sec");
        for (const std::string &tag : order) {
            auto [events, secs] = by_tag[tag];
            std::printf("  %-18s %14.0f %12.3f %14.4g\n", tag.c_str(),
                        events, secs, secs > 0 ? events / secs : 0.0);
        }
    }
    return true;
}

// --- bench-module registry -------------------------------------------------

namespace
{

std::vector<BenchDef> &
mutableRegistry()
{
    static std::vector<BenchDef> registry;
    return registry;
}

} // anonymous namespace

detail::BenchRegistrar::BenchRegistrar(const BenchDef &def)
{
    mutableRegistry().push_back(def);
}

const std::vector<BenchDef> &
benchRegistry()
{
    std::vector<BenchDef> &registry = mutableRegistry();
    std::stable_sort(registry.begin(), registry.end(),
                     [](const BenchDef &a, const BenchDef &b) {
                         return a.order < b.order;
                     });
    return registry;
}

int
standaloneMain(int argc, char **argv, const BenchDef &def)
{
    Options opts = parseOptions(argc, argv);
    SweepRunner runner(opts);
    RenderFn render = def.setup(runner, opts);
    runner.runAll();
    if (render)
        render();
    if (!opts.jsonPath.empty())
        writeJson(opts.jsonPath, def.name, opts, runner.results(),
                  runner.totalHostSeconds());
    return 0;
}

} // namespace cpx::bench
