/**
 * @file
 * §5.4 sensitivity: finite second-level cache. The paper reruns the
 * §5.1 experiments with a 16 KB direct-mapped SLC and finds the
 * winning combinations keep their gains; P gets even better because
 * it also eliminates replacement misses.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

const std::vector<ProtocolConfig> &
slcProtocols()
{
    static const std::vector<ProtocolConfig> protos{
        ProtocolConfig::basic(), ProtocolConfig::p(),
        ProtocolConfig::pcw(), ProtocolConfig::pm()};
    return protos;
}

RenderFn
setup(SweepRunner &runner, const Options &)
{
    struct Pair
    {
        std::size_t infinite, finite;
    };
    // app-index -> protocol-index -> {infinite SLC, 16 KB SLC}.
    std::vector<std::vector<Pair>> grid;
    for (const std::string &app : paperApplications()) {
        std::vector<Pair> row;
        for (const ProtocolConfig &proto : slcProtocols()) {
            MachineParams inf = makeParams(proto);
            MachineParams fin = makeParams(proto);
            fin.slcBytes = 16 * 1024;
            row.push_back(
                Pair{runner.add(app, inf, "sens_slc/infinite"),
                     runner.add(app, fin, "sens_slc/16KB")});
        }
        grid.push_back(std::move(row));
    }

    return [&runner, grid]() {
        printBanner(
            "Sensitivity (§5.4) — finite 16 KB SLC vs infinite (RC; "
            "execution time relative to BASIC at the same SLC size)",
            "combinations that win with infinite caches win with "
            "finite caches too; P is even more effective because it "
            "removes replacement misses");

        for (std::size_t a = 0; a < grid.size(); ++a) {
            // Rows are relative to the BASIC pair, so the whole app
            // block needs every pair.
            std::vector<std::size_t> needed;
            for (const Pair &pair : grid[a]) {
                needed.push_back(pair.infinite);
                needed.push_back(pair.finite);
            }
            if (!rowOk(runner, needed,
                       "sens_slc " + paperApplications()[a]))
                continue;
            std::printf("\n%s:\n%-10s %12s %12s %18s\n",
                        paperApplications()[a].c_str(), "protocol",
                        "infinite", "16KB", "repl.misses@16KB");
            Tick base_inf = 0, base_fin = 0;
            for (std::size_t p = 0; p < grid[a].size(); ++p) {
                const SweepResult &ri = runner[grid[a][p].infinite];
                const SweepResult &rf = runner[grid[a][p].finite];
                if (slcProtocols()[p].name() == "BASIC") {
                    base_inf = ri.run.execTime;
                    base_fin = rf.run.execTime;
                }
                std::printf("%-10s %11.1f%% %11.1f%% %18llu\n",
                            slcProtocols()[p].name().c_str(),
                            100.0 * ri.run.execTime / base_inf,
                            100.0 * rf.run.execTime / base_fin,
                            static_cast<unsigned long long>(
                                rf.run.stats.replReadMisses));
            }
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(sens_slc, "§5.4 — finite SLC", 80, setup)
