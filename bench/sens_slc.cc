/**
 * @file
 * §5.4 sensitivity: finite second-level cache. The paper reruns the
 * §5.1 experiments with a 16 KB direct-mapped SLC and finds the
 * winning combinations keep their gains; P gets even better because
 * it also eliminates replacement misses.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Sensitivity (§5.4) — finite 16 KB SLC vs infinite (RC; "
        "execution time relative to BASIC at the same SLC size)",
        "combinations that win with infinite caches win with finite "
        "caches too; P is even more effective because it removes "
        "replacement misses");

    const ProtocolConfig protos[] = {
        ProtocolConfig::basic(), ProtocolConfig::p(),
        ProtocolConfig::pcw(), ProtocolConfig::pm()};

    for (const std::string &app : paperApplications()) {
        std::printf("\n%s:\n%-10s %12s %12s %18s\n", app.c_str(),
                    "protocol", "infinite", "16KB", "repl.misses@16KB");
        Tick base_inf = 0, base_fin = 0;
        for (const ProtocolConfig &proto : protos) {
            MachineParams inf = makeParams(proto);
            MachineParams fin = makeParams(proto);
            fin.slcBytes = 16 * 1024;
            WorkloadRun ri = bench::runOne(app, inf, opts);
            WorkloadRun rf = bench::runOne(app, fin, opts);
            if (proto.name() == "BASIC") {
                base_inf = ri.execTime;
                base_fin = rf.execTime;
            }
            std::printf("%-10s %11.1f%% %11.1f%% %18llu\n",
                        proto.name().c_str(),
                        100.0 * ri.execTime / base_inf,
                        100.0 * rf.execTime / base_fin,
                        static_cast<unsigned long long>(
                            rf.stats.replReadMisses));
        }
    }
    return 0;
}
