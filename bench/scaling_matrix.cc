/**
 * @file
 * Scaling matrix (ours): the paper's protocol matrix at 16/64/256
 * nodes across directory sharer-set representations.
 *
 * The ROADMAP's open question: does P+CW's traffic advantage survive
 * when the directory can no longer name every sharer? This bench
 * re-runs the protocol × consistency matrix at the paper's 16 nodes
 * and at 64/256 nodes, under the full-map, limited-pointer
 * (broadcast and eviction overflow policies) and coarse-vector
 * directories (DESIGN.md §16), reporting execution time and network
 * traffic relative to BASIC on the same machine.
 *
 * Deliberately NOT part of the cpxbench default suite: the committed
 * BENCH_baseline.json gate requires an unchanged point count, and
 * these grids are an order of magnitude beyond the smoke sweep.
 * Build/run it standalone:
 *
 *   ./bench/scaling_matrix --scale=0.05 --json=SCALING.json
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

struct ProtoCol
{
    const char *label;
    ProtocolConfig proto;
    Consistency consistency;
};

RenderFn
setup(SweepRunner &runner, const Options &)
{
    const std::vector<unsigned> counts{16, 64, 256};
    const std::vector<std::string> reps{"fullmap", "limptr4B",
                                        "limptr4E", "coarse4"};
    // CW requires release consistency (paper §3.3/§5.2), so the SC
    // column pairs are limited to the non-CW protocols.
    const std::vector<ProtoCol> protos{
        {"BASIC/SC", ProtocolConfig::basic(),
         Consistency::SequentialConsistency},
        {"BASIC/RC", ProtocolConfig::basic(),
         Consistency::ReleaseConsistency},
        {"P+M/SC", ProtocolConfig::pm(),
         Consistency::SequentialConsistency},
        {"P+M/RC", ProtocolConfig::pm(),
         Consistency::ReleaseConsistency},
        {"P+CW/RC", ProtocolConfig::pcw(),
         Consistency::ReleaseConsistency},
    };
    const std::string app = "mp3d";

    // count-index -> rep-index -> proto-index -> handle.
    std::vector<std::vector<std::vector<std::size_t>>> grid;
    for (unsigned nodes : counts) {
        std::vector<std::vector<std::size_t>> per_rep;
        for (const std::string &rep : reps) {
            DirectoryParams dir;
            if (!dir.parseSpec(rep))
                fatal("scaling_matrix: bad rep spec '%s'",
                      rep.c_str());
            std::string tag = "scaling_matrix/n" +
                              std::to_string(nodes) + "/" + rep;
            std::vector<std::size_t> handles;
            for (const ProtoCol &pc : protos) {
                handles.push_back(runner.add(
                    app,
                    makeScaledParams(pc.proto, pc.consistency, nodes,
                                     dir),
                    tag, nodes));
            }
            per_rep.push_back(std::move(handles));
        }
        grid.push_back(std::move(per_rep));
    }

    return [&runner, grid, counts, reps, protos, app]() {
        printBanner(
            "Scaling matrix — protocols x directory representations "
            "at 16/64/256 nodes (exec time ratio and traffic ratio "
            "vs BASIC/RC on the same machine)",
            "(not in the paper — answers the ROADMAP's P+CW-at-scale "
            "question)");

        for (std::size_t c = 0; c < counts.size(); ++c) {
            std::printf("\n%s, %u nodes:\n%-10s", app.c_str(),
                        counts[c], "dir");
            for (const ProtoCol &pc : protos)
                std::printf(" %16s", pc.label);
            std::printf("  %10s %8s\n", "ovfl-bcast", "ptr-evict");
            for (std::size_t r = 0; r < reps.size(); ++r) {
                const std::vector<std::size_t> &row = grid[c][r];
                if (!rowOk(runner, row,
                           "scaling_matrix n" +
                               std::to_string(counts[c]) + " " +
                               reps[r]))
                    continue;
                // Column 1 is BASIC/RC: the in-row reference.
                const SweepResult &base = runner[row[1]];
                Tick tb = base.run.execTime;
                std::uint64_t bb = base.run.stats.netBytes;
                std::printf("%-10s", reps[r].c_str());
                std::uint64_t ovfl = 0, evict = 0;
                for (std::size_t p = 0; p < protos.size(); ++p) {
                    const SweepResult &res = runner[row[p]];
                    Tick t = res.run.execTime;
                    std::uint64_t bytes = res.run.stats.netBytes;
                    std::printf(" %6.0f%% t %6.0f%% b",
                                100.0 * t / tb, 100.0 * bytes / bb);
                    ovfl += res.run.stats.dirOverflowBroadcasts;
                    evict += res.run.stats.dirPointerEvictions;
                }
                std::printf("  %10llu %8llu\n",
                            static_cast<unsigned long long>(ovfl),
                            static_cast<unsigned long long>(evict));
            }
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(scaling_matrix,
                 "Scaling matrix — 16/64/256-node directory "
                 "representations", 130, setup)
