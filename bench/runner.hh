/**
 * @file
 * Parallel sweep runner for the benchmark harness.
 *
 * Every bench target regenerates one paper table/figure from a grid
 * of (application × machine configuration) simulations. Each
 * simulation is single-threaded and deterministic (DESIGN.md §8), so
 * the grid is embarrassingly parallel across host threads. The
 * SweepRunner fans queued points out over a bounded thread pool
 * (--jobs=N) and collects per-point results in queue order, so the
 * rendered tables — and the emitted JSON — are bit-identical to a
 * serial run regardless of the job count.
 *
 * Bench targets use it in two phases:
 *
 *   SweepRunner runner(opts);
 *   auto h = runner.add("mp3d", makeParams(ProtocolConfig::pcw()));
 *   ... queue the whole grid ...
 *   runner.runAll();                  // the only parallel section
 *   const SweepResult &r = runner[h]; // render tables
 *
 * Each bench module registers itself with CPX_BENCH_DEFINE so the
 * combined driver (tools/cpxbench) can run every table and figure
 * through one shared pool and write one BENCH_results.json.
 */

#ifndef CPX_BENCH_RUNNER_HH
#define CPX_BENCH_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "workloads/workload.hh"

namespace cpx::bench
{

/** Harness-wide options shared by every bench target. */
struct Options
{
    double scale = 1.0;       //!< workload problem-size multiplier
    unsigned procs = 16;      //!< simulated processors per system
    unsigned jobs = 0;        //!< host threads; 0 = hardware_concurrency
    std::uint64_t seed = 1;   //!< workload seed (seeded workloads only)
    std::string jsonPath;     //!< --json=PATH; empty = no JSON output
    Tick sampleInterval = 0;  //!< interval-metrics period; 0 = off
};

/**
 * Parse the options every bench binary accepts:
 *   --scale=F --procs=N --jobs=N --seed=N --json=PATH
 *   --sample-interval=N
 * (CPX_SCALE in the environment seeds the default scale.)
 * Numbers are checked: malformed values, trailing garbage and zero
 * procs/jobs are fatal.
 */
Options parseOptions(int argc, char **argv);

/** One queued (application × machine) configuration. */
struct SweepPoint
{
    std::string app;
    MachineParams params;
    std::string tag;          //!< label in tables/JSON, e.g. "fig2"
    double scale = 1.0;
    std::uint64_t seed = 1;
};

/** One finished configuration. */
struct SweepResult
{
    SweepPoint point;
    WorkloadRun run;
    double hostSeconds = 0;   //!< host wall-time for this point
};

/** "mp3d under P+CW/RC/uniform/16p (scale 1.00, seed 1)" */
std::string describePoint(const SweepPoint &point);

class SweepRunner
{
  public:
    explicit SweepRunner(const Options &opts);

    /**
     * Queue one configuration and return its handle. @p params
     * inherits opts.procs unless @p procs overrides it (0 = inherit);
     * the point inherits opts.scale and opts.seed.
     * @pre runAll() has not been called yet for this point's batch
     */
    std::size_t add(const std::string &app, MachineParams params,
                    const std::string &tag = "", unsigned procs = 0);

    /**
     * Run every queued-but-unfinished point across the thread pool;
     * blocks until all are done. fatal()s — after all workers have
     * joined — if any point failed verification, naming each failing
     * configuration in full. Callable repeatedly: points added after
     * a runAll() form the next batch.
     */
    void runAll();

    /** Result of a finished point. @pre handle's batch has run */
    const SweepResult &operator[](std::size_t handle) const;

    /** All finished results, in add() order. */
    const std::vector<SweepResult> &results() const { return done; }

    /** Host wall-time of all runAll() calls so far, in seconds. */
    double totalHostSeconds() const { return hostSeconds; }

    const Options &options() const { return opts; }

  private:
    Options opts;
    std::vector<SweepPoint> queued;   //!< not yet run
    std::vector<SweepResult> done;    //!< finished, add() order
    double hostSeconds = 0;
};

/**
 * Write @p results as a machine-readable JSON document (see
 * DESIGN.md §11 for the schema). @p suite names the producing
 * harness ("cpxbench" or an individual bench target).
 */
void writeJson(const std::string &path, const std::string &suite,
               const Options &opts,
               const std::vector<SweepResult> &results,
               double total_host_seconds);

// --- minimal JSON reader (validation / round-trip tests) -------------------

/** A parsed JSON value: exactly one of the members is active. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    bool has(const std::string &key) const { return members.count(key); }
    const JsonValue &at(const std::string &key) const;
};

/**
 * Parse a JSON document. On success returns true and fills @p out;
 * on malformed input returns false and fills @p error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/**
 * Load and validate a sweep-results JSON file: parseable, carries
 * the cpx-sweep schema marker, and every point verified. Returns
 * true on success; otherwise fills @p error.
 */
bool validateResultsFile(const std::string &path, std::string &error);

/**
 * Validate a Chrome-trace-event JSON file as written by the flight
 * recorder exporter (TraceSink::writeChromeTrace): parseable, carries
 * a non-empty traceEvents array, every event names a phase, and every
 * async transaction begin ("b") has a matching end ("e") with the
 * same id. Returns true on success; otherwise fills @p error.
 */
bool validateTraceFile(const std::string &path, std::string &error);

/**
 * Compare a results file against a committed baseline. Every
 * simulated stat of every point — configuration, verification,
 * execTime, time breakdown, miss rates, traffic, protocol events —
 * must match the baseline bit-for-bit; host-dependent fields
 * (hostSeconds, kernel throughput) are exempt. Returns true if
 * nothing drifted, else fills @p error with the first divergence.
 * A >20% events/sec regression against the baseline's recorded
 * throughput fills @p warning but does not fail the comparison.
 */
bool compareToBaseline(const std::string &path,
                       const std::string &baseline_path,
                       std::string &error, std::string &warning);

/**
 * Print the throughput fields of an existing results file (suite
 * totals plus a per-tag table) to stdout; used by CI to surface the
 * perf trajectory in the job summary. Returns false and fills
 * @p error if the file is unreadable.
 */
bool printPerfSummary(const std::string &path, std::string &error);

// --- bench-module registry -------------------------------------------------

/** Called after runAll() to print the target's paper-style tables. */
using RenderFn = std::function<void()>;

/**
 * Queue the target's sweep grid on @p runner and return the closure
 * that renders its tables once the grid has run.
 */
using SetupFn = RenderFn (*)(SweepRunner &runner, const Options &opts);

struct BenchDef
{
    const char *name;         //!< binary name, e.g. "fig2_exectime_rc"
    const char *title;        //!< one-line description for --list
    int order;                //!< position in the cpxbench suite
    SetupFn setup;
};

/** Every bench module linked into this binary, sorted by order. */
const std::vector<BenchDef> &benchRegistry();

namespace detail
{
struct BenchRegistrar
{
    BenchRegistrar(const BenchDef &def);
};
} // namespace detail

/**
 * Shared main() for a standalone bench binary: parse options, run
 * the module's grid, render, optionally write JSON.
 */
int standaloneMain(int argc, char **argv, const BenchDef &def);

/**
 * Define one bench module. Registers it for tools/cpxbench; when the
 * translation unit is compiled with CPX_BENCH_STANDALONE (the
 * per-target bench binaries), also emits a main().
 */
#ifdef CPX_BENCH_STANDALONE
#define CPX_BENCH_DEFINE(id, title_, order_, setup_)                    \
    static const ::cpx::bench::BenchDef benchDef_##id{                  \
        #id, title_, order_, setup_};                                   \
    static const ::cpx::bench::detail::BenchRegistrar                   \
        benchRegistrar_##id{benchDef_##id};                             \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return ::cpx::bench::standaloneMain(argc, argv,                 \
                                            benchDef_##id);             \
    }
#else
#define CPX_BENCH_DEFINE(id, title_, order_, setup_)                    \
    static const ::cpx::bench::BenchDef benchDef_##id{                  \
        #id, title_, order_, setup_};                                   \
    static const ::cpx::bench::detail::BenchRegistrar                   \
        benchRegistrar_##id{benchDef_##id};
#endif

} // namespace cpx::bench

#endif // CPX_BENCH_RUNNER_HH
