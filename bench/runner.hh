/**
 * @file
 * Parallel sweep runner for the benchmark harness.
 *
 * Every bench target regenerates one paper table/figure from a grid
 * of (application × machine configuration) simulations. Each
 * simulation is single-threaded and deterministic (DESIGN.md §8), so
 * the grid is embarrassingly parallel across host threads. The
 * SweepRunner fans queued points out over a bounded thread pool
 * (--jobs=N) and collects per-point results in queue order, so the
 * rendered tables — and the emitted JSON — are bit-identical to a
 * serial run regardless of the job count.
 *
 * Bench targets use it in two phases:
 *
 *   SweepRunner runner(opts);
 *   auto h = runner.add("mp3d", makeParams(ProtocolConfig::pcw()));
 *   ... queue the whole grid ...
 *   runner.runAll();                  // the only parallel section
 *   const SweepResult &r = runner[h]; // render tables
 *
 * Each bench module registers itself with CPX_BENCH_DEFINE so the
 * combined driver (tools/cpxbench) can run every table and figure
 * through one shared pool and write one BENCH_results.json.
 */

#ifndef CPX_BENCH_RUNNER_HH
#define CPX_BENCH_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hh"
#include "workloads/workload.hh"

namespace cpx::bench
{

/** How sweep points execute (DESIGN.md §14). */
enum class IsolateMode
{
    None,     //!< in-process thread pool (fast path; a fatal() or
              //!< crash in any point kills the whole suite)
    Process,  //!< one forked worker subprocess per point: crashes,
              //!< hangs and garbage become per-point outcomes
};

/** Harness-wide options shared by every bench target. */
struct Options
{
    double scale = 1.0;       //!< workload problem-size multiplier
    unsigned procs = 16;      //!< simulated processors per system
    unsigned jobs = 0;        //!< host threads; 0 = hardware_concurrency
    std::uint64_t seed = 1;   //!< workload seed (seeded workloads only)
    std::string jsonPath;     //!< --json=PATH; empty = no JSON output
    Tick sampleInterval = 0;  //!< interval-metrics period; 0 = off
    bool attrib = false;      //!< causal stall attribution (--attrib;
                              //!< observation-only, DESIGN.md §17)
    unsigned simThreads = 1;  //!< intra-simulation worker threads per
                              //!< point (parallel DES kernel,
                              //!< DESIGN.md §15); stats are
                              //!< bit-identical at every value

    // --- fault isolation (DESIGN.md §14) -----------------------------
    IsolateMode isolate = IsolateMode::None;
    double timeoutSec = 0;    //!< per-attempt wall-clock deadline;
                              //!< 0 = none (process mode only)
    unsigned retries = 1;     //!< extra attempts for transient
                              //!< failures (process mode only)
    std::string journalPath;  //!< append-only JSONL outcome journal
    std::string resumePath;   //!< journal to resume from (skip done)
    std::string cachePath;    //!< content-addressed result cache dir
};

/**
 * Parse the options every bench binary accepts:
 *   --scale=F --procs=N --jobs=N --seed=N --json=PATH
 *   --sample-interval=N --attrib --sim-threads=N
 *   --isolate=none|process --timeout=SECONDS
 *   --retries=N --journal=PATH --resume=PATH --cache=DIR
 * (CPX_SCALE in the environment seeds the default scale.)
 * Numbers are checked: malformed values, trailing garbage and zero
 * procs/jobs are fatal. --resume implies --journal at the same path
 * unless one was given explicitly.
 */
Options parseOptions(int argc, char **argv);

/** One queued (application × machine) configuration. */
struct SweepPoint
{
    std::string app;
    MachineParams params;
    std::string tag;          //!< label in tables/JSON, e.g. "fig2"
    double scale = 1.0;
    std::uint64_t seed = 1;
};

/**
 * Outcome classification of one sweep point (DESIGN.md §14). A point
 * is a datum even when it fails: the suite completes, the failure is
 * reported per point, and the exit-code policy distinguishes
 * "completed with failures" from "died".
 */
enum class PointStatus
{
    NotRun,           //!< never dispatched (interrupted run)
    Ok,               //!< completed, verified
    NonzeroExit,      //!< worker exited with a nonzero status
    Signal,           //!< worker died on a signal (crash/abort)
    Timeout,          //!< worker exceeded the wall-clock deadline
    InvariantFailure, //!< simulation completed but failed verification
    Garbage,          //!< worker exited 0 but emitted unparseable
                      //!< output
};

/** Stable lower-case name ("ok", "signal", ...) for JSON/logs. */
const char *pointStatusName(PointStatus status);

/** True for failure classes worth retrying (host-transient). */
bool pointStatusRetryable(PointStatus status);

/** Where a finished result came from. */
enum class ResultSource
{
    Executed,  //!< ran in this process (or a worker it forked)
    Journal,   //!< reused from a --resume journal
    Cache,     //!< reused from the --cache directory
};

/** One finished configuration. */
struct SweepResult
{
    SweepPoint point;
    WorkloadRun run;
    double hostSeconds = 0;   //!< host wall-time for this point
    PointStatus status = PointStatus::NotRun;
    std::string error;        //!< failure detail; empty when ok
    unsigned attempts = 0;    //!< execution attempts consumed
    std::string configHash;   //!< content hash of the configuration
    ResultSource source = ResultSource::Executed;

    /** Completed and verified: safe to render / gate. */
    bool ok() const { return status == PointStatus::Ok; }
};

/**
 * Content-addressed key of a sweep point: a 16-hex-digit FNV-1a hash
 * over every field that determines the simulated result — app, the
 * complete MachineParams, scale, seed, and the sample interval.
 * Identical hashes mean bit-identical stats (simulations are
 * deterministic), which is what lets the journal and the result
 * cache reuse points across runs. @p attrib salts the hash only when
 * enabled (it changes the result's *content*, like the sample
 * interval, though never its simulated stats), so every pre-existing
 * cache and journal hash stays valid.
 */
std::string pointConfigHash(const SweepPoint &point,
                            Tick sample_interval,
                            bool attrib = false);

/** "mp3d under P+CW/RC/uniform/16p (scale 1.00, seed 1)" */
std::string describePoint(const SweepPoint &point);

class SweepRunner
{
  public:
    explicit SweepRunner(const Options &opts);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /**
     * Queue one configuration and return its handle. @p params
     * inherits opts.procs unless @p procs overrides it (0 = inherit);
     * the point inherits opts.scale and opts.seed.
     * @pre runAll() has not been called yet for this point's batch
     */
    std::size_t add(const std::string &app, MachineParams params,
                    const std::string &tag = "", unsigned procs = 0);

    /**
     * Run every queued-but-unfinished point; blocks until all are
     * done (or the run is interrupted). Points whose config hash is
     * found in the --resume journal or the --cache directory are
     * reused without executing; the rest run on the in-process
     * thread pool (--isolate=none) or in forked worker subprocesses
     * (--isolate=process). Every newly finalized outcome is appended
     * to the journal (fsync'd) before the suite moves on.
     *
     * Failure policy: under --isolate=none a failed verification
     * fatal()s after all workers have joined, naming each failing
     * configuration in full (the historical behavior — in-process
     * code cannot survive crashes anyway). Under --isolate=process
     * every failure class becomes a per-point status; callers check
     * anyFailed()/interrupted() and apply the exit-code policy.
     *
     * Callable repeatedly: points added after a runAll() form the
     * next batch.
     */
    void runAll();

    /** Result of a finished point. @pre handle's batch has run */
    const SweepResult &operator[](std::size_t handle) const;

    /** All finished results, in add() order. */
    const std::vector<SweepResult> &results() const { return done; }

    /** Completed-and-verified check for one handle (render guards). */
    bool ok(std::size_t handle) const
    {
        return handle < done.size() && done[handle].ok();
    }

    /** True if any finished point failed (process-mode outcomes). */
    bool anyFailed() const;

    /** Number of finished points that failed. */
    std::size_t failedCount() const;

    /** Multi-line summary of every failed point, for stderr. */
    std::string failureSummary() const;

    /** True if a SIGINT/SIGTERM stopped the last runAll() early. */
    bool interrupted() const { return interruptedFlag; }

    /** Points actually executed (not reused) across all batches. */
    std::size_t executedCount() const { return executed; }

    /** Host wall-time of all runAll() calls so far, in seconds. */
    double totalHostSeconds() const { return hostSeconds; }

    const Options &options() const { return opts; }

  private:
    void loadResumeJournal();
    void journalAppend(const SweepResult &result);
    void cacheStore(const SweepResult &result);
    bool cacheLookup(const std::string &hash,
                     SweepResult &out) const;
    void runBatchInProcess(std::vector<SweepResult> &batch,
                           const std::vector<std::size_t> &todo);
    void runBatchProcess(std::vector<SweepResult> &batch,
                         const std::vector<std::size_t> &todo);

    Options opts;
    std::vector<SweepPoint> queued;   //!< not yet run
    std::vector<SweepResult> done;    //!< finished, add() order
    double hostSeconds = 0;
    bool interruptedFlag = false;
    std::size_t executed = 0;
    int journalFd = -1;               //!< lazily opened append fd
    std::mutex journalMutex;          //!< in-process workers share fd
    bool resumeLoaded = false;
    std::map<std::string, SweepResult> resumeByHash;
};

/**
 * Write @p results as a machine-readable JSON document (see
 * DESIGN.md §11 for the schema). @p suite names the producing
 * harness ("cpxbench" or an individual bench target). The write is
 * atomic: the document goes to "<path>.tmp", is fsync'd, and is
 * rename()d into place, so a crash mid-write never leaves a torn
 * results file to poison a later --baseline comparison. Failed
 * points emit a "status"/"error" block instead of stats.
 */
void writeJson(const std::string &path, const std::string &suite,
               const Options &opts,
               const std::vector<SweepResult> &results,
               double total_host_seconds);

// --- exit-code policy ------------------------------------------------------

/** Suite completed but one or more points failed. */
constexpr int exitCodePointsFailed = 3;
/** SIGINT/SIGTERM stopped the sweep; completed work is journaled. */
constexpr int exitCodeInterrupted = 130;

// --- subprocess wire format / journal --------------------------------------

/**
 * Serialize one finished point as a single-line "cpx-wire-1" JSON
 * record: status, error, attempts, hostSeconds, config hash, and —
 * for completed simulations — every RunResult field at full
 * fidelity (u64s exact, doubles via %.17g). This is what a worker
 * subprocess writes to its result pipe, what the journal stores per
 * line, and what the cache stores per file; parseWireResult()
 * reconstructs the SweepResult bit-identically.
 */
std::string serializeWireResult(const SweepResult &result);

/**
 * Parse one wire record (as produced by serializeWireResult) back
 * into @p out. The point itself (app/params/tag) is NOT on the wire
 * — the caller re-derives it from its own queue and matches by
 * config hash. Returns false and fills @p error on malformed or
 * version-mismatched input.
 */
bool parseWireResult(const std::string &line, SweepResult &out,
                     std::string &error);

/** Journal contents, indexed by config hash (later lines win). */
struct JournalLoad
{
    std::map<std::string, SweepResult> byHash;
    std::size_t entries = 0;      //!< valid records loaded
    std::size_t quarantined = 0;  //!< corrupt/truncated lines
    std::string quarantineFile;   //!< where bad lines were copied
};

/**
 * Load a JSONL outcome journal. Corrupt or truncated lines are
 * quarantined, not silently skipped: each is appended verbatim to
 * "<path>.quarantine", counted, and warn()ed about, while every
 * valid line is kept. A missing journal loads as empty.
 */
JournalLoad loadJournal(const std::string &path);

/**
 * Built-in fault-injection self test (cpxbench --self-test-faults):
 * runs a process-isolated suite containing deliberately crashing,
 * exiting, hanging, garbage-emitting, flaky and unverifiable
 * synthetic points next to healthy ones, and checks that the
 * supervisor classifies every failure class correctly, that healthy
 * points' stats are bit-identical to an in-process run, and that a
 * journal resume reuses every completed point without re-executing
 * any. Returns 0 on success, 1 on any mismatch (details on stderr).
 */
int runFaultSelfTest(const Options &base);

// --- minimal JSON reader (validation / round-trip tests) -------------------

/** A parsed JSON value: exactly one of the members is active. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    bool has(const std::string &key) const { return members.count(key); }
    const JsonValue &at(const std::string &key) const;
};

/**
 * Parse a JSON document. On success returns true and fills @p out;
 * on malformed input returns false and fills @p error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/**
 * Load and validate a sweep-results JSON file: parseable, carries
 * the cpx-sweep schema marker, every ok point structurally complete
 * and verified, every failed point carrying its "status"/"error"
 * block. Unless @p allow_failed, any failed or unverified point
 * fails validation — with every offender listed in @p error, not
 * just the first. Returns true on success; otherwise fills
 * @p error.
 */
bool validateResultsFile(const std::string &path, std::string &error,
                         bool allow_failed = false);

/**
 * Validate a Chrome-trace-event JSON file as written by the flight
 * recorder exporter (TraceSink::writeChromeTrace): parseable, carries
 * a non-empty traceEvents array, every event names a phase, and every
 * async transaction begin ("b") has a matching end ("e") with the
 * same id. Returns true on success; otherwise fills @p error.
 */
bool validateTraceFile(const std::string &path, std::string &error);

/**
 * Compare a results file against a committed baseline. Every
 * simulated stat of every point — configuration, verification,
 * execTime, time breakdown, miss rates, traffic, protocol events —
 * must match the baseline bit-for-bit; host-dependent fields
 * (hostSeconds, kernel throughput) are exempt. Returns true if
 * nothing drifted, else fills @p error with EVERY divergent point
 * (one line each, naming the point and its config hash), so one
 * check-json run shows the full blast radius instead of the first
 * casualty. A >20% events/sec regression against the baseline's
 * recorded throughput fills @p warning but does not fail the
 * comparison.
 */
bool compareToBaseline(const std::string &path,
                       const std::string &baseline_path,
                       std::string &error, std::string &warning);

/**
 * Print the throughput fields of an existing results file (suite
 * totals plus a per-tag table) to stdout; used by CI to surface the
 * perf trajectory in the job summary. When @p reference_path is
 * non-empty, also print the parallel-kernel speedup of @p path over
 * the reference file (wall-clock and events/sec ratios, labelled
 * with each file's --sim-threads) — CI passes the --sim-threads=1
 * results file as the reference. Returns false and fills @p error
 * if either file is unreadable.
 */
bool printPerfSummary(const std::string &path, std::string &error,
                      const std::string &reference_path = "");

// --- bench-module registry -------------------------------------------------

/** Called after runAll() to print the target's paper-style tables. */
using RenderFn = std::function<void()>;

/**
 * Queue the target's sweep grid on @p runner and return the closure
 * that renders its tables once the grid has run.
 */
using SetupFn = RenderFn (*)(SweepRunner &runner, const Options &opts);

struct BenchDef
{
    const char *name;         //!< binary name, e.g. "fig2_exectime_rc"
    const char *title;        //!< one-line description for --list
    int order;                //!< position in the cpxbench suite
    SetupFn setup;
};

/** Every bench module linked into this binary, sorted by order. */
const std::vector<BenchDef> &benchRegistry();

namespace detail
{
struct BenchRegistrar
{
    BenchRegistrar(const BenchDef &def);
};
} // namespace detail

/**
 * Shared main() for a standalone bench binary: parse options, run
 * the module's grid, render, optionally write JSON.
 */
int standaloneMain(int argc, char **argv, const BenchDef &def);

/**
 * Define one bench module. Registers it for tools/cpxbench; when the
 * translation unit is compiled with CPX_BENCH_STANDALONE (the
 * per-target bench binaries), also emits a main().
 */
#ifdef CPX_BENCH_STANDALONE
#define CPX_BENCH_DEFINE(id, title_, order_, setup_)                    \
    static const ::cpx::bench::BenchDef benchDef_##id{                  \
        #id, title_, order_, setup_};                                   \
    static const ::cpx::bench::detail::BenchRegistrar                   \
        benchRegistrar_##id{benchDef_##id};                             \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return ::cpx::bench::standaloneMain(argc, argv,                 \
                                            benchDef_##id);             \
    }
#else
#define CPX_BENCH_DEFINE(id, title_, order_, setup_)                    \
    static const ::cpx::bench::BenchDef benchDef_##id{                  \
        #id, title_, order_, setup_};                                   \
    static const ::cpx::bench::detail::BenchRegistrar                   \
        benchRegistrar_##id{benchDef_##id};
#endif

} // namespace cpx::bench

#endif // CPX_BENCH_RUNNER_HH
