/**
 * @file
 * Shared plumbing for the benchmark harness.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Binaries run unattended with defaults tuned so the whole harness
 * finishes in minutes; `--scale=<f>` / `--procs=<n>` (or the
 * CPX_SCALE environment variable) rescale the workloads.
 */

#ifndef CPX_BENCH_COMMON_HH
#define CPX_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/config.hh"
#include "workloads/workload.hh"

namespace cpx::bench
{

struct Options
{
    double scale = 1.0;
    unsigned procs = 16;
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opts;
    if (const char *env = std::getenv("CPX_SCALE"))
        opts.scale = std::atof(env);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            opts.scale = std::atof(argv[i] + 8);
        else if (std::strncmp(argv[i], "--procs=", 8) == 0)
            opts.procs = static_cast<unsigned>(std::atoi(argv[i] + 8));
        else
            fatal("unknown option '%s' (use --scale=F --procs=N)",
                  argv[i]);
    }
    if (opts.scale <= 0.0)
        fatal("--scale must be positive");
    return opts;
}

/** Run one (application × machine) configuration. */
inline WorkloadRun
runOne(const std::string &app, MachineParams params,
       const Options &opts)
{
    params.numProcs = opts.procs;
    System sys(params);
    auto w = makeWorkload(app, opts.scale);
    WorkloadRun run = runWorkload(sys, *w);
    if (!run.verified) {
        fatal("%s failed verification under %s", app.c_str(),
              params.protocol.name().c_str());
    }
    return run;
}

inline void
printBanner(const char *title, const char *paper_expectation)
{
    std::printf("==============================================="
                "=========================\n");
    std::printf("%s\n", title);
    std::printf("paper: %s\n", paper_expectation);
    std::printf("==============================================="
                "=========================\n");
}

} // namespace cpx::bench

#endif // CPX_BENCH_COMMON_HH
