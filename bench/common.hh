/**
 * @file
 * Shared plumbing for the benchmark harness.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Binaries run unattended with defaults tuned so the whole harness
 * finishes in minutes; `--scale=<f>` / `--procs=<n>` (or the
 * CPX_SCALE environment variable) rescale the workloads, and
 * `--jobs=<n>` / `--json=<path>` select the host parallelism and the
 * machine-readable output of the sweep runner (bench/runner.hh).
 */

#ifndef CPX_BENCH_COMMON_HH
#define CPX_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "bench/runner.hh"

namespace cpx::bench
{

/**
 * Run one (application × machine) configuration serially, on the
 * calling thread. Bench modules queue grids on a SweepRunner
 * instead; this is for one-off runs (tests, exploratory tools).
 */
inline WorkloadRun
runOne(const std::string &app, MachineParams params,
       const Options &opts)
{
    params.numProcs = opts.procs;
    System sys(params);
    auto w = makeWorkload(app, opts.scale, opts.seed);
    WorkloadRun run = runWorkload(sys, *w);
    if (!run.verified) {
        SweepPoint point{app, params, "", opts.scale, opts.seed};
        fatal("%s failed verification", describePoint(point).c_str());
    }
    return run;
}

/**
 * Render guard for fault-isolated sweeps: true iff every handle in
 * @p handles completed and verified. Otherwise prints a single
 * skip-note naming @p what and each failed point's status, so a
 * table whose inputs are missing is dropped loudly instead of
 * rendered full of zeros. Under --isolate=none this never fires
 * (failures are fatal before rendering starts).
 */
inline bool
rowOk(const SweepRunner &runner,
      const std::vector<std::size_t> &handles, const std::string &what)
{
    std::string bad;
    for (std::size_t h : handles) {
        if (runner.ok(h))
            continue;
        if (!bad.empty())
            bad += ", ";
        if (h < runner.results().size()) {
            const SweepResult &r = runner[h];
            bad += r.point.app + " [" +
                   pointStatusName(r.status) + "]";
        } else {
            bad += "[not-run]";
        }
    }
    if (bad.empty())
        return true;
    std::printf("  (skipping %s — failed point(s): %s)\n",
                what.c_str(), bad.c_str());
    return false;
}

inline void
printBanner(const char *title, const char *paper_expectation)
{
    std::printf("==============================================="
                "=========================\n");
    std::printf("%s\n", title);
    std::printf("paper: %s\n", paper_expectation);
    std::printf("==============================================="
                "=========================\n");
}

} // namespace cpx::bench

#endif // CPX_BENCH_COMMON_HH
