/**
 * @file
 * Table 3: impact of network contention on the execution-time ratio
 * (ETR) of P+CW and P+M versus BASIC, on wormhole meshes with 64-,
 * 32- and 16-bit links.
 */

#include <cstdio>
#include <map>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Table 3 — execution-time ratio vs BASIC on wormhole meshes "
        "(percent; lower is better)",
        "P+CW's advantage shrinks (or inverts, e.g. MP3D 69%->109%) "
        "as links narrow to 16 bits; P+M's ratios are nearly "
        "link-width-insensitive");

    const unsigned widths[] = {64, 32, 16};
    const ProtocolConfig protos[] = {ProtocolConfig::pcw(),
                                     ProtocolConfig::pm()};

    // proto-name -> width -> app -> exec time (BASIC included).
    std::map<std::string,
             std::map<unsigned, std::map<std::string, Tick>>>
        times;
    for (unsigned bits : widths) {
        for (const std::string &app : paperApplications()) {
            MachineParams base =
                makeParams(ProtocolConfig::basic(),
                           Consistency::ReleaseConsistency,
                           NetworkKind::Mesh, bits);
            times["BASIC"][bits][app] =
                bench::runOne(app, base, opts).execTime;
            for (const ProtocolConfig &proto : protos) {
                MachineParams ext =
                    makeParams(proto,
                               Consistency::ReleaseConsistency,
                               NetworkKind::Mesh, bits);
                times[proto.name()][bits][app] =
                    bench::runOne(app, ext, opts).execTime;
            }
        }
    }

    for (const ProtocolConfig &proto : protos) {
        std::printf("\n%s / BASIC:\n%-8s", proto.name().c_str(),
                    "links");
        for (const std::string &app : paperApplications())
            std::printf(" %9s", app.c_str());
        std::printf("\n");
        for (unsigned bits : widths) {
            std::printf("%2u-bit  ", bits);
            for (const std::string &app : paperApplications()) {
                double tb = static_cast<double>(
                    times["BASIC"][bits][app]);
                double te = static_cast<double>(
                    times[proto.name()][bits][app]);
                std::printf(" %8.0f%%", 100.0 * te / tb);
            }
            std::printf("\n");
        }
    }
    return 0;
}
