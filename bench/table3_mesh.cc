/**
 * @file
 * Table 3: impact of network contention on the execution-time ratio
 * (ETR) of P+CW and P+M versus BASIC, on wormhole meshes with 64-,
 * 32- and 16-bit links.
 */

#include <cstdio>
#include <map>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    const std::vector<unsigned> widths{64, 32, 16};
    const std::vector<ProtocolConfig> protos{ProtocolConfig::pcw(),
                                             ProtocolConfig::pm()};

    // proto-name -> width -> app -> handle (BASIC included).
    std::map<std::string,
             std::map<unsigned, std::map<std::string, std::size_t>>>
        handles;
    for (unsigned bits : widths) {
        std::string tag = "table3/mesh" + std::to_string(bits);
        for (const std::string &app : paperApplications()) {
            handles["BASIC"][bits][app] = runner.add(
                app,
                makeParams(ProtocolConfig::basic(),
                           Consistency::ReleaseConsistency,
                           NetworkKind::Mesh, bits),
                tag);
            for (const ProtocolConfig &proto : protos) {
                handles[proto.name()][bits][app] = runner.add(
                    app,
                    makeParams(proto,
                               Consistency::ReleaseConsistency,
                               NetworkKind::Mesh, bits),
                    tag);
            }
        }
    }

    return [&runner, handles, widths, protos]() {
        printBanner(
            "Table 3 — execution-time ratio vs BASIC on wormhole "
            "meshes (percent; lower is better)",
            "P+CW's advantage shrinks (or inverts, e.g. MP3D "
            "69%->109%) as links narrow to 16 bits; P+M's ratios are "
            "nearly link-width-insensitive");

        for (const ProtocolConfig &proto : protos) {
            std::printf("\n%s / BASIC:\n%-8s", proto.name().c_str(),
                        "links");
            for (const std::string &app : paperApplications())
                std::printf(" %9s", app.c_str());
            std::printf("\n");
            for (unsigned bits : widths) {
                std::vector<std::size_t> needed;
                for (const std::string &app : paperApplications()) {
                    needed.push_back(
                        handles.at("BASIC").at(bits).at(app));
                    needed.push_back(
                        handles.at(proto.name()).at(bits).at(app));
                }
                if (!rowOk(runner, needed,
                           "table3 " + proto.name() + " " +
                               std::to_string(bits) + "-bit"))
                    continue;
                std::printf("%2u-bit  ", bits);
                for (const std::string &app : paperApplications()) {
                    double tb = static_cast<double>(
                        runner[handles.at("BASIC").at(bits).at(app)]
                            .run.execTime);
                    double te = static_cast<double>(
                        runner[handles.at(proto.name())
                                   .at(bits)
                                   .at(app)]
                            .run.execTime);
                    std::printf(" %8.0f%%", 100.0 * te / tb);
                }
                std::printf("\n");
            }
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(table3_mesh, "Table 3 — mesh contention", 50, setup)
