/**
 * @file
 * Ablation (DESIGN.md / §3.3): the competitive threshold.
 *
 * [10] recommends a threshold of four without write caches; with the
 * 4-block write cache the paper argues a threshold of one gives less
 * traffic and lower coherence-miss penalty. This bench sweeps the
 * threshold and reports both execution time and traffic.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    struct Row
    {
        std::string label;
        std::vector<std::size_t> handles;  //!< one per application
    };

    auto queueRow = [&runner](const std::string &label,
                              const MachineParams &params) {
        Row row{label, {}};
        for (const std::string &app : paperApplications())
            row.handles.push_back(runner.add(
                app, params, "ablation_threshold/" + label));
        return row;
    };

    Row baseline = queueRow("BASIC",
                            makeParams(ProtocolConfig::basic()));

    std::vector<Row> rows;
    for (unsigned threshold : {1u, 2u, 4u, 8u}) {
        MachineParams params = makeParams(ProtocolConfig::cw());
        params.competitiveThreshold = threshold;
        rows.push_back(
            queueRow("C=" + std::to_string(threshold), params));
    }
    // The plain competitive-update protocol of [10]: no write cache,
    // one update message per write. The paper argues threshold 1 +
    // write cache beats threshold 4 without one.
    for (unsigned threshold : {1u, 4u}) {
        MachineParams params = makeParams(ProtocolConfig::cw());
        params.competitiveThreshold = threshold;
        params.writeCacheEnabled = false;
        rows.push_back(queueRow(
            "C=" + std::to_string(threshold) + ",noWC", params));
    }

    return [&runner, baseline, rows]() {
        printBanner(
            "Ablation — competitive-update threshold sweep (CW under "
            "RC; time and traffic relative to BASIC = 100)",
            "with write caches a threshold of 1 is the paper's "
            "recommendation: higher thresholds keep stale copies "
            "alive and multiply update traffic");

        std::printf("%-12s", "threshold");
        for (const std::string &app : paperApplications())
            std::printf(" %16s", app.c_str());
        std::printf("\n%-12s", "");
        for (std::size_t i = 0; i < paperApplications().size(); ++i)
            std::printf(" %8s %7s", "time", "traffic");
        std::printf("\n");

        if (!rowOk(runner, baseline.handles,
                   "ablation_threshold baseline"))
            return;
        for (const Row &row : rows) {
            if (!rowOk(runner, row.handles,
                       "ablation_threshold " + row.label))
                continue;
            std::printf("%-12s", row.label.c_str());
            for (std::size_t i = 0; i < row.handles.size(); ++i) {
                const RunResult &base =
                    runner[baseline.handles[i]].run.stats;
                const RunResult &r =
                    runner[row.handles[i]].run.stats;
                std::printf(" %7.1f%% %6.0f%%",
                            100.0 * r.execTime / base.execTime,
                            base.netBytes
                                ? 100.0 * r.netBytes / base.netBytes
                                : 0.0);
            }
            std::printf("\n");
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(ablation_threshold,
                 "Ablation — competitive threshold", 100, setup)
