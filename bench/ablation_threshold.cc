/**
 * @file
 * Ablation (DESIGN.md / §3.3): the competitive threshold.
 *
 * [10] recommends a threshold of four without write caches; with the
 * 4-block write cache the paper argues a threshold of one gives less
 * traffic and lower coherence-miss penalty. This bench sweeps the
 * threshold and reports both execution time and traffic.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Ablation — competitive-update threshold sweep (CW under "
        "RC; time and traffic relative to BASIC = 100)",
        "with write caches a threshold of 1 is the paper's "
        "recommendation: higher thresholds keep stale copies alive "
        "and multiply update traffic");

    std::map<std::string, RunResult> base;
    for (const std::string &app : paperApplications()) {
        base[app] = bench::runOne(
                        app, makeParams(ProtocolConfig::basic()), opts)
                        .stats;
    }

    std::printf("%-12s", "threshold");
    for (const std::string &app : paperApplications())
        std::printf(" %16s", app.c_str());
    std::printf("\n%-12s", "");
    for (std::size_t i = 0; i < paperApplications().size(); ++i)
        std::printf(" %8s %7s", "time", "traffic");
    std::printf("\n");

    for (unsigned threshold : {1u, 2u, 4u, 8u}) {
        std::printf("C=%-10u", threshold);
        for (const std::string &app : paperApplications()) {
            MachineParams params = makeParams(ProtocolConfig::cw());
            params.competitiveThreshold = threshold;
            RunResult r = bench::runOne(app, params, opts).stats;
            std::printf(" %7.1f%% %6.0f%%",
                        100.0 * r.execTime / base[app].execTime,
                        base[app].netBytes
                            ? 100.0 * r.netBytes / base[app].netBytes
                            : 0.0);
        }
        std::printf("\n");
    }

    // The plain competitive-update protocol of [10]: no write cache,
    // one update message per write. The paper argues threshold 1 +
    // write cache beats threshold 4 without one.
    for (unsigned threshold : {1u, 4u}) {
        std::printf("C=%u,noWC%4s", threshold, "");
        for (const std::string &app : paperApplications()) {
            MachineParams params = makeParams(ProtocolConfig::cw());
            params.competitiveThreshold = threshold;
            params.writeCacheEnabled = false;
            RunResult r = bench::runOne(app, params, opts).stats;
            std::printf(" %7.1f%% %6.0f%%",
                        100.0 * r.execTime / base[app].execTime,
                        base[app].netBytes
                            ? 100.0 * r.netBytes / base[app].netBytes
                            : 0.0);
        }
        std::printf("\n");
    }
    return 0;
}
