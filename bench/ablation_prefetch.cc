/**
 * @file
 * Ablation (DESIGN.md): fixed versus adaptive prefetch degree.
 *
 * The paper adopts the *adaptive* scheme of [3] because a fixed
 * degree either underprefetches (low spatial locality phases) or
 * pollutes/wastes bandwidth (high degree everywhere). This bench
 * sweeps fixed degrees against the adaptive controller, and also
 * sweeps the adaptation thresholds the implementation calibrates.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Ablation — fixed vs adaptive sequential prefetch degree "
        "(RC, execution time relative to BASIC = 100)",
        "adaptive prefetching tracks the best fixed degree per "
        "application without per-application tuning [3]");

    std::printf("%-12s", "config");
    for (const std::string &app : paperApplications())
        std::printf(" %9s", app.c_str());
    std::printf("\n");

    // Baseline.
    std::map<std::string, Tick> base;
    for (const std::string &app : paperApplications()) {
        base[app] =
            bench::runOne(app, makeParams(ProtocolConfig::basic()),
                          opts)
                .execTime;
    }

    auto report = [&](const char *label, MachineParams params) {
        std::printf("%-12s", label);
        for (const std::string &app : paperApplications()) {
            Tick t = bench::runOne(app, params, opts).execTime;
            std::printf(" %8.1f%%", 100.0 * t / base[app]);
        }
        std::printf("\n");
    };

    for (unsigned degree : {1u, 2u, 4u, 8u}) {
        MachineParams params = makeParams(ProtocolConfig::p());
        // A fixed degree: clamp the ladder to one rung and disable
        // adaptation by making the marks unreachable.
        params.prefetchInitialDegree = degree;
        params.prefetchMaxDegree = degree;
        params.prefetchHighMark = 2.0;  // never raise
        params.prefetchLowMark = -1.0;  // never lower
        char label[32];
        std::snprintf(label, sizeof(label), "fixed K=%u", degree);
        report(label, params);
    }

    report("adaptive", makeParams(ProtocolConfig::p()));

    MachineParams eager = makeParams(ProtocolConfig::p());
    eager.prefetchHighMark = 0.5;
    eager.prefetchLowMark = 0.25;
    report("adapt-eager", eager);

    MachineParams timid = makeParams(ProtocolConfig::p());
    timid.prefetchHighMark = 0.9;
    timid.prefetchLowMark = 0.6;
    report("adapt-timid", timid);
    return 0;
}
