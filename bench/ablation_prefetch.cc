/**
 * @file
 * Ablation (DESIGN.md): fixed versus adaptive prefetch degree.
 *
 * The paper adopts the *adaptive* scheme of [3] because a fixed
 * degree either underprefetches (low spatial locality phases) or
 * pollutes/wastes bandwidth (high degree everywhere). This bench
 * sweeps fixed degrees against the adaptive controller, and also
 * sweeps the adaptation thresholds the implementation calibrates.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

RenderFn
setup(SweepRunner &runner, const Options &)
{
    struct Row
    {
        std::string label;
        std::vector<std::size_t> handles;  //!< one per application
    };

    auto queueRow = [&runner](const std::string &label,
                              const MachineParams &params) {
        Row row{label, {}};
        for (const std::string &app : paperApplications())
            row.handles.push_back(runner.add(
                app, params, "ablation_prefetch/" + label));
        return row;
    };

    Row baseline = queueRow("BASIC",
                            makeParams(ProtocolConfig::basic()));

    std::vector<Row> rows;
    for (unsigned degree : {1u, 2u, 4u, 8u}) {
        MachineParams params = makeParams(ProtocolConfig::p());
        // A fixed degree: clamp the ladder to one rung and disable
        // adaptation by making the marks unreachable.
        params.prefetchInitialDegree = degree;
        params.prefetchMaxDegree = degree;
        params.prefetchHighMark = 2.0;  // never raise
        params.prefetchLowMark = -1.0;  // never lower
        rows.push_back(queueRow(
            "fixed K=" + std::to_string(degree), params));
    }

    rows.push_back(
        queueRow("adaptive", makeParams(ProtocolConfig::p())));

    MachineParams eager = makeParams(ProtocolConfig::p());
    eager.prefetchHighMark = 0.5;
    eager.prefetchLowMark = 0.25;
    rows.push_back(queueRow("adapt-eager", eager));

    MachineParams timid = makeParams(ProtocolConfig::p());
    timid.prefetchHighMark = 0.9;
    timid.prefetchLowMark = 0.6;
    rows.push_back(queueRow("adapt-timid", timid));

    return [&runner, baseline, rows]() {
        printBanner(
            "Ablation — fixed vs adaptive sequential prefetch degree "
            "(RC, execution time relative to BASIC = 100)",
            "adaptive prefetching tracks the best fixed degree per "
            "application without per-application tuning [3]");

        std::printf("%-12s", "config");
        for (const std::string &app : paperApplications())
            std::printf(" %9s", app.c_str());
        std::printf("\n");

        if (!rowOk(runner, baseline.handles,
                   "ablation_prefetch baseline"))
            return;
        for (const Row &row : rows) {
            if (!rowOk(runner, row.handles,
                       "ablation_prefetch " + row.label))
                continue;
            std::printf("%-12s", row.label.c_str());
            for (std::size_t i = 0; i < row.handles.size(); ++i) {
                Tick base = runner[baseline.handles[i]].run.execTime;
                Tick t = runner[row.handles[i]].run.execTime;
                std::printf(" %8.1f%%", 100.0 * t / base);
            }
            std::printf("\n");
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(ablation_prefetch,
                 "Ablation — fixed vs adaptive prefetch", 90, setup)
