/**
 * @file
 * Table 1: hardware needed to support BASIC and the extra hardware
 * needed by each extension.
 *
 * This is a static cost model — the numbers come from the protocol
 * definitions, exactly as in the paper: state bits per SLC line,
 * state bits per memory line, extra per-cache mechanisms, and the
 * SLWB features each extension needs. It queues no simulations.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

struct HwCost
{
    unsigned slcLineBits;     //!< state bits per SLC line
    unsigned memLineBits;     //!< state bits per memory line
    const char *mechanisms;
    const char *slwbFeatures;
};

HwCost
costOf(const ProtocolConfig &proto, unsigned num_nodes)
{
    unsigned log2n = 0;
    while ((1u << log2n) < num_nodes)
        ++log2n;

    // BASIC: 2 bits per SLC line (3 states), 3 state bits + N
    // presence bits per memory line.
    HwCost c{2, 3 + num_nodes, "none",
             "RC: several entries / SC: a single entry"};
    if (proto.prefetch) {
        // P: two extra bits per line, three modulo-16 counters.
        c.slcLineBits += 2;
        c.mechanisms = "3 modulo-16 counters (4 bits) per cache";
    }
    if (proto.migratory) {
        // M: one extra cache state, migratory bit + log2 N pointer.
        c.slcLineBits += 1;
        c.memLineBits += 1 + log2n;
    }
    if (proto.compUpdate) {
        // CW: 1-bit competitive counter per line (threshold 1) plus
        // the locally-modified bit for the CW+M probe, and the
        // four-block write cache.
        c.slcLineBits += 2;
        c.mechanisms = "write cache with four blocks per cache";
    }
    return c;
}

RenderFn
setup(SweepRunner &, const Options &opts)
{
    return [opts]() {
        printBanner(
            "Table 1 — hardware cost of BASIC and each extension",
            "BASIC: 2 bits/SLC line, N+3 bits/memory line; P adds 2 "
            "bits/line + 3 counters; M adds 1 state + migratory bit + "
            "log2(N) pointer; CW adds a 1-bit counter + 4-block write "
            "cache");

        std::printf("%-8s %14s %16s\n", "config", "SLC line bits",
                    "memory line bits");
        for (const ProtocolConfig &proto :
             {ProtocolConfig::basic(), ProtocolConfig::p(),
              ProtocolConfig::m(), ProtocolConfig::cw(),
              ProtocolConfig::pcw(), ProtocolConfig::pm(),
              ProtocolConfig::pcwm()}) {
            HwCost c = costOf(proto, opts.procs);
            std::printf("%-8s %14u %16u\n", proto.name().c_str(),
                        c.slcLineBits, c.memLineBits);
        }

        std::printf("\nper-extension mechanisms:\n");
        std::printf("  P : 3 modulo-16 counters per cache; prefetches "
                    "buffered in the SLWB\n");
        std::printf("  M : migratory bit + log2(N)-bit last-writer "
                    "pointer per memory line;\n"
                    "      extra cache state to disable the "
                    "optimization on pattern change\n");
        std::printf("  CW: modulo-2 competitive counter per line; "
                    "4-block write cache with\n"
                    "      per-word dirty bits; SLWB entries hold a "
                    "block\n");
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(table1_hwcost, "Table 1 — hardware cost", 10, setup)
