/**
 * @file
 * Markdown report generation from cpx-sweep-1 JSON documents.
 *
 * tools/cpxreport is a thin wrapper around this: load a sweep results
 * file (as written by cpxbench/standalone bench binaries), render a
 * human-readable markdown report, write it to stdout or a file. The
 * generator lives in the bench library so tests can drive it
 * directly and CI can golden-file its output.
 *
 * Sections (DESIGN.md §13, §17):
 *  1. per-application execution-time decomposition tables normalized
 *     to BASIC = 100 — the shape of the paper's Figures 2/3;
 *  2. directory pressure for non-full-map sharer-set points;
 *  3. per-link mesh utilization (peak vs mean) for mesh points that
 *     carry a "timeseries" block;
 *  4. "Where the cycles went": the causal (class x segment) stall
 *     attribution matrix and lock home-queue split for points that
 *     carry an "attribution" block (--attrib);
 *  5. "Contention hot spots": the attribution hot-block / hot-lock
 *     tables (queue-wait totals, means, p99s per address);
 *  6. top-N phase anomalies: intervals where a sampled metric
 *     deviates more than 2σ from its run mean.
 *
 * Output is deterministic: document order drives grouping, and every
 * ranking breaks ties on (point index, metric name, interval row).
 * Sparse inputs degrade to explicit "no data" notes, never to a
 * failure: only a structurally invalid document (missing schema
 * marker, unparseable JSON) makes generation fail.
 */

#ifndef CPX_BENCH_REPORT_GEN_HH
#define CPX_BENCH_REPORT_GEN_HH

#include <cstddef>
#include <string>

#include "bench/runner.hh"

namespace cpx::bench
{

struct ReportOptions
{
    std::size_t topAnomalies = 10;  //!< rows in the anomaly table
    std::size_t topLinks = 10;      //!< rows per link-utilization table
};

/**
 * Render the markdown report for a parsed cpx-sweep-1 document.
 * Returns false (and fills @p error) if the document lacks the
 * schema marker or a points array; structural oddities inside
 * individual points degrade to omitted sections, not failures.
 */
bool generateReport(const JsonValue &doc, const ReportOptions &opts,
                    std::string &out, std::string &error);

/**
 * Load @p json_path, generate, and write to @p out_path (empty =
 * stdout). Returns false and fills @p error on unreadable input,
 * invalid schema, or an unwritable output path.
 */
bool generateReportFile(const std::string &json_path,
                        const ReportOptions &opts,
                        const std::string &out_path,
                        std::string &error);

} // namespace cpx::bench

#endif // CPX_BENCH_REPORT_GEN_HH
