/**
 * @file
 * Table 2: cold and coherence miss-rate components (percent of
 * shared accesses) for BASIC, P, CW and P+CW under release
 * consistency.
 *
 * The paper's signature result: P's cold rate carries over to P+CW
 * and CW's coherence rate carries over to P+CW (the bold-face
 * identity), which is why their gains add.
 */

#include <cstdio>

#include "bench/common.hh"

namespace
{

using namespace cpx;
using namespace cpx::bench;

const std::vector<ProtocolConfig> &
table2Protocols()
{
    static const std::vector<ProtocolConfig> protos{
        ProtocolConfig::basic(), ProtocolConfig::p(),
        ProtocolConfig::cw(), ProtocolConfig::pcw()};
    return protos;
}

RenderFn
setup(SweepRunner &runner, const Options &)
{
    // app -> protocol-index -> handle (BASIC and CW double as the
    // read-miss-latency comparison rows).
    std::vector<std::vector<std::size_t>> grid;
    for (const std::string &app : paperApplications()) {
        std::vector<std::size_t> row;
        for (const ProtocolConfig &proto : table2Protocols())
            row.push_back(runner.add(app, makeParams(proto),
                                     "table2/" + app));
        grid.push_back(std::move(row));
    }

    return [&runner, grid]() {
        printBanner(
            "Table 2 — cold / coherence miss rates (percent of "
            "shared accesses)",
            "P cuts cold rates hard (LU 0.97->0.22, Cholesky "
            "0.90->0.19) but not coherence; CW cuts coherence but "
            "not cold; P+CW combines both cuts");

        std::printf("%-10s", "app");
        for (const auto &proto : table2Protocols())
            std::printf(" | %6s cold  coh", proto.name().c_str());
        std::printf("\n");

        for (std::size_t a = 0; a < grid.size(); ++a) {
            if (!rowOk(runner, grid[a],
                       "table2 " + paperApplications()[a]))
                continue;
            std::printf("%-10s", paperApplications()[a].c_str());
            for (std::size_t h : grid[a]) {
                const RunResult &r = runner[h].run.stats;
                std::printf(" |       %5.2f %5.2f", r.coldMissRate(),
                            r.cohMissRate());
            }
            std::printf("\n");
        }

        std::printf("\navg read-miss service time (pclocks), BASIC "
                    "vs CW (paper: 41%% shorter for MP3D under "
                    "CW):\n");
        for (std::size_t a = 0; a < grid.size(); ++a) {
            if (!rowOk(runner, {grid[a][0], grid[a][2]},
                       "table2 latency " + paperApplications()[a]))
                continue;
            // Column 0 is BASIC, column 2 is CW.
            double lb = runner[grid[a][0]].run.stats
                            .avgReadMissLatency;
            double lc = runner[grid[a][2]].run.stats
                            .avgReadMissLatency;
            std::printf("  %-10s BASIC %6.1f  CW %6.1f  (%+.0f%%)\n",
                        paperApplications()[a].c_str(), lb, lc,
                        lb > 0 ? 100.0 * (lc - lb) / lb : 0.0);
        }
    };
}

} // anonymous namespace

CPX_BENCH_DEFINE(table2_missrates, "Table 2 — miss rates", 30, setup)
