/**
 * @file
 * Table 2: cold and coherence miss-rate components (percent of
 * shared accesses) for BASIC, P, CW and P+CW under release
 * consistency.
 *
 * The paper's signature result: P's cold rate carries over to P+CW
 * and CW's coherence rate carries over to P+CW (the bold-face
 * identity), which is why their gains add.
 */

#include <cstdio>

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    auto opts = bench::parseOptions(argc, argv);

    bench::printBanner(
        "Table 2 — cold / coherence miss rates (percent of shared "
        "accesses)",
        "P cuts cold rates hard (LU 0.97->0.22, Cholesky 0.90->0.19) "
        "but not coherence; CW cuts coherence but not cold; P+CW "
        "combines both cuts");

    const ProtocolConfig protos[] = {
        ProtocolConfig::basic(), ProtocolConfig::p(),
        ProtocolConfig::cw(), ProtocolConfig::pcw()};

    std::printf("%-10s", "app");
    for (const auto &proto : protos)
        std::printf(" | %6s cold  coh", proto.name().c_str());
    std::printf("\n");

    for (const std::string &app : paperApplications()) {
        std::printf("%-10s", app.c_str());
        for (const auto &proto : protos) {
            MachineParams params = makeParams(proto);
            RunResult r = bench::runOne(app, params, opts).stats;
            std::printf(" |       %5.2f %5.2f", r.coldMissRate(),
                        r.cohMissRate());
        }
        std::printf("\n");
    }

    std::printf("\navg read-miss service time (pclocks), BASIC vs "
                "CW (paper: 41%% shorter for MP3D under CW):\n");
    for (const std::string &app : paperApplications()) {
        MachineParams basic = makeParams(ProtocolConfig::basic());
        MachineParams cw = makeParams(ProtocolConfig::cw());
        double lb = bench::runOne(app, basic, opts)
                        .stats.avgReadMissLatency;
        double lc =
            bench::runOne(app, cw, opts).stats.avgReadMissLatency;
        std::printf("  %-10s BASIC %6.1f  CW %6.1f  (%+.0f%%)\n",
                    app.c_str(), lb, lc,
                    lb > 0 ? 100.0 * (lc - lb) / lb : 0.0);
    }
    return 0;
}
