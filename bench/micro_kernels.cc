/**
 * @file
 * Simulator-kernel microbenchmarks (google-benchmark): event queue
 * throughput, tag-store lookups, mesh routing, write-cache combining
 * and a whole small-system run. These track the simulator's own
 * performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "core/config.hh"
#include "mem/tag_store.hh"
#include "mem/write_cache.hh"
#include "net/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "workloads/workload.hh"

namespace
{

using namespace cpx;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 701),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TagStoreLookup(benchmark::State &state)
{
    struct Line
    {
        bool valid = false;
        unsigned payload = 0;
    };
    TagStore<Line> tags(32, state.range(0));
    Rng rng(3);
    for (int i = 0; i < 4096; ++i)
        tags.insert(rng.next() & 0xffffff);
    std::uint64_t hits = 0;
    Rng probe(3);
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            if (tags.find(probe.next() & 0xffffff))
                ++hits;
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_TagStoreLookup)->Arg(0)->Arg(512);

void
BM_MeshRouting(benchmark::State &state)
{
    EventQueue eq;
    MeshNetwork mesh(eq, 16, static_cast<unsigned>(state.range(0)));
    Rng rng(11);
    for (auto _ : state) {
        NodeId src = static_cast<NodeId>(rng.below(16));
        NodeId dst = static_cast<NodeId>(rng.below(16));
        mesh.send(src, dst, 32, [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshRouting)->Arg(64)->Arg(16);

void
BM_WriteCacheCombine(benchmark::State &state)
{
    AddressMap amap(32, 4096, 16);
    WriteCache wc(amap, 4);
    Rng rng(5);
    for (auto _ : state) {
        WriteCacheFlush victim;
        Addr a = (rng.next() & 0xfff) * 4;
        benchmark::DoNotOptimize(
            wc.writeWord(a, static_cast<std::uint32_t>(a), victim));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCacheCombine);

void
BM_FullSystemRun(benchmark::State &state)
{
    for (auto _ : state) {
        MachineParams params = makeParams(ProtocolConfig::pcw());
        params.numProcs = 8;
        System sys(params);
        auto w = makeWorkload("migratory", 0.1);
        WorkloadRun run = runWorkload(sys, *w);
        benchmark::DoNotOptimize(run.execTime);
    }
}
BENCHMARK(BM_FullSystemRun)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
