#include "bench/report_gen.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace cpx::bench
{

namespace
{

/** printf into a growing std::string (two-pass, never truncates). */
void
append(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
append(std::string &out, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed > 0) {
        std::size_t old = out.size();
        out.resize(old + static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(&out[old], static_cast<std::size_t>(needed) + 1,
                       fmt, args);
        out.resize(old + static_cast<std::size_t>(needed));
    }
    va_end(args);
}

double
numberOr(const JsonValue &obj, const char *key, double fallback)
{
    if (obj.kind == JsonValue::Kind::Object && obj.has(key) &&
        obj.at(key).kind == JsonValue::Kind::Number)
        return obj.at(key).number;
    return fallback;
}

std::string
textOr(const JsonValue &obj, const char *key, const char *fallback)
{
    if (obj.kind == JsonValue::Kind::Object && obj.has(key) &&
        obj.at(key).kind == JsonValue::Kind::String)
        return obj.at(key).text;
    return fallback;
}

/** The five breakdown components, in paper bar order. */
struct Decomposition
{
    double busy = 0, read = 0, write = 0, acquire = 0, release = 0;

    double
    total() const
    {
        return busy + read + write + acquire + release;
    }
};

Decomposition
decompositionOf(const JsonValue &point)
{
    Decomposition d;
    if (!point.has("breakdown"))
        return d;
    const JsonValue &b = point.at("breakdown");
    d.busy = numberOr(b, "busy", 0);
    d.read = numberOr(b, "readStall", 0);
    d.write = numberOr(b, "writeStall", 0);
    d.acquire = numberOr(b, "acquireStall", 0);
    d.release = numberOr(b, "releaseStall", 0);
    return d;
}

/** Points that compare against the same BASIC bar. */
struct GroupKey
{
    std::string app, consistency, network;
    double procs = 0, scale = 0;

    bool
    operator==(const GroupKey &o) const
    {
        return app == o.app && consistency == o.consistency &&
               network == o.network && procs == o.procs &&
               scale == o.scale;
    }
};

GroupKey
keyOf(const JsonValue &point)
{
    GroupKey key;
    key.app = textOr(point, "app", "?");
    if (point.has("config")) {
        const JsonValue &cfg = point.at("config");
        key.consistency = textOr(cfg, "consistency", "?");
        key.network = textOr(cfg, "network", "?");
        key.procs = numberOr(cfg, "procs", 0);
        key.scale = numberOr(cfg, "scale", 0);
    }
    return key;
}

// --- section 1: execution-time decomposition ------------------------------

void
renderDecomposition(const std::vector<JsonValue> &points,
                    std::string &out)
{
    out += "## Execution time, normalized to BASIC = 100\n\n";

    // Group points in first-appearance order; a vector scan keeps
    // the grouping deterministic without ordering the key type.
    std::vector<std::pair<GroupKey, std::vector<const JsonValue *>>>
        groups;
    for (const JsonValue &p : points) {
        GroupKey key = keyOf(p);
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&key](const auto &g) {
            return g.first == key;
        });
        if (it == groups.end()) {
            groups.push_back({key, {}});
            it = groups.end() - 1;
        }
        it->second.push_back(&p);
    }

    bool rendered = false;
    for (const auto &[key, members] : groups) {
        // The normalization base: this group's BASIC point.
        const JsonValue *basic = nullptr;
        for (const JsonValue *p : members) {
            if (p->has("config") &&
                textOr(p->at("config"), "protocol", "") == "BASIC") {
                basic = p;
                break;
            }
        }
        if (!basic || members.size() < 2)
            continue;
        double base_total = decompositionOf(*basic).total();
        if (base_total <= 0)
            continue;
        rendered = true;

        append(out, "### %s — %s / %s / %.0f procs (scale %g)\n\n",
               key.app.c_str(), key.consistency.c_str(),
               key.network.c_str(), key.procs, key.scale);
        out += "| protocol | busy | read | write | acquire | "
               "release | total |\n";
        out += "|---|---:|---:|---:|---:|---:|---:|\n";
        for (const JsonValue *p : members) {
            Decomposition d = decompositionOf(*p);
            double f = 100.0 / base_total;
            append(out,
                   "| %s | %.1f | %.1f | %.1f | %.1f | %.1f "
                   "| %.1f |\n",
                   p->has("config")
                       ? textOr(p->at("config"), "protocol", "?")
                             .c_str()
                       : "?",
                   d.busy * f, d.read * f, d.write * f, d.acquire * f,
                   d.release * f, d.total() * f);
        }
        out += "\n";
    }
    if (!rendered)
        out += "(no group carries both a BASIC point and an "
               "extension point)\n\n";
}

std::string
describeShort(const JsonValue &point)
{
    std::string label = textOr(point, "tag", "");
    if (!label.empty())
        label += " ";
    label += textOr(point, "app", "?");
    if (point.has("config")) {
        label += " under " +
                 textOr(point.at("config"), "protocol", "?") + "/" +
                 textOr(point.at("config"), "network", "?");
    }
    return label;
}

// --- section 2: directory pressure ----------------------------------------

void
renderDirectoryPressure(const std::vector<JsonValue> &points,
                        std::string &out)
{
    out += "## Directory pressure (imprecise sharer sets)\n\n";

    // Only points carrying a non-full-map "directory" block are
    // interesting; full-map points can neither broadcast nor evict.
    bool rendered = false;
    for (const JsonValue &point : points) {
        if (!point.has("directory"))
            continue;
        const JsonValue &dir = point.at("directory");
        std::string rep = textOr(dir, "rep", "fullmap");
        if (rep == "fullmap")
            continue;
        if (!rendered) {
            out += "| point | rep | overflow broadcasts | "
                   "pointer evictions | inval msgs |\n";
            out += "|---|---|---:|---:|---:|\n";
            rendered = true;
        }
        double invals = 0;
        if (point.has("protocolEvents"))
            invals = numberOr(point.at("protocolEvents"),
                              "invalidationsSent", 0);
        append(out, "| %s | %s | %.0f | %.0f | %.0f |\n",
               describeShort(point).c_str(), rep.c_str(),
               numberOr(dir, "overflowBroadcasts", 0),
               numberOr(dir, "pointerEvictions", 0), invals);
    }
    if (rendered)
        out += "\n";
    else
        out += "(every point ran a full-map directory — nothing to "
               "overflow)\n\n";
}

// --- section 3: mesh link utilization -------------------------------------

/** One column of a point's timeseries block, decoded. */
struct SeriesView
{
    double interval = 0;
    std::vector<std::string> names;
    const JsonValue *deltas = nullptr;  //!< array of row arrays
    const JsonValue *ticks = nullptr;

    std::size_t
    rows() const
    {
        return deltas ? deltas->items.size() : 0;
    }

    double
    at(std::size_t row, std::size_t col) const
    {
        return deltas->items[row].items[col].number;
    }
};

/** Decode a structurally valid timeseries block; false otherwise. */
bool
viewSeries(const JsonValue &point, SeriesView &view)
{
    if (!point.has("timeseries"))
        return false;
    const JsonValue &ts = point.at("timeseries");
    if (ts.kind != JsonValue::Kind::Object || !ts.has("interval") ||
        !ts.has("metrics") || !ts.has("deltas") || !ts.has("ticks"))
        return false;
    view.interval = numberOr(ts, "interval", 0);
    if (view.interval <= 0)
        return false;
    view.names.clear();
    for (const JsonValue &name : ts.at("metrics").items)
        view.names.push_back(name.text);
    view.deltas = &ts.at("deltas");
    view.ticks = &ts.at("ticks");
    if (view.deltas->items.size() != view.ticks->items.size())
        return false;
    for (const JsonValue &row : view.deltas->items)
        if (row.items.size() != view.names.size())
            return false;
    return true;
}

void
renderLinkUtilization(const std::vector<JsonValue> &points,
                      std::size_t top_links, std::string &out)
{
    out += "## Mesh link utilization (peak vs mean)\n\n";

    bool rendered = false;
    for (const JsonValue &point : points) {
        SeriesView view;
        if (!viewSeries(point, view) || view.rows() == 0)
            continue;

        // Mesh links register one flit column per link; links are
        // clocked at one flit per pclock, so delta-flits / interval
        // is the utilization of that window.
        struct Link
        {
            std::string name;   //!< "mesh.x0y0.east"
            double mean = 0;    //!< whole-run utilization
            double peak = 0;    //!< busiest full window
            double peakTick = 0;
            double waitTicks = 0;
        };
        std::vector<Link> links;
        double last_tick =
            view.ticks->items[view.rows() - 1].number;
        for (std::size_t col = 0; col < view.names.size(); ++col) {
            const std::string &name = view.names[col];
            constexpr const char suffix[] = ".flits";
            if (name.rfind("mesh.", 0) != 0 ||
                name.size() < sizeof(suffix) ||
                name.compare(name.size() - (sizeof(suffix) - 1),
                             sizeof(suffix) - 1, suffix) != 0)
                continue;
            Link link;
            link.name = name.substr(
                0, name.size() - (sizeof(suffix) - 1));
            double total = 0;
            for (std::size_t row = 0; row < view.rows(); ++row) {
                double delta = view.at(row, col);
                total += delta;
                // The last row usually covers a partial window;
                // normalizing it by the full interval can only
                // under-report, never inflate the peak.
                double util = delta / view.interval;
                if (util > link.peak) {
                    link.peak = util;
                    link.peakTick = view.ticks->items[row].number;
                }
            }
            link.mean = last_tick > 0 ? total / last_tick : 0;
            // The paired waitTicks column, if present, is the
            // queueing-delay signal for the same link.
            for (std::size_t w = 0; w < view.names.size(); ++w) {
                if (view.names[w] == link.name + ".waitTicks") {
                    for (std::size_t row = 0; row < view.rows();
                         ++row)
                        link.waitTicks += view.at(row, w);
                    break;
                }
            }
            if (total > 0)
                links.push_back(std::move(link));
        }
        if (links.empty())
            continue;
        rendered = true;

        std::sort(links.begin(), links.end(),
                  [](const Link &a, const Link &b) {
            if (a.peak != b.peak)
                return a.peak > b.peak;
            return a.name < b.name;  // deterministic tie-break
        });
        if (links.size() > top_links)
            links.resize(top_links);

        append(out, "### %s\n\n", describeShort(point).c_str());
        out += "| link | mean util | peak util | peak at tick | "
               "wait ticks |\n";
        out += "|---|---:|---:|---:|---:|\n";
        for (const Link &link : links) {
            append(out,
                   "| %s | %.1f%% | %.1f%% | %.0f | %.0f |\n",
                   link.name.c_str(), 100.0 * link.mean,
                   100.0 * link.peak, link.peakTick,
                   link.waitTicks);
        }
        out += "\n";
    }
    if (!rendered)
        out += "(no mesh point carries a timeseries block — run "
               "with --sample-interval=N on a mesh target)\n\n";
}

// --- section 4: causal stall attribution ----------------------------------

void
renderAttribution(const std::vector<JsonValue> &points,
                  std::string &out)
{
    out += "## Where the cycles went (causal stall attribution)\n\n";

    bool rendered = false;
    for (const JsonValue &point : points) {
        if (!point.has("attribution"))
            continue;
        const JsonValue &ar = point.at("attribution");
        if (ar.kind != JsonValue::Kind::Object ||
            !ar.has("classes") ||
            ar.at("classes").kind != JsonValue::Kind::Object)
            continue;
        const JsonValue &classes = ar.at("classes");
        if (classes.members.empty() && !ar.has("locks"))
            continue;
        rendered = true;

        append(out, "### %s\n\n", describeShort(point).c_str());
        out += "| class | count | latency | request | dirQueue | "
               "dirServ | fetch | fanout | ackColl | dataRet | "
               "fill |\n";
        out += "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:"
               "|---:|\n";
        for (const auto &[name, row] : classes.members) {
            if (row.kind != JsonValue::Kind::Object)
                continue;
            double lat = numberOr(row, "latency", 0);
            auto pct = [&](const char *key) {
                return lat > 0
                           ? 100.0 * numberOr(row, key, 0) / lat
                           : 0.0;
            };
            append(out,
                   "| %s | %.0f | %.0f | %.1f%% | %.1f%% | %.1f%% "
                   "| %.1f%% | %.1f%% | %.1f%% | %.1f%% | %.1f%% "
                   "|\n",
                   name.c_str(), numberOr(row, "count", 0), lat,
                   pct("request"), pct("dirQueue"),
                   pct("dirService"), pct("ownerFetch"),
                   pct("invalFanout"), pct("ackCollect"),
                   pct("dataReturn"), pct("fill"));
        }
        out += "\n";
        if (ar.has("locks") &&
            ar.at("locks").kind == JsonValue::Kind::Object) {
            const JsonValue &locks = ar.at("locks");
            double lat = numberOr(locks, "latency", 0);
            double home_q = numberOr(locks, "homeQueue", 0);
            double count = numberOr(locks, "count", 0);
            if (count > 0) {
                append(out,
                       "Locks: %.0f acquires, %.0f ticks total; "
                       "%.1f%% queued at the lock home, %.1f%% "
                       "transfer.\n\n",
                       count, lat,
                       lat > 0 ? 100.0 * home_q / lat : 0.0,
                       lat > 0
                           ? 100.0 * (lat - home_q) / lat
                           : 0.0);
            }
        }
    }
    if (!rendered)
        out += "(no data: no point carries an attribution block — "
               "run with --attrib)\n\n";
}

// --- section 5: contention hot spots --------------------------------------

void
renderHotSpots(const std::vector<JsonValue> &points, std::string &out)
{
    out += "## Contention hot spots\n\n";

    bool rendered = false;
    for (const JsonValue &point : points) {
        if (!point.has("attribution"))
            continue;
        const JsonValue &ar = point.at("attribution");
        if (ar.kind != JsonValue::Kind::Object)
            continue;
        auto table = [&](const char *key, const char *what,
                         const char *unit) {
            if (!ar.has(key) ||
                ar.at(key).kind != JsonValue::Kind::Array ||
                ar.at(key).items.empty())
                return false;
            append(out, "%s at %s:\n\n", what,
                   describeShort(point).c_str());
            append(out,
                   "| addr | home | %s | total wait | mean | "
                   "p99 |\n",
                   unit);
            out += "|---|---:|---:|---:|---:|---:|\n";
            for (const JsonValue &row : ar.at(key).items) {
                double count = numberOr(row, "count", 0);
                double total = numberOr(row, "totalWait", 0);
                append(out,
                       "| 0x%llx | %.0f | %.0f | %.0f | %.1f | "
                       "%.1f |\n",
                       static_cast<unsigned long long>(
                           numberOr(row, "addr", 0)),
                       numberOr(row, "home", 0), count, total,
                       count > 0 ? total / count : 0.0,
                       numberOr(row, "p99Wait", 0));
            }
            out += "\n";
            return true;
        };
        bool blocks = table("hotBlocks", "Hot blocks", "requests");
        bool locks = table("hotLocks", "Hot locks", "grants");
        rendered = rendered || blocks || locks;
    }
    if (!rendered)
        out += "(no data: no point carries attribution hot-spot "
               "tables — run with --attrib)\n\n";
}

// --- section 6: phase anomalies -------------------------------------------

void
renderAnomalies(const std::vector<JsonValue> &points,
                std::size_t top_n, std::string &out)
{
    out += "## Phase anomalies (interval deviates >2σ from "
           "run mean)\n\n";

    struct Anomaly
    {
        double score = 0;       //!< |delta - mean| / sigma
        std::size_t point = 0;  //!< point index (tie-break)
        std::string metric;
        double tick = 0;
        double delta = 0;
        double mean = 0;
        std::string label;
    };
    std::vector<Anomaly> anomalies;

    for (std::size_t pi = 0; pi < points.size(); ++pi) {
        SeriesView view;
        if (!viewSeries(points[pi], view))
            continue;
        std::size_t rows = view.rows();
        // With fewer than four windows a "deviation from the run
        // mean" is noise, not phase behavior.
        if (rows < 4)
            continue;
        for (std::size_t col = 0; col < view.names.size(); ++col) {
            double sum = 0, sq = 0;
            for (std::size_t row = 0; row < rows; ++row) {
                double v = view.at(row, col);
                sum += v;
                sq += v * v;
            }
            double mean = sum / rows;
            double variance = sq / rows - mean * mean;
            if (variance <= 0)
                continue;
            double sigma = std::sqrt(variance);
            for (std::size_t row = 0; row < rows; ++row) {
                double v = view.at(row, col);
                double score = std::fabs(v - mean) / sigma;
                if (score <= 2.0)
                    continue;
                Anomaly a;
                a.score = score;
                a.point = pi;
                a.metric = view.names[col];
                a.tick = view.ticks->items[row].number;
                a.delta = v;
                a.mean = mean;
                a.label = describeShort(points[pi]);
                anomalies.push_back(std::move(a));
            }
        }
    }

    std::sort(anomalies.begin(), anomalies.end(),
              [](const Anomaly &a, const Anomaly &b) {
        if (a.score != b.score)
            return a.score > b.score;
        if (a.point != b.point)
            return a.point < b.point;
        if (a.metric != b.metric)
            return a.metric < b.metric;
        return a.tick < b.tick;
    });
    if (anomalies.size() > top_n)
        anomalies.resize(top_n);

    if (anomalies.empty()) {
        out += "(none: no sampled metric left its ±2σ "
               "band, or no point was sampled)\n\n";
        return;
    }
    out += "| σ | point | metric | interval end | delta | "
           "run mean |\n";
    out += "|---:|---|---|---:|---:|---:|\n";
    for (const Anomaly &a : anomalies) {
        append(out,
               "| %.1f | %s | %s | %.0f | %.0f | %.1f |\n",
               a.score, a.label.c_str(), a.metric.c_str(), a.tick,
               a.delta, a.mean);
    }
    out += "\n";
}

} // anonymous namespace

bool
generateReport(const JsonValue &doc, const ReportOptions &opts,
               std::string &out, std::string &error)
{
    if (doc.kind != JsonValue::Kind::Object || !doc.has("schema") ||
        doc.at("schema").text != "cpx-sweep-1") {
        error = "missing cpx-sweep-1 schema marker";
        return false;
    }
    // Sparse inputs are not errors: a sweep where every point failed
    // (or that recorded no points at all) still yields a well-formed
    // report whose sections carry explicit "no data" notes, so CI
    // pipelines that chain cpxbench | cpxreport don't fall over on a
    // bad night's data. Only a structurally invalid document fails.
    //
    // Failed points (fault-isolated sweeps, DESIGN.md §14) carry a
    // status/error block instead of stats; report only on completed
    // points, and say how many were dropped. A missing "status"
    // member means "ok" (pre-§14 results files).
    std::vector<JsonValue> points;
    std::size_t skipped = 0;
    if (doc.has("points") &&
        doc.at("points").kind == JsonValue::Kind::Array) {
        for (const JsonValue &p : doc.at("points").items) {
            if (textOr(p, "status", "ok") == "ok")
                points.push_back(p);
            else
                ++skipped;
        }
    }

    out.clear();
    append(out, "# cpx sweep report\n\n");
    append(out, "- suite: %s\n",
           textOr(doc, "suite", "?").c_str());
    append(out, "- points: %zu\n", points.size());
    if (skipped > 0)
        append(out, "- skipped: %zu failed point(s) excluded\n",
               skipped);
    append(out, "- scale: %g, procs: %.0f\n",
           numberOr(doc, "scale", 0), numberOr(doc, "procs", 0));
    if (points.empty())
        out += "- note: no usable sweep points — every section "
               "below reports no data\n";
    append(out, "\n");

    renderDecomposition(points, out);
    renderDirectoryPressure(points, out);
    renderLinkUtilization(points, opts.topLinks, out);
    renderAttribution(points, out);
    renderHotSpots(points, out);
    renderAnomalies(points, opts.topAnomalies, out);
    return true;
}

bool
generateReportFile(const std::string &json_path,
                   const ReportOptions &opts,
                   const std::string &out_path, std::string &error)
{
    std::ifstream file(json_path, std::ios::binary);
    if (!file) {
        error = "cannot open '" + json_path + "'";
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();

    JsonValue doc;
    if (!parseJson(text.str(), doc, error)) {
        error = json_path + ": " + error;
        return false;
    }

    std::string report;
    if (!generateReport(doc, opts, report, error)) {
        error = json_path + ": " + error;
        return false;
    }

    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
        return true;
    }
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        error = "cannot write '" + out_path + "'";
        return false;
    }
    out << report;
    if (!out.flush()) {
        error = "short write to '" + out_path + "'";
        return false;
    }
    return true;
}

} // namespace cpx::bench
