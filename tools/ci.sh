#!/bin/sh
# Continuous-integration driver: plain build + tests, sanitized build
# + tests, a short seeded stress pass under the coherence checker
# with chaos-network fault injection, the supervisor's fault-injection
# self-test, a process-isolated harness smoke sweep whose JSON results
# are validated — and, when a committed BENCH_baseline.json exists,
# gated against the baseline (any simulated-stat drift fails; an
# events/sec regression only warns; the in-process-generated baseline
# makes the gate a cross-isolation-mode bit-identity check) — a
# parallel-kernel bit-identity matrix (the smoke suite re-run at
# --sim-threads=1/2/4, every results file gated against the same
# baseline, so thread-count determinism is enforced on every sweep
# point), a sampled mesh sweep rendered to markdown through
# cpxreport, and a stall-attribution sweep (--attrib) gated against
# the same baseline — proving the causal profiler is observation-only
# — then rendered to check both attribution report sections. The
# ThreadSanitizer lane lives in the GitHub workflow
# (.github/workflows/ci.yml, job "tsan"): CPX_SANITIZE=thread build,
# ctest -L threads, and a chaos stress run at --sim-threads=4.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
#
# Environment:
#   CPX_CI_JOBS   host parallelism for ctest and the bench sweep
#                 (default 2)
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
prefix=${1:-build-ci}
jobs=${CPX_CI_JOBS:-2}

# Per-stage wall time, printed by stage_done. `date +%s` is portable
# to every shell CI runs us under, unlike EPOCHREALTIME.
ci_start=$(date +%s)
stage_start=$ci_start
stage_done() {
    now=$(date +%s)
    echo "== $1 OK ($((now - stage_start))s, total $((now - ci_start))s)"
    stage_start=$now
}

run_suite() {
    dir=$1
    shift
    echo "== configure $dir ($*)"
    cmake -S "$root" -B "$root/$dir" "$@" >/dev/null
    echo "== build $dir"
    cmake --build "$root/$dir" -j >/dev/null
    echo "== test $dir (ctest -j $jobs)"
    ctest --test-dir "$root/$dir" --output-on-failure -j "$jobs" >/dev/null
    stage_done "$dir"
}

run_suite "$prefix"           -DCPX_SANITIZE=OFF
run_suite "$prefix-sanitize"  -DCPX_SANITIZE=ON

# Seeded stress spot-checks: checker fail-fast + chaos jitter across
# the protocol extremes. Any invariant violation panics the run.
echo "== stress spot-checks"
for seed in 3 17; do
    for proto in BASIC P+CW+M; do
        "$root/$prefix/tools/cpxsim" --workload=stress \
            --protocol="$proto" --procs=8 --scale=0.2 \
            --seed="$seed" --chaos --chaos-seed="$seed" \
            --check >/dev/null
        echo "   stress $proto seed=$seed OK"
    done
done
stage_done "stress spot-checks"

# Fault-injection self-test: the process-isolation supervisor must
# classify deliberately crashing / exiting / hanging / garbage /
# flaky / unverifiable workers, keep healthy results bit-identical
# to the in-process pool, and resume from its journal without
# re-executing (DESIGN.md §14).
echo "== fault-injection self-test (cpxbench --self-test-faults)"
"$root/$prefix/tools/cpxbench" --self-test-faults >/dev/null
stage_done "fault-injection self-test"

# Harness smoke sweep: the whole table/figure suite at reduced scale,
# run under process isolation with a journal. The committed baseline
# was generated in-process, so the gate below doubles as a cross-mode
# bit-identity check on every sweep point. --check-json fails the
# build if the results file is missing, unparseable, or reports any
# unverified point; with the baseline it also fails on any
# simulated-stat drift.
echo "== harness smoke sweep (cpxbench --jobs=$jobs --isolate=process)"
bench_json="$root/$prefix/BENCH_smoke.json"
bench_journal="$root/$prefix/BENCH_smoke.jsonl"
rm -f "$bench_json" "$bench_journal" "$bench_journal.quarantine"
"$root/$prefix/tools/cpxbench" --smoke --jobs="$jobs" \
    --isolate=process --timeout=300 \
    --journal="$bench_journal" --json="$bench_json" >/dev/null
test -s "$bench_json" || {
    echo "cpxbench smoke run produced no JSON" >&2
    exit 1
}
if [ -f "$root/BENCH_baseline.json" ]; then
    "$root/$prefix/tools/cpxbench" --check-json="$bench_json" \
        --baseline="$root/BENCH_baseline.json"
else
    "$root/$prefix/tools/cpxbench" --check-json="$bench_json"
fi
"$root/$prefix/tools/cpxbench" --perf-summary="$bench_json"
stage_done "harness smoke sweep"

# Parallel-kernel bit-identity matrix: the same smoke suite at
# several --sim-threads values. Each results file must validate and
# match the committed baseline byte-for-byte on every simulated stat
# (the baseline was produced at --sim-threads=1, so passing it
# unmodified at 2 and 4 workers IS the thread-count determinism
# guarantee of DESIGN.md §15; the gate's >20% events/sec check also
# warns on threaded-config throughput regressions). The speedup
# summary at the end feeds the workflow's perf-trajectory job
# summary.
echo "== sim-threads bit-identity matrix (1 2 4)"
for w in 1 2 4; do
    mt_json="$root/$prefix/BENCH_threads$w.json"
    rm -f "$mt_json"
    "$root/$prefix/tools/cpxbench" --smoke --jobs="$jobs" \
        --sim-threads="$w" --json="$mt_json" >/dev/null
    if [ -f "$root/BENCH_baseline.json" ]; then
        "$root/$prefix/tools/cpxbench" --check-json="$mt_json" \
            --baseline="$root/BENCH_baseline.json"
    else
        "$root/$prefix/tools/cpxbench" --check-json="$mt_json"
    fi
    echo "   --sim-threads=$w OK"
done
"$root/$prefix/tools/cpxbench" \
    --perf-summary="$root/$prefix/BENCH_threads4.json" \
    --speedup-vs="$root/$prefix/BENCH_threads1.json"
stage_done "sim-threads bit-identity matrix"

# Directory-scaling smoke: the 16/64/256-node representation matrix
# (bench/scaling_matrix, standalone-only so the cpxbench suite's
# point count — and the baseline gate above — stay untouched), run
# journaled under process isolation with the parallel kernel. The
# results file must validate; there is no baseline for it (the grid
# is new), but every point must verify. Followed by invariant-checked
# stress spot-runs at the two scaled configurations the overflow
# machinery exists for: limited pointers at 64 nodes and the coarse
# vector at 256.
echo "== directory scaling matrix (scaling_matrix --isolate=process)"
scaling_json="$root/$prefix/BENCH_scaling.json"
scaling_journal="$root/$prefix/BENCH_scaling.jsonl"
rm -f "$scaling_json" "$scaling_journal" "$scaling_journal.quarantine"
"$root/$prefix/bench/scaling_matrix" --scale=0.02 --jobs="$jobs" \
    --sim-threads=4 --isolate=process --timeout=600 \
    --journal="$scaling_journal" --json="$scaling_json" >/dev/null
"$root/$prefix/tools/cpxbench" --check-json="$scaling_json"
for cfg in "--nodes=64 --dir=limptr4B" "--nodes=64 --dir=limptr4E" \
           "--nodes=256 --dir=coarse4"; do
    # shellcheck disable=SC2086
    "$root/$prefix/tools/cpxsim" --workload=stress $cfg \
        --scale=0.1 --check >/dev/null
    echo "   stress $cfg OK"
done
stage_done "directory scaling matrix"

# Interval-metrics smoke: one sampled mesh sweep must validate under
# --check-json (timeseries schema included) and render a non-empty
# markdown report. No baseline gate here — the sampled sweep is a
# subset suite, and sampling neutrality is covered by ctest; this
# stage proves the sampling → JSON → report pipeline end to end.
echo "== sampled sweep + report (cpxreport)"
ts_json="$root/$prefix/BENCH_sampled.json"
report_md="$root/$prefix/REPORT_sampled.md"
rm -f "$ts_json" "$report_md"
"$root/$prefix/tools/cpxbench" --only=table3_mesh --smoke \
    --sample-interval=5000 --jobs="$jobs" --json="$ts_json" \
    >/dev/null
"$root/$prefix/tools/cpxbench" --check-json="$ts_json"
"$root/$prefix/tools/cpxreport" "$ts_json" --out="$report_md"
test -s "$report_md" || {
    echo "cpxreport produced an empty report" >&2
    exit 1
}
stage_done "sampled sweep + report"

# Stall-attribution smoke: the whole smoke suite re-run with the
# causal profiler on. The results file must validate AND pass the
# same committed baseline gate as the plain run — attribution is
# observation-only, so every simulated stat must be byte-identical
# with recording enabled (DESIGN.md §17). The attributed JSON is
# then rendered through cpxreport, which must produce both new
# sections ("Where the cycles went", "Contention hot spots").
echo "== stall attribution (cpxbench --attrib + baseline gate)"
attrib_json="$root/$prefix/BENCH_attrib.json"
attrib_md="$root/$prefix/REPORT_attrib.md"
rm -f "$attrib_json" "$attrib_md"
"$root/$prefix/tools/cpxbench" --smoke --jobs="$jobs" --attrib \
    --json="$attrib_json" >/dev/null
if [ -f "$root/BENCH_baseline.json" ]; then
    "$root/$prefix/tools/cpxbench" --check-json="$attrib_json" \
        --baseline="$root/BENCH_baseline.json"
else
    "$root/$prefix/tools/cpxbench" --check-json="$attrib_json"
fi
"$root/$prefix/tools/cpxreport" "$attrib_json" --out="$attrib_md"
for section in "Where the cycles went" "Contention hot spots"; do
    grep -q "$section" "$attrib_md" || {
        echo "cpxreport dropped the '$section' section" >&2
        exit 1
    }
done
stage_done "stall attribution"

# Flight-recorder smoke: one traced run must produce a Chrome trace
# JSON that parses and keeps its async begin/end events balanced —
# and, since the run is also sampled, carries the interval-metric
# counter tracks ("C" events) the validator checks for monotonic
# per-track timestamps.
echo "== traced smoke run (cpxsim --trace-out --sample-interval)"
trace_json="$root/$prefix/TRACE_smoke.json"
rm -f "$trace_json"
"$root/$prefix/tools/cpxsim" --app=mp3d --protocol=P+CW+M \
    --procs=8 --scale=0.1 --sample-interval=5000 \
    --trace-out="$trace_json" >/dev/null
"$root/$prefix/tools/cpxbench" --check-trace="$trace_json"
grep -q '"ph":"C"' "$trace_json" || {
    echo "sampled traced run emitted no counter tracks" >&2
    exit 1
}
stage_done "traced smoke run"
echo "== CI green (total $(($(date +%s) - ci_start))s)"
