#!/bin/sh
# Continuous-integration driver: plain build + tests, sanitized build
# + tests, a short seeded stress pass under the coherence checker
# with chaos-network fault injection, and a parallel harness smoke
# sweep whose JSON results are validated.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
prefix=${1:-build-ci}

run_suite() {
    dir=$1
    shift
    echo "== configure $dir ($*)"
    cmake -S "$root" -B "$root/$dir" "$@" >/dev/null
    echo "== build $dir"
    cmake --build "$root/$dir" -j >/dev/null
    echo "== test $dir"
    ctest --test-dir "$root/$dir" --output-on-failure -j 2 >/dev/null
    echo "== $dir OK"
}

run_suite "$prefix"           -DCPX_SANITIZE=OFF
run_suite "$prefix-sanitize"  -DCPX_SANITIZE=ON

# Seeded stress spot-checks: checker fail-fast + chaos jitter across
# the protocol extremes. Any invariant violation panics the run.
echo "== stress spot-checks"
for seed in 3 17; do
    for proto in BASIC P+CW+M; do
        "$root/$prefix/tools/cpxsim" --workload=stress \
            --protocol="$proto" --procs=8 --scale=0.2 \
            --seed="$seed" --chaos --chaos-seed="$seed" \
            --check >/dev/null
        echo "   stress $proto seed=$seed OK"
    done
done

# Harness smoke sweep: the whole table/figure suite at reduced scale
# over two host threads. --check-json fails the build if the results
# file is missing, unparseable, or reports any unverified point.
echo "== harness smoke sweep (cpxbench)"
bench_json="$root/$prefix/BENCH_smoke.json"
rm -f "$bench_json"
"$root/$prefix/tools/cpxbench" --smoke --jobs=2 \
    --json="$bench_json" >/dev/null
test -s "$bench_json" || {
    echo "cpxbench smoke run produced no JSON" >&2
    exit 1
}
"$root/$prefix/tools/cpxbench" --check-json="$bench_json"
echo "== CI green"
