/**
 * @file
 * cpxreport — render a cpx-sweep-1 JSON results file as markdown.
 *
 *   cpxbench --smoke --sample-interval=5000 --json=results.json
 *   cpxreport results.json --out=report.md
 *
 * Sections (see DESIGN.md §13, §17): per-application execution-time
 * decomposition normalized to BASIC = 100 (the paper's Figure 2/3
 * shape), directory pressure, peak-vs-mean mesh link utilization for
 * sampled mesh points, "Where the cycles went" (the causal stall
 * attribution matrix from --attrib points) with the "Contention hot
 * spots" hot-block/hot-lock tables, and the top-N phase anomalies —
 * intervals where a sampled metric deviates more than 2σ from its
 * run mean.
 *
 * Options:
 *   --out=PATH   write the report to PATH (default: stdout)
 *   --top=N      rows in the anomaly table (default 10)
 *   --links=N    rows per link-utilization table (default 10)
 *
 * Exit status: 0 on success, 1 on unreadable/invalid input. Sparse
 * but well-formed inputs — zero ok points, no timeseries, no
 * attribution — render a report with explicit "no data" notes and
 * exit 0.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/report_gen.hh"
#include "sim/parse.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    using namespace cpx::bench;

    std::string json_path;
    std::string out_path;
    ReportOptions opts;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--out=", 6) == 0)
            out_path = arg + 6;
        else if (std::strncmp(arg, "--top=", 6) == 0)
            opts.topAnomalies = parseUnsigned(arg + 6, "--top");
        else if (std::strncmp(arg, "--links=", 8) == 0)
            opts.topLinks = parseUnsigned(arg + 8, "--links");
        else if (std::strncmp(arg, "--", 2) == 0)
            fatal("unknown option '%s' (see the header of "
                  "tools/cpxreport.cc)",
                  arg);
        else if (json_path.empty())
            json_path = arg;
        else
            fatal("more than one input file ('%s' and '%s')",
                  json_path.c_str(), arg);
    }
    if (json_path.empty())
        fatal("usage: cpxreport RESULTS.json [--out=PATH] [--top=N] "
              "[--links=N]");

    std::string error;
    if (!generateReportFile(json_path, opts, out_path, error)) {
        std::fprintf(stderr, "cpxreport: %s\n", error.c_str());
        return 1;
    }
    if (!out_path.empty())
        std::printf("report written to %s\n", out_path.c_str());
    return 0;
}
