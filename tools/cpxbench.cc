/**
 * @file
 * cpxbench — run the whole paper harness in one command.
 *
 * Queues the sweep grids of every bench target (Tables 1-3, Figures
 * 2-4, the sensitivity studies and the ablations) on one shared
 * thread pool, renders each target's paper-style text tables in
 * canonical order, and writes one machine-readable JSON document
 * with every sweep point for trend tracking.
 *
 *   cpxbench --jobs=8 --json=BENCH_results.json
 *
 * Options:
 *   --jobs=N        host worker threads (default hardware_concurrency)
 *   --json=PATH     JSON results file     (default BENCH_results.json)
 *   --scale=F       workload problem-size multiplier (default 1.0)
 *   --procs=N       simulated processors per system  (default 16)
 *   --seed=N        workload seed for seeded workloads
 *   --smoke         quick pass: scale 0.1, 8 procs (CI; overridable
 *                   by a later --scale/--procs)
 *   --sample-interval=N  sample interval metrics every N ticks and
 *                   embed the per-point "timeseries" JSON block
 *                   (0 = off, the default; simulated stats are
 *                   bit-identical either way — DESIGN.md §13)
 *   --attrib        profile each point's causal stall attribution
 *                   and embed the per-point "attribution" JSON block
 *                   (DESIGN.md §17). Observation-only: simulated
 *                   stats are bit-identical either way, so a
 *                   --baseline gate passes with or without it
 *   --sim-threads=N host worker threads INSIDE each simulation
 *                   (parallel DES kernel, DESIGN.md §15; default 1,
 *                   max 64). Simulated stats are bit-identical at
 *                   every value, so --baseline comparisons hold
 *                   across thread counts
 *   --isolate=M     none (default): in-process thread pool;
 *                   process: one forked, supervised worker per point
 *                   — crashes/hangs/garbage become per-point
 *                   statuses instead of killing the suite
 *                   (DESIGN.md §14)
 *   --timeout=S     per-attempt wall-clock deadline in seconds
 *                   (process mode; 0 = none)
 *   --retries=N     extra attempts for transient failures
 *                   (default 1; process mode)
 *   --journal=P     append each finished point to JSONL journal P
 *                   (fsync'd before the point counts as done)
 *   --resume=P      skip points already completed in journal P
 *                   (implies --journal=P unless given separately)
 *   --cache=DIR     content-addressed result cache: reuse identical
 *                   configurations across runs, store new ones
 *   --self-test-faults  run the built-in fault-injection self-test
 *                   (deliberately crashing/hanging/garbage workers)
 *                   and exit 0 iff the supervisor classifies and
 *                   survives every failure class
 *   --only=A,B      run only the named bench targets
 *   --list          list bench targets and exit
 *   --check-json=P  validate an existing results file (parseable,
 *                   cpx-sweep-1 schema, every point verified) and
 *                   exit; runs nothing
 *   --allow-failed  with --check-json: accept failed points that
 *                   carry a well-formed status/error block
 *   --baseline=P    with --check-json: additionally fail if any
 *                   simulated stat drifted from the committed
 *                   baseline file P; warn (not fail) if events/sec
 *                   regressed more than 20%
 *   --check-trace=P validate a Chrome-trace-event JSON file written
 *                   by cpxsim --trace-out (parseable, traceEvents
 *                   present, async begin/end balanced, counter
 *                   tracks well-formed and time-ordered) and exit;
 *                   runs nothing
 *   --perf-summary=P  print the throughput fields (suite totals and
 *                   per-tag events/sec) of an existing results file
 *                   and exit; runs nothing
 *   --speedup-vs=R  with --perf-summary: also print the wall-clock
 *                   and events/sec speedup of the summarized file
 *                   over reference results file R (CI passes the
 *                   --sim-threads=1 run as R)
 *
 * Determinism: each simulation is seeded and bit-identical at every
 * --sim-threads value (DESIGN.md §15), and results are collected by
 * queue position, so the tables and the JSON are bit-identical for
 * every --jobs value — and, because results cross the worker pipe at
 * full fidelity, for either --isolate mode.
 *
 * Exit codes: 0 success; 1 fatal error; 3 suite completed but one or
 * more points failed (their status/error is in the JSON); 130
 * interrupted by SIGINT/SIGTERM (journaled work is resumable).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/runner.hh"
#include "sim/parse.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;
    using namespace cpx::bench;

    Options opts;
    opts.jsonPath = "BENCH_results.json";
    if (const char *env = std::getenv("CPX_SCALE"))
        opts.scale = parsePositiveDouble(env, "CPX_SCALE");

    std::vector<std::string> only;
    bool list_only = false;
    bool self_test = false;
    bool allow_failed = false;
    std::string check_json;
    std::string check_trace;
    std::string baseline;
    std::string perf_summary;
    std::string speedup_vs;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0)
            opts.scale = parsePositiveDouble(arg + 8, "--scale");
        else if (std::strncmp(arg, "--procs=", 8) == 0)
            opts.procs = parsePositiveUnsigned(arg + 8, "--procs");
        else if (std::strncmp(arg, "--jobs=", 7) == 0)
            opts.jobs = parsePositiveUnsigned(arg + 7, "--jobs");
        else if (std::strncmp(arg, "--seed=", 7) == 0)
            opts.seed = parseU64(arg + 7, "--seed");
        else if (std::strncmp(arg, "--json=", 7) == 0)
            opts.jsonPath = arg + 7;
        else if (std::strncmp(arg, "--sample-interval=", 18) == 0)
            opts.sampleInterval =
                parseU64(arg + 18, "--sample-interval");
        else if (std::strcmp(arg, "--attrib") == 0)
            opts.attrib = true;
        else if (std::strncmp(arg, "--sim-threads=", 14) == 0)
            opts.simThreads =
                parsePositiveUnsigned(arg + 14, "--sim-threads");
        else if (std::strncmp(arg, "--isolate=", 10) == 0) {
            const char *mode = arg + 10;
            if (std::strcmp(mode, "none") == 0)
                opts.isolate = IsolateMode::None;
            else if (std::strcmp(mode, "process") == 0)
                opts.isolate = IsolateMode::Process;
            else
                fatal("bad --isolate mode '%s' (use none|process)",
                      mode);
        } else if (std::strncmp(arg, "--timeout=", 10) == 0)
            opts.timeoutSec =
                parsePositiveDouble(arg + 10, "--timeout");
        else if (std::strncmp(arg, "--retries=", 10) == 0)
            opts.retries = static_cast<unsigned>(
                parseU64(arg + 10, "--retries"));
        else if (std::strncmp(arg, "--journal=", 10) == 0)
            opts.journalPath = arg + 10;
        else if (std::strncmp(arg, "--resume=", 9) == 0) {
            opts.resumePath = arg + 9;
            if (opts.journalPath.empty())
                opts.journalPath = opts.resumePath;
        } else if (std::strncmp(arg, "--cache=", 8) == 0)
            opts.cachePath = arg + 8;
        else if (std::strcmp(arg, "--self-test-faults") == 0)
            self_test = true;
        else if (std::strcmp(arg, "--allow-failed") == 0)
            allow_failed = true;
        else if (std::strcmp(arg, "--smoke") == 0) {
            opts.scale = 0.1;
            opts.procs = 8;
        } else if (std::strncmp(arg, "--only=", 7) == 0) {
            std::string names = arg + 7;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                std::size_t comma = names.find(',', pos);
                std::string name = names.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos);
                if (!name.empty())
                    only.push_back(name);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (std::strcmp(arg, "--list") == 0) {
            list_only = true;
        } else if (std::strncmp(arg, "--check-json=", 13) == 0) {
            check_json = arg + 13;
        } else if (std::strncmp(arg, "--check-trace=", 14) == 0) {
            check_trace = arg + 14;
        } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
            baseline = arg + 11;
        } else if (std::strncmp(arg, "--perf-summary=", 15) == 0) {
            perf_summary = arg + 15;
        } else if (std::strncmp(arg, "--speedup-vs=", 13) == 0) {
            speedup_vs = arg + 13;
        } else {
            fatal("unknown option '%s' (see the header of "
                  "tools/cpxbench.cc)",
                  arg);
        }
    }

    if (opts.isolate == IsolateMode::None && opts.timeoutSec > 0)
        fatal("--timeout requires --isolate=process");

    if (self_test)
        return runFaultSelfTest(opts);

    if (!perf_summary.empty()) {
        std::string error;
        if (!printPerfSummary(perf_summary, error, speedup_vs)) {
            std::fprintf(stderr, "cpxbench: %s\n", error.c_str());
            return 1;
        }
        return 0;
    }
    if (!speedup_vs.empty())
        fatal("--speedup-vs requires --perf-summary");

    if (!check_trace.empty()) {
        std::string error;
        if (!validateTraceFile(check_trace, error)) {
            std::fprintf(stderr, "cpxbench: %s\n", error.c_str());
            return 1;
        }
        std::printf("%s: OK\n", check_trace.c_str());
        return 0;
    }

    if (!check_json.empty()) {
        std::string error;
        if (!validateResultsFile(check_json, error, allow_failed)) {
            std::fprintf(stderr, "cpxbench: %s\n", error.c_str());
            return 1;
        }
        if (!baseline.empty()) {
            std::string warning;
            if (!compareToBaseline(check_json, baseline, error,
                                   warning)) {
                std::fprintf(stderr, "cpxbench: %s\n", error.c_str());
                return 1;
            }
            if (!warning.empty())
                std::fprintf(stderr, "cpxbench: warning: %s\n",
                             warning.c_str());
            std::printf("%s: OK (matches baseline %s)\n",
                        check_json.c_str(), baseline.c_str());
            return 0;
        }
        std::printf("%s: OK\n", check_json.c_str());
        return 0;
    }
    if (!baseline.empty())
        fatal("--baseline requires --check-json");

    if (list_only) {
        for (const BenchDef &def : benchRegistry())
            std::printf("%-22s %s\n", def.name, def.title);
        return 0;
    }

    for (const std::string &name : only) {
        bool known = false;
        for (const BenchDef &def : benchRegistry())
            known = known || name == def.name;
        if (!known)
            fatal("--only: unknown bench target '%s' (try --list)",
                  name.c_str());
    }
    auto selected = [&only](const BenchDef &def) {
        if (only.empty())
            return true;
        for (const std::string &name : only)
            if (name == def.name)
                return true;
        return false;
    };

    // Queue every selected target's grid, run the union over one
    // pool, then render in canonical order.
    SweepRunner runner(opts);
    std::vector<RenderFn> renders;
    for (const BenchDef &def : benchRegistry()) {
        if (selected(def))
            renders.push_back(def.setup(runner, opts));
    }
    runner.runAll();

    if (runner.interrupted()) {
        // Completed points are safely journaled; partial tables or a
        // partial JSON would only mislead.
        std::fprintf(stderr,
                     "cpxbench: interrupted; rerun with --resume to "
                     "continue\n");
        return exitCodeInterrupted;
    }

    bool first = true;
    for (const RenderFn &render : renders) {
        if (!first)
            std::printf("\n");
        first = false;
        if (render)
            render();
    }

    std::printf("\n%zu sweep points in %.2f host seconds "
                "(--jobs=%u)\n",
                runner.results().size(), runner.totalHostSeconds(),
                opts.jobs);
    if (!opts.jsonPath.empty()) {
        writeJson(opts.jsonPath, "cpxbench", opts, runner.results(),
                  runner.totalHostSeconds());
        std::printf("results written to %s\n", opts.jsonPath.c_str());
    }
    if (runner.anyFailed()) {
        std::fprintf(stderr,
                     "cpxbench: suite completed with %zu failed "
                     "sweep point(s):%s\n",
                     runner.failedCount(),
                     runner.failureSummary().c_str());
        return exitCodePointsFailed;
    }
    return 0;
}
