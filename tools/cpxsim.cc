/**
 * @file
 * cpxsim — the command-line simulator driver.
 *
 * Runs any workload on any machine configuration and prints the run
 * summary, optionally followed by the full gem5-style statistics
 * dump. This is the entry point a downstream user scripts against.
 *
 *   cpxsim --app=mp3d --protocol=P+CW --consistency=rc \
 *          --network=mesh32 --procs=16 --scale=1.0 --stats
 *
 * Options:
 *   --app=NAME          mp3d | cholesky | water | lu | ocean |
 *                       migratory | producer_consumer | readonly |
 *                       false_sharing | stress      (default mp3d)
 *   --workload=NAME     alias for --app=
 *   --protocol=COMBO    BASIC, P, CW, M, P+CW, P+M, CW+M, P+CW+M
 *   --consistency=MODEL rc | sc                    (default rc)
 *   --network=KIND      uniform | mesh16|mesh32|mesh64 (default uniform)
 *   --procs=N           processors                 (default 16)
 *   --nodes=N           alias for --procs=
 *   --dir=SPEC          directory sharer-set representation
 *                       (DESIGN.md §16): fullmap (default) |
 *                       limptr<N>B (N pointers, overflow broadcast) |
 *                       limptr<N>E (N pointers, pointer eviction) |
 *                       coarse<K>  (K nodes per presence bit)
 *   --scale=F           problem-size multiplier    (default 1.0)
 *   --seed=N            workload random seed       (default 1)
 *   --slc=BYTES         finite SLC size, 0=infinite (default 0)
 *   --threshold=N       competitive threshold      (default 1)
 *   --no-write-cache    plain competitive update [10]
 *   --flwb=N --slwb=N   write buffer entries
 *   --limit=N           abort the run after N simulated ticks
 *   --sim-threads=N     host worker threads for the parallel DES
 *                       kernel (default 1; max 64). Simulated stats
 *                       are bit-identical at every value — see
 *                       DESIGN.md §15. Forced back to 1 when the
 *                       coherence checker (--check) is installed.
 *   --stats             dump all component statistics
 *   --trace=TAGS        comma-separated debug tags (SLC,Dir) to stderr
 *
 * Flight recorder (see DESIGN.md §12):
 *   --trace-out=PATH    record protocol events and write a Chrome
 *                       trace-event JSON file (load in Perfetto)
 *   --trace-buffer=N    per-node ring capacity in records
 *                       (default 4096; oldest records overwritten)
 *
 * Interval metrics (see DESIGN.md §13):
 *   --sample-interval=N sample every registered metric each N ticks
 *                       (0 = off, the default). Passive: simulated
 *                       stats are bit-identical either way. The run
 *                       summary reports the rows collected. Combined
 *                       with --trace-out, the sampled metrics also
 *                       ride in the Chrome trace as Perfetto counter
 *                       tracks on the same timeline.
 *
 * Stall attribution (see DESIGN.md §17):
 *   --attrib            profile every coherence transaction's causal
 *                       critical path and print the attributed
 *                       (class x segment) matrix, lock home-queue
 *                       split, and hot-block/hot-lock tables after
 *                       the run summary. Observation-only: simulated
 *                       stats (and the --stats dump) are
 *                       bit-identical with it on or off.
 *
 * Stress harness (see DESIGN.md "Stress harness"):
 *   --check             run the coherence invariant checker
 *                       (panics on the first violation)
 *   --chaos             inject network latency jitter + reordering
 *   --chaos-jitter=N    max jitter in ticks         (default 64)
 *   --chaos-seed=N      chaos rng seed              (default 1)
 *   --chaos-no-fifo     do not preserve pairwise FIFO (NOTE: the
 *                       directory protocol relies on it; expect
 *                       checker violations — this is for testing
 *                       the checker, not the protocol)
 *   --watchdog[=N]      stall watchdog, sampling every N ticks
 *                       (default 100000); dumps diagnostics and
 *                       aborts when no progress is made
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "check/checker.hh"
#include "check/watchdog.hh"
#include "core/config.hh"
#include "core/report.hh"
#include "obs/attrib.hh"
#include "obs/trace.hh"
#include "sim/parse.hh"
#include "workloads/workload.hh"

namespace
{

using namespace cpx;

ProtocolConfig
parseProtocol(const std::string &name)
{
    for (const ProtocolConfig &proto : figure2Protocols())
        if (proto.name() == name)
            return proto;
    fatal("unknown protocol '%s' (try BASIC, P, CW, M, P+CW, P+M, "
          "CW+M, P+CW+M)",
          name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace cpx;

    std::string app = "mp3d";
    std::string protocol = "BASIC";
    std::string consistency = "rc";
    std::string network = "uniform";
    double scale = 1.0;
    std::uint64_t seed = 1;
    Tick limit = maxTick;
    bool dump_stats = false;
    bool check = false;
    bool watchdog_enabled = false;
    Tick watchdog_interval = 100'000;
    std::string trace_out;
    std::size_t trace_buffer = TraceSink::defaultRingCapacity;
    Tick sample_interval = 0;
    bool attrib = false;
    unsigned sim_threads = 1;
    MachineParams params;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            std::size_t n = std::strlen(key);
            if (arg.compare(0, n, key) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        if (const char *v = value("--app="))
            app = v;
        else if (const char *v = value("--workload="))
            app = v;
        else if (const char *v = value("--protocol="))
            protocol = v;
        else if (const char *v = value("--consistency="))
            consistency = v;
        else if (const char *v = value("--network="))
            network = v;
        else if (const char *v = value("--procs="))
            params.numProcs = parsePositiveUnsigned(v, "--procs");
        else if (const char *v = value("--nodes="))
            params.numProcs = parsePositiveUnsigned(v, "--nodes");
        else if (const char *v = value("--dir=")) {
            if (!params.directory.parseSpec(v))
                fatal("bad --dir spec '%s' (use fullmap, limptr<N>B, "
                      "limptr<N>E or coarse<K>)",
                      v);
        } else if (const char *v = value("--scale="))
            scale = parsePositiveDouble(v, "--scale");
        else if (const char *v = value("--seed="))
            seed = parseU64(v, "--seed");
        else if (const char *v = value("--slc="))
            params.slcBytes = parseUnsigned(v, "--slc");
        else if (const char *v = value("--threshold="))
            params.competitiveThreshold =
                parsePositiveUnsigned(v, "--threshold");
        else if (arg == "--no-write-cache")
            params.writeCacheEnabled = false;
        else if (const char *v = value("--flwb="))
            params.flwbEntries = parsePositiveUnsigned(v, "--flwb");
        else if (const char *v = value("--slwb="))
            params.slwbEntries = parsePositiveUnsigned(v, "--slwb");
        else if (const char *v = value("--limit="))
            limit = parseU64(v, "--limit");
        else if (const char *v = value("--sim-threads="))
            sim_threads = parsePositiveUnsigned(v, "--sim-threads");
        else if (arg == "--stats")
            dump_stats = true;
        else if (arg == "--check")
            check = true;
        else if (arg == "--chaos")
            params.chaos.enabled = true;
        else if (const char *v = value("--chaos-jitter=")) {
            params.chaos.enabled = true;
            params.chaos.maxJitter = parseU64(v, "--chaos-jitter");
        } else if (const char *v = value("--chaos-seed=")) {
            params.chaos.enabled = true;
            params.chaos.seed = parseU64(v, "--chaos-seed");
        } else if (arg == "--chaos-no-fifo") {
            params.chaos.enabled = true;
            params.chaos.preservePairFifo = false;
        } else if (arg == "--watchdog")
            watchdog_enabled = true;
        else if (const char *v = value("--watchdog=")) {
            watchdog_enabled = true;
            watchdog_interval = parseU64(v, "--watchdog");
        } else if (const char *v = value("--trace-out=")) {
            trace_out = v;
        } else if (const char *v = value("--trace-buffer=")) {
            trace_buffer =
                parsePositiveUnsigned(v, "--trace-buffer");
        } else if (const char *v = value("--sample-interval=")) {
            sample_interval = parseU64(v, "--sample-interval");
        } else if (arg == "--attrib") {
            attrib = true;
        } else if (const char *v = value("--trace=")) {
            std::string tags = v;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                std::size_t comma = tags.find(',', pos);
                Logger::enable(tags.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else {
            fatal("unknown option '%s' (see the header of "
                  "tools/cpxsim.cc)",
                  arg.c_str());
        }
    }

    params.protocol = parseProtocol(protocol);
    params.consistency = consistency == "sc"
                             ? Consistency::SequentialConsistency
                             : Consistency::ReleaseConsistency;
    if (network.rfind("mesh", 0) == 0) {
        params.networkKind = NetworkKind::Mesh;
        if (network.size() > 4)
            params.meshLinkBits = parsePositiveUnsigned(
                network.c_str() + 4, "--network=mesh");
    } else if (network != "uniform") {
        fatal("unknown network '%s' (use uniform or mesh16|32|64)",
              network.c_str());
    }
    params.applyConsistencyDefaults();

    System sys(params, sim_threads);

    // The flight recorder observes the protocol layer without
    // perturbing it: simulated stats are identical with it on or off.
    std::unique_ptr<TraceSink> tracer;
    if (!trace_out.empty()) {
        tracer = std::make_unique<TraceSink>(params.numProcs,
                                             trace_buffer);
        sys.setTracer(tracer.get());
        tracer->installFailureDump();
    }

    // Same discipline as the flight recorder: the attribution sink
    // only observes, so installing it cannot change the run.
    std::unique_ptr<AttribSink> attrib_sink;
    if (attrib) {
        attrib_sink = std::make_unique<AttribSink>(params.numProcs);
        sys.setAttrib(attrib_sink.get());
    }

    std::unique_ptr<CoherenceChecker> checker;
    if (check) {
        CoherenceChecker::Options copts;
        copts.failFast = true;
        checker = std::make_unique<CoherenceChecker>(sys, copts);
    }
    std::unique_ptr<Watchdog> watchdog;
    if (watchdog_enabled) {
        Watchdog::Options wopts;
        wopts.interval = watchdog_interval;
        watchdog = std::make_unique<Watchdog>(sys, wopts);
        watchdog->arm();
    }

    auto workload = makeWorkload(app, scale, seed);
    WorkloadRun run =
        runWorkload(sys, *workload, limit, sample_interval);
    RunResult &r = run.stats;

    if (checker)
        checker->checkQuiescent();

    std::printf("app            %s (scale %.2f, seed %llu)\n",
                app.c_str(), scale,
                static_cast<unsigned long long>(seed));
    std::printf("machine        %u procs, %s, %s, %s network, %s "
                "directory\n",
                params.numProcs, r.protocol.c_str(),
                r.consistency.c_str(), network.c_str(),
                params.directory.name().c_str());
    std::printf("verified       %s\n", run.verified ? "yes" : "NO");
    std::printf("execution time %llu pclocks (%.2f ms at 100 MHz)\n",
                static_cast<unsigned long long>(run.execTime),
                run.execTime / 100000.0);
    std::printf("time breakdown busy %.0f | read %.0f | write %.0f | "
                "acquire %.0f | release %.0f\n",
                r.busy, r.readStall, r.writeStall, r.acquireStall,
                r.releaseStall);
    std::printf("miss rates     cold %.3f%%  coherence %.3f%%\n",
                r.coldMissRate(), r.cohMissRate());
    std::printf("network        %llu bytes in %llu messages\n",
                static_cast<unsigned long long>(r.netBytes),
                static_cast<unsigned long long>(r.netMessages));
    if (params.directory.rep != DirRep::FullMap) {
        std::printf("directory      %llu overflow broadcasts, %llu "
                    "pointer evictions\n",
                    static_cast<unsigned long long>(
                        r.dirOverflowBroadcasts),
                    static_cast<unsigned long long>(
                        r.dirPointerEvictions));
    }
    std::printf("kernel         %u worker(s), %llu slabs, %llu cross "
                "messages, lookahead %llu pclocks\n",
                r.simThreads,
                static_cast<unsigned long long>(r.slabRounds),
                static_cast<unsigned long long>(r.crossMessages),
                static_cast<unsigned long long>(r.lookahead));
    if (checker) {
        std::printf("checker        %llu checks, %llu messages "
                    "observed, 0 violations\n",
                    static_cast<unsigned long long>(
                        checker->checksRun()),
                    static_cast<unsigned long long>(
                        checker->messagesObserved()));
    }

    if (sample_interval > 0) {
        std::printf("timeseries     %zu intervals of %llu pclocks, "
                    "%zu metrics\n",
                    r.timeseries.rows(),
                    static_cast<unsigned long long>(
                        r.timeseries.interval),
                    r.timeseries.names.size());
    }

    if (tracer) {
        std::string error;
        // With --sample-interval the sampled metrics ride along as
        // Perfetto counter tracks on the trace's timeline.
        const MetricTimeSeries *series =
            sample_interval > 0 ? &r.timeseries : nullptr;
        if (!tracer->writeChromeTrace(trace_out, error, series))
            fatal("--trace-out: %s", error.c_str());
        std::printf("trace          %llu records (%llu overwritten) "
                    "-> %s\n",
                    static_cast<unsigned long long>(
                        tracer->recorded()),
                    static_cast<unsigned long long>(
                        tracer->overwritten()),
                    trace_out.c_str());
    }

    if (dump_stats) {
        std::printf("\n---------- statistics dump ----------\n%s",
                    formatSystemStats(sys).c_str());
    }

    // Attribution renders after (never inside) the stats dump so the
    // dump itself stays byte-identical with --attrib on or off.
    if (attrib) {
        std::printf("\n%s",
                    formatAttribution(r.attribution).c_str());
    }
    return run.verified ? 0 : 1;
}
