/**
 * @file
 * Protocol explorer: run one application across every protocol
 * combination, under either consistency model and either network,
 * and print the full comparison — a one-binary version of the
 * paper's whole evaluation for a single workload.
 *
 * Usage: protocol_explorer [app] [rc|sc] [uniform|mesh16|mesh32|mesh64]
 *                          [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;

    std::string app = argc > 1 ? argv[1] : "water";
    std::string model = argc > 2 ? argv[2] : "rc";
    std::string net = argc > 3 ? argv[3] : "uniform";
    double scale = argc > 4 ? std::atof(argv[4]) : 0.5;

    Consistency consistency =
        model == "sc" ? Consistency::SequentialConsistency
                      : Consistency::ReleaseConsistency;
    NetworkKind kind = NetworkKind::Uniform;
    unsigned link_bits = 64;
    if (net.rfind("mesh", 0) == 0) {
        kind = NetworkKind::Mesh;
        if (net.size() > 4)
            link_bits = static_cast<unsigned>(
                std::atoi(net.c_str() + 4));
    }

    std::printf("exploring %s under %s on a %s network\n\n",
                app.c_str(), model == "sc" ? "SC" : "RC",
                net.c_str());

    std::vector<RunResult> results;
    for (const ProtocolConfig &proto : figure2Protocols()) {
        // CW needs release consistency (§3.3): skip under SC.
        if (consistency == Consistency::SequentialConsistency &&
            proto.compUpdate)
            continue;
        MachineParams params =
            makeParams(proto, consistency, kind, link_bits);
        System sys(params);
        auto w = makeWorkload(app, scale);
        WorkloadRun run = runWorkload(sys, *w);
        if (!run.verified)
            std::printf("!! %s failed verification\n",
                        proto.name().c_str());
        results.push_back(run.stats);
    }

    printRelativeExecutionTimes(app + " — execution time", results,
                                results.front());
    printRelativeTraffic(app + " — network traffic", results,
                         results.front());

    std::printf("\nmiss rates and protocol activity:\n");
    std::printf("%-10s %7s %7s %9s %9s %9s\n", "protocol", "cold%",
                "coh%", "ownReqs", "invals", "updates");
    for (const RunResult &r : results) {
        std::printf("%-10s %7.3f %7.3f %9llu %9llu %9llu\n",
                    r.protocol.c_str(), r.coldMissRate(),
                    r.cohMissRate(),
                    static_cast<unsigned long long>(
                        r.ownershipRequests),
                    static_cast<unsigned long long>(
                        r.invalidationsSent),
                    static_cast<unsigned long long>(
                        r.updatesForwarded));
    }
    return 0;
}
