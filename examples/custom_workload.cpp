/**
 * @file
 * Writing your own workload against the public API.
 *
 * This example implements a small parallel histogram from scratch —
 * shared input array, per-bucket locks, lock-protected increments,
 * and a final barrier — and runs it under three protocols. It shows
 * everything a workload author needs:
 *
 *   - SharedHeap for allocating simulated shared memory,
 *   - BackingStore for functional initialization (untimed),
 *   - the Processor API (read32/write32/readDouble/..., compute,
 *     lock/unlock) inside the parallel section,
 *   - SimBarrier / SharedCounter for synchronization,
 *   - System::run + flushFunctionalState + verification.
 */

#include <cstdio>
#include <vector>

#include "core/config.hh"
#include "core/report.hh"
#include "sim/random.hh"
#include "workloads/barrier.hh"

namespace
{

using namespace cpx;

constexpr unsigned numItems = 4096;
constexpr unsigned numBuckets = 32;

struct HistogramApp
{
    Addr input = 0;
    Addr counts = 0;
    std::vector<Addr> bucketLocks;
    SimBarrier barrier;
    std::vector<std::uint32_t> expected;

    void
    setup(System &sys)
    {
        unsigned procs = sys.params().numProcs;
        barrier.init(sys, procs);
        input = sys.heap().allocBlockAligned(numItems * wordBytes);
        counts = sys.heap().allocBlockAligned(numBuckets * wordBytes);
        bucketLocks.resize(numBuckets);
        for (unsigned b = 0; b < numBuckets; ++b) {
            bucketLocks[b] = sys.heap().allocLock();
            sys.store().write32(counts + b * wordBytes, 0);
        }

        Rng rng(77);
        expected.assign(numBuckets, 0);
        for (unsigned i = 0; i < numItems; ++i) {
            auto v = static_cast<std::uint32_t>(rng.next());
            sys.store().write32(input + i * wordBytes, v);
            ++expected[v % numBuckets];
        }
    }

    void
    parallel(Processor &p, unsigned id, unsigned procs)
    {
        unsigned chunk = (numItems + procs - 1) / procs;
        unsigned lo = id * chunk;
        unsigned hi = std::min(numItems, lo + chunk);

        // Local (host-side) partial counts: private data costs only
        // compute() time, like registers/private memory in the paper.
        std::vector<std::uint32_t> local(numBuckets, 0);
        for (unsigned i = lo; i < hi; ++i) {
            std::uint32_t v = p.read32(input + i * wordBytes);
            ++local[v % numBuckets];
            p.compute(4);
        }

        // Fold into the shared histogram under per-bucket locks.
        for (unsigned b = 0; b < numBuckets; ++b) {
            if (local[b] == 0)
                continue;
            p.lock(bucketLocks[b]);
            std::uint32_t c = p.read32(counts + b * wordBytes);
            p.write32(counts + b * wordBytes, c + local[b]);
            p.unlock(bucketLocks[b]);
        }
        barrier.wait(p, id);
    }

    bool
    verify(System &sys) const
    {
        for (unsigned b = 0; b < numBuckets; ++b)
            if (sys.store().read32(counts + b * wordBytes) !=
                expected[b])
                return false;
        return true;
    }
};

} // anonymous namespace

int
main()
{
    using namespace cpx;

    std::printf("custom workload: parallel histogram of %u items "
                "into %u locked buckets\n\n",
                numItems, numBuckets);
    std::printf("%-10s %12s %10s %10s\n", "protocol", "pclocks",
                "verified", "ownReqs");

    for (const ProtocolConfig &proto :
         {ProtocolConfig::basic(), ProtocolConfig::m(),
          ProtocolConfig::pcw()}) {
        MachineParams params = makeParams(proto);
        System sys(params);
        HistogramApp hist;
        hist.setup(sys);
        unsigned procs = params.numProcs;
        Tick t = sys.run([&hist, procs](Processor &p, unsigned id) {
            hist.parallel(p, id, procs);
        });
        sys.flushFunctionalState();
        bool ok = hist.verify(sys);
        RunResult stats = collectStats(sys, t);
        std::printf("%-10s %12llu %10s %10llu\n",
                    proto.name().c_str(),
                    static_cast<unsigned long long>(t),
                    ok ? "yes" : "NO",
                    static_cast<unsigned long long>(
                        stats.ownershipRequests));
    }
    return 0;
}
