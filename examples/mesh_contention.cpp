/**
 * @file
 * Network-contention scenario (the §5.3 story in one binary): run a
 * traffic-hungry combination (P+CW) and a traffic-frugal one (P+M)
 * on wormhole meshes of shrinking link width and watch the P+CW
 * advantage evaporate while P+M holds.
 *
 * Usage: mesh_contention [app] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/config.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;

    std::string app = argc > 1 ? argv[1] : "mp3d";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    std::printf("mesh contention study: %s (scale %.2f)\n\n",
                app.c_str(), scale);
    std::printf("%-8s | %12s %12s %12s | %14s\n", "links", "BASIC",
                "P+CW", "P+M", "flits (BASIC)");

    for (unsigned bits : {64u, 32u, 16u, 8u}) {
        Tick t_basic = 0, t_pcw = 0, t_pm = 0;
        std::uint64_t flits = 0;
        for (const ProtocolConfig &proto :
             {ProtocolConfig::basic(), ProtocolConfig::pcw(),
              ProtocolConfig::pm()}) {
            MachineParams params =
                makeParams(proto, Consistency::ReleaseConsistency,
                           NetworkKind::Mesh, bits);
            System sys(params);
            auto w = makeWorkload(app, scale);
            WorkloadRun run = runWorkload(sys, *w);
            if (!run.verified)
                std::printf("!! %s failed verification\n",
                            proto.name().c_str());
            if (proto.name() == "BASIC") {
                t_basic = run.execTime;
                flits = sys.mesh()->totalFlits();
            } else if (proto.name() == "P+CW") {
                t_pcw = run.execTime;
            } else {
                t_pm = run.execTime;
            }
        }
        std::printf("%2u-bit  | %12llu %11.0f%% %11.0f%% | %14llu\n",
                    bits, static_cast<unsigned long long>(t_basic),
                    100.0 * t_pcw / t_basic, 100.0 * t_pm / t_basic,
                    static_cast<unsigned long long>(flits));
    }
    std::printf("\n(percentages are execution time relative to "
                "BASIC on the same mesh;\n the paper's Table 3 "
                "reports the same ratios for 64/32/16-bit links)\n");
    return 0;
}
