/**
 * @file
 * Quickstart: build a 16-node CC-NUMA machine, run one application
 * under BASIC and under the paper's best combination (P+CW), and
 * print the speedup and its sources.
 *
 * Usage: quickstart [app] [scale]
 *   app   one of mp3d | cholesky | water | lu | ocean (default mp3d)
 *   scale problem-size multiplier (default 0.5 for a fast demo)
 */

#include <cstdio>
#include <cstdlib>

#include "core/config.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace cpx;

    std::string app = argc > 1 ? argv[1] : "mp3d";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    std::printf("cpx quickstart: %s at scale %.2f on 16 nodes\n\n",
                app.c_str(), scale);

    // 1. The baseline: directory-based write-invalidate under
    //    release consistency (the paper's BASIC).
    MachineParams basic_params = makeParams(ProtocolConfig::basic());
    System basic_sys(basic_params);
    auto workload = makeWorkload(app, scale);
    WorkloadRun basic = runWorkload(basic_sys, *workload);
    std::printf("BASIC : %10llu pclocks  (verified: %s)\n",
                static_cast<unsigned long long>(basic.execTime),
                basic.verified ? "yes" : "NO");

    // 2. The paper's star combination: adaptive sequential
    //    prefetching plus competitive update with write caches.
    MachineParams pcw_params = makeParams(ProtocolConfig::pcw());
    System pcw_sys(pcw_params);
    auto workload2 = makeWorkload(app, scale);
    WorkloadRun pcw = runWorkload(pcw_sys, *workload2);
    std::printf("P+CW  : %10llu pclocks  (verified: %s)\n",
                static_cast<unsigned long long>(pcw.execTime),
                pcw.verified ? "yes" : "NO");

    std::printf("\nspeedup: %.2fx\n",
                static_cast<double>(basic.execTime) / pcw.execTime);

    std::printf("\nwhere the time went (avg pclocks per processor):\n");
    std::printf("%-8s %10s %10s %10s %10s\n", "", "busy", "readstall",
                "acquire", "release");
    std::printf("%-8s %10.0f %10.0f %10.0f %10.0f\n", "BASIC",
                basic.stats.busy, basic.stats.readStall,
                basic.stats.acquireStall, basic.stats.releaseStall);
    std::printf("%-8s %10.0f %10.0f %10.0f %10.0f\n", "P+CW",
                pcw.stats.busy, pcw.stats.readStall,
                pcw.stats.acquireStall, pcw.stats.releaseStall);

    std::printf("\nprefetches issued %llu (useful %llu); updates "
                "forwarded %llu; combined writes %llu\n",
                static_cast<unsigned long long>(
                    pcw.stats.prefetchesIssued),
                static_cast<unsigned long long>(
                    pcw.stats.prefetchesUseful),
                static_cast<unsigned long long>(
                    pcw.stats.updatesForwarded),
                static_cast<unsigned long long>(
                    pcw.stats.combinedWrites));
    return basic.verified && pcw.verified ? 0 : 1;
}
