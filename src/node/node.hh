/**
 * @file
 * One processing node (Figure 1 of the paper): processor, FLC, SLC
 * (with FLWB/SLWB modelled inside the processor and SLC controller),
 * directory controller for the locally homed memory, queue-based
 * lock manager, and the local split-transaction bus.
 */

#ifndef CPX_NODE_NODE_HH
#define CPX_NODE_NODE_HH

#include "mem/flc.hh"
#include "node/processor.hh"
#include "proto/directory.hh"
#include "proto/lock_manager.hh"
#include "proto/slc.hh"
#include "sim/resource.hh"

namespace cpx
{

class Node
{
  public:
    Node(NodeId id, Fabric &fabric)
        : flc(fabric.amap(), fabric.params().flcBytes),
          slc(id, fabric, flc),
          dir(id, fabric),
          locks(id, fabric),
          proc(id, fabric, slc, flc)
    {}

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    Flc flc;
    SlcController slc;
    DirectoryController dir;
    LockManager locks;
    Processor proc;
    Resource bus;
};

} // namespace cpx

#endif // CPX_NODE_NODE_HH
