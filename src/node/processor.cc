#include "node/processor.hh"

#include <bit>

#include "obs/attrib.hh"
#include "obs/metrics.hh"
#include "proto/lock_manager.hh"
#include "proto/messenger.hh"
#include "sim/logging.hh"

namespace cpx
{

Processor::Processor(NodeId node, Fabric &f, SlcController &slc_ref,
                     Flc &flc_ref)
    : self(node), fabric(f), params(f.params()), slc(slc_ref),
      flc(flc_ref)
{
}

void
Processor::registerMetrics(MetricRegistry &registry,
                           const std::string &prefix) const
{
    registry.addValue(prefix + ".busy", breakdown.busy);
    registry.addValue(prefix + ".readStall", breakdown.readStall);
    registry.addValue(prefix + ".writeStall", breakdown.writeStall);
    registry.addValue(prefix + ".acquireStall",
                      breakdown.acquireStall);
    registry.addValue(prefix + ".releaseStall",
                      breakdown.releaseStall);
}

// --------------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------------

void
Processor::start(std::function<void()> body)
{
    if (fiber)
        panic("processor %u started twice", self);
    fiber = std::make_unique<Fiber>([this, body = std::move(body)] {
        body();
        done = true;
        finishTick_ = fabric.eq().now();
    });
    fabric.eq().scheduleIn(0, [this] { fiber->resume(); });
}

void
Processor::sleepUntil(Tick when)
{
    fabric.eq().schedule(when, [this] { fiber->resume(); });
    Fiber::yield();
}

void
Processor::suspend()
{
    Fiber::yield();
}

void
Processor::resumeFiber()
{
    fiber->resume();
}

// --------------------------------------------------------------------------
// Reads
// --------------------------------------------------------------------------

void
Processor::timeRead(Addr a)
{
    Tick t0 = fabric.eq().now();
    ++statReads;
    breakdown.busy += 1;

    if (flc.readProbe(a)) {
        sleepUntil(t0 + params.flcHitLatency);
        return;
    }

    // FLC read misses enter the FLWB in FIFO order behind buffered
    // writes (§2); the processor blocks until the data returns.
    readDone = false;
    flwb.push_back(FlwbOp{true, a, 0, 0});
    pumpFlwb();
    if (!readDone) {
        waitingForRead = true;
        suspend();
        waitingForRead = false;
    }
    breakdown.readStall += fabric.eq().now() - t0 - 1;
}

bool
Processor::forwardFromFlwb(Addr a, std::uint32_t &value) const
{
    bool found = false;
    for (const FlwbOp &op : flwb) {  // oldest..newest: last wins
        if (op.isRead)
            continue;
        if (a >= op.addr && a + wordBytes <= op.addr + op.bytes) {
            unsigned shift = 32 * ((a - op.addr) / wordBytes);
            value = static_cast<std::uint32_t>(op.value >> shift);
            found = true;
        }
    }
    return found;
}

std::uint32_t
Processor::localWord(Addr a) const
{
    std::uint32_t v;
    if (forwardFromFlwb(a, v))
        return v;
    return slc.read32Value(a);
}

std::uint32_t
Processor::read32(Addr a)
{
    timeRead(a);
    return localWord(a);
}

std::uint64_t
Processor::read64(Addr a)
{
    timeRead(a);
    std::uint64_t lo = localWord(a);
    std::uint64_t hi = localWord(a + wordBytes);
    return lo | (hi << 32);
}

double
Processor::readDouble(Addr a)
{
    return std::bit_cast<double>(read64(a));
}

// --------------------------------------------------------------------------
// Writes
// --------------------------------------------------------------------------

void
Processor::timeWrite(Addr a, std::uint64_t value, unsigned bytes)
{
    Tick t0 = fabric.eq().now();
    ++statWrites;
    breakdown.busy += 1;
    flc.writeProbe(a);

    if (params.consistency == Consistency::SequentialConsistency) {
        // SC: stall until the write is globally performed.
        writeDone = false;
        slc.writeSC(a, value, bytes, [this] {
            writeDone = true;
            if (waitingForWrite)
                resumeFiber();
        });
        if (!writeDone) {
            waitingForWrite = true;
            suspend();
            waitingForWrite = false;
        }
        breakdown.writeStall += fabric.eq().now() - t0 - 1;
        return;
    }

    // RC: the write retires into the FLWB and the processor moves
    // on, stalling only when the buffer is full.
    if (flwb.size() >= params.flwbEntries) {
        waitingForSlot = true;
        suspend();
        breakdown.writeStall += fabric.eq().now() - t0;
    }
    flwb.push_back(FlwbOp{false, a, value, bytes});
    pumpFlwb();
    sleepUntil(fabric.eq().now() + 1);
}

void
Processor::write32(Addr a, std::uint32_t v)
{
    timeWrite(a, v, wordBytes);
}

void
Processor::write64(Addr a, std::uint64_t v)
{
    timeWrite(a, v, 2 * wordBytes);
}

void
Processor::writeDouble(Addr a, double v)
{
    write64(a, std::bit_cast<std::uint64_t>(v));
}

void
Processor::pumpFlwb()
{
    if (flwbBusy || flwb.empty())
        return;

    FlwbOp op = flwb.front();
    if (op.isRead) {
        // Reads leave the buffer at issue; the processor is blocked
        // on the result either way.
        flwb.pop_front();
        slc.readAccess(op.addr, [this, a = op.addr] {
            fabric.eq().scheduleIn(params.flcFillLatency, [this, a] {
                // Fill the FLC only if the SLC still holds the line:
                // reads served from the write cache (no SLC line)
                // must not fill, and a coherence invalidation may
                // have raced ahead during the fill latency — either
                // would break inclusion and let FLC hits bypass
                // coherence.
                if (slc.findLine(a))
                    flc.fill(a);
                readDone = true;
                if (waitingForRead)
                    resumeFiber();
            });
        });
        return;
    }

    flwbBusy = true;
    slc.writeRC(op.addr, op.value, op.bytes, [this] {
        flwbBusy = false;
        flwb.pop_front();
        if (waitingForSlot) {
            waitingForSlot = false;
            resumeFiber();
        } else if (flwb.empty() && waitingForFlwbEmpty) {
            waitingForFlwbEmpty = false;
            resumeFiber();
        }
        pumpFlwb();
    });
}

// --------------------------------------------------------------------------
// Computation and synchronization
// --------------------------------------------------------------------------

void
Processor::compute(Tick cycles)
{
    if (cycles == 0)
        return;
    breakdown.busy += cycles;
    sleepUntil(fabric.eq().now() + cycles);
}

void
Processor::prefetch(Addr a, bool exclusive)
{
    Tick t0 = fabric.eq().now();
    breakdown.busy += 1;  // the prefetch instruction itself
    slc.softwarePrefetch(a, exclusive);
    sleepUntil(t0 + 1);
}

void
Processor::lock(Addr lock_addr)
{
    Tick t0 = fabric.eq().now();
    ++statLocks;
    breakdown.busy += 1;

    awaitedLock = lock_addr;
    NodeId home = fabric.amap().home(lock_addr);
    sendProtocolMessage(fabric, self, home, msg_bytes::control,
                        [this, lock_addr, home] {
        fabric.locks(home).onAcquire(lock_addr, self);
    }, MsgClass::Sync);
    waitingForLock = true;
    suspend();
    waitingForLock = false;
    breakdown.acquireStall += fabric.eq().now() - t0 - 1;
    if (AttribSink *attrib = fabric.attrib()) {
        AttribRecord rec;
        rec.kind = AttribRecord::Kind::LockDone;
        rec.node = static_cast<std::uint16_t>(self);
        rec.addr = lock_addr;
        rec.t0 = t0;
        rec.t1 = fabric.eq().now();
        attrib->record(self, rec);
    }
}

void
Processor::unlock(Addr lock_addr)
{
    Tick t0 = fabric.eq().now();
    breakdown.busy += 1;
    NodeId home = fabric.amap().home(lock_addr);

    if (params.consistency == Consistency::ReleaseConsistency) {
        // The release fence: previously issued writes — including
        // those still in the FLWB — and, under CW, the write cache
        // contents must complete before the release issues (§2, §3.3).
        waitFlwbEmpty();
        drainDone = false;
        slc.drainWrites([this] {
            drainDone = true;
            if (waitingForDrain)
                resumeFiber();
        });
        if (!drainDone) {
            waitingForDrain = true;
            suspend();
            waitingForDrain = false;
        }
        breakdown.releaseStall += fabric.eq().now() - t0;
        sendProtocolMessage(fabric, self, home, msg_bytes::control,
                            [this, lock_addr, home] {
            fabric.locks(home).onRelease(lock_addr, self);
        }, MsgClass::Sync);
        sleepUntil(fabric.eq().now() + 1);
        return;
    }

    // SC: the release is a globally performed write to the lock.
    sendProtocolMessage(fabric, self, home, msg_bytes::control,
                        [this, lock_addr, home] {
        fabric.locks(home).onRelease(lock_addr, self);
    }, MsgClass::Sync);
    waitingForReleaseAck = true;
    suspend();
    waitingForReleaseAck = false;
    breakdown.releaseStall += fabric.eq().now() - t0 - 1;
}

void
Processor::waitFlwbEmpty()
{
    if (flwb.empty())
        return;
    waitingForFlwbEmpty = true;
    suspend();
}

void
Processor::releaseFence()
{
    if (params.consistency != Consistency::ReleaseConsistency)
        return;  // SC performs every write before proceeding
    Tick t0 = fabric.eq().now();
    waitFlwbEmpty();
    drainDone = false;
    slc.drainWrites([this] {
        drainDone = true;
        if (waitingForDrain)
            resumeFiber();
    });
    if (!drainDone) {
        waitingForDrain = true;
        suspend();
        waitingForDrain = false;
    }
    breakdown.releaseStall += fabric.eq().now() - t0;
}

void
Processor::onLockGrant(Addr lock_addr)
{
    if (!waitingForLock || lock_addr != awaitedLock)
        panic("unexpected lock grant for %llx at node %u",
              static_cast<unsigned long long>(lock_addr), self);
    resumeFiber();
}

void
Processor::onReleaseAck(Addr lock_addr)
{
    (void)lock_addr;
    if (waitingForReleaseAck)
        resumeFiber();
    // Under RC the processor does not wait for release acks.
}

} // namespace cpx
