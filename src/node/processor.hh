/**
 * @file
 * Processor model: a standard blocking-load processor (§2).
 *
 * Workload code runs natively on a cooperative fiber; every *shared*
 * memory access calls into this class, which charges simulated time
 * and suspends the fiber until the access completes. Instructions and
 * private data are charged through compute() — the same modelling
 * contract as the paper's CacheMire methodology (§4: "we simulate all
 * instructions and private data references as if they always hit in
 * the FLC").
 *
 * Consistency models:
 *  - SC: every shared read and write stalls the processor until it is
 *    globally performed (§5.2).
 *  - RC: writes retire into the FLWB/SLWB and overlap with
 *    computation; the processor stalls only on reads, acquires, full
 *    write buffers, and at releases until pending ownership/update
 *    requests complete (§2, §5.1).
 *
 * Execution-time decomposition (busy / read stall / write stall /
 * acquire stall / release stall) is accounted here, matching the bar
 * charts of Figures 2 and 3.
 */

#ifndef CPX_NODE_PROCESSOR_HH
#define CPX_NODE_PROCESSOR_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "fiber/fiber.hh"
#include "mem/flc.hh"
#include "proto/fabric.hh"
#include "proto/slc.hh"
#include "sim/stats.hh"

namespace cpx
{

class MetricRegistry;

class Processor : public ProcessorIface
{
  public:
    Processor(NodeId node, Fabric &fabric, SlcController &slc,
              Flc &flc);

    NodeId id() const { return self; }

    // --- lifecycle -----------------------------------------------------------
    /**
     * Create the fiber and schedule it to begin at the current tick.
     * @p body is the workload's per-processor function.
     */
    void start(std::function<void()> body);

    bool finished() const { return done; }
    Tick finishTick() const { return finishTick_; }

    // --- workload API (fiber context only) ---------------------------------
    std::uint32_t read32(Addr a);
    std::uint64_t read64(Addr a);
    double readDouble(Addr a);

    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    void writeDouble(Addr a, double v);

    /** Charge @p cycles pclocks of local computation. */
    void compute(Tick cycles);

    /**
     * Software prefetch instruction ([9]): non-binding and
     * non-blocking; costs one issue cycle. @p exclusive requests a
     * read-exclusive copy for blocks about to be written.
     */
    void prefetch(Addr a, bool exclusive = false);

    /** Acquire the queue-based lock at @p lock_addr. */
    void lock(Addr lock_addr);

    /**
     * Release the lock at @p lock_addr. Under RC this first drains
     * pending ownership/update requests (the release fence).
     */
    void unlock(Addr lock_addr);

    /**
     * Stand-alone release fence: under RC, stall until all pending
     * ownership/update requests (including write-cache contents)
     * have performed. Labelled release writes — e.g. a barrier's
     * sense flip — must be followed by this, or under CW they could
     * linger in the write cache indefinitely. No-op under SC.
     */
    void releaseFence();

    // --- ProcessorIface -------------------------------------------------------
    void onLockGrant(Addr lock_addr) override;
    void onReleaseAck(Addr lock_addr) override;

    // --- statistics -----------------------------------------------------------
    struct TimeBreakdown
    {
        Tick busy = 0;
        Tick readStall = 0;
        Tick writeStall = 0;
        Tick acquireStall = 0;
        Tick releaseStall = 0;

        Tick
        total() const
        {
            return busy + readStall + writeStall + acquireStall +
                   releaseStall;
        }
    };

    const TimeBreakdown &times() const { return breakdown; }

    /**
     * Register the execution-time decomposition components as
     * interval metrics under @p prefix (e.g. "node3"), so phase
     * reports can show per-interval stall composition (DESIGN.md
     * §13).
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    std::uint64_t sharedReads() const { return statReads.value(); }
    std::uint64_t sharedWrites() const { return statWrites.value(); }
    std::uint64_t sharedAccesses() const {
        return statReads.value() + statWrites.value();
    }
    std::uint64_t lockAcquires() const { return statLocks.value(); }

  private:
    /** Schedule a wake-up at @p when and suspend the fiber. */
    void sleepUntil(Tick when);

    /** Suspend the fiber until resumeFiber() is called. */
    void suspend();
    void resumeFiber();

    /** Timed read of one word-aligned location. */
    void timeRead(Addr a);

    /**
     * Store-to-load forwarding: the newest FLWB write covering the
     * word at @p a, if any. Real hardware forwards from the write
     * buffer (and updates the write-through FLC at issue); without
     * this a processor could miss its own buffered writes.
     */
    bool forwardFromFlwb(Addr a, std::uint32_t &value) const;

    /** Word value as this processor sees it right now. */
    std::uint32_t localWord(Addr a) const;

    /** Timed write; the value travels into the memory system. */
    void timeWrite(Addr a, std::uint64_t value, unsigned bytes);

    /** FLWB pump: issue the head operation to the SLC. */
    void pumpFlwb();

    /**
     * Fiber-side: wait until the FLWB has drained into the SLC.
     * A release is ordered behind earlier writes in the buffers, so
     * the fence must not overtake writes still in the FLWB.
     */
    void waitFlwbEmpty();

    NodeId self;
    Fabric &fabric;
    const MachineParams &params;
    SlcController &slc;
    Flc &flc;

    std::unique_ptr<Fiber> fiber;
    bool done = false;
    Tick finishTick_ = 0;

    struct FlwbOp
    {
        bool isRead;
        Addr addr;
        std::uint64_t value;
        unsigned bytes;
    };

    std::deque<FlwbOp> flwb;
    bool flwbBusy = false;      //!< a write is being retired by the SLC
    bool waitingForSlot = false;
    bool waitingForFlwbEmpty = false;

    Addr awaitedLock = 0;
    bool waitingForLock = false;
    bool waitingForReleaseAck = false;
    bool drainDone = false;
    bool waitingForDrain = false;
    bool readDone = false;
    bool waitingForRead = false;
    bool writeDone = false;
    bool waitingForWrite = false;

    TimeBreakdown breakdown;
    Counter statReads;
    Counter statWrites;
    Counter statLocks;
};

} // namespace cpx

#endif // CPX_NODE_PROCESSOR_HH
