#include "proto/prefetcher.hh"

#include "sim/logging.hh"

namespace cpx
{

constexpr std::array<unsigned, 6> Prefetcher::fullLadder;

Prefetcher::Prefetcher(const MachineParams &p) : params(p)
{
    // Clip the degree ladder at the configured maximum.
    ladderSize = 0;
    for (unsigned d : fullLadder) {
        if (d <= params.prefetchMaxDegree)
            ladder[ladderSize++] = d;
    }
    if (ladderSize == 0)
        fatal("prefetchMaxDegree too small");

    // Start at (or just below) the configured initial degree.
    ladderIdx = 0;
    for (unsigned i = 0; i < ladderSize; ++i)
        if (ladder[i] <= params.prefetchInitialDegree)
            ladderIdx = i;
}

void
Prefetcher::notifyIssued()
{
    ++issuedTotal;
    if (++prefetchCtr == counterModulo) {
        prefetchCtr = 0;
        adapt();
    }
}

void
Prefetcher::notifyUseful()
{
    ++usefulTotal;
    if (usefulCtr < counterModulo)
        ++usefulCtr;
}

void
Prefetcher::notifyDemandMiss(Addr, bool prev_missed)
{
    if (degree() != 0 || !params.prefetchAdaptive)
        return;

    // Degree zero: measure how useful degree-one prefetching would
    // have been, and re-enable when the evidence is strong.
    if (prev_missed)
        ++lookaheadCtr;
    if (++zeroMissCtr == counterModulo) {
        double fraction =
            static_cast<double>(lookaheadCtr) / counterModulo;
        // Bounds check mirrors adapt(): with prefetchMaxDegree == 0
        // the clipped ladder is just {0} and there is no rung to
        // re-enable to.
        if (fraction >= params.prefetchHighMark &&
            ladderIdx + 1 < ladderSize) {
            ++ladderIdx;  // 0 -> 1
            ++raises;
        }
        zeroMissCtr = 0;
        lookaheadCtr = 0;
    }
}

void
Prefetcher::adapt()
{
    if (!params.prefetchAdaptive)
        return;  // fixed-degree mode ([3]'s non-adaptive baseline)
    double fraction = static_cast<double>(usefulCtr) / counterModulo;
    if (fraction >= params.prefetchHighMark &&
        ladderIdx + 1 < ladderSize) {
        ++ladderIdx;
        ++raises;
    } else if (fraction < params.prefetchLowMark && ladderIdx > 0) {
        --ladderIdx;
        ++drops;
    }
    usefulCtr = 0;
}

} // namespace cpx
