/**
 * @file
 * Adaptive sequential prefetch engine (§3.1 of the paper, scheme of
 * Dahlgren, Dubois & Stenström [3]).
 *
 * On each SLC read miss to block b the controller asks the engine for
 * the current degree K and issues non-binding prefetches for
 * b+1 .. b+K. The engine adapts K by measuring prefetching
 * effectiveness with three modulo-16 counters:
 *
 *  - prefetchCtr: prefetched blocks brought into the cache;
 *  - usefulCtr:   prefetched blocks referenced by the processor
 *                 before leaving the cache;
 *  - lookaheadCtr: when K == 0, read misses whose predecessor block
 *                 also missed recently — prefetches that would have
 *                 been useful — used to turn prefetching back on.
 *
 * When prefetchCtr wraps, the useful fraction is compared with the
 * high/low marks and K moves along the ladder {0,1,2,4,8,16}.
 * The two per-line bits ("prefetched, not yet referenced" and the
 * zero-degree detection tag) live in the SLC line; the controller
 * reports events through the notify* methods.
 */

#ifndef CPX_PROTO_PREFETCHER_HH
#define CPX_PROTO_PREFETCHER_HH

#include <array>

#include "proto/params.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cpx
{

class Prefetcher
{
  public:
    explicit Prefetcher(const MachineParams &params);

    /** Current degree of prefetching K. */
    unsigned degree() const { return ladder[ladderIdx]; }

    /** A prefetch for some block was issued to the memory system. */
    void notifyIssued();

    /**
     * A prefetched block was referenced by the processor before
     * being invalidated or evicted (its "prefetched" line bit was
     * still set), or a demand read merged with an in-flight prefetch.
     */
    void notifyUseful();

    /**
     * A demand read miss occurred (after any in-flight merge check).
     * @param block_addr   block-aligned miss address
     * @param prev_missed  true iff the immediately preceding block
     *                     carries the zero-degree detection tag
     */
    void notifyDemandMiss(Addr block_addr, bool prev_missed);

    // --- statistics ------------------------------------------------------
    std::uint64_t issued() const { return issuedTotal.value(); }
    std::uint64_t useful() const { return usefulTotal.value(); }
    std::uint64_t degreeRaises() const { return raises.value(); }
    std::uint64_t degreeDrops() const { return drops.value(); }

  private:
    void adapt();

    static constexpr unsigned counterModulo = 16;
    static constexpr std::array<unsigned, 6> fullLadder{0, 1, 2, 4,
                                                        8, 16};

    const MachineParams &params;
    std::array<unsigned, 6> ladder;  //!< clipped at prefetchMaxDegree
    unsigned ladderSize;
    unsigned ladderIdx;

    unsigned prefetchCtr = 0;   //!< modulo-16
    unsigned usefulCtr = 0;     //!< modulo-16 window companion
    unsigned lookaheadCtr = 0;  //!< zero-degree usefulness
    unsigned zeroMissCtr = 0;   //!< zero-degree window

    Counter issuedTotal;
    Counter usefulTotal;
    Counter raises;
    Counter drops;
};

} // namespace cpx

#endif // CPX_PROTO_PREFETCHER_HH
