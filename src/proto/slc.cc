#include "proto/slc.hh"

#include "mem/backing_store.hh"
#include "obs/attrib.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "proto/directory.hh"
#include "proto/messenger.hh"
#include "sim/logging.hh"

namespace cpx
{

namespace
{

/// Short tag for per-access debug tracing (Logger::enable("SLC")).
constexpr const char *traceTag = "SLC";

} // anonymous namespace

namespace
{

/// Window of recent demand misses used for zero-degree prefetch
/// usefulness detection (the hardware analog is the second per-line
/// bit of [3]; a small window is equivalent with an infinite SLC).
constexpr std::size_t recentMissWindow = 16;

} // anonymous namespace

SlcController::SlcController(NodeId node, Fabric &f, Flc &flc_ref)
    : self(node), fabric(f), params(f.params()), flc(flc_ref),
      tags(f.params().blockBytes,
           f.params().slcBytes
               ? f.params().slcBytes / f.params().blockBytes
               : 0),
      prefetcher(f.params()),
      writeCache(f.amap(), f.params().writeCacheBlocks)
{
}

// --------------------------------------------------------------------------
// Small helpers
// --------------------------------------------------------------------------

void
SlcController::notifyObserver(Addr block)
{
    if (ProtocolObserver *obs = fabric.observer())
        obs->onSlcTransition(self, block);
    if (TraceSink *t = fabric.tracer()) {
        const Line *line = tags.find(block);
        std::uint64_t state =
            !line ? 0 : line->state == LineState::Dirty ? 2 : 1;
        t->record(self, TraceKind::SlcState, block, state);
    }
}

void
SlcController::withPort(Callback fn)
{
    Tick start = port.reserve(fabric.eq().now(),
                              params.slcAccessLatency);
    fabric.eq().schedule(start + params.slcAccessLatency,
                         std::move(fn));
}

void
SlcController::acquireSlwb(Callback fn)
{
    if (slwbUsed < params.slwbEntries)
        fn();
    else
        slwbWaiters.push_back(std::move(fn));
}

void
SlcController::releaseSlwb()
{
    if (slwbUsed == 0)
        panic("SLWB underflow at node %u", self);
    --slwbUsed;
    if (!slwbWaiters.empty() && slwbUsed < params.slwbEntries) {
        Callback fn = std::move(slwbWaiters.front());
        slwbWaiters.pop_front();
        fn();
    }
}

SlcController::Txn &
SlcController::createTxn(Addr block, Txn::Kind kind)
{
    // Txn::Kind is recorded verbatim in TxnStart/TxnEnd aux fields;
    // the two enums must stay in lockstep.
    static_assert(
        static_cast<unsigned>(Txn::Kind::Read) ==
                static_cast<unsigned>(TraceTxn::Read) &&
            static_cast<unsigned>(Txn::Kind::Prefetch) ==
                static_cast<unsigned>(TraceTxn::Prefetch) &&
            static_cast<unsigned>(Txn::Kind::WriteMiss) ==
                static_cast<unsigned>(TraceTxn::WriteMiss) &&
            static_cast<unsigned>(Txn::Kind::Upgrade) ==
                static_cast<unsigned>(TraceTxn::Upgrade) &&
            static_cast<unsigned>(Txn::Kind::Update) ==
                static_cast<unsigned>(TraceTxn::Update),
        "Txn::Kind and TraceTxn diverged");

    auto [it, inserted] = txns.try_emplace(block);
    if (!inserted)
        panic("duplicate transaction for block %llx at node %u",
              static_cast<unsigned long long>(block), self);
    it->second.kind = kind;
    it->second.start = fabric.eq().now();
    ++slwbUsed;
    CPX_RECORD(fabric.tracer(), self, TraceKind::TxnStart, block, 0,
               static_cast<std::uint32_t>(kind));
    return it->second;
}

void
SlcController::sendToHome(Addr block, unsigned payload,
                          std::function<void(DirectoryController &)> fn,
                          MsgClass klass)
{
    NodeId home = fabric.amap().home(block);
    sendProtocolMessage(fabric, self, home, payload,
                        [this, home, fn = std::move(fn)] {
        fn(fabric.dir(home));
    }, klass);
}

void
SlcController::writeLineToStore(Addr block, const Line &line)
{
    BackingStore &store = fabric.store();
    for (unsigned w = 0; w < line.data.size(); ++w)
        store.write32(block + Addr(w) * wordBytes, line.data[w]);
}

void
SlcController::removeLine(Addr block, RemovalCause cause)
{
    classifier.noteRemoval(block, cause);
    tags.erase(block);
    flc.invalidate(block);
    notifyObserver(block);
}

void
SlcController::evictForFill(Addr block)
{
    auto [victim_addr, victim] = tags.victimFor(block);
    if (!victim)
        return;
    if (victim->state == LineState::Dirty) {
        // The data leaves with the write-back message; memory is
        // updated at injection (messages to one home arrive in send
        // order, so a later, newer write-back cannot be overwritten).
        writeLineToStore(victim_addr, *victim);
        // Write-backs are fire-and-forget: the home drops stale ones
        // (see DirectoryController::processWriteBack).
        NodeId from = self;
        sendToHome(victim_addr, msg_bytes::block(params.blockBytes),
                   [victim_addr, from](DirectoryController &dir) {
            dir.onWriteBack(victim_addr, from);
        }, MsgClass::Data);
    }
    removeLine(victim_addr, RemovalCause::Replacement);
}

void
SlcController::maybeFinishRelease()
{
    if (writeClassOutstanding != 0 || releaseWaiters.empty())
        return;
    std::vector<Callback> waiters = std::move(releaseWaiters);
    releaseWaiters.clear();
    for (Callback &cb : waiters)
        cb();
}

std::vector<SlcController::TxnDump>
SlcController::pendingTransactionDump() const
{
    auto kind_name = [](Txn::Kind k) {
        switch (k) {
          case Txn::Kind::Read:      return "Read";
          case Txn::Kind::Prefetch:  return "Prefetch";
          case Txn::Kind::WriteMiss: return "WriteMiss";
          case Txn::Kind::Upgrade:   return "Upgrade";
          case Txn::Kind::Update:    return "Update";
        }
        return "?";
    };
    std::vector<TxnDump> dumps;
    dumps.reserve(txns.size());
    for (const auto &[block, txn] : txns)
        dumps.push_back({block, kind_name(txn.kind), txn.start});
    return dumps;
}

std::uint64_t
SlcController::totalReadMisses() const
{
    return readMissKind[0].value() + readMissKind[1].value() +
           readMissKind[2].value();
}

void
SlcController::registerMetrics(MetricRegistry &registry,
                               const std::string &prefix) const
{
    static const char *const missName[3] = {"cold", "coherence",
                                            "replacement"};
    for (unsigned k = 0; k < 3; ++k) {
        registry.addCounter(prefix + ".readMiss." + missName[k],
                            readMissKind[k]);
        registry.addCounter(prefix + ".writeMiss." + missName[k],
                            writeMissKind[k]);
    }
    registry.add(prefix + ".prefetch.issued",
                 [this] { return prefetcher.issued(); });
    registry.add(prefix + ".prefetch.useful",
                 [this] { return prefetcher.useful(); });
    registry.addCounter(prefix + ".prefetch.dropped",
                        statPrefetchDrops);
    registry.addCounter(prefix + ".writeCache.inserts",
                        writeCache.insertCount());
    registry.addCounter(prefix + ".writeCache.combines",
                        writeCache.combinedWrites());
    registry.addCounter(prefix + ".writeCache.flushes",
                        writeCache.flushCount());
}

// --------------------------------------------------------------------------
// Value resolution (data-carrying functional model)
// --------------------------------------------------------------------------

std::uint32_t
SlcController::read32Value(Addr a) const
{
    if (params.protocol.compUpdate) {
        std::uint32_t v;
        if (params.writeCacheEnabled && writeCache.readWord(a, v))
            return v;
        auto pit = pendingFlushes.find(tags.align(a));
        if (pit != pendingFlushes.end()) {
            unsigned w = fabric.amap().wordInBlock(a);
            for (auto r = pit->second.rbegin();
                 r != pit->second.rend(); ++r)
                if (r->dirtyMask & (1u << w))
                    return r->words[w];
        }
    }
    if (const Line *line = tags.find(a))
        return line->data[fabric.amap().wordInBlock(a)];
    return fabric.store().read32(a);
}

std::uint64_t
SlcController::read64Value(Addr a) const
{
    std::uint64_t lo = read32Value(a);
    std::uint64_t hi = read32Value(a + wordBytes);
    return lo | (hi << 32);
}

// --------------------------------------------------------------------------
// Processor-side: reads
// --------------------------------------------------------------------------

void
SlcController::readAccess(Addr a, Callback done)
{
    withPort([this, a, done = std::move(done)]() mutable {
        Addr block = tags.align(a);
        Line *line = tags.find(a);
        CPX_TRACE(traceTag, "n%u read a=%llx %s", self,
                  (unsigned long long)a,
                  line ? "hit" : (txns.count(block) ? "merge"
                                                    : "miss"));
        if (line) {
            ++statReadHits;
            line->compCounter = params.competitiveThreshold;
            if (line->prefetched) {
                line->prefetched = false;
                prefetcher.notifyUseful();
            }
            done();
            return;
        }

        if (params.protocol.compUpdate && params.writeCacheEnabled &&
            writeCache.contains(a)) {
            ++statWcReadHits;
            done();
            return;
        }

        auto it = txns.find(block);
        if (it != txns.end()) {
            Txn &txn = it->second;
            if (txn.kind == Txn::Kind::Update) {
                // An outstanding combined-write flush blocks a new
                // fetch of the same block; retry once it completes.
                txn.continuations.push_back(
                    [this, a, done = std::move(done)]() mutable {
                    readAccess(a, std::move(done));
                });
                return;
            }
            // Merge with the in-flight fetch. A demand read merging
            // with a prefetch counts as a useful prefetch [3] and as
            // a (latency-reduced) miss in the statistics.
            if (txn.kind == Txn::Kind::Prefetch && !txn.demandJoined) {
                txn.demandJoined = true;
                txn.start = fabric.eq().now();
                prefetcher.notifyUseful();
            }
            MissKind k = classifier.classify(block);
            ++readMissKind[static_cast<unsigned>(k)];
            txn.continuations.push_back(std::move(done));
            return;
        }

        // True demand miss.
        MissKind k = classifier.classify(block);
        ++readMissKind[static_cast<unsigned>(k)];

        bool prev_missed = false;
        for (Addr m : recentMisses)
            if (m + params.blockBytes == block)
                prev_missed = true;
        prefetcher.notifyDemandMiss(block, prev_missed);
        recentMisses.push_back(block);
        if (recentMisses.size() > recentMissWindow)
            recentMisses.pop_front();

        Txn &txn = createTxn(block, Txn::Kind::Read);
        txn.continuations.push_back(std::move(done));
        NodeId from = self;
        sendToHome(block, msg_bytes::control,
                   [block, from](DirectoryController &dir) {
            dir.onReadReq(block, from, false);
        });

        if (params.protocol.prefetch)
            issuePrefetches(block);
    });
}

void
SlcController::issuePrefetches(Addr demand_block)
{
    unsigned degree = prefetcher.degree();
    for (unsigned i = 1; i <= degree; ++i) {
        Addr pblock = demand_block + i * params.blockBytes;
        if (tags.find(pblock))
            continue;
        if (txns.count(pblock))
            continue;
        if (params.protocol.compUpdate && params.writeCacheEnabled &&
            (writeCache.contains(pblock) ||
             pendingFlushes.count(pblock)))
            continue;
        if (slwbUsed >= params.slwbEntries) {
            // No SLWB room: drop this and all remaining prefetches.
            ++statPrefetchDrops;
            CPX_RECORD(fabric.tracer(), self, TraceKind::PrefetchDrop,
                       pblock);
            break;
        }
        createTxn(pblock, Txn::Kind::Prefetch);
        prefetcher.notifyIssued();
        CPX_RECORD(fabric.tracer(), self, TraceKind::PrefetchIssue,
                   pblock);
        NodeId from = self;
        sendToHome(pblock, msg_bytes::control,
                   [pblock, from](DirectoryController &dir) {
            dir.onReadReq(pblock, from, true);
        });
    }
}

// --------------------------------------------------------------------------
// Processor-side: writes
// --------------------------------------------------------------------------

void
SlcController::writeRC(Addr a, std::uint64_t value, unsigned bytes,
                       Callback retired)
{
    handleWrite(a, value, bytes, false, std::move(retired));
}

void
SlcController::writeSC(Addr a, std::uint64_t value, unsigned bytes,
                       Callback performed)
{
    handleWrite(a, value, bytes, true, std::move(performed));
}

void
SlcController::handleWrite(Addr a, std::uint64_t value, unsigned bytes,
                           bool sc, Callback done)
{
    if (bytes != wordBytes && bytes != 2 * wordBytes)
        panic("unsupported write size %u", bytes);
    if (fabric.amap().blockAddr(a) !=
        fabric.amap().blockAddr(a + bytes - 1))
        panic("write straddles a block boundary at %llx",
              static_cast<unsigned long long>(a));

    withPort([this, a, value, bytes, sc,
              done = std::move(done)]() mutable {
        Addr block = tags.align(a);
        unsigned first_word = fabric.amap().wordInBlock(a);
        unsigned nwords = bytes / wordBytes;
        auto word_value = [value](unsigned i) {
            return static_cast<std::uint32_t>(value >> (32 * i));
        };
        auto apply_to_line = [&](Line *line) {
            for (unsigned i = 0; i < nwords; ++i)
                line->data[first_word + i] = word_value(i);
        };
        auto record_pending = [&](Txn &txn) {
            for (unsigned i = 0; i < nwords; ++i)
                txn.pendingWrites.emplace_back(first_word + i,
                                               word_value(i));
        };

        Line *line = tags.find(a);
        CPX_TRACE(traceTag,
                  "n%u write a=%llx v=%llx line=%s txn=%d", self,
                  (unsigned long long)a, (unsigned long long)value,
                  !line ? "none"
                        : line->state == LineState::Dirty ? "dirty"
                                                          : "shared",
                  (int)txns.count(block));

        if (line && line->state == LineState::Dirty) {
            apply_to_line(line);
            line->locallyModified = true;
            line->compCounter = params.competitiveThreshold;
            notifyObserver(block);
            done();
            return;
        }

        if (params.protocol.compUpdate) {
            // CW: a resident SHARED copy is updated in place (§3.3).
            if (line) {
                apply_to_line(line);
                line->locallyModified = true;
                line->compCounter = params.competitiveThreshold;
            }
            if (params.writeCacheEnabled) {
                // The write lands in the write cache; no global
                // action until the block is victimized or released.
                for (unsigned i = 0; i < nwords; ++i) {
                    Addr wa = a + Addr(i) * wordBytes;
                    CPX_RECORD(fabric.tracer(), self,
                               writeCache.contains(wa)
                                   ? TraceKind::WcCombine
                                   : TraceKind::WcInsert,
                               block);
                    WriteCacheFlush victim;
                    if (writeCache.writeWord(wa, word_value(i),
                                             victim)) {
                        startUpdateFlush(victim);
                    }
                }
            } else {
                // Plain competitive update [10]: the write's words
                // are sent to the home immediately, uncombined.
                WriteCacheFlush rec;
                rec.blockAddr = block;
                rec.words.assign(fabric.amap().wordsPerBlock(), 0);
                unsigned first_word = fabric.amap().wordInBlock(a);
                for (unsigned i = 0; i < nwords; ++i) {
                    rec.dirtyMask |= 1u << (first_word + i);
                    rec.words[first_word + i] = word_value(i);
                }
                startUpdateFlush(rec);
            }
            notifyObserver(block);
            done();
            return;
        }

        auto it = txns.find(block);
        if (it != txns.end()) {
            Txn &txn = it->second;
            switch (txn.kind) {
              case Txn::Kind::Read:
              case Txn::Kind::Prefetch:
                if (!txn.wantsWrite) {
                    txn.wantsWrite = true;
                    ++writeClassOutstanding;
                }
                if (txn.kind == Txn::Kind::Prefetch &&
                    !txn.demandJoined) {
                    txn.demandJoined = true;
                    prefetcher.notifyUseful();
                }
                record_pending(txn);
                if (sc)
                    txn.writeWaiters.push_back(std::move(done));
                else
                    done();
                return;
              case Txn::Kind::WriteMiss:
              case Txn::Kind::Upgrade:
                record_pending(txn);
                if (line)
                    apply_to_line(line);
                if (sc)
                    txn.writeWaiters.push_back(std::move(done));
                else
                    done();
                return;
              case Txn::Kind::Update:
                panic("update transaction outside CW mode");
            }
        }

        // Both remaining paths create a new transaction and need a
        // free SLWB entry. If none is available, the write waits in
        // the FLWB and the whole decision is retried once an entry
        // frees — protocol state may have changed by then (the line
        // may be gone, or a demand read may have started a
        // transaction for this block to merge with), so the retry
        // re-enters handleWrite from scratch.
        if (slwbUsed >= params.slwbEntries) {
            slwbWaiters.push_back(
                [this, a, value, bytes, sc,
                 done = std::move(done)]() mutable {
                handleWrite(a, value, bytes, sc, std::move(done));
            });
            return;
        }

        if (line) {
            // SHARED: the copy is updated in place and an ownership
            // request enters the SLWB (§2).
            apply_to_line(line);
            line->locallyModified = true;
            ++writeClassOutstanding;
            Txn &txn = createTxn(block, Txn::Kind::Upgrade);
            record_pending(txn);
            if (sc)
                txn.writeWaiters.push_back(std::move(done));
            NodeId from = self;
            sendToHome(block, msg_bytes::control,
                       [block, from](DirectoryController &dir) {
                dir.onUpgradeReq(block, from);
            });
            if (!sc)
                done();
            return;
        }

        // Write miss: fetch the block with ownership (read-exclusive).
        MissKind k = classifier.classify(block);
        ++writeMissKind[static_cast<unsigned>(k)];
        ++writeClassOutstanding;
        Txn &txn = createTxn(block, Txn::Kind::WriteMiss);
        record_pending(txn);
        if (sc)
            txn.writeWaiters.push_back(std::move(done));
        NodeId from = self;
        sendToHome(block, msg_bytes::control,
                   [block, from](DirectoryController &dir) {
            dir.onWriteReq(block, from);
        });
        if (!sc)
            done();
    });
}

void
SlcController::startUpdateFlush(const WriteCacheFlush &rec)
{
    ++writeClassOutstanding;
    Addr block = rec.blockAddr;
    auto it = txns.find(block);
    if (it != txns.end()) {
        // An earlier transaction for the block is still in flight
        // (e.g. a previous flush or a demand fetch): chain behind it.
        // The record is parked in pendingFlushes — not captured in
        // the closure — so fills and reads of the block keep seeing
        // its words while it waits.
        pendingFlushes[block].push_back(rec);
        it->second.continuations.push_back(
            [this, block] { retryPendingFlush(block); });
        return;
    }
    if (slwbUsed >= params.slwbEntries) {
        // Retry from scratch when an entry frees: a transaction for
        // this block may have appeared in the meantime.
        pendingFlushes[block].push_back(rec);
        slwbWaiters.push_back(
            [this, block] { retryPendingFlush(block); });
        return;
    }
    createTxn(rec.blockAddr, Txn::Kind::Update);
    CPX_RECORD(fabric.tracer(), self, TraceKind::WcFlush,
               rec.blockAddr, rec.dirtyMask);
    NodeId from = self;
    std::uint32_t mask = rec.dirtyMask;
    std::vector<std::uint32_t> words = rec.words;
    sendToHome(block, msg_bytes::update(rec.dirtyWords()),
               [block, from, mask,
                words = std::move(words)](DirectoryController &dir) {
        dir.onUpdateReq(block, from, mask, words);
    });
}

void
SlcController::retryPendingFlush(Addr block)
{
    auto it = pendingFlushes.find(block);
    if (it == pendingFlushes.end())
        return;  // already re-issued by an earlier wakeup
    WriteCacheFlush rec = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        pendingFlushes.erase(it);
    --writeClassOutstanding;  // re-counted by startUpdateFlush
    startUpdateFlush(rec);
}

void
SlcController::softwarePrefetch(Addr a, bool exclusive)
{
    withPort([this, a, exclusive] {
        Addr block = tags.align(a);
        Line *line = tags.find(a);
        if (line) {
            // Already resident. An exclusive prefetch of a SHARED
            // copy could upgrade, but a wrong guess would invalidate
            // other readers: stay conservative, like [9]'s compiler.
            return;
        }
        if (txns.count(block))
            return;  // already being fetched
        if (params.protocol.compUpdate && params.writeCacheEnabled &&
            (writeCache.contains(a) || pendingFlushes.count(block)))
            return;
        if (slwbUsed >= params.slwbEntries) {
            ++statPrefetchDrops;
            CPX_RECORD(fabric.tracer(), self, TraceKind::PrefetchDrop,
                       block);
            return;  // prefetches are droppable
        }

        // Software prefetches share the "prefetched, unreferenced"
        // line bit with the hardware engine (a demand hit will also
        // credit the hardware usefulness counter — harmless unless
        // both schemes run together, which §6 argues against).
        createTxn(block, Txn::Kind::Prefetch);
        ++statSwPrefetches;
        NodeId from = self;
        if (exclusive) {
            sendToHome(block, msg_bytes::control,
                       [block, from](DirectoryController &dir) {
                dir.onWriteReq(block, from);
            });
        } else {
            sendToHome(block, msg_bytes::control,
                       [block, from](DirectoryController &dir) {
                dir.onReadReq(block, from, true);
            });
        }
    });
}

void
SlcController::drainWrites(Callback done)
{
    if (params.protocol.compUpdate && params.writeCacheEnabled) {
        for (const WriteCacheFlush &rec : writeCache.flushAll())
            startUpdateFlush(rec);
    }
    if (writeClassOutstanding == 0) {
        done();
        return;
    }
    releaseWaiters.push_back(std::move(done));
}

// --------------------------------------------------------------------------
// Network-side: replies
// --------------------------------------------------------------------------

SlcController::Line *
SlcController::installLine(Addr block, const Txn &txn, ReplyKind kind)
{
    evictForFill(block);
    Line *line = tags.insert(block);
    bool exclusive = kind == ReplyKind::DataExclusive;
    line->state = exclusive ? LineState::Dirty : LineState::Shared;
    line->compCounter = params.competitiveThreshold;
    line->prefetched =
        txn.kind == Txn::Kind::Prefetch && !txn.demandJoined;
    // A migratory grant (exclusive data for a read) arrives
    // unmodified; a write-miss grant is modified by definition.
    line->locallyModified = txn.kind == Txn::Kind::WriteMiss ||
                            txn.kind == Txn::Kind::Upgrade;

    // Fill the data from memory (the home replied after bringing
    // memory up to date), then merge any writes that arrived while
    // the fetch was outstanding.
    line->data.resize(fabric.amap().wordsPerBlock());
    BackingStore &store = fabric.store();
    for (unsigned w = 0; w < line->data.size(); ++w)
        line->data[w] = store.read32(block + Addr(w) * wordBytes);
    for (const auto &[word, value] : txn.pendingWrites)
        line->data[word] = value;

    if (params.protocol.compUpdate) {
        // A flush record parked between write cache and Update
        // transaction (SLWB pressure) still holds words the home has
        // not seen: they must land in the fill, or an exclusive
        // grant would install stale memory data and the node's own
        // eventual update — which the home never sends back to the
        // writer — would leave this copy stale forever. The record
        // stays parked: home and peers still need the update.
        auto pit = pendingFlushes.find(block);
        if (pit != pendingFlushes.end()) {
            for (const WriteCacheFlush &rec : pit->second) {
                for (unsigned w = 0; w < line->data.size(); ++w) {
                    if (rec.dirtyMask & (1u << w)) {
                        line->data[w] = rec.words[w];
                        line->locallyModified = true;
                    }
                }
            }
        }
        // Words buffered in the write cache while the block was
        // absent must be visible in the installed line: once the
        // write-cache entry flushes to a block we hold exclusively
        // (a migratory grant), the home does not propagate the
        // update back to us — the line is authoritative and has to
        // carry the words itself.
        std::uint32_t v;
        for (unsigned w = 0; w < line->data.size(); ++w) {
            if (writeCache.readWord(block + Addr(w) * wordBytes, v)) {
                line->data[w] = v;
                line->locallyModified = true;
            }
        }
        if (line->state == LineState::Dirty) {
            // Exclusive (migratory) grant: later writes go straight
            // to the DIRTY line, so a lingering write-cache entry
            // would go stale — the line has absorbed its words and
            // write-back semantics now carry them.
            writeCache.drop(block);
        }
    }
    return line;
}

void
SlcController::onReply(Addr block, ReplyKind kind)
{
    // The reply's delivery tick, before the SLC port wait: the gap
    // to completion is the attribution model's "fill" segment.
    const Tick delivered = fabric.eq().now();
    withPort([this, block, kind, delivered] {
        auto it = txns.find(block);
        if (it == txns.end())
            panic("reply for unknown transaction, block %llx node %u",
                  static_cast<unsigned long long>(block), self);
        Txn txn = std::move(it->second);
        txns.erase(it);
        CPX_TRACE(traceTag, "n%u reply blk=%llx kind=%d txnkind=%d",
                  self, (unsigned long long)block, (int)kind,
                  (int)txn.kind);

        // Transaction latency: histogram sampling and trace records
        // are observation-only — neither perturbs event timing, so
        // simulated stats stay bit-identical with tracing off or on.
        const Tick lat = fabric.eq().now() - txn.start;
        CPX_RECORD(fabric.tracer(), self, TraceKind::TxnEnd, block,
                   lat, static_cast<std::uint32_t>(txn.kind));
        if (AttribSink *attrib = fabric.attrib()) {
            // Txn::Kind codes double as AttribClass rows (the
            // WriteBack row is home-only and has no Txn::Kind).
            static_assert(
                static_cast<unsigned>(Txn::Kind::Read) ==
                        static_cast<unsigned>(AttribClass::Read) &&
                    static_cast<unsigned>(Txn::Kind::Update) ==
                        static_cast<unsigned>(AttribClass::Update),
                "Txn::Kind and AttribClass diverged");
            AttribRecord rec;
            rec.kind = AttribRecord::Kind::TxnDone;
            rec.node = static_cast<std::uint16_t>(self);
            rec.aux = static_cast<std::uint32_t>(txn.kind);
            rec.addr = block;
            rec.t0 = txn.start;
            rec.t1 = delivered;
            rec.t2 = fabric.eq().now();
            attrib->record(self, rec);
        }
        if (txn.kind == Txn::Kind::WriteMiss ||
            txn.kind == Txn::Kind::Upgrade) {
            latOwnership.sample(lat);
        } else if (txn.kind == Txn::Kind::Prefetch &&
                   !txn.demandJoined) {
            latPrefetchFill.sample(lat);
        }

        switch (kind) {
          case ReplyKind::DataShared:
          case ReplyKind::DataExclusive: {
            Line *line = installLine(block, txn, kind);
            bool demand = txn.kind == Txn::Kind::Read ||
                          (txn.kind == Txn::Kind::Prefetch &&
                           txn.demandJoined);
            if (demand) {
                missLatency.sample(static_cast<double>(lat));
                latReadMiss.sample(lat);
            }
            if (txn.kind == Txn::Kind::Prefetch && !txn.demandJoined)
                CPX_RECORD(fabric.tracer(), self,
                           TraceKind::PrefetchFill, block, lat);
            if (txn.kind == Txn::Kind::WriteMiss ||
                txn.kind == Txn::Kind::Upgrade) {
                for (Callback &cb : txn.writeWaiters)
                    cb();
            } else if (txn.wantsWrite) {
                if (kind == ReplyKind::DataExclusive) {
                    line->locallyModified = true;
                    --writeClassOutstanding;
                    for (Callback &cb : txn.writeWaiters)
                        cb();
                } else {
                    // Granted SHARED but a write merged in: the
                    // ownership request follows immediately (already
                    // counted in writeClassOutstanding). The merged
                    // write values travel along — if this line is
                    // invalidated before the upgrade completes, they
                    // must survive into the reinstall.
                    startPreCountedUpgrade(block,
                                           std::move(txn.writeWaiters),
                                           std::move(txn.pendingWrites));
                }
            }
            break;
          }

          case ReplyKind::UpgradeAck: {
            Line *line = tags.find(block);
            if (!line) {
                // The line was silently displaced while the upgrade
                // was in flight (finite SLC); reinstall it — the
                // home guarantees we were still in the presence
                // vector, so the grant is valid.
                line = installLine(block, txn, ReplyKind::DataExclusive);
            }
            line->state = LineState::Dirty;
            line->locallyModified = true;
            for (const auto &[word, value] : txn.pendingWrites)
                line->data[word] = value;
            for (Callback &cb : txn.writeWaiters)
                cb();
            break;
          }

          case ReplyKind::UpdateDone:
            break;
        }

        notifyObserver(block);
        releaseSlwb();
        if (isWriteClass(txn.kind))
            --writeClassOutstanding;
        maybeFinishRelease();

        for (Callback &cb : txn.continuations)
            cb();
    });
}

void
SlcController::startPreCountedUpgrade(
    Addr block, std::vector<Callback> waiters,
    std::vector<std::pair<unsigned, std::uint32_t>> pending_writes)
{
    // A transaction for the block may exist (this call can run
    // deferred, after SLWB pressure): merge the write obligation
    // instead of creating a duplicate.
    auto it = txns.find(block);
    if (it != txns.end()) {
        Txn &txn = it->second;
        for (auto &pw : pending_writes)
            txn.pendingWrites.push_back(pw);
        for (Callback &cb : waiters)
            txn.writeWaiters.push_back(std::move(cb));
        if (txn.kind == Txn::Kind::Read ||
            txn.kind == Txn::Kind::Prefetch) {
            if (txn.wantsWrite) {
                // Already counted once: drop our duplicate count.
                --writeClassOutstanding;
                maybeFinishRelease();
            } else {
                txn.wantsWrite = true;
            }
        } else {
            // A write-class transaction already carries its own
            // count; drop ours.
            --writeClassOutstanding;
            maybeFinishRelease();
        }
        return;
    }

    if (slwbUsed >= params.slwbEntries) {
        // The installed line may already carry the merged write
        // values; record the obligation so the block keeps reading
        // as mid-transaction (hasPendingTransaction) while we wait.
        ++deferredUpgrades[block];
        slwbWaiters.push_back(
            [this, block, waiters = std::move(waiters),
             pending = std::move(pending_writes)]() mutable {
            auto dit = deferredUpgrades.find(block);
            if (dit != deferredUpgrades.end() && --dit->second == 0)
                deferredUpgrades.erase(dit);
            startPreCountedUpgrade(block, std::move(waiters),
                                   std::move(pending));
        });
        return;
    }

    Txn &txn = createTxn(block, Txn::Kind::Upgrade);
    txn.writeWaiters = std::move(waiters);
    txn.pendingWrites = std::move(pending_writes);
    NodeId from = self;
    sendToHome(block, msg_bytes::control,
               [block, from](DirectoryController &dir) {
        dir.onUpgradeReq(block, from);
    });
}

// --------------------------------------------------------------------------
// Network-side: coherence actions
// --------------------------------------------------------------------------

void
SlcController::onInvalidate(Addr block, NodeId home)
{
    withPort([this, block, home] {
        ++statInvalsReceived;
        CPX_TRACE(traceTag, "n%u inval blk=%llx present=%d", self,
                  (unsigned long long)block,
                  tags.find(block) != nullptr);
        if (tags.find(block))
            removeLine(block, RemovalCause::Invalidation);
        NodeId from = self;
        sendProtocolMessage(fabric, self, home, msg_bytes::control,
                            [this, block, home, from] {
            fabric.dir(home).onInvAck(block, from);
        }, MsgClass::Coherence);
    });
}

void
SlcController::onFetch(Addr block, NodeId home, bool invalidate)
{
    withPort([this, block, home, invalidate] {
        Line *line = tags.find(block);
        bool present = line != nullptr;
        bool did_modify = present && line->locallyModified;
        CPX_TRACE(traceTag, "n%u fetch blk=%llx inv=%d present=%d",
                  self, (unsigned long long)block, invalidate,
                  present);
        if (present) {
            // The response carries the line data; memory is brought
            // up to date before the home replies to the requester.
            writeLineToStore(block, *line);
            if (invalidate) {
                removeLine(block, RemovalCause::Invalidation);
            } else {
                line->state = LineState::Shared;
                line->locallyModified = false;
                notifyObserver(block);
            }
        }
        NodeId from = self;
        sendProtocolMessage(fabric, self, home,
                            msg_bytes::block(params.blockBytes),
                            [this, block, home, from, did_modify,
                             present] {
            fabric.dir(home).onFetchResp(block, from, did_modify,
                                         present);
        }, MsgClass::Data);
    });
}

void
SlcController::onUpdate(Addr block, NodeId home, std::uint32_t mask,
                        const std::vector<std::uint32_t> &words,
                        NodeId writer)
{
    (void)writer;
    withPort([this, block, home, mask, words] {
        ++statUpdatesReceived;
        Line *line = tags.find(block);
        bool invalidated = false;
        if (!line) {
            // Presence said we have it but the line is gone; prune —
            // unless a fetch of ours is in flight, in which case we
            // are about to have it again.
            invalidated = txns.count(block) == 0;
        } else {
            line->locallyModified = false;
            if (line->compCounter <= 1) {
                // Competitive threshold reached with no intervening
                // local access: invalidate the local copy.
                removeLine(block, RemovalCause::Invalidation);
                ++statCounterInvals;
                invalidated = true;
            } else {
                --line->compCounter;
                for (unsigned w = 0; w < line->data.size(); ++w)
                    if (mask & (1u << w))
                        line->data[w] = words[w];
                // The write-through FLC is not updated remotely:
                // drop its copy so the next read refetches from SLC.
                flc.invalidate(block);
                notifyObserver(block);
            }
        }
        NodeId from = self;
        sendProtocolMessage(fabric, self, home, msg_bytes::control,
                            [this, block, home, from, invalidated] {
            fabric.dir(home).onUpdateAck(block, from, invalidated);
        }, MsgClass::Coherence);
    });
}

void
SlcController::onMigProbe(Addr block, NodeId home)
{
    withPort([this, block, home] {
        Line *line = tags.find(block);
        bool gave_up;
        if (!line) {
            gave_up = true;
        } else if (line->locallyModified) {
            // Modified since the last update from the home: this is
            // the migratory pattern — give up the copy (§3.4).
            removeLine(block, RemovalCause::Invalidation);
            gave_up = true;
        } else {
            gave_up = false;
        }
        NodeId from = self;
        sendProtocolMessage(fabric, self, home, msg_bytes::control,
                            [this, block, home, from, gave_up] {
            fabric.dir(home).onMigProbeResp(block, from, gave_up);
        }, MsgClass::Coherence);
    });
}

// --------------------------------------------------------------------------
// Functional flush (end of run, before verification)
// --------------------------------------------------------------------------

void
SlcController::flushFunctionalState()
{
    tags.forEach([this](Addr block, Line &line) {
        if (line.state == LineState::Dirty)
            writeLineToStore(block, line);
    });
    BackingStore &store = fabric.store();
    // Parked flush records first (in issue order): any write-cache
    // record for the same block is younger and overwrites below.
    for (const auto &[block, recs] : pendingFlushes) {
        for (const WriteCacheFlush &rec : recs)
            for (unsigned w = 0; w < rec.words.size(); ++w)
                if (rec.dirtyMask & (1u << w))
                    store.write32(block + Addr(w) * wordBytes,
                                  rec.words[w]);
    }
    for (const WriteCacheFlush &rec : writeCache.flushAll()) {
        for (unsigned w = 0; w < rec.words.size(); ++w)
            if (rec.dirtyMask & (1u << w))
                store.write32(rec.blockAddr + Addr(w) * wordBytes,
                              rec.words[w]);
    }
}

} // namespace cpx
