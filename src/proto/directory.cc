#include "proto/directory.hh"

#include "mem/backing_store.hh"
#include "obs/attrib.hh"
#include "obs/trace.hh"
#include "proto/messenger.hh"
#include "proto/slc.hh"
#include "sim/logging.hh"

namespace cpx
{

DirectoryController::DirectoryController(NodeId node, Fabric &f)
    : self(node), fabric(f), params(f.params()),
      scfg(params.directory, params.numProcs)
{
}

// --------------------------------------------------------------------------
// Request entry points: everything funnels through the per-block queue.
// --------------------------------------------------------------------------

void
DirectoryController::onReadReq(Addr block, NodeId from, bool prefetch)
{
    ++statReads;
    enqueue(block, Queued{ReqKind::Read, from, prefetch, 0, {}});
}

void
DirectoryController::onWriteReq(Addr block, NodeId from)
{
    ++statWrites;
    enqueue(block, Queued{ReqKind::Write, from, false, 0, {}});
}

void
DirectoryController::onUpgradeReq(Addr block, NodeId from)
{
    ++statUpgrades;
    enqueue(block, Queued{ReqKind::Upgrade, from, false, 0, {}});
}

void
DirectoryController::onWriteBack(Addr block, NodeId from)
{
    ++statWritebacks;
    enqueue(block, Queued{ReqKind::WriteBack, from, false, 0, {}});
}

void
DirectoryController::onUpdateReq(Addr block, NodeId from,
                                 std::uint32_t dirty_mask,
                                 std::vector<std::uint32_t> words)
{
    enqueue(block, Queued{ReqKind::Update, from, false, dirty_mask,
                          std::move(words)});
}

void
DirectoryController::enqueue(Addr block, Queued req)
{
    Entry &e = entries[block];
    req.enqueuedAt = fabric.eq().now();
    e.queue.push_back(std::move(req));
    if (!e.inService)
        startNext(block);
}

void
DirectoryController::startNext(Addr block)
{
    Entry &e = entries[block];
    if (e.queue.empty())
        return;
    e.inService = true;
    Queued req = std::move(e.queue.front());
    e.queue.pop_front();
    // Attribution milestones (inert stores; see Entry). The rest are
    // filled in as the service progresses and read back in finish().
    e.curEnqueuedAt = req.enqueuedAt;
    e.curDequeuedAt = fabric.eq().now();
    e.curActionAt = 0;
    e.curFanoutAt = 0;
    e.curLastRespAt = 0;
    e.curFrom = req.from;
    e.curKind = req.kind;
    e.curFlags = req.prefetch ? AttribRecord::flagPrefetch : 0;
    e.curFanout = 0;
    // The directory state lives in main memory: one memory access
    // before the request can be acted upon.
    fabric.eq().scheduleIn(params.memAccessLatency,
                           [this, block, req = std::move(req)] {
        process(block, req);
    });
}

void
DirectoryController::process(Addr block, const Queued &req)
{
    Entry &e = entries[block];
    e.curActionAt = fabric.eq().now();
    CPX_TRACE("Dir",
              "h%u blk=%llx kind=%d from=%u mod=%d owner=%u pres=%llx",
              self, (unsigned long long)block, (int)req.kind, req.from,
              e.modified, e.owner,
              (unsigned long long)e.sharers.expand(scfg).low64());
    switch (req.kind) {
      case ReqKind::Read:
        processRead(block, e, req);
        break;
      case ReqKind::Write:
        processWrite(block, e, req);
        break;
      case ReqKind::Upgrade:
        processUpgrade(block, e, req);
        break;
      case ReqKind::WriteBack:
        processWriteBack(block, e, req);
        break;
      case ReqKind::Update:
        processUpdate(block, e, req);
        break;
    }
}

void
DirectoryController::finish(Addr block, Entry &e)
{
    if (AttribSink *attrib = fabric.attrib()) {
        AttribClass cls = AttribClass::Read;
        switch (e.curKind) {
          case ReqKind::Read:
            cls = (e.curFlags & AttribRecord::flagPrefetch)
                      ? AttribClass::Prefetch
                      : AttribClass::Read;
            break;
          case ReqKind::Write:     cls = AttribClass::WriteMiss; break;
          case ReqKind::Upgrade:   cls = AttribClass::Upgrade;   break;
          case ReqKind::WriteBack: cls = AttribClass::WriteBack; break;
          case ReqKind::Update:    cls = AttribClass::Update;    break;
        }
        AttribRecord rec;
        rec.kind = AttribRecord::Kind::DirDone;
        rec.flags = e.curFlags;
        rec.node = static_cast<std::uint16_t>(self);
        rec.aux = static_cast<std::uint32_t>(e.curFrom) |
                  (static_cast<std::uint32_t>(cls) << 16);
        rec.addr = block;
        rec.fanout = e.curFanout;
        rec.t0 = e.curEnqueuedAt;
        rec.t1 = e.curDequeuedAt;
        rec.t2 = e.curActionAt;
        rec.t3 = e.curFanoutAt;
        rec.t4 = e.curLastRespAt;
        rec.t5 = fabric.eq().now();
        attrib->record(self, rec);
    }
    e.inService = false;
    e.txn.reset();
    // Notify before startNext(): the observer sees the stable window
    // between transactions (startNext marks the block in service
    // again, which makes the checker skip it).
    if (ProtocolObserver *obs = fabric.observer())
        obs->onDirectoryTransition(self, block);
    CPX_RECORD(fabric.tracer(), self, TraceKind::DirState, block,
               e.sharers.expand(scfg).low64(),
               (e.owner == invalidNode ? tracePeerNone
                                       : e.owner & tracePeerNone) |
                   (e.modified ? 1u << 16 : 0u));
    if (!e.queue.empty())
        startNext(block);
}

// --------------------------------------------------------------------------
// Read misses (and prefetches)
// --------------------------------------------------------------------------

void
DirectoryController::processRead(Addr block, Entry &e, const Queued &req)
{
    const NodeId from = req.from;

    if (!e.modified) {
        if (e.migratory && params.protocol.migratory) {
            if (e.sharers.empty(scfg)) {
                // Migratory block with no cached copy: hand out an
                // exclusive copy straight away so the expected write
                // hits DIRTY (this is also how P+M realizes
                // hardware read-exclusive prefetching).
                e.modified = true;
                e.owner = from;
                e.sharers.setOnly(scfg, from);
                sendReply(block, from, ReplyKind::DataExclusive,
                          msg_bytes::block(params.blockBytes));
                finish(block, e);
                return;
            }
            // Readers are accumulating on a clean migratory block:
            // the access pattern changed — disable the optimization.
            e.migratory = false;
            ++statMigDemote;
        }
        switch (e.sharers.add(scfg, from)) {
          case SharerSet::AddOutcome::NeedsEviction: {
            // Dir_i_B pointer eviction: invalidate the oldest
            // pointed-to sharer, then grant once its ack frees the
            // slot. The block stays in service meanwhile.
            ++statPtrEvict;
            NodeId victim = e.sharers.victim(scfg);
            e.txn = Txn{.kind = ReqKind::Read,
                        .requester = from,
                        .prefetch = req.prefetch,
                        .evicting = true,
                        .pendingAcks = 1};
            e.curFanoutAt = fabric.eq().now();
            e.curFanout = 1;
            sendInvalidate(block, victim);
            return;
          }
          case SharerSet::AddOutcome::WentBroadcast:
            ++statOverflowBcast;
            break;
          default:
            break;
        }
        sendReply(block, from, ReplyKind::DataShared,
                  msg_bytes::block(params.blockBytes));
        finish(block, e);
        return;
    }

    // MODIFIED at some owner.
    if (e.owner == from) {
        // The owner lost the line through a replacement whose
        // write-back is still in flight; re-grant and remember to
        // drop that stale write-back.
        ++e.staleWbExpected;
        sendReply(block, from, ReplyKind::DataExclusive,
                  msg_bytes::block(params.blockBytes));
        finish(block, e);
        return;
    }

    bool handoff = e.migratory && params.protocol.migratory;
    e.txn = Txn{.kind = ReqKind::Read,
                .requester = from,
                .prefetch = req.prefetch,
                .fetchInv = handoff};
    e.curFlags |= AttribRecord::flagFetch;
    sendFetch(block, e.owner, handoff);
}

// --------------------------------------------------------------------------
// Ownership requests
// --------------------------------------------------------------------------

void
DirectoryController::detectMigratoryOnWrite(Entry &e, NodeId from)
{
    if (!params.protocol.migratory || params.protocol.compUpdate)
        return;  // CW+M uses the probe heuristic instead (§3.4)

    NodeMask others = e.sharers.expand(scfg);
    others.clear(from);
    if (e.migratory) {
        // An ownership request with several other sharers means the
        // block stopped behaving migratorily.
        if (others.count() > 1) {
            e.migratory = false;
            ++statMigDemote;
        }
        return;
    }
    // Classic detection [2,12]: write by `from` when exactly one
    // other copy exists and it belongs to the previous writer. The
    // set must be exact — an over-approximated (broadcast/coarse)
    // set cannot prove the single-copy pattern.
    if (e.lastWriter != invalidNode && e.lastWriter != from &&
        e.sharers.exact(scfg) &&
        others == NodeMask::single(e.lastWriter)) {
        e.migratory = true;
        ++statMigDetect;
    }
}

void
DirectoryController::processWrite(Addr block, Entry &e, const Queued &req)
{
    const NodeId from = req.from;

    if (e.modified) {
        if (e.owner == from) {
            // Write-back in flight (see processRead); re-grant.
            ++e.staleWbExpected;
            e.lastWriter = from;
            sendReply(block, from, ReplyKind::DataExclusive,
                      msg_bytes::block(params.blockBytes));
            finish(block, e);
            return;
        }
        e.txn = Txn{.kind = ReqKind::Write,
                    .requester = from,
                    .fetchInv = true};
        e.curFlags |= AttribRecord::flagFetch;
        sendFetch(block, e.owner, true);
        return;
    }

    detectMigratoryOnWrite(e, from);

    NodeMask others = e.sharers.expand(scfg);
    others.clear(from);
    if (others.none()) {
        e.modified = true;
        e.owner = from;
        e.sharers.setOnly(scfg, from);
        e.lastWriter = from;
        sendReply(block, from, ReplyKind::DataExclusive,
                  msg_bytes::block(params.blockBytes));
        finish(block, e);
        return;
    }

    e.txn = Txn{.kind = ReqKind::Write,
                .requester = from,
                .pendingAcks = others.count()};
    e.curFanoutAt = fabric.eq().now();
    e.curFanout = others.count();
    if (!e.sharers.exact(scfg))
        e.curFlags |= AttribRecord::flagImprecise;
    others.forEach([&](NodeId j) { sendInvalidate(block, j); });
}

void
DirectoryController::processUpgrade(Addr block, Entry &e,
                                    const Queued &req)
{
    const NodeId from = req.from;

    if (e.modified) {
        if (e.owner == from) {
            // Redundant upgrade (should not normally happen).
            sendReply(block, from, ReplyKind::UpgradeAck,
                      msg_bytes::control);
            finish(block, e);
            return;
        }
        // The requester's SHARED copy was invalidated by an earlier
        // transaction; it now needs data as well as ownership.
        e.txn = Txn{.kind = ReqKind::Write,
                    .requester = from,
                    .fetchInv = true};
        e.curFlags |= AttribRecord::flagFetch;
        sendFetch(block, e.owner, true);
        return;
    }

    if (!e.sharers.preciseContains(scfg, from)) {
        // The requester's SHARED copy is unprovable — either a
        // racing invalidation pruned it, or the representation
        // (broadcast / coarse-vector) cannot name members. Serve as
        // a write miss so data travels with the ownership grant.
        processWrite(block, e,
                     Queued{ReqKind::Write, from, false, 0, {}});
        return;
    }

    detectMigratoryOnWrite(e, from);

    NodeMask others = e.sharers.expand(scfg);
    others.clear(from);
    if (others.none()) {
        e.modified = true;
        e.owner = from;
        e.sharers.setOnly(scfg, from);
        e.lastWriter = from;
        sendReply(block, from, ReplyKind::UpgradeAck,
                  msg_bytes::control);
        finish(block, e);
        return;
    }

    e.txn = Txn{.kind = ReqKind::Upgrade,
                .requester = from,
                .pendingAcks = others.count()};
    e.curFanoutAt = fabric.eq().now();
    e.curFanout = others.count();
    if (!e.sharers.exact(scfg))
        e.curFlags |= AttribRecord::flagImprecise;
    others.forEach([&](NodeId j) { sendInvalidate(block, j); });
}

void
DirectoryController::onInvAck(Addr block, NodeId from)
{
    Entry &e = entries[block];
    if (!e.txn)
        panic("stray invalidation ack for block %llx from %u",
              static_cast<unsigned long long>(block), from);
    e.sharers.remove(scfg, from);
    if (--e.txn->pendingAcks == 0) {
        e.curLastRespAt = fabric.eq().now();
        // Final ack: one memory access to update the directory state
        // before the grant leaves.
        fabric.eq().scheduleIn(params.memAccessLatency, [this, block] {
            Entry &entry = entries[block];
            if (entry.txn->evicting)
                completeEvictedRead(block, entry);
            else
                completeOwnership(block, entry);
        });
    }
}

void
DirectoryController::completeEvictedRead(Addr block, Entry &e)
{
    Txn &txn = *e.txn;
    // The victim's ack freed a pointer; this add must fit.
    if (e.sharers.add(scfg, txn.requester) !=
        SharerSet::AddOutcome::Added)
        panic("pointer eviction for block %llx freed no slot",
              static_cast<unsigned long long>(block));
    sendReply(block, txn.requester, ReplyKind::DataShared,
              msg_bytes::block(params.blockBytes));
    finish(block, e);
}

void
DirectoryController::completeOwnership(Addr block, Entry &e)
{
    Txn &txn = *e.txn;
    e.modified = true;
    e.owner = txn.requester;
    e.sharers.setOnly(scfg, txn.requester);
    e.lastWriter = txn.requester;
    if (txn.kind == ReqKind::Upgrade) {
        sendReply(block, txn.requester, ReplyKind::UpgradeAck,
                  msg_bytes::control);
    } else {
        sendReply(block, txn.requester, ReplyKind::DataExclusive,
                  msg_bytes::block(params.blockBytes));
    }
    finish(block, e);
}

// --------------------------------------------------------------------------
// Fetch responses (MODIFIED block recalled from its owner)
// --------------------------------------------------------------------------

void
DirectoryController::onFetchResp(Addr block, NodeId from,
                                 bool did_modify, bool was_present)
{
    fabric.eq().scheduleIn(params.memAccessLatency,
                           [this, block, from, did_modify,
                            was_present] {
        Entry &e = entries[block];
        if (!e.txn)
            panic("stray fetch response for block %llx",
                  static_cast<unsigned long long>(block));
        Txn &txn = *e.txn;
        const NodeId req = txn.requester;

        switch (txn.kind) {
          case ReqKind::Read:
            if (txn.fetchInv) {
                // Migratory handoff path. If the previous keeper
                // never wrote the block, the pattern is not
                // migratory after all: demote.
                if (was_present && !did_modify && e.migratory) {
                    e.migratory = false;
                    ++statMigDemote;
                }
                if (e.migratory && params.protocol.migratory) {
                    e.owner = req;
                    e.sharers.setOnly(scfg, req);
                    // stays modified: exclusive handoff
                    sendReply(block, req, ReplyKind::DataExclusive,
                              msg_bytes::block(params.blockBytes));
                } else {
                    e.modified = false;
                    e.owner = invalidNode;
                    e.sharers.setOnly(scfg, req);
                    sendReply(block, req, ReplyKind::DataShared,
                              msg_bytes::block(params.blockBytes));
                }
            } else {
                // Ordinary downgrade: previous owner keeps a SHARED
                // copy (unless its line was already gone). Two
                // members always fit: System validation requires at
                // least two limited pointers.
                e.modified = false;
                NodeId prev_owner = e.owner;
                e.owner = invalidNode;
                e.sharers.setOnly(scfg, req);
                if (was_present)
                    e.sharers.add(scfg, prev_owner);
                sendReply(block, req, ReplyKind::DataShared,
                          msg_bytes::block(params.blockBytes));
            }
            break;

          case ReqKind::Write:
          case ReqKind::Upgrade:
            e.modified = true;
            e.owner = req;
            e.sharers.setOnly(scfg, req);
            e.lastWriter = req;
            sendReply(block, req, ReplyKind::DataExclusive,
                      msg_bytes::block(params.blockBytes));
            break;

          case ReqKind::Update:
            // CW flush to a block another cache held exclusively
            // (a migratory block under CW+M): the keeper was
            // invalidated and its data written back; now apply the
            // combined write on top.
            applyUpdateToMemory(block, txn.dirtyMask, txn.words);
            e.modified = false;
            e.owner = invalidNode;
            e.sharers.clearAll();
            e.lastUpdater = req;
            sendReply(block, req, ReplyKind::UpdateDone,
                      msg_bytes::control);
            break;

          default:
            panic("fetch response in unexpected transaction kind");
        }
        (void)from;
        finish(block, e);
    });
}

// --------------------------------------------------------------------------
// Write-backs
// --------------------------------------------------------------------------

void
DirectoryController::processWriteBack(Addr block, Entry &e,
                                      const Queued &req)
{
    if (e.modified && e.owner == req.from) {
        if (e.staleWbExpected > 0) {
            // This write-back was overtaken by a re-fetch from the
            // same node; the newer exclusive copy wins.
            --e.staleWbExpected;
        } else {
            e.modified = false;
            e.owner = invalidNode;
            e.sharers.clearAll();
        }
    }
    // Otherwise the write-back is stale (the block moved on while
    // the message was in flight); memory is functionally current.
    finish(block, e);
}

// --------------------------------------------------------------------------
// CW: combined-write updates
// --------------------------------------------------------------------------

void
DirectoryController::applyUpdateToMemory(
    Addr block, std::uint32_t mask,
    const std::vector<std::uint32_t> &words)
{
    BackingStore &store = fabric.store();
    for (unsigned w = 0; w < words.size(); ++w)
        if (mask & (1u << w))
            store.write32(block + Addr(w) * wordBytes, words[w]);
}

void
DirectoryController::processUpdate(Addr block, Entry &e,
                                   const Queued &req)
{
    const NodeId from = req.from;

    if (e.modified) {
        if (e.owner == from) {
            // The writer holds the block exclusively (migratory
            // grant): memory stays stale until write-back, but the
            // owner's cache is authoritative — nothing to propagate.
            e.lastUpdater = from;
            sendReply(block, from, ReplyKind::UpdateDone,
                      msg_bytes::control);
            finish(block, e);
            return;
        }
        // Another cache holds it exclusively: recall it, then the
        // update is absorbed by memory.
        e.txn = Txn{.kind = ReqKind::Update,
                    .requester = from,
                    .fetchInv = true,
                    .dirtyMask = req.dirtyMask,
                    .words = req.words};
        e.curFlags |= AttribRecord::flagFetch;
        sendFetch(block, e.owner, true);
        return;
    }

    applyUpdateToMemory(block, req.dirtyMask, req.words);

    // §3.4 heuristic: consecutive updates by different processors
    // with multiple cached copies trigger a migratory probe.
    NodeMask present = e.sharers.expand(scfg);
    bool may_probe = params.protocol.migratory &&
                     params.protocol.compUpdate && !e.migratory &&
                     present.count() > 1 &&
                     e.lastUpdater != invalidNode &&
                     e.lastUpdater != from;
    if (may_probe) {
        ++statProbes;
        e.txn = Txn{.kind = ReqKind::Update,
                    .requester = from,
                    .pendingAcks = present.count(),
                    .dirtyMask = req.dirtyMask,
                    .words = req.words,
                    .probing = true};
        e.curFanoutAt = fabric.eq().now();
        e.curFanout = present.count();
        if (!e.sharers.exact(scfg))
            e.curFlags |= AttribRecord::flagImprecise;
        present.forEach([&](NodeId j) { sendMigProbe(block, j); });
        return;
    }

    NodeMask targets = present;
    targets.clear(from);
    if (targets.none()) {
        e.lastUpdater = from;
        sendReply(block, from, ReplyKind::UpdateDone,
                  msg_bytes::control);
        finish(block, e);
        return;
    }

    e.txn = Txn{.kind = ReqKind::Update,
                .requester = from,
                .pendingAcks = targets.count(),
                .dirtyMask = req.dirtyMask,
                .words = req.words};
    e.curFanoutAt = fabric.eq().now();
    e.curFanout = targets.count();
    if (!e.sharers.exact(scfg))
        e.curFlags |= AttribRecord::flagImprecise;
    forwardUpdate(block, e, targets);
}

void
DirectoryController::forwardUpdate(Addr block, Entry &e,
                                   const NodeMask &targets)
{
    targets.forEach([&](NodeId j) {
        ++statUpdates;
        sendUpdateMsg(block, j, e.txn->dirtyMask, e.txn->words,
                      e.txn->requester);
    });
}

void
DirectoryController::onUpdateAck(Addr block, NodeId from,
                                 bool invalidated)
{
    Entry &e = entries[block];
    if (!e.txn)
        panic("stray update ack for block %llx",
              static_cast<unsigned long long>(block));
    if (invalidated)
        e.sharers.remove(scfg, from);
    if (--e.txn->pendingAcks == 0) {
        e.curLastRespAt = fabric.eq().now();
        fabric.eq().scheduleIn(params.memAccessLatency, [this, block] {
            Entry &entry = entries[block];
            entry.lastUpdater = entry.txn->requester;
            sendReply(block, entry.txn->requester,
                      ReplyKind::UpdateDone, msg_bytes::control);
            finish(block, entry);
        });
    }
}

void
DirectoryController::onMigProbeResp(Addr block, NodeId from,
                                    bool gave_up)
{
    Entry &e = entries[block];
    if (!e.txn || !e.txn->probing)
        panic("stray migratory probe response for block %llx",
              static_cast<unsigned long long>(block));
    Txn &txn = *e.txn;
    if (gave_up) {
        e.sharers.remove(scfg, from);
    } else {
        txn.allGaveUp = false;
        txn.keepers.set(from);
    }
    if (--txn.pendingAcks > 0)
        return;
    // Last probe response; overwritten by the final update ack if a
    // forwarding round follows.
    e.curLastRespAt = fabric.eq().now();

    // All probe responses are in.
    if (txn.allGaveUp && params.protocol.migratory) {
        e.migratory = true;
        ++statMigDetect;
    }
    txn.probing = false;
    NodeMask targets = txn.keepers;
    targets.clear(txn.requester);
    if (targets.none()) {
        e.lastUpdater = txn.requester;
        sendReply(block, txn.requester, ReplyKind::UpdateDone,
                  msg_bytes::control);
        finish(block, e);
        return;
    }
    txn.pendingAcks = targets.count();
    forwardUpdate(block, e, targets);
}

// --------------------------------------------------------------------------
// Message emission
// --------------------------------------------------------------------------

void
DirectoryController::sendReply(Addr block, NodeId to, ReplyKind kind,
                               unsigned payload)
{
    MsgClass klass = payload > 0 ? MsgClass::Data
                                 : MsgClass::Coherence;
    sendProtocolMessage(fabric, self, to, payload,
                        [this, block, to, kind] {
        fabric.slc(to).onReply(block, kind);
    }, klass);
}

void
DirectoryController::sendInvalidate(Addr block, NodeId to)
{
    ++statInvals;
    sendProtocolMessage(fabric, self, to, msg_bytes::control,
                        [this, block, to] {
        fabric.slc(to).onInvalidate(block, self);
    }, MsgClass::Coherence);
}

void
DirectoryController::sendFetch(Addr block, NodeId to, bool invalidate)
{
    ++statFetches;
    sendProtocolMessage(fabric, self, to, msg_bytes::control,
                        [this, block, to, invalidate] {
        fabric.slc(to).onFetch(block, self, invalidate);
    }, MsgClass::Coherence);
}

void
DirectoryController::sendUpdateMsg(Addr block, NodeId to,
                                   std::uint32_t mask,
                                   const std::vector<std::uint32_t> &words,
                                   NodeId writer)
{
    unsigned dirty = static_cast<unsigned>(__builtin_popcount(mask));
    sendProtocolMessage(fabric, self, to, msg_bytes::update(dirty),
                        [this, block, to, mask, words, writer] {
        fabric.slc(to).onUpdate(block, self, mask, words, writer);
    }, MsgClass::Update);
}

void
DirectoryController::sendMigProbe(Addr block, NodeId to)
{
    sendProtocolMessage(fabric, self, to, msg_bytes::control,
                        [this, block, to] {
        fabric.slc(to).onMigProbe(block, self);
    }, MsgClass::Coherence);
}

// --------------------------------------------------------------------------
// Inspection
// --------------------------------------------------------------------------

DirectoryController::Snapshot
DirectoryController::inspect(Addr block) const
{
    Snapshot s;
    auto it = entries.find(block);
    if (it == entries.end())
        return s;
    const Entry &e = it->second;
    s.modified = e.modified;
    s.owner = e.owner;
    s.sharers = e.sharers.expand(scfg);
    s.presence = s.sharers.low64();
    s.exact = e.sharers.exact(scfg);
    s.migratory = e.migratory;
    s.inService = e.inService;
    return s;
}

std::size_t
DirectoryController::blocksInService() const
{
    std::size_t n = 0;
    for (const auto &[addr, e] : entries)
        if (e.inService)
            ++n;
    return n;
}

std::vector<Addr>
DirectoryController::knownBlocks() const
{
    std::vector<Addr> blocks;
    blocks.reserve(entries.size());
    for (const auto &[addr, e] : entries)
        blocks.push_back(addr);
    return blocks;
}

std::vector<DirectoryController::ServiceDump>
DirectoryController::inServiceDump() const
{
    std::vector<ServiceDump> dumps;
    for (const auto &[addr, e] : entries) {
        if (!e.inService)
            continue;
        ServiceDump d;
        d.block = addr;
        if (e.txn) {
            d.requester = e.txn->requester;
            d.pendingAcks = e.txn->pendingAcks;
        }
        d.queueDepth = e.queue.size();
        d.modified = e.modified;
        d.owner = e.owner;
        d.presence = e.sharers.expand(scfg).low64();
        dumps.push_back(d);
    }
    return dumps;
}

} // namespace cpx
