#include "proto/directory.hh"

#include "mem/backing_store.hh"
#include "obs/trace.hh"
#include "proto/messenger.hh"
#include "proto/slc.hh"
#include "sim/logging.hh"

namespace cpx
{

DirectoryController::DirectoryController(NodeId node, Fabric &f)
    : self(node), fabric(f), params(f.params())
{
}

// --------------------------------------------------------------------------
// Request entry points: everything funnels through the per-block queue.
// --------------------------------------------------------------------------

void
DirectoryController::onReadReq(Addr block, NodeId from, bool prefetch)
{
    ++statReads;
    enqueue(block, Queued{ReqKind::Read, from, prefetch, 0, {}});
}

void
DirectoryController::onWriteReq(Addr block, NodeId from)
{
    ++statWrites;
    enqueue(block, Queued{ReqKind::Write, from, false, 0, {}});
}

void
DirectoryController::onUpgradeReq(Addr block, NodeId from)
{
    ++statUpgrades;
    enqueue(block, Queued{ReqKind::Upgrade, from, false, 0, {}});
}

void
DirectoryController::onWriteBack(Addr block, NodeId from)
{
    ++statWritebacks;
    enqueue(block, Queued{ReqKind::WriteBack, from, false, 0, {}});
}

void
DirectoryController::onUpdateReq(Addr block, NodeId from,
                                 std::uint32_t dirty_mask,
                                 std::vector<std::uint32_t> words)
{
    enqueue(block, Queued{ReqKind::Update, from, false, dirty_mask,
                          std::move(words)});
}

void
DirectoryController::enqueue(Addr block, Queued req)
{
    Entry &e = entries[block];
    e.queue.push_back(std::move(req));
    if (!e.inService)
        startNext(block);
}

void
DirectoryController::startNext(Addr block)
{
    Entry &e = entries[block];
    if (e.queue.empty())
        return;
    e.inService = true;
    Queued req = std::move(e.queue.front());
    e.queue.pop_front();
    // The directory state lives in main memory: one memory access
    // before the request can be acted upon.
    fabric.eq().scheduleIn(params.memAccessLatency,
                           [this, block, req = std::move(req)] {
        process(block, req);
    });
}

void
DirectoryController::process(Addr block, const Queued &req)
{
    Entry &e = entries[block];
    CPX_TRACE("Dir",
              "h%u blk=%llx kind=%d from=%u mod=%d owner=%u pres=%llx",
              self, (unsigned long long)block, (int)req.kind, req.from,
              e.modified, e.owner, (unsigned long long)e.presence);
    switch (req.kind) {
      case ReqKind::Read:
        processRead(block, e, req);
        break;
      case ReqKind::Write:
        processWrite(block, e, req);
        break;
      case ReqKind::Upgrade:
        processUpgrade(block, e, req);
        break;
      case ReqKind::WriteBack:
        processWriteBack(block, e, req);
        break;
      case ReqKind::Update:
        processUpdate(block, e, req);
        break;
    }
}

void
DirectoryController::finish(Addr block, Entry &e)
{
    e.inService = false;
    e.txn.reset();
    // Notify before startNext(): the observer sees the stable window
    // between transactions (startNext marks the block in service
    // again, which makes the checker skip it).
    if (ProtocolObserver *obs = fabric.observer())
        obs->onDirectoryTransition(self, block);
    CPX_RECORD(fabric.tracer(), self, TraceKind::DirState, block,
               e.presence,
               (e.owner == invalidNode ? 0xffffu : e.owner & 0xffffu) |
                   (e.modified ? 1u << 16 : 0u));
    if (!e.queue.empty())
        startNext(block);
}

// --------------------------------------------------------------------------
// Read misses (and prefetches)
// --------------------------------------------------------------------------

void
DirectoryController::processRead(Addr block, Entry &e, const Queued &req)
{
    const NodeId from = req.from;

    if (!e.modified) {
        if (e.migratory && params.protocol.migratory) {
            if (e.presence == 0) {
                // Migratory block with no cached copy: hand out an
                // exclusive copy straight away so the expected write
                // hits DIRTY (this is also how P+M realizes
                // hardware read-exclusive prefetching).
                e.modified = true;
                e.owner = from;
                e.presence = bit(from);
                sendReply(block, from, ReplyKind::DataExclusive,
                          msg_bytes::block(params.blockBytes));
                finish(block, e);
                return;
            }
            // Readers are accumulating on a clean migratory block:
            // the access pattern changed — disable the optimization.
            e.migratory = false;
            ++statMigDemote;
        }
        e.presence |= bit(from);
        sendReply(block, from, ReplyKind::DataShared,
                  msg_bytes::block(params.blockBytes));
        finish(block, e);
        return;
    }

    // MODIFIED at some owner.
    if (e.owner == from) {
        // The owner lost the line through a replacement whose
        // write-back is still in flight; re-grant and remember to
        // drop that stale write-back.
        ++e.staleWbExpected;
        sendReply(block, from, ReplyKind::DataExclusive,
                  msg_bytes::block(params.blockBytes));
        finish(block, e);
        return;
    }

    bool handoff = e.migratory && params.protocol.migratory;
    e.txn = Txn{.kind = ReqKind::Read,
                .requester = from,
                .prefetch = req.prefetch,
                .fetchInv = handoff};
    sendFetch(block, e.owner, handoff);
}

// --------------------------------------------------------------------------
// Ownership requests
// --------------------------------------------------------------------------

void
DirectoryController::detectMigratoryOnWrite(Entry &e, NodeId from)
{
    if (!params.protocol.migratory || params.protocol.compUpdate)
        return;  // CW+M uses the probe heuristic instead (§3.4)

    std::uint64_t others = e.presence & ~bit(from);
    if (e.migratory) {
        // An ownership request with several other sharers means the
        // block stopped behaving migratorily.
        if (popcount(others) > 1) {
            e.migratory = false;
            ++statMigDemote;
        }
        return;
    }
    // Classic detection [2,12]: write by `from` when exactly one
    // other copy exists and it belongs to the previous writer.
    if (e.lastWriter != invalidNode && e.lastWriter != from &&
        others == bit(e.lastWriter)) {
        e.migratory = true;
        ++statMigDetect;
    }
}

void
DirectoryController::processWrite(Addr block, Entry &e, const Queued &req)
{
    const NodeId from = req.from;

    if (e.modified) {
        if (e.owner == from) {
            // Write-back in flight (see processRead); re-grant.
            ++e.staleWbExpected;
            e.lastWriter = from;
            sendReply(block, from, ReplyKind::DataExclusive,
                      msg_bytes::block(params.blockBytes));
            finish(block, e);
            return;
        }
        e.txn = Txn{.kind = ReqKind::Write,
                    .requester = from,
                    .fetchInv = true};
        sendFetch(block, e.owner, true);
        return;
    }

    detectMigratoryOnWrite(e, from);

    std::uint64_t others = e.presence & ~bit(from);
    if (others == 0) {
        e.modified = true;
        e.owner = from;
        e.presence = bit(from);
        e.lastWriter = from;
        sendReply(block, from, ReplyKind::DataExclusive,
                  msg_bytes::block(params.blockBytes));
        finish(block, e);
        return;
    }

    e.txn = Txn{.kind = ReqKind::Write,
                .requester = from,
                .pendingAcks = popcount(others)};
    for (NodeId j = 0; j < params.numProcs; ++j)
        if (others & bit(j))
            sendInvalidate(block, j);
}

void
DirectoryController::processUpgrade(Addr block, Entry &e,
                                    const Queued &req)
{
    const NodeId from = req.from;

    if (e.modified) {
        if (e.owner == from) {
            // Redundant upgrade (should not normally happen).
            sendReply(block, from, ReplyKind::UpgradeAck,
                      msg_bytes::control);
            finish(block, e);
            return;
        }
        // The requester's SHARED copy was invalidated by an earlier
        // transaction; it now needs data as well as ownership.
        e.txn = Txn{.kind = ReqKind::Write,
                    .requester = from,
                    .fetchInv = true};
        sendFetch(block, e.owner, true);
        return;
    }

    if (!(e.presence & bit(from))) {
        // Racing invalidation pruned the requester: serve as a
        // write miss so data travels with the ownership grant.
        processWrite(block, e,
                     Queued{ReqKind::Write, from, false, 0, {}});
        return;
    }

    detectMigratoryOnWrite(e, from);

    std::uint64_t others = e.presence & ~bit(from);
    if (others == 0) {
        e.modified = true;
        e.owner = from;
        e.presence = bit(from);
        e.lastWriter = from;
        sendReply(block, from, ReplyKind::UpgradeAck,
                  msg_bytes::control);
        finish(block, e);
        return;
    }

    e.txn = Txn{.kind = ReqKind::Upgrade,
                .requester = from,
                .pendingAcks = popcount(others)};
    for (NodeId j = 0; j < params.numProcs; ++j)
        if (others & bit(j))
            sendInvalidate(block, j);
}

void
DirectoryController::onInvAck(Addr block, NodeId from)
{
    Entry &e = entries[block];
    if (!e.txn)
        panic("stray invalidation ack for block %llx from %u",
              static_cast<unsigned long long>(block), from);
    e.presence &= ~bit(from);
    if (--e.txn->pendingAcks == 0) {
        // Final ack: one memory access to update the directory state
        // before the ownership grant leaves.
        fabric.eq().scheduleIn(params.memAccessLatency, [this, block] {
            completeOwnership(block, entries[block]);
        });
    }
}

void
DirectoryController::completeOwnership(Addr block, Entry &e)
{
    Txn &txn = *e.txn;
    e.modified = true;
    e.owner = txn.requester;
    e.presence = bit(txn.requester);
    e.lastWriter = txn.requester;
    if (txn.kind == ReqKind::Upgrade) {
        sendReply(block, txn.requester, ReplyKind::UpgradeAck,
                  msg_bytes::control);
    } else {
        sendReply(block, txn.requester, ReplyKind::DataExclusive,
                  msg_bytes::block(params.blockBytes));
    }
    finish(block, e);
}

// --------------------------------------------------------------------------
// Fetch responses (MODIFIED block recalled from its owner)
// --------------------------------------------------------------------------

void
DirectoryController::onFetchResp(Addr block, NodeId from,
                                 bool did_modify, bool was_present)
{
    fabric.eq().scheduleIn(params.memAccessLatency,
                           [this, block, from, did_modify,
                            was_present] {
        Entry &e = entries[block];
        if (!e.txn)
            panic("stray fetch response for block %llx",
                  static_cast<unsigned long long>(block));
        Txn &txn = *e.txn;
        const NodeId req = txn.requester;

        switch (txn.kind) {
          case ReqKind::Read:
            if (txn.fetchInv) {
                // Migratory handoff path. If the previous keeper
                // never wrote the block, the pattern is not
                // migratory after all: demote.
                if (was_present && !did_modify && e.migratory) {
                    e.migratory = false;
                    ++statMigDemote;
                }
                if (e.migratory && params.protocol.migratory) {
                    e.owner = req;
                    e.presence = bit(req);
                    // stays modified: exclusive handoff
                    sendReply(block, req, ReplyKind::DataExclusive,
                              msg_bytes::block(params.blockBytes));
                } else {
                    e.modified = false;
                    e.owner = invalidNode;
                    e.presence = bit(req);
                    sendReply(block, req, ReplyKind::DataShared,
                              msg_bytes::block(params.blockBytes));
                }
            } else {
                // Ordinary downgrade: previous owner keeps a SHARED
                // copy (unless its line was already gone).
                e.modified = false;
                NodeId prev_owner = e.owner;
                e.owner = invalidNode;
                e.presence = bit(req);
                if (was_present)
                    e.presence |= bit(prev_owner);
                sendReply(block, req, ReplyKind::DataShared,
                          msg_bytes::block(params.blockBytes));
            }
            break;

          case ReqKind::Write:
          case ReqKind::Upgrade:
            e.modified = true;
            e.owner = req;
            e.presence = bit(req);
            e.lastWriter = req;
            sendReply(block, req, ReplyKind::DataExclusive,
                      msg_bytes::block(params.blockBytes));
            break;

          case ReqKind::Update:
            // CW flush to a block another cache held exclusively
            // (a migratory block under CW+M): the keeper was
            // invalidated and its data written back; now apply the
            // combined write on top.
            applyUpdateToMemory(block, txn.dirtyMask, txn.words);
            e.modified = false;
            e.owner = invalidNode;
            e.presence = 0;
            e.lastUpdater = req;
            sendReply(block, req, ReplyKind::UpdateDone,
                      msg_bytes::control);
            break;

          default:
            panic("fetch response in unexpected transaction kind");
        }
        (void)from;
        finish(block, e);
    });
}

// --------------------------------------------------------------------------
// Write-backs
// --------------------------------------------------------------------------

void
DirectoryController::processWriteBack(Addr block, Entry &e,
                                      const Queued &req)
{
    if (e.modified && e.owner == req.from) {
        if (e.staleWbExpected > 0) {
            // This write-back was overtaken by a re-fetch from the
            // same node; the newer exclusive copy wins.
            --e.staleWbExpected;
        } else {
            e.modified = false;
            e.owner = invalidNode;
            e.presence = 0;
        }
    }
    // Otherwise the write-back is stale (the block moved on while
    // the message was in flight); memory is functionally current.
    finish(block, e);
}

// --------------------------------------------------------------------------
// CW: combined-write updates
// --------------------------------------------------------------------------

void
DirectoryController::applyUpdateToMemory(
    Addr block, std::uint32_t mask,
    const std::vector<std::uint32_t> &words)
{
    BackingStore &store = fabric.store();
    for (unsigned w = 0; w < words.size(); ++w)
        if (mask & (1u << w))
            store.write32(block + Addr(w) * wordBytes, words[w]);
}

void
DirectoryController::processUpdate(Addr block, Entry &e,
                                   const Queued &req)
{
    const NodeId from = req.from;

    if (e.modified) {
        if (e.owner == from) {
            // The writer holds the block exclusively (migratory
            // grant): memory stays stale until write-back, but the
            // owner's cache is authoritative — nothing to propagate.
            e.lastUpdater = from;
            sendReply(block, from, ReplyKind::UpdateDone,
                      msg_bytes::control);
            finish(block, e);
            return;
        }
        // Another cache holds it exclusively: recall it, then the
        // update is absorbed by memory.
        e.txn = Txn{.kind = ReqKind::Update,
                    .requester = from,
                    .fetchInv = true,
                    .dirtyMask = req.dirtyMask,
                    .words = req.words};
        sendFetch(block, e.owner, true);
        return;
    }

    applyUpdateToMemory(block, req.dirtyMask, req.words);

    // §3.4 heuristic: consecutive updates by different processors
    // with multiple cached copies trigger a migratory probe.
    bool may_probe = params.protocol.migratory &&
                     params.protocol.compUpdate && !e.migratory &&
                     popcount(e.presence) > 1 &&
                     e.lastUpdater != invalidNode &&
                     e.lastUpdater != from;
    if (may_probe) {
        ++statProbes;
        e.txn = Txn{.kind = ReqKind::Update,
                    .requester = from,
                    .pendingAcks = popcount(e.presence),
                    .dirtyMask = req.dirtyMask,
                    .words = req.words,
                    .probing = true};
        for (NodeId j = 0; j < params.numProcs; ++j)
            if (e.presence & bit(j))
                sendMigProbe(block, j);
        return;
    }

    std::uint64_t targets = e.presence & ~bit(from);
    if (targets == 0) {
        e.lastUpdater = from;
        sendReply(block, from, ReplyKind::UpdateDone,
                  msg_bytes::control);
        finish(block, e);
        return;
    }

    e.txn = Txn{.kind = ReqKind::Update,
                .requester = from,
                .pendingAcks = popcount(targets),
                .dirtyMask = req.dirtyMask,
                .words = req.words};
    forwardUpdate(block, e, targets);
}

void
DirectoryController::forwardUpdate(Addr block, Entry &e,
                                   std::uint64_t targets)
{
    for (NodeId j = 0; j < params.numProcs; ++j) {
        if (targets & bit(j)) {
            ++statUpdates;
            sendUpdateMsg(block, j, e.txn->dirtyMask, e.txn->words,
                          e.txn->requester);
        }
    }
}

void
DirectoryController::onUpdateAck(Addr block, NodeId from,
                                 bool invalidated)
{
    Entry &e = entries[block];
    if (!e.txn)
        panic("stray update ack for block %llx",
              static_cast<unsigned long long>(block));
    if (invalidated)
        e.presence &= ~bit(from);
    if (--e.txn->pendingAcks == 0) {
        fabric.eq().scheduleIn(params.memAccessLatency, [this, block] {
            Entry &entry = entries[block];
            entry.lastUpdater = entry.txn->requester;
            sendReply(block, entry.txn->requester,
                      ReplyKind::UpdateDone, msg_bytes::control);
            finish(block, entry);
        });
    }
}

void
DirectoryController::onMigProbeResp(Addr block, NodeId from,
                                    bool gave_up)
{
    Entry &e = entries[block];
    if (!e.txn || !e.txn->probing)
        panic("stray migratory probe response for block %llx",
              static_cast<unsigned long long>(block));
    Txn &txn = *e.txn;
    if (gave_up) {
        e.presence &= ~bit(from);
    } else {
        txn.allGaveUp = false;
        txn.keepers |= bit(from);
    }
    if (--txn.pendingAcks > 0)
        return;

    // All probe responses are in.
    if (txn.allGaveUp && params.protocol.migratory) {
        e.migratory = true;
        ++statMigDetect;
    }
    txn.probing = false;
    std::uint64_t targets = txn.keepers & ~bit(txn.requester);
    if (targets == 0) {
        e.lastUpdater = txn.requester;
        sendReply(block, txn.requester, ReplyKind::UpdateDone,
                  msg_bytes::control);
        finish(block, e);
        return;
    }
    txn.pendingAcks = popcount(targets);
    forwardUpdate(block, e, targets);
}

// --------------------------------------------------------------------------
// Message emission
// --------------------------------------------------------------------------

void
DirectoryController::sendReply(Addr block, NodeId to, ReplyKind kind,
                               unsigned payload)
{
    MsgClass klass = payload > 0 ? MsgClass::Data
                                 : MsgClass::Coherence;
    sendProtocolMessage(fabric, self, to, payload,
                        [this, block, to, kind] {
        fabric.slc(to).onReply(block, kind);
    }, klass);
}

void
DirectoryController::sendInvalidate(Addr block, NodeId to)
{
    ++statInvals;
    sendProtocolMessage(fabric, self, to, msg_bytes::control,
                        [this, block, to] {
        fabric.slc(to).onInvalidate(block, self);
    }, MsgClass::Coherence);
}

void
DirectoryController::sendFetch(Addr block, NodeId to, bool invalidate)
{
    ++statFetches;
    sendProtocolMessage(fabric, self, to, msg_bytes::control,
                        [this, block, to, invalidate] {
        fabric.slc(to).onFetch(block, self, invalidate);
    }, MsgClass::Coherence);
}

void
DirectoryController::sendUpdateMsg(Addr block, NodeId to,
                                   std::uint32_t mask,
                                   const std::vector<std::uint32_t> &words,
                                   NodeId writer)
{
    unsigned dirty = static_cast<unsigned>(__builtin_popcount(mask));
    sendProtocolMessage(fabric, self, to, msg_bytes::update(dirty),
                        [this, block, to, mask, words, writer] {
        fabric.slc(to).onUpdate(block, self, mask, words, writer);
    }, MsgClass::Update);
}

void
DirectoryController::sendMigProbe(Addr block, NodeId to)
{
    sendProtocolMessage(fabric, self, to, msg_bytes::control,
                        [this, block, to] {
        fabric.slc(to).onMigProbe(block, self);
    }, MsgClass::Coherence);
}

// --------------------------------------------------------------------------
// Inspection
// --------------------------------------------------------------------------

DirectoryController::Snapshot
DirectoryController::inspect(Addr block) const
{
    Snapshot s;
    auto it = entries.find(block);
    if (it == entries.end())
        return s;
    const Entry &e = it->second;
    s.modified = e.modified;
    s.owner = e.owner;
    s.presence = e.presence;
    s.migratory = e.migratory;
    s.inService = e.inService;
    return s;
}

std::size_t
DirectoryController::blocksInService() const
{
    std::size_t n = 0;
    for (const auto &[addr, e] : entries)
        if (e.inService)
            ++n;
    return n;
}

std::vector<Addr>
DirectoryController::knownBlocks() const
{
    std::vector<Addr> blocks;
    blocks.reserve(entries.size());
    for (const auto &[addr, e] : entries)
        blocks.push_back(addr);
    return blocks;
}

std::vector<DirectoryController::ServiceDump>
DirectoryController::inServiceDump() const
{
    std::vector<ServiceDump> dumps;
    for (const auto &[addr, e] : entries) {
        if (!e.inService)
            continue;
        ServiceDump d;
        d.block = addr;
        if (e.txn) {
            d.requester = e.txn->requester;
            d.pendingAcks = e.txn->pendingAcks;
        }
        d.queueDepth = e.queue.size();
        d.modified = e.modified;
        d.owner = e.owner;
        d.presence = e.presence;
        dumps.push_back(d);
    }
    return dumps;
}

} // namespace cpx
