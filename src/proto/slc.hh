/**
 * @file
 * Lockup-free second-level cache controller (§2, §3 of the paper).
 *
 * The SLC is a direct-mapped write-back cache (infinite by default)
 * that keeps every pending request in a second-level write buffer
 * (SLWB) instead of transient line states. It implements:
 *
 *  - the cache side of the BASIC write-invalidate protocol
 *    (read/write misses, upgrades, invalidations, fetches,
 *    write-backs, inclusion over the FLC);
 *  - P:  issue of adaptive sequential prefetches on demand read
 *        misses, the per-line "prefetched" bit, and usefulness
 *        feedback to the Prefetcher;
 *  - CW: the write cache, per-line competitive counters, update
 *        application/acknowledgment, reads served from the write
 *        cache, and migratory-probe responses;
 *  - M:  the per-line "locally modified" bit used for migratory
 *        demotion and CW+M probes;
 *  - both consistency models: writeRC() retires writes into the SLWB
 *    (release consistency), writeSC() reports global performance
 *    (sequential consistency), drainWrites() implements the
 *    release-time fence.
 *
 * The simulator is data-carrying: cache lines hold word values, and
 * a processor reads whatever its own cache hierarchy would supply at
 * that instant — a stale SHARED copy keeps returning the old value
 * until coherence actually reaches this node. This is what makes
 * spin-wait synchronization and critical-section timing faithful.
 */

#ifndef CPX_PROTO_SLC_HH
#define CPX_PROTO_SLC_HH

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/flc.hh"
#include "mem/miss_class.hh"
#include "mem/tag_store.hh"
#include "mem/write_cache.hh"
#include "net/network.hh"
#include "proto/fabric.hh"
#include "proto/messages.hh"
#include "proto/prefetcher.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace cpx
{

class MetricRegistry;

class SlcController
{
  public:
    using Callback = std::function<void()>;

    /** SLC line states (two bits in hardware, Table 1). */
    enum class LineState
    {
        Shared,
        Dirty,
    };

    struct Line
    {
        bool valid = false;
        LineState state = LineState::Shared;
        bool prefetched = false;      //!< P: fetched, not yet referenced
        bool locallyModified = false; //!< M/CW: written since last update
        unsigned compCounter = 0;     //!< CW: competitive countdown
        std::vector<std::uint32_t> data;  //!< word values
    };

    /**
     * @param node   owning node id
     * @param fabric system wiring
     * @param flc    the node's first-level cache (inclusion)
     */
    SlcController(NodeId node, Fabric &fabric, Flc &flc);

    // --- processor-side interface -----------------------------------------
    /**
     * Read access (after an FLC miss). @p done runs when the data is
     * available in the SLC (the caller adds the FLC fill).
     */
    void readAccess(Addr a, Callback done);

    /**
     * Release-consistency write, drained from the FLWB. @p retired
     * runs when the SLC has accepted the write (the FLWB slot can be
     * reused); global performance is tracked internally.
     *
     * @param a     word-aligned address (4- or 8-byte access)
     * @param value written value (low 32 bits for 4-byte accesses)
     * @param bytes 4 or 8; must not straddle a block boundary
     */
    void writeRC(Addr a, std::uint64_t value, unsigned bytes,
                 Callback retired);

    /**
     * Sequential-consistency write. @p performed runs when the write
     * is globally performed.
     */
    void writeSC(Addr a, std::uint64_t value, unsigned bytes,
                 Callback performed);

    /**
     * Release fence: flush the write cache and run @p done once
     * every pending ownership/update request has completed.
     */
    void drainWrites(Callback done);

    /**
     * Software-controlled non-binding prefetch ([9]; contrasted with
     * the hardware scheme in §6 of the paper). Fire-and-forget: a
     * no-op when the block is resident or pending, dropped when the
     * SLWB is full. @p exclusive requests a read-exclusive prefetch
     * (Mowry-Gupta style, for blocks about to be written).
     */
    void softwarePrefetch(Addr a, bool exclusive);

    /**
     * The value this node's hierarchy supplies for the word at
     * @p a right now: write cache, then SLC line, then memory.
     */
    std::uint32_t read32Value(Addr a) const;

    /** Two-word (8-byte) variant of read32Value(). */
    std::uint64_t read64Value(Addr a) const;

    // --- network-side interface ---------------------------------------------
    void onReply(Addr block, ReplyKind kind);
    void onInvalidate(Addr block, NodeId home);
    void onFetch(Addr block, NodeId home, bool invalidate);
    void onUpdate(Addr block, NodeId home, std::uint32_t mask,
                  const std::vector<std::uint32_t> &words,
                  NodeId writer);
    void onMigProbe(Addr block, NodeId home);

    // --- quiescent-state maintenance ----------------------------------------
    /**
     * Write every dirty line and buffered write back to memory
     * (functional, no timing). Used at end of run before workload
     * verification.
     */
    void flushFunctionalState();

    // --- inspection -----------------------------------------------------------
    /** Look up a line (tests). */
    const Line *findLine(Addr a) const { return tags.find(a); }

    /**
     * Mutable line lookup. For fault injection only: the stress
     * tests corrupt a line through this to prove the checker trips.
     */
    Line *findLineMutable(Addr a) { return tags.find(a); }

    /** Pending transactions (0 at quiescence). */
    std::size_t pendingTransactions() const { return txns.size(); }

    /**
     * @return true iff a transaction for @p block is outstanding.
     * Includes upgrades still waiting for an SLWB slot: the line may
     * already carry the merged (not yet globally performed) write
     * values, so invariant checks must treat the block as
     * mid-transaction.
     */
    bool hasPendingTransaction(Addr block) const {
        return txns.count(block) != 0 ||
               deferredUpgrades.count(block) != 0 ||
               pendingFlushes.count(block) != 0;
    }

    /** Diagnostic view of one outstanding transaction. */
    struct TxnDump
    {
        Addr block = 0;
        const char *kind = "";
        Tick start = 0;
    };

    /** All outstanding transactions (stall dumps). */
    std::vector<TxnDump> pendingTransactionDump() const;

    /** SLWB entries currently in use. */
    unsigned slwbInUse() const { return slwbUsed; }

    /** Pending write-class operations (0 after a release completes). */
    unsigned pendingWriteClass() const { return writeClassOutstanding; }

    Prefetcher &prefetchEngine() { return prefetcher; }
    const Prefetcher &prefetchEngine() const { return prefetcher; }
    const WriteCache &writeCacheUnit() const { return writeCache; }

    // --- statistics --------------------------------------------------------
    /** Demand read misses by kind. */
    std::uint64_t
    readMisses(MissKind k) const
    {
        return readMissKind[static_cast<unsigned>(k)].value();
    }

    /** Demand write misses by kind (write-invalidate modes). */
    std::uint64_t
    writeMisses(MissKind k) const
    {
        return writeMissKind[static_cast<unsigned>(k)].value();
    }

    std::uint64_t totalReadMisses() const;
    std::uint64_t readHits() const { return statReadHits.value(); }
    std::uint64_t writeCacheReadHits() const {
        return statWcReadHits.value();
    }
    std::uint64_t invalidationsReceived() const {
        return statInvalsReceived.value();
    }
    std::uint64_t counterInvalidations() const {
        return statCounterInvals.value();
    }
    std::uint64_t updatesReceived() const {
        return statUpdatesReceived.value();
    }
    std::uint64_t softwarePrefetches() const {
        return statSwPrefetches.value();
    }
    /** Prefetches dropped for lack of an SLWB slot (hw or sw). */
    std::uint64_t prefetchDrops() const {
        return statPrefetchDrops.value();
    }
    const Accumulator &readMissLatency() const { return missLatency; }

    /**
     * Register this controller's interval metrics (miss classes,
     * prefetch outcomes, write-cache activity) under @p prefix
     * (e.g. "node3"). See DESIGN.md §13.
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Bucket geometry of the per-transaction latency histograms,
     *  shared with RunResult so per-node merges line up. */
    static constexpr std::uint64_t latencyBucketWidth = 16;
    static constexpr std::size_t latencyBucketCount = 64;

    /** Demand read-miss latency distribution (pclocks). */
    const Histogram &readMissLatencyHist() const {
        return latReadMiss;
    }
    /** Ownership-acquisition (write-miss/upgrade) latency. */
    const Histogram &ownershipLatencyHist() const {
        return latOwnership;
    }
    /** Pure (not demand-joined) prefetch fill latency. */
    const Histogram &prefetchFillLatencyHist() const {
        return latPrefetchFill;
    }

  private:
    /** One SLWB-tracked outstanding transaction. */
    struct Txn
    {
        enum class Kind
        {
            Read,       //!< demand read miss
            Prefetch,   //!< non-binding prefetch
            WriteMiss,  //!< read-exclusive
            Upgrade,    //!< ownership only
            Update,     //!< CW combined-write flush
        };

        Kind kind = Kind::Read;
        Tick start = 0;
        bool demandJoined = false;  //!< a demand read merged in
        bool wantsWrite = false;    //!< a write merged into a read
        /** Word writes to apply when the block is (re)installed. */
        std::vector<std::pair<unsigned, std::uint32_t>> pendingWrites;
        /** Run when the data is available (reads, merged accesses). */
        std::vector<Callback> continuations;
        /** Run when ownership is globally performed (SC writes). */
        std::vector<Callback> writeWaiters;
    };

    static bool
    isWriteClass(Txn::Kind k)
    {
        return k == Txn::Kind::WriteMiss || k == Txn::Kind::Upgrade ||
               k == Txn::Kind::Update;
    }

    /** Reserve the SLC port and run @p fn when the access completes. */
    void withPort(Callback fn);

    /** Tell the installed protocol observer, if any, that the line
     *  state or contents for @p block changed. */
    void notifyObserver(Addr block);

    /** Run @p fn with an SLWB entry held (may wait for a free one). */
    void acquireSlwb(Callback fn);
    void releaseSlwb();

    Txn &createTxn(Addr block, Txn::Kind kind);

    void issuePrefetches(Addr demand_block);
    void startUpdateFlush(const WriteCacheFlush &rec);
    void retryPendingFlush(Addr block);
    void startPreCountedUpgrade(
        Addr block, std::vector<Callback> waiters,
        std::vector<std::pair<unsigned, std::uint32_t>>
            pending_writes);
    void handleWrite(Addr a, std::uint64_t value, unsigned bytes,
                     bool sc, Callback done);
    Line *installLine(Addr block, const Txn &txn, ReplyKind kind);
    void evictForFill(Addr block);
    void removeLine(Addr block, RemovalCause cause);
    void writeLineToStore(Addr block, const Line &line);
    void maybeFinishRelease();

    void sendToHome(Addr block, unsigned payload,
                    std::function<void(DirectoryController &)> fn,
                    MsgClass klass = MsgClass::Request);

    NodeId self;
    Fabric &fabric;
    const MachineParams &params;
    Flc &flc;

    TagStore<Line> tags;
    MissClassifier classifier;
    Prefetcher prefetcher;
    WriteCache writeCache;
    Resource port;

    std::unordered_map<Addr, Txn> txns;
    /// Blocks whose obligated upgrade is waiting for an SLWB slot.
    std::unordered_map<Addr, unsigned> deferredUpgrades;
    /// Update flush records (write-cache victims/releases, or plain
    /// competitive-update writes) whose Update transaction could not
    /// start yet (SLWB full, or an earlier transaction for the block
    /// still in flight), in issue order. The words are still this
    /// node's responsibility: a concurrent fill must merge them (the
    /// home never propagates a writer's own update back to it) and
    /// reads must still see them. Records stay separate — combining
    /// is the write cache's job; merging here would grant the plain
    /// uncombined protocol traffic savings it does not have.
    std::unordered_map<Addr, std::deque<WriteCacheFlush>>
        pendingFlushes;
    unsigned slwbUsed = 0;
    std::deque<Callback> slwbWaiters;

    unsigned writeClassOutstanding = 0;
    std::vector<Callback> releaseWaiters;

    /// Recent demand-miss blocks (zero-degree prefetch detection).
    std::deque<Addr> recentMisses;

    Counter readMissKind[3];
    Counter writeMissKind[3];
    Counter statReadHits;
    Counter statWcReadHits;
    Counter statInvalsReceived;
    Counter statCounterInvals;
    Counter statUpdatesReceived;
    Counter statSwPrefetches;
    Counter statPrefetchDrops;
    Accumulator missLatency;
    Histogram latReadMiss{latencyBucketWidth, latencyBucketCount};
    Histogram latOwnership{latencyBucketWidth, latencyBucketCount};
    Histogram latPrefetchFill{latencyBucketWidth, latencyBucketCount};
};

} // namespace cpx

#endif // CPX_PROTO_SLC_HH
