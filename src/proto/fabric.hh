/**
 * @file
 * Wiring interface between the distributed protocol agents.
 *
 * Each node hosts an SLC controller, a directory controller (for the
 * memory homed there), a queue-based lock manager and a processor.
 * Agents address each other by NodeId through this interface; the
 * concrete System (src/core) implements it. This keeps the protocol
 * library free of a dependency on system assembly.
 */

#ifndef CPX_PROTO_FABRIC_HH
#define CPX_PROTO_FABRIC_HH

#include "mem/block.hh"
#include "proto/params.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/types.hh"

namespace cpx
{

class Network;
class SlcController;
class DirectoryController;
class LockManager;
class BackingStore;
class TraceSink;
class AttribSink;

/**
 * The slice of the processor model the protocol layer calls back
 * into (lock grants / release acks). The concrete Processor lives in
 * src/node and implements this.
 */
class ProcessorIface
{
  public:
    virtual ~ProcessorIface() = default;

    /** The queue-based lock manager granted @p lock_addr to us. */
    virtual void onLockGrant(Addr lock_addr) = 0;

    /** The lock manager acknowledged our release (SC stalls on it). */
    virtual void onReleaseAck(Addr lock_addr) = 0;
};

/**
 * Passive hook into protocol activity, used by the stress-testing
 * subsystem (src/check): the CoherenceChecker implements this to
 * validate protocol invariants after every state transition. No
 * observer is installed in normal runs; the agents guard each
 * notification with a single inline null check, so the hooks are
 * free when unused.
 */
class ProtocolObserver
{
  public:
    virtual ~ProtocolObserver() = default;

    /** The directory entry for @p block changed at its home. */
    virtual void onDirectoryTransition(NodeId home, Addr block) = 0;

    /** The SLC line state or contents for @p block changed. */
    virtual void onSlcTransition(NodeId node, Addr block) = 0;

    /** A protocol message from @p src was delivered at @p dst. */
    virtual void onMessageDelivered(NodeId src, NodeId dst) = 0;

    /**
     * The end-of-run functional flush is about to push cached dirty
     * data (including buffered write-cache words) into the backing
     * store. This is the last moment at which cached copies and
     * memory are comparable; afterwards data-value invariants no
     * longer hold by construction.
     */
    virtual void onBeforeFunctionalFlush() {}
};

class Fabric
{
  public:
    virtual ~Fabric() = default;

    virtual EventQueue &eq() = 0;
    virtual Network &net() = 0;
    virtual const AddressMap &amap() const = 0;
    virtual const MachineParams &params() const = 0;
    virtual BackingStore &store() = 0;

    virtual SlcController &slc(NodeId node) = 0;
    virtual DirectoryController &dir(NodeId node) = 0;
    virtual LockManager &locks(NodeId node) = 0;
    virtual ProcessorIface &proc(NodeId node) = 0;

    /** The node-local split-transaction bus. */
    virtual Resource &bus(NodeId node) = 0;

    /** The installed protocol observer, or nullptr (the usual case). */
    ProtocolObserver *observer() const { return observer_; }

    /** Install (or, with nullptr, remove) a protocol observer. */
    void setObserver(ProtocolObserver *obs) { observer_ = obs; }

    /**
     * The installed flight recorder, or nullptr (the usual case).
     * Agents record through CPX_RECORD (src/obs/trace.hh), which
     * reduces to this one null check when tracing is off.
     */
    TraceSink *tracer() const { return tracer_; }

    /** Install (or, with nullptr, remove) a flight recorder. */
    void setTracer(TraceSink *sink) { tracer_ = sink; }

    /**
     * The installed attribution sink, or nullptr (the usual case).
     * Agents deposit critical-path records (src/obs/attrib.hh)
     * behind this one null check, exactly like the tracer.
     */
    AttribSink *attrib() const { return attrib_; }

    /** Install (or, with nullptr, remove) an attribution sink. */
    void setAttrib(AttribSink *sink) { attrib_ = sink; }

  private:
    ProtocolObserver *observer_ = nullptr;
    TraceSink *tracer_ = nullptr;
    AttribSink *attrib_ = nullptr;
};

} // namespace cpx

#endif // CPX_PROTO_FABRIC_HH
