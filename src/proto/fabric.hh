/**
 * @file
 * Wiring interface between the distributed protocol agents.
 *
 * Each node hosts an SLC controller, a directory controller (for the
 * memory homed there), a queue-based lock manager and a processor.
 * Agents address each other by NodeId through this interface; the
 * concrete System (src/core) implements it. This keeps the protocol
 * library free of a dependency on system assembly.
 */

#ifndef CPX_PROTO_FABRIC_HH
#define CPX_PROTO_FABRIC_HH

#include "mem/block.hh"
#include "proto/params.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/types.hh"

namespace cpx
{

class Network;
class SlcController;
class DirectoryController;
class LockManager;
class BackingStore;

/**
 * The slice of the processor model the protocol layer calls back
 * into (lock grants / release acks). The concrete Processor lives in
 * src/node and implements this.
 */
class ProcessorIface
{
  public:
    virtual ~ProcessorIface() = default;

    /** The queue-based lock manager granted @p lock_addr to us. */
    virtual void onLockGrant(Addr lock_addr) = 0;

    /** The lock manager acknowledged our release (SC stalls on it). */
    virtual void onReleaseAck(Addr lock_addr) = 0;
};

class Fabric
{
  public:
    virtual ~Fabric() = default;

    virtual EventQueue &eq() = 0;
    virtual Network &net() = 0;
    virtual const AddressMap &amap() const = 0;
    virtual const MachineParams &params() const = 0;
    virtual BackingStore &store() = 0;

    virtual SlcController &slc(NodeId node) = 0;
    virtual DirectoryController &dir(NodeId node) = 0;
    virtual LockManager &locks(NodeId node) = 0;
    virtual ProcessorIface &proc(NodeId node) = 0;

    /** The node-local split-transaction bus. */
    virtual Resource &bus(NodeId node) = 0;
};

} // namespace cpx

#endif // CPX_PROTO_FABRIC_HH
