/**
 * @file
 * Node-to-node message transmission with local resource charges.
 *
 * Every protocol message crosses the sender's local bus, the network,
 * and the receiver's local bus before its handler runs. Messages
 * between agents on the same node skip the network's hop latency but
 * still pay the bus (the network model charges a small local delay
 * and does not count local traffic in its byte totals).
 */

#ifndef CPX_PROTO_MESSENGER_HH
#define CPX_PROTO_MESSENGER_HH

#include <utility>

#include "net/network.hh"
#include "proto/fabric.hh"

namespace cpx
{

/**
 * Send a protocol message.
 *
 * @param fabric  system wiring
 * @param src     sending node
 * @param dst     receiving node
 * @param payload payload bytes (header added by the network)
 * @param at_dst  handler to run when the message has crossed the
 *                receiver's bus
 */
inline void
sendProtocolMessage(Fabric &fabric, NodeId src, NodeId dst,
                    unsigned payload, EventQueue::Callback at_dst,
                    MsgClass klass = MsgClass::Request)
{
    EventQueue &eq = fabric.eq();
    const Tick bus_xfer = fabric.params().busTransferLatency;

    Tick start = fabric.bus(src).reserve(eq.now(), bus_xfer);
    eq.schedule(start + bus_xfer,
                [&fabric, src, dst, payload, bus_xfer, klass,
                 cb = std::move(at_dst)]() mutable {
        fabric.net().send(src, dst, payload,
                          [&fabric, src, dst, bus_xfer,
                           cb = std::move(cb)]() mutable {
            if (ProtocolObserver *obs = fabric.observer())
                obs->onMessageDelivered(src, dst);
            Tick s = fabric.bus(dst).reserve(fabric.eq().now(),
                                             bus_xfer);
            fabric.eq().schedule(s + bus_xfer, std::move(cb));
        }, klass);
    });
}

} // namespace cpx

#endif // CPX_PROTO_MESSENGER_HH
