/**
 * @file
 * Node-to-node message transmission with local resource charges.
 *
 * Every protocol message crosses the sender's local bus, the network,
 * and the receiver's local bus before its handler runs. Messages
 * between agents on the same node skip the network's hop latency but
 * still pay the bus (the network model charges a small local delay
 * and does not count local traffic in its byte totals).
 */

#ifndef CPX_PROTO_MESSENGER_HH
#define CPX_PROTO_MESSENGER_HH

#include <memory>
#include <utility>

#include "net/network.hh"
#include "obs/trace.hh"
#include "proto/fabric.hh"

namespace cpx
{

namespace detail
{

/**
 * Per-message transmission state, threaded through the three delivery
 * stages (sender bus -> network -> receiver bus). One heap cell per
 * message: the stage lambdas capture only the owning pointer, which
 * keeps each of them small enough for the event queue's inline
 * callback storage — nesting the stages directly would capture the
 * previous stage's full-size callback and overflow it.
 */
struct MsgChain
{
    Fabric &fabric;
    NodeId src;
    NodeId dst;
    unsigned payload;
    Tick busXfer;
    MsgClass klass;
    std::uint64_t traceId;  //!< flight-recorder send/recv correlation
    EventQueue::Callback atDst;
};

} // namespace detail

/**
 * Send a protocol message.
 *
 * @param fabric  system wiring
 * @param src     sending node
 * @param dst     receiving node
 * @param payload payload bytes (header added by the network)
 * @param at_dst  handler to run when the message has crossed the
 *                receiver's bus
 */
inline void
sendProtocolMessage(Fabric &fabric, NodeId src, NodeId dst,
                    unsigned payload, EventQueue::Callback at_dst,
                    MsgClass klass = MsgClass::Request)
{
    EventQueue &eq = fabric.eq();
    const Tick bus_xfer = fabric.params().busTransferLatency;

    std::uint64_t trace_id = 0;
    if (TraceSink *t = fabric.tracer()) {
        trace_id = t->nextMsgId(src);
        t->record(src, TraceKind::MsgSend, payload, trace_id,
                  traceMsgAux(dst, static_cast<unsigned>(klass)));
    }

    auto chain = std::make_unique<detail::MsgChain>(
        detail::MsgChain{fabric, src, dst, payload, bus_xfer, klass,
                         trace_id, std::move(at_dst)});

    Tick start = fabric.bus(src).reserve(eq.now(), bus_xfer);
    eq.schedule(start + bus_xfer, [c = std::move(chain)]() mutable {
        detail::MsgChain &m = *c;
        m.fabric.net().send(m.src, m.dst, m.payload,
                            [c = std::move(c)]() mutable {
            detail::MsgChain &m = *c;
            if (ProtocolObserver *obs = m.fabric.observer())
                obs->onMessageDelivered(m.src, m.dst);
            CPX_RECORD(m.fabric.tracer(), m.dst, TraceKind::MsgRecv,
                       m.payload, m.traceId,
                       traceMsgAux(m.src,
                                   static_cast<unsigned>(m.klass)));
            Tick s = m.fabric.bus(m.dst).reserve(m.fabric.eq().now(),
                                                 m.busXfer);
            m.fabric.eq().schedule(s + m.busXfer, std::move(m.atDst));
        }, m.klass);
    });
}

} // namespace cpx

#endif // CPX_PROTO_MESSENGER_HH
