/**
 * @file
 * Machine configuration: the paper's baseline parameters (§2, §4)
 * plus the knobs of the three protocol extensions (§3).
 *
 * Defaults reproduce the paper's BASIC architecture under release
 * consistency with the contention-free uniform network.
 */

#ifndef CPX_PROTO_PARAMS_HH
#define CPX_PROTO_PARAMS_HH

#include <string>

#include "sim/types.hh"

namespace cpx
{

/** Memory consistency model implemented by the node (§5.1 / §5.2). */
enum class Consistency
{
    SequentialConsistency,
    ReleaseConsistency,
};

/** Which protocol extensions are enabled on top of BASIC. */
struct ProtocolConfig
{
    bool prefetch = false;    //!< P: adaptive sequential prefetching
    bool migratory = false;   //!< M: migratory sharing optimization
    bool compUpdate = false;  //!< CW: competitive update + write cache

    /** The paper's name for this combination ("BASIC", "P+CW", ...). */
    std::string
    name() const
    {
        std::string s;
        auto append = [&s](const char *part) {
            if (!s.empty())
                s += "+";
            s += part;
        };
        if (prefetch)
            append("P");
        if (compUpdate)
            append("CW");
        if (migratory)
            append("M");
        return s.empty() ? "BASIC" : s;
    }

    static ProtocolConfig basic() { return {}; }
    static ProtocolConfig p() { return {true, false, false}; }
    static ProtocolConfig m() { return {false, true, false}; }
    static ProtocolConfig cw() { return {false, false, true}; }
    static ProtocolConfig pcw() { return {true, false, true}; }
    static ProtocolConfig pm() { return {true, true, false}; }
    static ProtocolConfig cwm() { return {false, true, true}; }
    static ProtocolConfig pcwm() { return {true, true, true}; }
};

/** Directory sharer-set representation (DESIGN.md §16). */
enum class DirRep
{
    FullMap,       //!< one presence bit per node (exact)
    LimitedPtr,    //!< Dir_i_B: i pointers + an overflow policy
    CoarseVector,  //!< one presence bit per group of k nodes
};

/** What a limited-pointer directory does when its pointers run out. */
enum class DirOverflowPolicy
{
    Broadcast,  //!< degrade the set to "everyone" until it resets
    Evict,      //!< invalidate one pointed-to sharer to make room
};

/**
 * Directory organization. The default reproduces the paper's
 * full-map directory bit-for-bit; the alternatives trade precision
 * for per-block state so the machine can scale past the point where
 * a presence bit per node is affordable.
 */
struct DirectoryParams
{
    DirRep rep = DirRep::FullMap;
    unsigned pointers = 4;    //!< LimitedPtr: sharers named exactly
    DirOverflowPolicy overflow = DirOverflowPolicy::Broadcast;
    unsigned coarseness = 4;  //!< CoarseVector: nodes per presence bit

    /** Compact spec name: "fullmap", "limptr4B", "coarse4", ... */
    std::string
    name() const
    {
        switch (rep) {
          case DirRep::FullMap:
            return "fullmap";
          case DirRep::LimitedPtr:
            return "limptr" + std::to_string(pointers) +
                   (overflow == DirOverflowPolicy::Broadcast ? "B"
                                                             : "E");
          case DirRep::CoarseVector:
            return "coarse" + std::to_string(coarseness);
        }
        return "?";
    }

    /**
     * Parse a spec of the form "fullmap", "limptr<N>B", "limptr<N>E"
     * or "coarse<K>". Returns false (with an untouched *this) on a
     * malformed spec.
     */
    bool
    parseSpec(const std::string &spec)
    {
        if (spec == "fullmap") {
            *this = DirectoryParams{};
            return true;
        }
        auto number = [](const std::string &s, std::size_t begin,
                         std::size_t end, unsigned &out) {
            if (begin >= end)
                return false;
            unsigned v = 0;
            for (std::size_t i = begin; i < end; ++i) {
                if (s[i] < '0' || s[i] > '9')
                    return false;
                v = v * 10 + unsigned(s[i] - '0');
            }
            out = v;
            return out != 0;
        };
        if (spec.rfind("limptr", 0) == 0 && spec.size() > 7) {
            char policy = spec.back();
            if (policy != 'B' && policy != 'E')
                return false;
            unsigned n = 0;
            if (!number(spec, 6, spec.size() - 1, n))
                return false;
            rep = DirRep::LimitedPtr;
            pointers = n;
            overflow = policy == 'B' ? DirOverflowPolicy::Broadcast
                                     : DirOverflowPolicy::Evict;
            return true;
        }
        if (spec.rfind("coarse", 0) == 0 && spec.size() > 6) {
            unsigned k = 0;
            if (!number(spec, 6, spec.size(), k))
                return false;
            rep = DirRep::CoarseVector;
            coarseness = k;
            return true;
        }
        return false;
    }
};

/** Network model selection. */
enum class NetworkKind
{
    Uniform,  //!< contention-free, fixed node-to-node latency
    Mesh,     //!< wormhole 2-D mesh with per-link contention (§5.3)
};

/**
 * Fault-injection configuration for the ChaosNetwork decorator
 * (src/net/chaos_network.hh). Disabled by default; the stress
 * harness enables it to drive the per-block transient-state queues
 * through message interleavings the timing models never produce.
 */
struct ChaosParams
{
    bool enabled = false;

    /** Seed for the jitter stream; equal seeds replay exactly. */
    std::uint64_t seed = 1;

    /** Uniform extra delay in [0, maxJitter] pclocks per message. */
    Tick maxJitter = 64;

    /** Percent chance of a 10x maxJitter delay spike. */
    unsigned spikePercent = 2;

    /**
     * Keep each (src, dst) pair FIFO by clamping jittered arrivals
     * to be no earlier than the pair's previous delivery. The
     * protocol *depends* on pairwise ordering (a directory re-grant
     * overtaken by a later fetch to the same node manufactures two
     * exclusive copies — see DESIGN.md), so this defaults to on;
     * turn it off to explore what breaks.
     */
    bool preservePairFifo = true;
};

/**
 * Complete machine description. All latencies in pclocks
 * (1 pclock = 10 ns at the paper's 100 MHz).
 */
struct MachineParams
{
    unsigned numProcs = 16;
    unsigned blockBytes = 32;
    unsigned pageBytes = 4096;

    // --- first-level cache & write buffer -----------------------------
    unsigned flcBytes = 4096;      //!< 4 KB direct-mapped write-through
    Tick flcHitLatency = 1;        //!< also the busy cost of any access
    Tick flcFillLatency = 3;
    unsigned flwbEntries = 8;      //!< paper: 8 under RC, 1 under SC

    // --- second-level cache & write buffer ----------------------------
    unsigned slcBytes = 0;         //!< 0 = infinite (paper default)
    Tick slcAccessLatency = 6;     //!< 30 ns static RAM
    unsigned slwbEntries = 16;     //!< paper: 16 under RC, 1 under SC

    // --- node resources ------------------------------------------------
    Tick busTransferLatency = 3;   //!< one 33 MHz bus cycle, 256-bit wide
    Tick memAccessLatency = 9;     //!< 90 ns interleaved DRAM + directory

    // --- network ---------------------------------------------------------
    NetworkKind networkKind = NetworkKind::Uniform;
    Tick uniformHopLatency = 54;   //!< paper's node-to-node latency
    unsigned meshLinkBits = 64;    //!< 64 / 32 / 16 in Table 3
    ChaosParams chaos;             //!< fault injection (stress runs)

    // --- directory organization -------------------------------------------
    DirectoryParams directory;     //!< sharer-set representation (§16)

    // --- consistency -----------------------------------------------------
    Consistency consistency = Consistency::ReleaseConsistency;

    // --- protocol extensions ----------------------------------------------
    ProtocolConfig protocol;

    // P: adaptive sequential prefetching (§3.1, [3])
    unsigned prefetchMaxDegree = 16;       //!< top of the degree ladder
    unsigned prefetchInitialDegree = 1;
    bool prefetchAdaptive = true;          //!< false = fixed degree
    double prefetchHighMark = 0.75;        //!< raise degree above this
    double prefetchLowMark = 0.40;         //!< lower degree below this

    // CW: competitive update (§3.3, [4,10])
    unsigned competitiveThreshold = 1;     //!< updates before local inv
    unsigned writeCacheBlocks = 4;         //!< paper's recommendation
    /**
     * With the write cache disabled, CW degenerates to the plain
     * competitive-update protocol of [10]: every write to a
     * non-exclusive block sends its own word update immediately.
     * [10] recommends a competitive threshold of four for this
     * variant (set competitiveThreshold accordingly).
     */
    bool writeCacheEnabled = true;

    /**
     * Apply the paper's consistency-dependent buffer sizing: a single
     * entry suffices under SC for BASIC and M, while P needs SLWB
     * room for pending prefetches (§5.2).
     */
    void
    applyConsistencyDefaults()
    {
        if (consistency == Consistency::SequentialConsistency) {
            flwbEntries = 1;
            slwbEntries = protocol.prefetch ? 16 : 1;
        }
    }
};

} // namespace cpx

#endif // CPX_PROTO_PARAMS_HH
