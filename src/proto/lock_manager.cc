#include "proto/lock_manager.hh"

#include "obs/attrib.hh"
#include "obs/trace.hh"
#include "proto/messages.hh"
#include "proto/messenger.hh"
#include "sim/logging.hh"

namespace cpx
{

LockManager::LockManager(NodeId node, Fabric &f) : self(node), fabric(f)
{
}

void
LockManager::onAcquire(Addr lock_addr, NodeId from)
{
    ++acquireCount;
    const Tick arrived = fabric.eq().now();
    // The lock state lives in memory at the home node: charge one
    // memory access before acting.
    fabric.eq().scheduleIn(fabric.params().memAccessLatency,
                           [this, lock_addr, from, arrived] {
        LockState &ls = lockStates[lock_addr];
        if (!ls.held) {
            ls.held = true;
            ls.holder = from;
            grant(lock_addr, from, arrived);
        } else {
            ++queuedCount;
            ls.waiters.push_back(Waiter{from, arrived});
        }
    });
}

void
LockManager::onRelease(Addr lock_addr, NodeId from)
{
    ++releaseCount;
    fabric.eq().scheduleIn(fabric.params().memAccessLatency,
                           [this, lock_addr, from] {
        LockState &ls = lockStates[lock_addr];
        if (!ls.held || ls.holder != from)
            panic("release of lock %llx by non-holder node %u",
                  static_cast<unsigned long long>(lock_addr), from);
        CPX_RECORD(fabric.tracer(), self, TraceKind::LockRelease,
                   lock_addr, 0, from);

        // Acknowledge the releaser (the SC processor stalls on this).
        sendProtocolMessage(fabric, self, from, msg_bytes::control,
                            [this, lock_addr, from] {
            fabric.proc(from).onReleaseAck(lock_addr);
        }, MsgClass::Sync);

        if (ls.waiters.empty()) {
            ls.held = false;
            ls.holder = invalidNode;
        } else {
            // Queue-based handoff: grant directly to the next waiter.
            Waiter next = ls.waiters.front();
            ls.waiters.pop_front();
            ls.holder = next.node;
            grant(lock_addr, next.node, next.arrivedAt);
        }
    });
}

void
LockManager::grant(Addr lock_addr, NodeId to, Tick arrived_at)
{
    CPX_RECORD(fabric.tracer(), self, TraceKind::LockAcquire,
               lock_addr, 0, to);
    if (AttribSink *attrib = fabric.attrib()) {
        AttribRecord rec;
        rec.kind = AttribRecord::Kind::LockGrant;
        rec.node = static_cast<std::uint16_t>(self);
        rec.aux = to;
        rec.addr = lock_addr;
        rec.t0 = arrived_at;
        rec.t1 = fabric.eq().now();
        attrib->record(self, rec);
    }
    sendProtocolMessage(fabric, self, to, msg_bytes::control,
                        [this, lock_addr, to] {
        fabric.proc(to).onLockGrant(lock_addr);
    }, MsgClass::Sync);
}

std::size_t
LockManager::heldLocks() const
{
    std::size_t n = 0;
    for (const auto &[addr, ls] : lockStates)
        if (ls.held)
            ++n;
    return n;
}

std::vector<LockManager::LockDump>
LockManager::heldLockDump() const
{
    std::vector<LockDump> dumps;
    for (const auto &[addr, ls] : lockStates)
        if (ls.held)
            dumps.push_back({addr, ls.holder, ls.waiters.size()});
    return dumps;
}

} // namespace cpx
