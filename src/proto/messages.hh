/**
 * @file
 * Message vocabulary and size model of the coherence protocol.
 *
 * Messages are delivered as direct method calls on the destination
 * agent (the network schedules the call at the arrival tick), so no
 * wire format exists; this header centralizes the *size accounting*
 * that Figure 4 (network traffic) and Table 3 (mesh contention)
 * depend on, plus small shared enums.
 */

#ifndef CPX_PROTO_MESSAGES_HH
#define CPX_PROTO_MESSAGES_HH

#include "sim/types.hh"

namespace cpx
{

/** What a directory reply to a cache request carries. */
enum class ReplyKind
{
    DataShared,     //!< block data, SHARED permission
    DataExclusive,  //!< block data, exclusive (DIRTY) permission
    UpgradeAck,     //!< ownership only, requester keeps its data
    UpdateDone,     //!< a write-cache flush has been fully propagated
};

/** Payload size model, excluding the fixed 8-byte message header. */
namespace msg_bytes
{

/** Requests, invalidations, acks, probes, grants: header only. */
constexpr unsigned control = 0;

/** A full cache block. */
constexpr unsigned
block(unsigned block_bytes)
{
    return block_bytes;
}

/**
 * A combined-write update: the dirty words plus a 2-byte word mask
 * (the write cache sends only modified words, §3.3).
 */
constexpr unsigned
update(unsigned dirty_words)
{
    return dirty_words * wordBytes + 2;
}

} // namespace msg_bytes

} // namespace cpx

#endif // CPX_PROTO_MESSAGES_HH
