/**
 * @file
 * Queue-based lock manager at memory (§4).
 *
 * The paper models DASH-style queue-based locks: one lock variable
 * per memory block, managed at the block's home node. An acquire to a
 * held lock is queued at the home; a release hands the lock directly
 * to the next waiter with a single grant message, so contended locks
 * cost one network traversal per handoff instead of invalidation
 * storms. Synchronization accesses bypass the caches.
 */

#ifndef CPX_PROTO_LOCK_MANAGER_HH
#define CPX_PROTO_LOCK_MANAGER_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "proto/fabric.hh"
#include "sim/stats.hh"

namespace cpx
{

class LockManager
{
  public:
    LockManager(NodeId node, Fabric &fabric);

    /**
     * Network-delivered acquire request from @p from.
     * Replies with a grant to the requesting processor, now or when
     * the lock is released to it.
     */
    void onAcquire(Addr lock_addr, NodeId from);

    /**
     * Network-delivered release from @p from. Grants to the next
     * queued waiter if any, and acknowledges the releaser (used by
     * the SC implementation, which stalls on the ack).
     */
    void onRelease(Addr lock_addr, NodeId from);

    // --- statistics -------------------------------------------------------
    std::uint64_t acquires() const { return acquireCount.value(); }
    std::uint64_t queuedAcquires() const { return queuedCount.value(); }
    std::uint64_t releases() const { return releaseCount.value(); }

    /** Locks currently held (for invariant checks in tests). */
    std::size_t heldLocks() const;

    /** Diagnostic view of one held lock (stall dumps). */
    struct LockDump
    {
        Addr addr = 0;
        NodeId holder = invalidNode;
        std::size_t waiters = 0;
    };

    /** All currently held locks with their waiter counts. */
    std::vector<LockDump> heldLockDump() const;

  private:
    /** One queued acquire, stamped with its arrival tick at this
     *  home (attribution's home-queue wait; inert otherwise). */
    struct Waiter
    {
        NodeId node = invalidNode;
        Tick arrivedAt = 0;
    };

    struct LockState
    {
        bool held = false;
        NodeId holder = invalidNode;
        std::deque<Waiter> waiters;
    };

    /** Send the grant; @p arrived_at is when the acquire reached this
     *  home (for the LockGrant attribution record). */
    void grant(Addr lock_addr, NodeId to, Tick arrived_at);

    NodeId self;
    Fabric &fabric;
    std::unordered_map<Addr, LockState> lockStates;

    Counter acquireCount;
    Counter queuedCount;
    Counter releaseCount;
};

} // namespace cpx

#endif // CPX_PROTO_LOCK_MANAGER_HH
