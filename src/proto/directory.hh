/**
 * @file
 * Directory controller (one per node, §2 of the paper).
 *
 * Implements the BASIC write-invalidate protocol — two stable memory
 * states (CLEAN / MODIFIED), a sharer set whose representation is
 * configurable (full-map / limited-pointer / coarse-vector, see
 * proto/sharer_set.hh and DESIGN.md §16), and transient states
 * realized as an explicit per-block service queue — plus the
 * home-side halves of the three extensions:
 *
 *  - P:  prefetch read requests are ordinary read misses at the home
 *        (and return exclusive copies for migratory blocks, §3.4);
 *  - M:  migratory detection on ownership requests (Cox/Fowler [2],
 *        Stenström et al. [12] style) and migratory handoff —
 *        read misses to migratory blocks invalidate the previous
 *        keeper and grant an exclusive copy;
 *  - CW: update propagation with acknowledgment collection, presence
 *        pruning on competitive invalidations, and the paper's §3.4
 *        probe-based migratory detection heuristic for CW+M.
 *
 * Every request to one block is serialized at the home: requests
 * arriving while an earlier one is in service wait in the block's
 * queue (the paper's three transient states made explicit).
 */

#ifndef CPX_PROTO_DIRECTORY_HH
#define CPX_PROTO_DIRECTORY_HH

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/fabric.hh"
#include "proto/messages.hh"
#include "proto/sharer_set.hh"
#include "sim/stats.hh"

namespace cpx
{

class DirectoryController
{
  public:
    DirectoryController(NodeId node, Fabric &fabric);

    // --- requests from caches (network-delivered) -------------------------
    /** Read miss (or non-binding prefetch) from node @p from. */
    void onReadReq(Addr block, NodeId from, bool prefetch);

    /** Write miss: data + exclusive ownership needed. */
    void onWriteReq(Addr block, NodeId from);

    /** Ownership request for a block @p from holds SHARED. */
    void onUpgradeReq(Addr block, NodeId from);

    /** Replacement write-back of a DIRTY block. */
    void onWriteBack(Addr block, NodeId from);

    /**
     * CW: combined-write flush. @p dirty_mask selects the valid
     * entries of @p words; the home applies them to memory and
     * forwards them to the other cached copies.
     */
    void onUpdateReq(Addr block, NodeId from, std::uint32_t dirty_mask,
                     std::vector<std::uint32_t> words);

    // --- responses from caches --------------------------------------------
    void onInvAck(Addr block, NodeId from);
    void onFetchResp(Addr block, NodeId from, bool did_modify,
                     bool was_present);
    void onUpdateAck(Addr block, NodeId from, bool invalidated);
    void onMigProbeResp(Addr block, NodeId from, bool gave_up);

    // --- inspection (tests / invariant checks) ----------------------------
    struct Snapshot
    {
        bool modified = false;
        NodeId owner = invalidNode;
        /** Expanded sharers, low 64 bits (legacy view for ≤64 nodes). */
        std::uint64_t presence = 0;
        /** Expanded sharers over the full node range. */
        NodeMask sharers;
        /** Whether `sharers` is exact or a superset of the holders. */
        bool exact = true;
        bool migratory = false;
        bool inService = false;
    };

    Snapshot inspect(Addr block) const;

    /** Number of blocks currently mid-transaction (0 at quiescence). */
    std::size_t blocksInService() const;

    /** Every block address with directory state (invariant sweeps). */
    std::vector<Addr> knownBlocks() const;

    /** Diagnostic view of one in-service block (stall dumps). */
    struct ServiceDump
    {
        Addr block = 0;
        NodeId requester = invalidNode;
        unsigned pendingAcks = 0;
        std::size_t queueDepth = 0;
        bool modified = false;
        NodeId owner = invalidNode;
        std::uint64_t presence = 0;
    };

    /** All blocks currently mid-transaction, with queue depths. */
    std::vector<ServiceDump> inServiceDump() const;

    // --- statistics ---------------------------------------------------------
    std::uint64_t readRequests() const { return statReads.value(); }
    std::uint64_t ownershipRequests() const {
        return statWrites.value() + statUpgrades.value();
    }
    std::uint64_t invalidationsSent() const { return statInvals.value(); }
    std::uint64_t fetchesSent() const { return statFetches.value(); }
    std::uint64_t updatesForwarded() const { return statUpdates.value(); }
    std::uint64_t migratoryDetections() const {
        return statMigDetect.value();
    }
    std::uint64_t migratoryDemotions() const {
        return statMigDemote.value();
    }
    std::uint64_t writeBacks() const { return statWritebacks.value(); }
    /** LimitedPtr: times a set overflowed into broadcast mode. */
    std::uint64_t overflowBroadcasts() const {
        return statOverflowBcast.value();
    }
    /** LimitedPtr+Evict: sharers invalidated to free a pointer. */
    std::uint64_t pointerEvictions() const {
        return statPtrEvict.value();
    }

  private:
    enum class ReqKind
    {
        Read,
        Write,
        Upgrade,
        WriteBack,
        Update,
    };

    struct Queued
    {
        ReqKind kind;
        NodeId from;
        bool prefetch = false;
        std::uint32_t dirtyMask = 0;
        std::vector<std::uint32_t> words;
        Tick enqueuedAt = 0;  //!< attribution stamp (set in enqueue)
    };

    /** In-flight transaction state for one block. */
    struct Txn
    {
        ReqKind kind;
        NodeId requester;
        bool prefetch = false;
        bool fetchInv = false;     //!< owner must invalidate, not downgrade
        bool evicting = false;     //!< pointer eviction mid-read
        unsigned pendingAcks = 0;
        std::uint32_t dirtyMask = 0;            //!< CW update payload
        std::vector<std::uint32_t> words;       //!< CW update payload
        bool probing = false;      //!< CW+M migratory probe phase
        bool allGaveUp = true;
        NodeMask keepers;          //!< probe survivors
    };

    struct Entry
    {
        bool modified = false;
        NodeId owner = invalidNode;
        SharerSet sharers;
        bool migratory = false;
        NodeId lastWriter = invalidNode;
        NodeId lastUpdater = invalidNode;
        unsigned staleWbExpected = 0;

        bool inService = false;
        std::optional<Txn> txn;
        std::deque<Queued> queue;

        // Attribution milestones of the request currently in service
        // (src/obs/attrib.hh). Inert plain stores on state the home
        // already owns — written regardless of whether a sink is
        // installed, read only in finish() behind the sink's null
        // check, and never consulted by any protocol decision.
        Tick curEnqueuedAt = 0;   //!< entered the per-block queue
        Tick curDequeuedAt = 0;   //!< left the queue (service start)
        Tick curActionAt = 0;     //!< directory state read, acting
        Tick curFanoutAt = 0;     //!< inval/probe fan-out sent (0 none)
        Tick curLastRespAt = 0;   //!< last fan-out response (0 none)
        NodeId curFrom = invalidNode;
        ReqKind curKind = ReqKind::Read;
        std::uint8_t curFlags = 0;    //!< AttribRecord flag bits
        std::uint32_t curFanout = 0;  //!< fan-out width
    };

    /** Enqueue a request and start service if the block is idle. */
    void enqueue(Addr block, Queued req);
    void startNext(Addr block);
    void process(Addr block, const Queued &req);

    void processRead(Addr block, Entry &e, const Queued &req);
    void processWrite(Addr block, Entry &e, const Queued &req);
    void processUpgrade(Addr block, Entry &e, const Queued &req);
    void processWriteBack(Addr block, Entry &e, const Queued &req);
    void processUpdate(Addr block, Entry &e, const Queued &req);

    /** Classic migratory detection on an ownership request (non-CW). */
    void detectMigratoryOnWrite(Entry &e, NodeId from);

    /** Grant the shared copy a pointer eviction was making room for. */
    void completeEvictedRead(Addr block, Entry &e);

    /** Finish the current request and pick up the next queued one. */
    void finish(Addr block, Entry &e);

    /** Complete an invalidation-collecting write/upgrade transaction. */
    void completeOwnership(Addr block, Entry &e);

    /** Forward a CW update to @p targets and finish when acked. */
    void forwardUpdate(Addr block, Entry &e, const NodeMask &targets);

    /** Apply a combined write's dirty words to home memory. */
    void applyUpdateToMemory(Addr block, std::uint32_t mask,
                             const std::vector<std::uint32_t> &words);

    void sendReply(Addr block, NodeId to, ReplyKind kind,
                   unsigned payload);
    void sendInvalidate(Addr block, NodeId to);
    void sendFetch(Addr block, NodeId to, bool invalidate);
    void sendUpdateMsg(Addr block, NodeId to, std::uint32_t mask,
                       const std::vector<std::uint32_t> &words,
                       NodeId writer);
    void sendMigProbe(Addr block, NodeId to);

    NodeId self;
    Fabric &fabric;
    const MachineParams &params;
    SharerConfig scfg;
    std::unordered_map<Addr, Entry> entries;

    Counter statReads;
    Counter statWrites;
    Counter statUpgrades;
    Counter statInvals;
    Counter statFetches;
    Counter statUpdates;
    Counter statMigDetect;
    Counter statMigDemote;
    Counter statWritebacks;
    Counter statProbes;
    Counter statOverflowBcast;
    Counter statPtrEvict;
};

} // namespace cpx

#endif // CPX_PROTO_DIRECTORY_HH
