/**
 * @file
 * Directory sharer-set representations (DESIGN.md §16).
 *
 * The directory used to keep one raw `uint64_t` presence word per
 * block — a silent ceiling at 64 nodes and undefined behavior past
 * it. This file replaces that word with two value types:
 *
 *  - NodeMask: an exact bitset over `maxNodes` (256) nodes. Used
 *    wherever the protocol needs a concrete target set right now
 *    (invalidation fan-out, probe survivors, checker expansion).
 *
 *  - SharerSet: the per-block directory state, whose meaning depends
 *    on the configured representation:
 *      FullMap      one bit per node; exact (the paper's directory).
 *      LimitedPtr   Dir_i_B: up to `pointers` sharers named exactly;
 *                   on overflow either the whole set degrades to
 *                   "everyone" (Broadcast) or one pointed-to sharer
 *                   is invalidated to make room (Evict — the caller
 *                   drives the invalidation; see
 *                   DirectoryController::processRead).
 *      CoarseVector one bit per group of `coarseness` nodes; a set
 *                   bit means "some node in this group may hold a
 *                   copy", and bits are never cleared one node at a
 *                   time (membership of the other group members is
 *                   unprovable).
 *
 * The invariant every representation obeys: expand() is a SUPERSET
 * of the true holders — over-approximation costs extra invalidation
 * traffic (that is the measured trade-off at scale), while
 * under-approximation would silently break coherence. Operations
 * that cannot be performed precisely (removing one node from a
 * coarse group, pruning a broadcast set) are therefore no-ops.
 *
 * SharerSet is a dumb value type so Entry stays cheaply
 * default-constructible inside `entries[block]`; every operation
 * takes the SharerConfig that gives it meaning.
 */

#ifndef CPX_PROTO_SHARER_SET_HH
#define CPX_PROTO_SHARER_SET_HH

#include <array>
#include <cstdint>

#include "proto/params.hh"
#include "sim/types.hh"

namespace cpx
{

/** Exact bitset over node ids 0 .. maxNodes-1. */
struct NodeMask
{
    static constexpr unsigned words = maxNodes / 64;
    std::array<std::uint64_t, words> w{};

    static NodeMask
    single(NodeId n)
    {
        NodeMask m;
        m.set(n);
        return m;
    }

    void set(NodeId n) { w[n / 64] |= std::uint64_t(1) << (n % 64); }
    void clear(NodeId n) { w[n / 64] &= ~(std::uint64_t(1) << (n % 64)); }

    bool
    test(NodeId n) const
    {
        return (w[n / 64] >> (n % 64)) & 1;
    }

    bool
    none() const
    {
        for (std::uint64_t word : w)
            if (word)
                return false;
        return true;
    }

    unsigned
    count() const
    {
        unsigned c = 0;
        for (std::uint64_t word : w)
            c += static_cast<unsigned>(__builtin_popcountll(word));
        return c;
    }

    /** Low 64 bits — the legacy presence word for traces/snapshots. */
    std::uint64_t low64() const { return w[0]; }

    /** Visit set bits in ascending NodeId order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (unsigned wi = 0; wi < words; ++wi) {
            std::uint64_t word = w[wi];
            while (word) {
                unsigned b = static_cast<unsigned>(
                    __builtin_ctzll(word));
                f(NodeId(wi * 64 + b));
                word &= word - 1;
            }
        }
    }

    bool
    operator==(const NodeMask &o) const
    {
        return w == o.w;
    }
    bool operator!=(const NodeMask &o) const { return !(*this == o); }
};

/** Everything a SharerSet operation needs to interpret its state. */
struct SharerConfig
{
    DirectoryParams dir;
    unsigned numNodes = 16;

    SharerConfig() = default;
    SharerConfig(const DirectoryParams &d, unsigned nodes)
        : dir(d), numNodes(nodes)
    {
    }
};

class SharerSet
{
  public:
    /** Hard cap on LimitedPtr pointers (storage is inline). */
    static constexpr unsigned maxPointers = 16;

    /** Outcome of add(): what the caller must do next, if anything. */
    enum class AddOutcome
    {
        Added,            //!< recorded exactly (or already implied)
        AlreadyPresent,   //!< no state change
        WentBroadcast,    //!< pointer overflow degraded the set
        NeedsEviction,    //!< Evict policy: free a slot first (state
                          //!< untouched; see victim())
    };

    /**
     * Record node @p n as a sharer. Under LimitedPtr+Evict a full
     * set returns NeedsEviction without modifying anything — the
     * directory must invalidate victim() and retry once the ack
     * frees the slot.
     */
    AddOutcome
    add(const SharerConfig &cfg, NodeId n)
    {
        switch (cfg.dir.rep) {
          case DirRep::FullMap:
            if (mask.test(n))
                return AddOutcome::AlreadyPresent;
            mask.set(n);
            return AddOutcome::Added;
          case DirRep::CoarseVector: {
            unsigned g = n / cfg.dir.coarseness;
            if (mask.test(g))
                return AddOutcome::AlreadyPresent;
            mask.set(g);
            return AddOutcome::Added;
          }
          case DirRep::LimitedPtr:
            if (bcast)
                return AddOutcome::AlreadyPresent;
            for (unsigned i = 0; i < ptrCount; ++i)
                if (ptrs[i] == n)
                    return AddOutcome::AlreadyPresent;
            if (ptrCount < pointerCap(cfg)) {
                ptrs[ptrCount++] = n;
                return AddOutcome::Added;
            }
            if (cfg.dir.overflow == DirOverflowPolicy::Evict)
                return AddOutcome::NeedsEviction;
            bcast = true;
            ptrCount = 0;
            return AddOutcome::WentBroadcast;
        }
        return AddOutcome::Added;
    }

    /**
     * Forget node @p n where the representation can do so exactly.
     * Coarse groups and broadcast sets keep over-approximating —
     * shrinking them would drop a real sharer.
     */
    void
    remove(const SharerConfig &cfg, NodeId n)
    {
        switch (cfg.dir.rep) {
          case DirRep::FullMap:
            mask.clear(n);
            return;
          case DirRep::CoarseVector:
            return;
          case DirRep::LimitedPtr:
            if (bcast)
                return;
            for (unsigned i = 0; i < ptrCount; ++i) {
                if (ptrs[i] == n) {
                    // Stable-order compaction keeps victim() (slot
                    // 0) deterministic across runs.
                    for (unsigned j = i + 1; j < ptrCount; ++j)
                        ptrs[j - 1] = ptrs[j];
                    --ptrCount;
                    return;
                }
            }
            return;
        }
    }

    /** Reset to the exact singleton {n} (ownership grants). */
    void
    setOnly(const SharerConfig &cfg, NodeId n)
    {
        clearAll();
        add(cfg, n);
    }

    void
    clearAll()
    {
        mask = NodeMask{};
        ptrCount = 0;
        bcast = false;
    }

    /** True iff the set provably has no members. */
    bool
    empty(const SharerConfig &cfg) const
    {
        if (cfg.dir.rep == DirRep::LimitedPtr)
            return !bcast && ptrCount == 0;
        return mask.none();
    }

    /**
     * True iff the representation can PROVE @p n holds a copy. A
     * broadcast or coarse set may contain n without being able to
     * prove it — callers needing certainty (upgrade serving) must
     * fall back to the conservative path on false.
     */
    bool
    preciseContains(const SharerConfig &cfg, NodeId n) const
    {
        switch (cfg.dir.rep) {
          case DirRep::FullMap:
            return mask.test(n);
          case DirRep::CoarseVector:
            return false;
          case DirRep::LimitedPtr:
            if (bcast)
                return false;
            for (unsigned i = 0; i < ptrCount; ++i)
                if (ptrs[i] == n)
                    return true;
            return false;
        }
        return false;
    }

    /** True iff expand() is exactly the member set, not a superset. */
    bool
    exact(const SharerConfig &cfg) const
    {
        switch (cfg.dir.rep) {
          case DirRep::FullMap:
            return true;
          case DirRep::LimitedPtr:
            return !bcast;
          case DirRep::CoarseVector:
            return mask.none() || cfg.dir.coarseness == 1;
        }
        return true;
    }

    /** The nodes the protocol must treat as (possible) holders. */
    NodeMask
    expand(const SharerConfig &cfg) const
    {
        NodeMask out;
        switch (cfg.dir.rep) {
          case DirRep::FullMap:
            return mask;
          case DirRep::LimitedPtr:
            if (bcast) {
                for (NodeId n = 0; n < cfg.numNodes; ++n)
                    out.set(n);
                return out;
            }
            for (unsigned i = 0; i < ptrCount; ++i)
                out.set(ptrs[i]);
            return out;
          case DirRep::CoarseVector:
            mask.forEach([&](NodeId g) {
                NodeId first = g * cfg.dir.coarseness;
                for (NodeId n = first;
                     n < first + cfg.dir.coarseness &&
                     n < cfg.numNodes;
                     ++n)
                    out.set(n);
            });
            return out;
        }
        return out;
    }

    /** |expand()| without materializing the mask where avoidable. */
    unsigned
    expandedCount(const SharerConfig &cfg) const
    {
        if (cfg.dir.rep == DirRep::LimitedPtr)
            return bcast ? cfg.numNodes : ptrCount;
        if (cfg.dir.rep == DirRep::FullMap)
            return mask.count();
        return expand(cfg).count();
    }

    /**
     * Eviction candidate under LimitedPtr+Evict: the oldest pointer
     * (slot 0, FIFO thanks to stable-order removal). Only valid
     * right after add() returned NeedsEviction.
     */
    NodeId
    victim(const SharerConfig &cfg) const
    {
        (void)cfg;
        return ptrCount > 0 ? ptrs[0] : invalidNode;
    }

    /** True while a LimitedPtr set is degraded to "everyone". */
    bool broadcasting() const { return bcast; }

    static unsigned
    pointerCap(const SharerConfig &cfg)
    {
        return cfg.dir.pointers < maxPointers ? cfg.dir.pointers
                                              : maxPointers;
    }

  private:
    // FullMap: node bits. CoarseVector: group bits. LimitedPtr:
    // unused (the pointer array below is the state).
    NodeMask mask;
    std::array<NodeId, maxPointers> ptrs{};
    std::uint8_t ptrCount = 0;
    bool bcast = false;
};

} // namespace cpx

#endif // CPX_PROTO_SHARER_SET_HH
