/**
 * @file
 * Cooperative fibers (user-level contexts).
 *
 * Program-driven simulation needs one execution context per simulated
 * processor: workload code runs natively and blocks inside the
 * simulator API whenever a shared-memory access must be timed. Fibers
 * give us that with deterministic, single-OS-thread scheduling —
 * the same structure as the CacheMire Test Bench the paper used.
 *
 * On x86-64 ELF targets the switch is a dozen user-space instructions
 * (context_x86_64.S): swapcontext() performs a sigprocmask system
 * call on every switch, which profiling showed dominating the whole
 * simulator. Other targets fall back to POSIX ucontext. Only the
 * simulation kernel thread may touch fibers; they are not thread-safe
 * by design.
 */

#ifndef CPX_FIBER_FIBER_HH
#define CPX_FIBER_FIBER_HH

#if defined(__x86_64__) && defined(__ELF__)
#define CPX_FIBER_FAST_CONTEXT 1
#else
#include <ucontext.h>
#endif

#include <cstddef>
#include <functional>
#include <memory>

#ifdef CPX_FIBER_FAST_CONTEXT
extern "C" void cpx_fiber_entry(void *);
#endif

namespace cpx
{

/**
 * A run-to-yield cooperative execution context.
 *
 * Lifecycle: construct with an entry function; repeatedly resume()
 * until finished(). Inside the fiber, Fiber::yield() suspends and
 * returns control to the most recent resume() caller.
 */
class Fiber
{
  public:
    using Entry = std::function<void()>;

    /**
     * @param entry      function the fiber executes
     * @param stack_size fiber stack in bytes (workloads recurse very
     *                   little; 256 KiB default is generous)
     */
    explicit Fiber(Entry entry, std::size_t stack_size = 256 * 1024);

    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch into the fiber; returns when the fiber yields or its
     * entry function returns.
     * @pre !finished()
     */
    void resume();

    /**
     * Suspend the currently running fiber and return to its resumer.
     * @pre called from inside a fiber
     */
    static void yield();

    /** The fiber currently executing, or nullptr if on the main stack. */
    static Fiber *current();

    /** @return true once the entry function has returned. */
    bool finished() const { return finished_; }

  private:
    Entry entry;
    std::unique_ptr<char[]> stack;
#ifdef CPX_FIBER_FAST_CONTEXT
    friend void ::cpx_fiber_entry(void *);
    void *sp = nullptr;         //!< fiber's stack pointer while suspended
    void *callerSp = nullptr;   //!< resumer's stack pointer while inside
#else
    static void trampoline(unsigned hi, unsigned lo);
    ucontext_t context;
    ucontext_t callerContext;
#endif
    //! ThreadSanitizer fiber contexts (fiber.cc). Always present so
    //! the class layout does not depend on the sanitizer; touched
    //! only in TSAN builds, where the stack switch must be announced
    //! or TSAN sees one thread jumping between unrelated stacks.
    void *tsanFiber = nullptr;
    void *tsanCaller = nullptr;
    bool started = false;
    bool finished_ = false;
};

} // namespace cpx

#endif // CPX_FIBER_FIBER_HH
