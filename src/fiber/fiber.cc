#include "fiber/fiber.hh"

#include <cstdint>

#include "sim/logging.hh"

namespace cpx
{

namespace
{

/// The fiber running right now (nullptr on the scheduler's own stack).
thread_local Fiber *currentFiber = nullptr;

} // anonymous namespace

Fiber::Fiber(Entry entry_fn, std::size_t stack_size)
    : entry(std::move(entry_fn)), stack(new char[stack_size])
{
    if (getcontext(&context) != 0)
        panic("getcontext failed");
    context.uc_stack.ss_sp = stack.get();
    context.uc_stack.ss_size = stack_size;
    context.uc_link = nullptr;

    // makecontext only passes ints; smuggle the object pointer
    // through two 32-bit halves.
    auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber()
{
    if (started && !finished_)
        warn("destroying a fiber that has not finished");
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber *>(
        (static_cast<std::uintptr_t>(hi) << 32) | lo);
    self->entry();
    self->finished_ = true;
    // Return to the resumer for the last time.
    currentFiber = nullptr;
    swapcontext(&self->context, &self->callerContext);
    panic("resumed a finished fiber");
}

void
Fiber::resume()
{
    if (finished_)
        panic("resume() on a finished fiber");
    started = true;
    Fiber *previous = currentFiber;
    currentFiber = this;
    if (swapcontext(&callerContext, &context) != 0)
        panic("swapcontext into fiber failed");
    currentFiber = previous;
}

void
Fiber::yield()
{
    Fiber *self = currentFiber;
    if (!self)
        panic("Fiber::yield() called outside any fiber");
    currentFiber = nullptr;
    if (swapcontext(&self->context, &self->callerContext) != 0)
        panic("swapcontext out of fiber failed");
    currentFiber = self;
}

Fiber *
Fiber::current()
{
    return currentFiber;
}

} // namespace cpx
