#include "fiber/fiber.hh"

#include <cstdint>

#include "sim/logging.hh"

// ThreadSanitizer does not understand raw stack switches: without
// annotation it keeps attributing execution to the old stack and
// reports false races on everything the fiber touches. The fiber API
// (create/destroy/switch) tells it about every context explicitly.
#if defined(__SANITIZE_THREAD__)
#define CPX_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CPX_FIBER_TSAN 1
#endif
#endif

#ifdef CPX_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#define CPX_TSAN_CREATE(f)  ((f)->tsanFiber = __tsan_create_fiber(0))
#define CPX_TSAN_DESTROY(f)                                             \
    do {                                                                \
        if ((f)->tsanFiber)                                             \
            __tsan_destroy_fiber((f)->tsanFiber);                       \
    } while (0)
#define CPX_TSAN_ENTER(f)                                               \
    do {                                                                \
        (f)->tsanCaller = __tsan_get_current_fiber();                   \
        __tsan_switch_to_fiber((f)->tsanFiber, 0);                      \
    } while (0)
#define CPX_TSAN_LEAVE(f) __tsan_switch_to_fiber((f)->tsanCaller, 0)
#else
#define CPX_TSAN_CREATE(f)  ((void)0)
#define CPX_TSAN_DESTROY(f) ((void)0)
#define CPX_TSAN_ENTER(f)   ((void)0)
#define CPX_TSAN_LEAVE(f)   ((void)0)
#endif

#ifdef CPX_FIBER_FAST_CONTEXT
extern "C" {
/** Save callee-saved state, swap stacks (context_x86_64.S). */
void cpx_ctx_switch(void **save_sp, void *to_sp);
/** First activation target of a fresh fiber (context_x86_64.S). */
void cpx_ctx_boot();
}
#endif

namespace cpx
{

namespace
{

/// The fiber running right now (nullptr on the scheduler's own stack).
thread_local Fiber *currentFiber = nullptr;

} // anonymous namespace

#ifdef CPX_FIBER_FAST_CONTEXT

Fiber::Fiber(Entry entry_fn, std::size_t stack_size)
    : entry(std::move(entry_fn)), stack(new char[stack_size])
{
    // Build the frame cpx_ctx_switch restores on first entry: six
    // callee-saved register slots (the Fiber pointer in the r12 slot)
    // and cpx_ctx_boot as the return address. With the stack top
    // 16-byte aligned, the boot shim runs with the alignment its
    // call instruction requires.
    char *top = stack.get() + stack_size;
    top -= reinterpret_cast<std::uintptr_t>(top) & 15;
    void **frame = reinterpret_cast<void **>(top) - 7;
    frame[0] = nullptr;                                 // r15
    frame[1] = nullptr;                                 // r14
    frame[2] = nullptr;                                 // r13
    frame[3] = this;                                    // r12
    frame[4] = nullptr;                                 // rbx
    frame[5] = nullptr;                                 // rbp
    frame[6] = reinterpret_cast<void *>(&cpx_ctx_boot); // return address
    sp = frame;
    CPX_TSAN_CREATE(this);
}

#else // ucontext fallback

Fiber::Fiber(Entry entry_fn, std::size_t stack_size)
    : entry(std::move(entry_fn)), stack(new char[stack_size])
{
    if (getcontext(&context) != 0)
        panic("getcontext failed");
    context.uc_stack.ss_sp = stack.get();
    context.uc_stack.ss_size = stack_size;
    context.uc_link = nullptr;

    // makecontext only passes ints; smuggle the object pointer
    // through two 32-bit halves.
    auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
    CPX_TSAN_CREATE(this);
}

#endif

Fiber::~Fiber()
{
    if (started && !finished_)
        warn("destroying a fiber that has not finished");
    CPX_TSAN_DESTROY(this);
}

#ifndef CPX_FIBER_FAST_CONTEXT

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber *>(
        (static_cast<std::uintptr_t>(hi) << 32) | lo);
    self->entry();
    self->finished_ = true;
    // Return to the resumer for the last time.
    currentFiber = nullptr;
    CPX_TSAN_LEAVE(self);
    swapcontext(&self->context, &self->callerContext);
    panic("resumed a finished fiber");
}

#endif

void
Fiber::resume()
{
    if (finished_)
        panic("resume() on a finished fiber");
    started = true;
    Fiber *previous = currentFiber;
    currentFiber = this;
    CPX_TSAN_ENTER(this);
#ifdef CPX_FIBER_FAST_CONTEXT
    cpx_ctx_switch(&callerSp, sp);
#else
    if (swapcontext(&callerContext, &context) != 0)
        panic("swapcontext into fiber failed");
#endif
    currentFiber = previous;
}

void
Fiber::yield()
{
    Fiber *self = currentFiber;
    if (!self)
        panic("Fiber::yield() called outside any fiber");
    currentFiber = nullptr;
    CPX_TSAN_LEAVE(self);
#ifdef CPX_FIBER_FAST_CONTEXT
    cpx_ctx_switch(&self->sp, self->callerSp);
#else
    if (swapcontext(&self->context, &self->callerContext) != 0)
        panic("swapcontext out of fiber failed");
#endif
    currentFiber = self;
}

Fiber *
Fiber::current()
{
    return currentFiber;
}

} // namespace cpx

#ifdef CPX_FIBER_FAST_CONTEXT

/** C++ body of a fresh fiber's first activation; never returns. */
extern "C" void
cpx_fiber_entry(void *arg)
{
    auto *self = static_cast<cpx::Fiber *>(arg);
    self->entry();
    self->finished_ = true;
    // Return to the resumer for the last time.
    cpx::currentFiber = nullptr;
    CPX_TSAN_LEAVE(self);
    cpx_ctx_switch(&self->sp, self->callerSp);
    cpx::panic("resumed a finished fiber");
}

#endif
