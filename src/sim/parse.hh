/**
 * @file
 * Checked command-line number parsing.
 *
 * The drivers and the bench harness used to parse numeric options
 * with bare atoi()/atof(), which silently turn `--procs=abc` into 0
 * and accept trailing garbage (`--scale=1.5x`). These helpers
 * fatal() with the option name on malformed input instead, so a typo
 * in a sweep invocation dies loudly rather than simulating the wrong
 * machine.
 */

#ifndef CPX_SIM_PARSE_HH
#define CPX_SIM_PARSE_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "sim/logging.hh"

namespace cpx
{

/** Parse an unsigned integer; fatal() on malformed/overflowing text. */
inline std::uint64_t
parseU64(const char *text, const char *option)
{
    if (!text || !*text)
        fatal("%s: empty value (expected a number)", option);
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
        fatal("%s: malformed number '%s'", option, text);
    if (errno == ERANGE)
        fatal("%s: value '%s' out of range", option, text);
    if (text[0] == '-')
        fatal("%s: negative value '%s'", option, text);
    return static_cast<std::uint64_t>(v);
}

/** Parse an unsigned int that fits in `unsigned`. */
inline unsigned
parseUnsigned(const char *text, const char *option)
{
    std::uint64_t v = parseU64(text, option);
    if (v > 0xffffffffu)
        fatal("%s: value '%s' out of range", option, text);
    return static_cast<unsigned>(v);
}

/** Parse an unsigned int that must be strictly positive. */
inline unsigned
parsePositiveUnsigned(const char *text, const char *option)
{
    unsigned v = parseUnsigned(text, option);
    if (v == 0)
        fatal("%s: must be positive", option);
    return v;
}

/** Parse a double; fatal() on malformed text or trailing garbage. */
inline double
parseDouble(const char *text, const char *option)
{
    if (!text || !*text)
        fatal("%s: empty value (expected a number)", option);
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal("%s: malformed number '%s'", option, text);
    if (errno == ERANGE)
        fatal("%s: value '%s' out of range", option, text);
    return v;
}

/** Parse a double that must be strictly positive. */
inline double
parsePositiveDouble(const char *text, const char *option)
{
    double v = parseDouble(text, option);
    if (!(v > 0.0))
        fatal("%s: must be positive", option);
    return v;
}

} // namespace cpx

#endif // CPX_SIM_PARSE_HH
