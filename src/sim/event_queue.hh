/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives a whole simulated machine. Events are
 * arbitrary callbacks scheduled at absolute ticks; ties are broken by
 * insertion order so that simulations are fully deterministic.
 *
 * The queue is a two-level calendar: a near-future ring of one-tick
 * FIFO buckets (with a bitmap index so the next event is found by a
 * find-first-set scan, not a heap percolation) and a far-future
 * overflow tree for events beyond the ring's window. Event nodes come
 * from an intrusive free list and callbacks are stored inline
 * (sim/inline_function.hh), so steady-state scheduling performs zero
 * heap allocations; the rare exceptions are counted and reported
 * (scheduleAllocs). See DESIGN.md §8 for the structure and the
 * determinism argument.
 */

#ifndef CPX_SIM_EVENT_QUEUE_HH
#define CPX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace cpx
{

/**
 * A deterministic discrete-event scheduler.
 *
 * All components of one simulated system share one queue. The queue
 * is intentionally not thread-safe: the whole simulator is
 * single-threaded (determinism is a design requirement, see
 * DESIGN.md §8).
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<80>;

    /**
     * Handle to a pending event, returned by schedule(). Stays valid
     * (for cancel()) until the event executes or is cancelled; a
     * stale handle is recognized and rejected via a generation tag,
     * so cancelling an already-fired event is a safe no-op.
     */
    struct EventId
    {
        void *node = nullptr;
        std::uint32_t gen = 0;

        explicit operator bool() const { return node != nullptr; }
    };

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     * @return a handle usable with cancel()
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, Callback cb) {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Schedule @p body to run every @p period ticks, starting
     * @p period ticks from now, until it returns false. The repeat
     * unschedules itself on a false return, so a bounded body (e.g.
     * the interval sampler, which stops when the processors finish)
     * never keeps run() from draining the queue.
     * @pre period > 0
     */
    void scheduleEvery(Tick period, std::function<bool()> body);

    /**
     * Cancel a pending event. The callback is dropped without
     * running; its node is reclaimed when the queue sweeps past it.
     * @return true iff @p id named a still-pending event
     */
    bool cancel(EventId id);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** @return true iff no (uncancelled) events remain. */
    bool empty() const { return pending_ == 0; }

    /** Number of pending (uncancelled) events. */
    std::size_t pending() const { return pending_; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /** High-water mark of pending(). */
    std::size_t peakPending() const { return peakPending_; }

    /**
     * Number of schedule() calls that performed a heap allocation:
     * an event-pool refill, or a callback too large for the inline
     * buffer. Steady-state simulation should hold this near zero
     * relative to executed().
     */
    std::uint64_t scheduleAllocs() const { return schedAllocs_; }

    /**
     * Run events until the queue drains or @p limit ticks have been
     * simulated.
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /**
     * Execute every event strictly before @p horizon, in (tick,
     * insertion-order) order, and stop — the slab primitive of the
     * parallel kernel (DESIGN.md §15). Unlike run(), now() is left at
     * the last executed event, so a later slab (or a cross-queue
     * insertion at >= horizon) never observes time it has not reached.
     */
    void runUntil(Tick horizon);

    /**
     * Earliest tick holding a live (uncancelled) event, or maxTick if
     * none. Prunes cancelled events off the front as a side effect;
     * semantics are unchanged (lazy deletion would reclaim them on
     * the next pop anyway).
     */
    Tick nextPendingTick();

    /**
     * Address of the current-time counter, for per-slab trace
     * stamping (Logger::setTickSource) when several queues share one
     * host thread.
     */
    const std::uint64_t *tickPtr() const { return &now_; }

    /**
     * Execute exactly one event (the earliest).
     * @return false if the queue was empty.
     */
    bool step();

  private:
    struct Event;

    /** FIFO of events; one per ring bucket / overflow tick. */
    struct List
    {
        Event *head = nullptr;
        Event *tail = nullptr;
        std::size_t n = 0;
    };

    /** Ring width in ticks (= bucket count); power of two. */
    static constexpr std::size_t ringSize = 2048;
    static constexpr std::size_t ringMask = ringSize - 1;
    static constexpr std::size_t ringWords = ringSize / 64;

    Event *allocEvent();
    void releaseEvent(Event *e);
    void pushRing(Event *e);
    std::size_t findRingFront() const;  //!< bucket index; npos if none
    void migrateOverflow();
    Event *popEarliestLive(Tick limit);
    void execute(Event *e);

    std::vector<List> ring;           //!< ringSize one-tick buckets
    std::uint64_t ringBits[ringWords] = {};
    std::map<Tick, List> overflow;    //!< events beyond the window
    Tick now_ = 0;
    Tick horizon_ = 0;                //!< first tick the ring covers
    std::size_t ringNodes = 0;        //!< nodes (live or cancelled) in ring
    std::size_t pending_ = 0;         //!< live pending events
    std::size_t peakPending_ = 0;
    std::uint64_t numExecuted = 0;
    std::uint64_t schedAllocs_ = 0;

    Event *freeList = nullptr;
    std::vector<std::unique_ptr<Event[]>> chunks;
};

} // namespace cpx

#endif // CPX_SIM_EVENT_QUEUE_HH
