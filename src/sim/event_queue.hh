/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives a whole simulated machine. Events are
 * arbitrary callbacks scheduled at absolute ticks; ties are broken by
 * insertion order so that simulations are fully deterministic.
 */

#ifndef CPX_SIM_EVENT_QUEUE_HH
#define CPX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace cpx
{

/**
 * A deterministic discrete-event scheduler.
 *
 * All components of one simulated system share one queue. The queue
 * is intentionally not thread-safe: the whole simulator is
 * single-threaded (determinism is a design requirement, see
 * DESIGN.md §8).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback cb) {
        schedule(now_ + delay, std::move(cb));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** @return true iff no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Run events until the queue drains or @p limit ticks have been
     * simulated.
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /**
     * Execute exactly one event (the earliest).
     * @return false if the queue was empty.
     */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;  //!< insertion order, breaks ties
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick now_ = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace cpx

#endif // CPX_SIM_EVENT_QUEUE_HH
