/**
 * @file
 * Fundamental scalar types shared by every cpx subsystem.
 *
 * The simulator counts time in processor clocks ("pclocks") of the
 * 100 MHz processors modelled by the paper (1 pclock = 10 ns). All
 * latency parameters elsewhere in the code base are expressed in
 * pclocks.
 */

#ifndef CPX_SIM_TYPES_HH
#define CPX_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace cpx
{

/** Simulated time, in processor clock cycles (pclocks). */
using Tick = std::uint64_t;

/** Sentinel for "no/unset time". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** A physical/virtual address in the simulated shared address space. */
using Addr = std::uint64_t;

/** Identifier of a processor node (0 .. numNodes-1). */
using NodeId = std::uint32_t;

/** Sentinel node id. */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/**
 * Hard upper bound on the number of nodes in one simulated machine.
 * Everything that stores per-node membership (the directory's
 * sharer sets, trace records, mesh link tables) is sized against
 * this, and System construction rejects larger configurations.
 */
constexpr unsigned maxNodes = 256;

/**
 * Sentinel used when a NodeId is packed into a 16-bit trace field
 * (TraceRecord::aux peer halves, directory-state owner encoding).
 * Must stay above every real node id so 256-node traces cannot
 * alias it.
 */
constexpr std::uint32_t tracePeerNone = 0xffffu;

static_assert(maxNodes < tracePeerNone,
              "node ids must fit below the packed-peer sentinel");

/** Number of bytes in one simulated machine word. */
constexpr unsigned wordBytes = 4;

} // namespace cpx

#endif // CPX_SIM_TYPES_HH
