#include "sim/stats.hh"

#include <cstdarg>
#include <cstdio>

#include "sim/logging.hh"

namespace cpx
{

namespace
{

/** printf into a growing std::string; never truncates. */
void
append(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
append(std::string &out, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed > 0) {
        std::size_t old = out.size();
        out.resize(old + static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(&out[old], static_cast<std::size_t>(needed) + 1,
                       fmt, args);
        out.resize(old + static_cast<std::size_t>(needed));
    }
    va_end(args);
}

} // anonymous namespace

double
Histogram::percentile(double p) const
{
    const std::uint64_t total = acc.count();
    if (total == 0)
        return 0.0;
    // The target rank, 1-based: the smallest k with p <= k/total.
    const double target = p * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        const std::uint64_t before = cumulative;
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) < target)
            continue;
        // Interpolate inside bucket i: how far into the bucket's
        // count the rank falls maps linearly onto its value range.
        const double frac =
            (target - static_cast<double>(before)) /
            static_cast<double>(buckets[i]);
        const double lo = static_cast<double>(i) *
                          static_cast<double>(width);
        double v = lo + frac * static_cast<double>(width);
        // The interpolation can't be more precise than the exact
        // extremes the accumulator tracked.
        return std::min(std::max(v, acc.min()), acc.max());
    }
    // Rank lands in the overflow bucket: the bucketed data cannot
    // resolve the tail, so report the exact observed maximum.
    return acc.max();
}

void
Histogram::merge(const Histogram &other)
{
    if (width != other.width ||
        buckets.size() != other.buckets.size()) {
        panic("Histogram::merge: geometry mismatch "
              "(width %llu/%llu, buckets %zu/%zu)",
              static_cast<unsigned long long>(width),
              static_cast<unsigned long long>(other.width),
              buckets.size(), other.buckets.size());
    }
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    overflow += other.overflow;
    acc.merge(other.acc);
}

void
StatGroup::dump(std::string &out) const
{
    // Names are unbounded (they embed node numbers and caller-chosen
    // prefixes): format through a measured two-pass vsnprintf so
    // long group/stat names are never silently truncated.
    for (const auto &[stat_name, counter] : counters) {
        append(out, "%s.%s %llu\n", name_.c_str(), stat_name.c_str(),
               static_cast<unsigned long long>(counter->value()));
    }
    for (const auto &[stat_name, acc] : accumulators) {
        append(out, "%s.%s count=%llu mean=%.4f min=%.4f max=%.4f\n",
               name_.c_str(), stat_name.c_str(),
               static_cast<unsigned long long>(acc->count()),
               acc->mean(), acc->min(), acc->max());
    }
}

} // namespace cpx
