#include "sim/stats.hh"

#include <cstdarg>
#include <cstdio>

namespace cpx
{

namespace
{

/** printf into a growing std::string; never truncates. */
void
append(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
append(std::string &out, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed > 0) {
        std::size_t old = out.size();
        out.resize(old + static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(&out[old], static_cast<std::size_t>(needed) + 1,
                       fmt, args);
        out.resize(old + static_cast<std::size_t>(needed));
    }
    va_end(args);
}

} // anonymous namespace

void
StatGroup::dump(std::string &out) const
{
    // Names are unbounded (they embed node numbers and caller-chosen
    // prefixes): format through a measured two-pass vsnprintf so
    // long group/stat names are never silently truncated.
    for (const auto &[stat_name, counter] : counters) {
        append(out, "%s.%s %llu\n", name_.c_str(), stat_name.c_str(),
               static_cast<unsigned long long>(counter->value()));
    }
    for (const auto &[stat_name, acc] : accumulators) {
        append(out, "%s.%s count=%llu mean=%.4f min=%.4f max=%.4f\n",
               name_.c_str(), stat_name.c_str(),
               static_cast<unsigned long long>(acc->count()),
               acc->mean(), acc->min(), acc->max());
    }
}

} // namespace cpx
