#include "sim/stats.hh"

#include <cstdio>

namespace cpx
{

void
StatGroup::dump(std::string &out) const
{
    char line[256];
    for (const auto &[stat_name, counter] : counters) {
        std::snprintf(line, sizeof(line), "%s.%s %llu\n", name_.c_str(),
                      stat_name.c_str(),
                      static_cast<unsigned long long>(counter->value()));
        out += line;
    }
    for (const auto &[stat_name, acc] : accumulators) {
        std::snprintf(line, sizeof(line),
                      "%s.%s count=%llu mean=%.4f min=%.4f max=%.4f\n",
                      name_.c_str(), stat_name.c_str(),
                      static_cast<unsigned long long>(acc->count()),
                      acc->mean(), acc->min(), acc->max());
        out += line;
    }
}

} // namespace cpx
