#include "sim/logging.hh"

#include <cstdlib>

namespace cpx
{

bool Logger::allEnabled = false;
std::unordered_set<std::string> Logger::enabledTags;
thread_local const std::uint64_t *Logger::tickSource = nullptr;
thread_local Logger::FailureHook Logger::failureHook = nullptr;
thread_local void *Logger::failureCtx = nullptr;

void
Logger::enable(const std::string &tag)
{
    enabledTags.insert(tag);
}

void
Logger::enableAll()
{
    allEnabled = true;
}

void
Logger::disableAll()
{
    allEnabled = false;
    enabledTags.clear();
}

bool
Logger::enabled(const std::string &tag)
{
    return allEnabled || enabledTags.count(tag) != 0;
}

void
Logger::setTickSource(const std::uint64_t *tick_ptr)
{
    tickSource = tick_ptr;
}

void
Logger::clearTickSource(const std::uint64_t *tick_ptr)
{
    if (tickSource == tick_ptr)
        tickSource = nullptr;
}

std::uint64_t
Logger::currentTick()
{
    return tickSource ? *tickSource : 0;
}

void
Logger::setFailureHook(FailureHook hook, void *ctx)
{
    failureHook = hook;
    failureCtx = ctx;
}

void
Logger::clearFailureHook(void *ctx)
{
    if (failureCtx == ctx) {
        failureHook = nullptr;
        failureCtx = nullptr;
    }
}

void
Logger::invokeFailureHook()
{
    FailureHook hook = failureHook;
    void *ctx = failureCtx;
    failureHook = nullptr;
    failureCtx = nullptr;
    if (hook)
        hook(ctx);
}

void
Logger::trace(const char *tag, const char *fmt, ...)
{
    std::uint64_t now = tickSource ? *tickSource : 0;
    std::fprintf(stderr, "%10llu: %-6s: ",
                 static_cast<unsigned long long>(now), tag);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

namespace
{

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    Logger::invokeFailureHook();
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    Logger::invokeFailureHook();
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace cpx
