/**
 * @file
 * Lightweight statistics primitives.
 *
 * Stats are plain value types owned by the component they describe;
 * a StatGroup gives them names so reports can be generated
 * generically. There is no global registry: a simulated System owns
 * the root group, so several systems can coexist in one process
 * (needed by the benchmark harness, which runs many configurations).
 */

#ifndef CPX_SIM_STATS_HH
#define CPX_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cpx
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; reports count/sum/min/max/mean. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Fold @p other in, as if its samples had been taken here. */
    void
    merge(const Accumulator &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        count_ += other.count_;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

    /**
     * Overwrite the internal state with previously observed values —
     * the deserialization path of the sweep runner's subprocess wire
     * format (bench/runner.cc), which must reconstruct results
     * bit-identically on the parent side.
     */
    void
    restore(std::uint64_t count, double sum, double min, double max)
    {
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width bucketed histogram with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket
     * @param num_buckets  number of regular buckets; samples at or
     *                     beyond bucket_width*num_buckets land in the
     *                     overflow bucket
     */
    explicit Histogram(std::uint64_t bucket_width = 1,
                       std::size_t num_buckets = 16)
        : width(bucket_width ? bucket_width : 1),
          buckets(num_buckets, 0)
    {}

    void
    sample(std::uint64_t v)
    {
        acc.sample(static_cast<double>(v));
        std::size_t idx = v / width;
        if (idx >= buckets.size())
            ++overflow;
        else
            ++buckets[idx];
    }

    const std::vector<std::uint64_t> &bucketCounts() const {
        return buckets;
    }
    std::uint64_t overflowCount() const { return overflow; }
    std::uint64_t bucketWidth() const { return width; }
    const Accumulator &summary() const { return acc; }

    /**
     * Estimate the @p p quantile (0 < p <= 1) from the bucket counts:
     * linear interpolation inside the bucket holding the rank,
     * clamped to the exact observed [min, max]; ranks landing in the
     * overflow bucket report the observed max (the bucketed data
     * cannot resolve the tail beyond it). Returns 0 when empty.
     */
    double percentile(double p) const;

    /**
     * Fold @p other in (per-node → system aggregation). Mismatched
     * bucket geometry is a hard error in every build type: a silent
     * bucket-by-bucket add of differently-scaled histograms would
     * corrupt percentiles undetectably in release builds.
     */
    void merge(const Histogram &other);

    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        overflow = 0;
        acc.reset();
    }

    /**
     * Overwrite bucket counts, overflow and summary with previously
     * observed values (subprocess wire deserialization). @p counts
     * may be shorter than the geometry (trailing zero buckets
     * trimmed); it must not be longer. Returns false (and leaves the
     * histogram reset) on a geometry mismatch.
     */
    bool
    restore(const std::vector<std::uint64_t> &counts,
            std::uint64_t overflow_count, const Accumulator &summary)
    {
        reset();
        if (counts.size() > buckets.size())
            return false;
        std::copy(counts.begin(), counts.end(), buckets.begin());
        overflow = overflow_count;
        acc = summary;
        return true;
    }

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    Accumulator acc;
};

/**
 * A named bag of scalar statistics for report generation. Components
 * register references to their counters; dump() walks them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void
    addCounter(const std::string &stat_name, const Counter *c)
    {
        counters[stat_name] = c;
    }

    void
    addAccumulator(const std::string &stat_name, const Accumulator *a)
    {
        accumulators[stat_name] = a;
    }

    const std::string &name() const { return name_; }

    /** Render "group.stat value" lines into @p out. */
    void dump(std::string &out) const;

  private:
    std::string name_;
    std::map<std::string, const Counter *> counters;
    std::map<std::string, const Accumulator *> accumulators;
};

} // namespace cpx

#endif // CPX_SIM_STATS_HH
