#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace cpx
{

EventQueue::EventQueue()
{
    // Thread-local: each host thread's traces are stamped by the
    // queue of the System running on that thread.
    Logger::setTickSource(&now_);
}

EventQueue::~EventQueue()
{
    // Drop the tick source only if it still points at this queue, so
    // destroying an older System never dangles or clobbers a newer
    // one constructed on the same thread.
    Logger::clearTickSource(&now_);
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    heap.push(Entry{when, nextSeq++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which
    // is safe because pop() follows immediately.
    Entry entry = std::move(const_cast<Entry &>(heap.top()));
    heap.pop();
    now_ = entry.when;
    ++numExecuted;
    entry.cb();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (!heap.empty() && heap.top().when <= limit) {
        if (!step())
            break;
    }
    if (now_ < limit && heap.empty())
        return now_;
    if (!heap.empty())
        now_ = limit;
    return now_;
}

} // namespace cpx
