#include "sim/event_queue.hh"

#include <bit>

#include "sim/logging.hh"

namespace cpx
{

/**
 * A pending event. Nodes live in pool chunks owned by the queue and
 * cycle through an intrusive free list; @c gen distinguishes a node's
 * successive incarnations so stale EventIds can't cancel a reused
 * node (a given node would have to be recycled 2^32 times between
 * schedule() and cancel() for a false match).
 */
struct EventQueue::Event
{
    Event *next = nullptr;      //!< FIFO / free-list link
    Tick when = 0;
    std::uint32_t gen = 0;
    bool cancelled = false;
    Callback cb;
};

EventQueue::EventQueue()
{
    ring.resize(ringSize);
    // Thread-local: each host thread's traces are stamped by the
    // queue of the System running on that thread.
    Logger::setTickSource(&now_);
}

EventQueue::~EventQueue()
{
    // Drop the tick source only if it still points at this queue, so
    // destroying an older System never dangles or clobbers a newer
    // one constructed on the same thread.
    Logger::clearTickSource(&now_);
}

EventQueue::Event *
EventQueue::allocEvent()
{
    if (!freeList) {
        // Pool refill: the only node allocation the queue ever does.
        ++schedAllocs_;
        constexpr std::size_t chunkEvents = 256;
        chunks.push_back(std::make_unique<Event[]>(chunkEvents));
        Event *arr = chunks.back().get();
        for (std::size_t i = 0; i < chunkEvents; ++i) {
            arr[i].next = freeList;
            freeList = &arr[i];
        }
    }
    Event *e = freeList;
    freeList = e->next;
    e->next = nullptr;
    return e;
}

void
EventQueue::releaseEvent(Event *e)
{
    e->cb = nullptr;
    ++e->gen;   // invalidate any EventId still naming this node
    e->next = freeList;
    freeList = e;
}

void
EventQueue::pushRing(Event *e)
{
    const std::size_t idx = e->when & ringMask;
    List &bucket = ring[idx];
    if (bucket.tail)
        bucket.tail->next = e;
    else
        bucket.head = e;
    bucket.tail = e;
    ++bucket.n;
    ringBits[idx / 64] |= std::uint64_t{1} << (idx % 64);
    ++ringNodes;
}

std::size_t
EventQueue::findRingFront() const
{
    if (ringNodes == 0)
        return ringSize;
    // Circular scan from the window start: bucket distance from
    // horizon_'s slot equals tick distance from horizon_, so the
    // first set bit in circular order is the earliest tick.
    const std::size_t start = horizon_ & ringMask;
    const std::size_t startWord = start / 64;
    const std::size_t startBit = start % 64;
    std::uint64_t w = ringBits[startWord] & (~std::uint64_t{0} << startBit);
    if (w)
        return startWord * 64 + std::countr_zero(w);
    for (std::size_t i = 1; i <= ringWords; ++i) {
        const std::size_t wi = (startWord + i) & (ringWords - 1);
        w = ringBits[wi];
        if (wi == startWord)
            w &= ~(~std::uint64_t{0} << startBit);
        if (w)
            return wi * 64 + std::countr_zero(w);
    }
    return ringSize;
}

void
EventQueue::migrateOverflow()
{
    // Move every overflow tick the window now covers into the ring.
    // Whole per-tick lists are spliced, and a covered tick's bucket
    // is necessarily empty beforehand, so same-tick insertion order
    // survives the migration.
    const bool satur = horizon_ > maxTick - ringSize;
    const Tick target = satur ? maxTick : horizon_ + ringSize;
    auto it = overflow.lower_bound(horizon_);
    while (it != overflow.end() && (satur || it->first < target)) {
        const std::size_t idx = it->first & ringMask;
        List &bucket = ring[idx];
        List &l = it->second;
        if (bucket.tail)
            bucket.tail->next = l.head;
        else
            bucket.head = l.head;
        bucket.tail = l.tail;
        bucket.n += l.n;
        ringBits[idx / 64] |= std::uint64_t{1} << (idx % 64);
        ringNodes += l.n;
        it = overflow.erase(it);
    }
}

EventQueue::Event *
EventQueue::popEarliestLive(Tick limit)
{
    for (;;) {
        const std::size_t idx = findRingFront();
        if (idx == ringSize) {
            if (overflow.empty())
                return nullptr;
            // Ring drained: jump the window to the overflow front.
            // migrateOverflow() starts at lower_bound(horizon_), so
            // at least the front list lands in the ring.
            horizon_ = overflow.begin()->first;
            migrateOverflow();
            continue;
        }
        List &bucket = ring[idx];
        Event *e = bucket.head;
        // An overflow tick below the ring front can only be a "gap"
        // event — one scheduled below the window after run() was
        // truncated mid-window — and is served straight from the
        // tree. Ring and overflow never share a tick, so this
        // comparison has no tie to break.
        const bool fromRing =
            overflow.empty() || overflow.begin()->first > e->when;
        if (!fromRing)
            e = overflow.begin()->second.head;
        if (!e->cancelled && e->when > limit)
            return nullptr;
        if (fromRing) {
            bucket.head = e->next;
            if (!bucket.head)
                bucket.tail = nullptr;
            if (--bucket.n == 0)
                ringBits[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
            --ringNodes;
        } else {
            auto it = overflow.begin();
            List &l = it->second;
            l.head = e->next;
            if (!l.head)
                l.tail = nullptr;
            if (--l.n == 0)
                overflow.erase(it);
        }
        e->next = nullptr;
        if (e->cancelled) {
            // Lazy deletion: reclaim the node now that the sweep
            // reached it.
            releaseEvent(e);
            continue;
        }
        --pending_;
        return e;
    }
}

void
EventQueue::execute(Event *e)
{
    now_ = e->when;
    if (horizon_ < now_) {
        // Keep the window's start pinned to now so short-delay
        // schedules (the common case) always land in the ring.
        horizon_ = now_;
        if (!overflow.empty())
            migrateOverflow();
    }
    ++numExecuted;
    // Move the callback out and release the node *before* invoking,
    // so the callback may freely schedule (and immediately reuse the
    // node).
    Callback cb = std::move(e->cb);
    releaseEvent(e);
    cb();
}

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    Event *e = allocEvent();
    if (cb.onHeap())
        ++schedAllocs_;
    e->when = when;
    e->cancelled = false;
    e->cb = std::move(cb);
    // Near the Tick range's end the window is clipped to maxTick and
    // when - horizon_ still stays below ringSize, so saturation needs
    // no special case here.
    if (when >= horizon_ && when - horizon_ < ringSize) {
        pushRing(e);
    } else {
        List &l = overflow[when];
        if (l.tail)
            l.tail->next = e;
        else
            l.head = e;
        l.tail = e;
        ++l.n;
    }
    ++pending_;
    if (pending_ > peakPending_)
        peakPending_ = pending_;
    return EventId{e, e->gen};
}

void
EventQueue::scheduleEvery(Tick period, std::function<bool()> body)
{
    if (period == 0)
        panic("scheduleEvery: period must be > 0");
    // The shared_ptr keeps the (possibly large) body off the inline
    // callback buffer; each firing re-arms with the same handle, so
    // the repeat costs one pooled event node per period.
    struct Repeat
    {
        static void
        arm(EventQueue &eq, Tick period,
            std::shared_ptr<std::function<bool()>> body)
        {
            eq.scheduleIn(period, [&eq, period, body] {
                if ((*body)())
                    arm(eq, period, body);
            });
        }
    };
    Repeat::arm(*this, period,
                std::make_shared<std::function<bool()>>(
                    std::move(body)));
}

bool
EventQueue::cancel(EventId id)
{
    if (!id.node)
        return false;
    Event *e = static_cast<Event *>(id.node);
    if (e->gen != id.gen || e->cancelled)
        return false;
    e->cancelled = true;
    e->cb = nullptr;    // drop captured resources eagerly
    --pending_;
    return true;
}

bool
EventQueue::step()
{
    Event *e = popEarliestLive(maxTick);
    if (!e)
        return false;
    execute(e);
    return true;
}

void
EventQueue::runUntil(Tick horizon)
{
    if (horizon == 0)
        return;
    const Tick limit = horizon - 1;
    for (;;) {
        Event *e = popEarliestLive(limit);
        if (!e)
            break;
        execute(e);
    }
}

Tick
EventQueue::nextPendingTick()
{
    if (pending_ == 0)
        return maxTick;
    for (;;) {
        const std::size_t idx = findRingFront();
        if (idx == ringSize) {
            if (overflow.empty())
                return maxTick;
            horizon_ = overflow.begin()->first;
            migrateOverflow();
            continue;
        }
        List &bucket = ring[idx];
        Event *e = bucket.head;
        const bool fromRing =
            overflow.empty() || overflow.begin()->first > e->when;
        if (!fromRing)
            e = overflow.begin()->second.head;
        if (!e->cancelled)
            return e->when;
        // Prune the cancelled front node exactly as popEarliestLive
        // would, then look again.
        if (fromRing) {
            bucket.head = e->next;
            if (!bucket.head)
                bucket.tail = nullptr;
            if (--bucket.n == 0)
                ringBits[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
            --ringNodes;
        } else {
            auto it = overflow.begin();
            List &l = it->second;
            l.head = e->next;
            if (!l.head)
                l.tail = nullptr;
            if (--l.n == 0)
                overflow.erase(it);
        }
        e->next = nullptr;
        releaseEvent(e);
    }
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        Event *e = popEarliestLive(limit);
        if (!e)
            break;
        execute(e);
    }
    if (pending_ != 0 && now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace cpx
