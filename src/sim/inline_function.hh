/**
 * @file
 * Small-callback storage for the event kernel.
 *
 * std::function heap-allocates any callable whose captures exceed its
 * tiny internal buffer (16 bytes on the common ABIs), and nearly every
 * event the protocol schedules captures more than that — so with
 * std::function the simulator pays one malloc/free per scheduled
 * event. InlineFunction is a move-only std::function replacement with
 * a buffer sized for the capture lists that actually occur in
 * src/proto, src/net and src/node (a this-pointer plus a handful of
 * scalars, or a forwarded continuation behind a unique_ptr). Callables
 * that fit are stored inline; oversized or over-aligned ones fall back
 * to a single heap cell, and the fallback is observable through
 * onHeap() so the event queue can count it (see
 * EventQueue::scheduleAllocs).
 *
 * Unlike std::function, InlineFunction accepts move-only callables
 * (e.g. lambdas owning a unique_ptr or another InlineFunction), which
 * the messenger's staged delivery chain relies on.
 */

#ifndef CPX_SIM_INLINE_FUNCTION_HH
#define CPX_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cpx
{

template <std::size_t Capacity = 80>
class InlineFunction
{
  public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<void, D &>>>
    InlineFunction(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf)) D(std::forward<F>(f));
            ops = &inlineOps<D>;
        } else {
            *reinterpret_cast<void **>(buf) =
                new D(std::forward<F>(f));
            ops = &heapOps<D>;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept
    {
        moveFrom(other);
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    void operator()() { ops->invoke(buf); }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** True iff the held callable did not fit the inline buffer. */
    bool onHeap() const noexcept { return ops && ops->heap; }

    static constexpr std::size_t capacity() { return Capacity; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *from, void *to) noexcept;
        void (*destroy)(void *) noexcept;
        bool heap;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= Capacity &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops = other.ops;
        if (ops) {
            ops->relocate(other.buf, buf);
            other.ops = nullptr;
        }
    }

    template <typename D>
    static constexpr Ops inlineOps{
        [](void *p) { (*static_cast<D *>(p))(); },
        [](void *from, void *to) noexcept {
            D *src = static_cast<D *>(from);
            ::new (to) D(std::move(*src));
            src->~D();
        },
        [](void *p) noexcept { static_cast<D *>(p)->~D(); },
        false,
    };

    template <typename D>
    static constexpr Ops heapOps{
        [](void *p) { (**static_cast<D **>(p))(); },
        [](void *from, void *to) noexcept {
            *static_cast<void **>(to) = *static_cast<void **>(from);
        },
        [](void *p) noexcept { delete *static_cast<D **>(p); },
        true,
    };

    const Ops *ops = nullptr;
    alignas(std::max_align_t) unsigned char buf[Capacity];
};

} // namespace cpx

#endif // CPX_SIM_INLINE_FUNCTION_HH
