/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workloads need reproducible randomness (particle positions, initial
 * velocities, ...). std::mt19937 would work but its seeding and
 * distribution behaviour is implementation-defined in places; this
 * xoshiro256** implementation gives bit-identical streams everywhere.
 */

#ifndef CPX_SIM_RANDOM_HH
#define CPX_SIM_RANDOM_HH

#include <cstdint>

namespace cpx
{

/** xoshiro256** with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine for
        // simulation purposes (bias < 2^-64 * bound).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace cpx

#endif // CPX_SIM_RANDOM_HH
