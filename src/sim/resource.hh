/**
 * @file
 * A serially reusable resource with calendar-style reservation.
 *
 * Models occupancy of the node-local split-transaction bus and the
 * SLC port ("contention is accurately modelled in each node", §4).
 * Because simulator events execute in nondecreasing time order, a
 * simple next-free-time reservation is exact for FIFO service.
 */

#ifndef CPX_SIM_RESOURCE_HH
#define CPX_SIM_RESOURCE_HH

#include <algorithm>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace cpx
{

class Resource
{
  public:
    /**
     * Reserve the resource for @p duration ticks, no earlier than
     * @p earliest.
     * @return the start tick of the granted slot
     */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        Tick start = std::max(earliest, freeAt);
        freeAt = start + duration;
        busyTicks += duration;
        waitTicks += start - earliest;
        ++grants;
        return start;
    }

    /** Earliest time a new request could start service. */
    Tick nextFree() const { return freeAt; }

    /** Total ticks the resource has been occupied. */
    std::uint64_t totalBusy() const { return busyTicks.value(); }

    /** Total ticks requests waited for the resource. */
    std::uint64_t totalWait() const { return waitTicks.value(); }

    std::uint64_t totalGrants() const { return grants.value(); }

  private:
    Tick freeAt = 0;
    Counter busyTicks;
    Counter waitTicks;
    Counter grants;
};

} // namespace cpx

#endif // CPX_SIM_RESOURCE_HH
