/**
 * @file
 * Error reporting and optional debug tracing.
 *
 * Follows the gem5 convention: panic() flags simulator bugs (aborts),
 * fatal() flags user/configuration errors (clean exit), warn() and
 * inform() report conditions without stopping the simulation.
 *
 * Debug tracing is compiled in unconditionally but costs a single
 * branch when disabled; enable it per component with
 * Logger::enable("Dir") or Logger::enableAll().
 */

#ifndef CPX_SIM_LOGGING_HH
#define CPX_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <unordered_set>

namespace cpx
{

/**
 * Process-wide debug-trace switchboard. Components are identified by
 * short tag strings ("Dir", "SLC", "Net", ...).
 */
class Logger
{
  public:
    /** Enable tracing for one component tag. */
    static void enable(const std::string &tag);

    /** Enable tracing for every component. */
    static void enableAll();

    /** Disable all tracing. */
    static void disableAll();

    /** @return true iff tracing is on for @p tag. */
    static bool enabled(const std::string &tag);

    /** printf-style trace line, prefixed with the current tick. */
    static void trace(const char *tag, const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /**
     * Hook used by trace() to prefix messages with simulated time.
     * The event queue installs itself here on construction and
     * clears it on destruction. The pointer is thread-local so that
     * independent Systems running on separate host threads (the
     * sweep runner, bench/runner.hh) each stamp their own ticks.
     */
    static void setTickSource(const std::uint64_t *tick_ptr);

    /**
     * Remove @p tick_ptr as this thread's tick source, if it is
     * still installed. A later-constructed queue on the same thread
     * may have replaced it; in that case the newer source stays.
     */
    static void clearTickSource(const std::uint64_t *tick_ptr);

    /**
     * Simulated time according to this thread's installed tick
     * source, or 0 if none is installed. Observability components
     * (obs/trace.hh) stamp records through this instead of holding a
     * queue reference, so a record made while the parallel kernel has
     * a node queue active on this thread gets that node's time.
     */
    static std::uint64_t currentTick();

    /**
     * Last-words hook: called (once) by panic() and fatal() after the
     * message is printed, before the process dies. The flight
     * recorder installs itself here to dump the recent protocol
     * events of a failing run. Thread-local, like the tick source:
     * concurrent sweep systems each dump their own recorder.
     */
    using FailureHook = void (*)(void *ctx);

    /** Install @p hook with @p ctx as this thread's failure hook. */
    static void setFailureHook(FailureHook hook, void *ctx);

    /**
     * Remove the failure hook if @p ctx is still the installed
     * context (a newer hook on the same thread stays).
     */
    static void clearFailureHook(void *ctx);

    /**
     * Run and clear the installed hook, if any. Clearing first makes
     * the call re-entrancy safe: a hook that itself panics cannot
     * recurse. Called by panic()/fatal().
     */
    static void invokeFailureHook();

  private:
    static bool allEnabled;
    static std::unordered_set<std::string> enabledTags;
    static thread_local const std::uint64_t *tickSource;
    static thread_local FailureHook failureHook;
    static thread_local void *failureCtx;
};

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace cpx

#define CPX_TRACE(tag, ...)                                             \
    do {                                                                \
        if (::cpx::Logger::enabled(tag))                                \
            ::cpx::Logger::trace(tag, __VA_ARGS__);                     \
    } while (0)

#endif // CPX_SIM_LOGGING_HH
