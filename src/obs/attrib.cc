#include "obs/attrib.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "sim/stats.hh"

namespace cpx
{

const char *
attribClassName(unsigned cls)
{
    switch (static_cast<AttribClass>(cls)) {
      case AttribClass::Read:      return "read";
      case AttribClass::Prefetch:  return "prefetch";
      case AttribClass::WriteMiss: return "write-miss";
      case AttribClass::Upgrade:   return "upgrade";
      case AttribClass::Update:    return "update";
      case AttribClass::WriteBack: return "writeback";
      default:                     return "?";
    }
}

namespace
{

/** Saturating tick difference: malformed stamp pairs attribute zero
 *  rather than wrapping. */
Tick
sub(Tick later, Tick earlier)
{
    return later > earlier ? later - earlier : 0;
}

/** Join key: address x requester node. std::map keeps iteration
 *  deterministic (address, then node, ascending). */
using JoinKey = std::pair<Addr, NodeId>;

struct JoinLists
{
    std::vector<const AttribRecord *> home; //!< DirDone / LockGrant
    std::vector<const AttribRecord *> req;  //!< TxnDone / LockDone
};

/** Per-address accumulation for the hot tables. */
struct HotAcc
{
    NodeId home = 0;
    std::uint64_t count = 0;
    std::uint64_t totalWait = 0;
};

/** Pick the top-N addresses by (totalWait desc, addr asc). */
std::vector<std::pair<Addr, HotAcc>>
topN(const std::map<Addr, HotAcc> &by_addr, std::size_t n)
{
    std::vector<std::pair<Addr, HotAcc>> rows(by_addr.begin(),
                                              by_addr.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
        if (a.second.totalWait != b.second.totalWait)
            return a.second.totalWait > b.second.totalWait;
        return a.first < b.first;
    });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

void
append(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

AttributionResult
aggregateAttribution(const AttribSink &sink,
                     const std::function<unsigned(NodeId, NodeId)> &hops)
{
    AttributionResult ar;
    ar.enabled = true;

    const unsigned n = sink.numNodes();

    // Working per-home histograms, reduced to AttribHomeStats below.
    struct HomeWork
    {
        Histogram dirWait{attribBucketWidth, attribBucketCount};
        Histogram lockWait{attribBucketWidth, attribBucketCount};
        std::uint64_t dirRequests = 0;
        std::uint64_t lockGrants = 0;
    };
    std::vector<HomeWork> homes(n);

    std::map<JoinKey, JoinLists> txnJoin;
    std::map<JoinKey, JoinLists> lockJoin;
    std::map<Addr, HotAcc> blockAcc;
    std::map<Addr, HotAcc> lockAcc;

    // Pass 1: bucket records by join key, in node-id order. Each
    // node's vector is already time-ordered (records are appended as
    // that node's clock advances), and each key draws its home-side
    // records from exactly one node and its requester-side records
    // from exactly one node, so every per-key list is time-ordered
    // without sorting.
    for (NodeId node = 0; node < n; ++node) {
        for (const AttribRecord &r : sink.records(node)) {
            switch (r.kind) {
              case AttribRecord::Kind::DirDone: {
                Tick wait = sub(r.t1, r.t0);
                homes[node].dirRequests++;
                homes[node].dirWait.sample(wait);
                HotAcc &h = blockAcc[r.addr];
                h.home = node;
                h.count++;
                h.totalWait += wait;
                if (r.t3) {
                    ar.fanoutTotal++;
                    if (r.flags & AttribRecord::flagImprecise)
                        ar.fanoutImprecise++;
                }
                if (static_cast<AttribClass>(r.aux >> 16) ==
                    AttribClass::WriteBack) {
                    // Home-only: no requester-side transaction ever
                    // exists for a write-back.
                    AttribSegments &row = ar.classes[static_cast<
                        unsigned>(AttribClass::WriteBack)];
                    row.count++;
                    row.latency += sub(r.t5, r.t0);
                    row.dirQueue += wait;
                    row.dirService += sub(r.t2, r.t1);
                    row.ackCollect += sub(r.t5, r.t2);
                } else {
                    txnJoin[{r.addr, static_cast<NodeId>(
                        r.aux & 0xffffu)}].home.push_back(&r);
                }
                break;
              }
              case AttribRecord::Kind::TxnDone:
                txnJoin[{r.addr, node}].req.push_back(&r);
                break;
              case AttribRecord::Kind::LockGrant: {
                Tick wait = sub(r.t1, r.t0);
                homes[node].lockGrants++;
                homes[node].lockWait.sample(wait);
                HotAcc &h = lockAcc[r.addr];
                h.home = node;
                h.count++;
                h.totalWait += wait;
                lockJoin[{r.addr, static_cast<NodeId>(r.aux)}]
                    .home.push_back(&r);
                break;
              }
              case AttribRecord::Kind::LockDone:
                lockJoin[{r.addr, node}].req.push_back(&r);
                break;
            }
        }
    }

    // Pass 2: join. Per key the protocol serializes transactions
    // (one outstanding SLC transaction per block per node, one
    // outstanding acquire per lock per node), so home-side and
    // requester-side intervals alternate strictly in time and a
    // two-pointer walk pairs them exactly.
    for (const auto &[key, lists] : txnJoin) {
        std::size_t i = 0;
        for (const AttribRecord *t : lists.req) {
            const AttribRecord *d = nullptr;
            if (i < lists.home.size() &&
                lists.home[i]->t0 >= t->t0 &&
                lists.home[i]->t5 <= t->t1) {
                d = lists.home[i];
                ++i;
            }
            if (!d)
                continue; // truncated run: reply without home record
            ar.matchedTxns++;
            unsigned cls = t->aux;
            if (cls >= numAttribClasses)
                cls = 0;
            AttribSegments &row = ar.classes[cls];
            row.count++;
            row.latency += sub(t->t2, t->t0);
            row.request += sub(d->t0, t->t0);
            row.dirQueue += sub(d->t1, d->t0);
            row.dirService += sub(d->t2, d->t1);
            if (d->flags & AttribRecord::flagFetch) {
                row.ownerFetch += sub(d->t5, d->t2);
            } else if (d->t3) {
                row.invalFanout += sub(d->t4, d->t3);
                row.ackCollect += sub(d->t5, d->t4);
            }
            row.dataReturn += sub(t->t1, d->t5);
            row.fill += sub(t->t2, t->t1);
            row.dataHops +=
                hops ? hops(d->node, t->node) : 1u;
        }
        ar.unmatchedDir += lists.home.size() - i;
    }

    for (const auto &[key, lists] : lockJoin) {
        std::size_t i = 0;
        for (const AttribRecord *t : lists.req) {
            const AttribRecord *g = nullptr;
            if (i < lists.home.size() &&
                lists.home[i]->t0 >= t->t0 &&
                lists.home[i]->t1 <= t->t1) {
                g = lists.home[i];
                ++i;
            }
            if (!g)
                continue;
            ar.matchedLocks++;
            Tick lat = sub(t->t1, t->t0);
            Tick home_q = sub(g->t1, g->t0);
            if (home_q > lat)
                home_q = lat;
            ar.locks.count++;
            ar.locks.latency += lat;
            ar.locks.homeQueue += home_q;
            ar.locks.transfer += lat - home_q;
        }
        ar.unmatchedLocks += lists.home.size() - i;
    }

    // Pass 3: reduce homes and build the hot tables. p99 comes from
    // a second histogram pass over just the winning addresses so the
    // tables stay exact without one histogram per address.
    for (NodeId node = 0; node < n; ++node) {
        const HomeWork &w = homes[node];
        if (!w.dirRequests && !w.lockGrants)
            continue;
        AttribHomeStats hs;
        hs.node = node;
        hs.dirRequests = w.dirRequests;
        hs.dirWaitTotal =
            static_cast<std::uint64_t>(w.dirWait.summary().sum());
        hs.dirWaitP99 = w.dirWait.percentile(0.99);
        hs.lockGrants = w.lockGrants;
        hs.lockWaitTotal =
            static_cast<std::uint64_t>(w.lockWait.summary().sum());
        hs.lockWaitP99 = w.lockWait.percentile(0.99);
        ar.homes.push_back(hs);
    }

    auto buildHot = [&](const std::map<Addr, HotAcc> &acc,
                        AttribRecord::Kind kind,
                        std::vector<AttribHotSpot> &out) {
        auto rows = topN(acc, attribTopN);
        if (rows.empty())
            return;
        std::unordered_map<Addr, Histogram> hists;
        for (const auto &[addr, h] : rows)
            hists.emplace(addr,
                          Histogram(attribBucketWidth,
                                    attribBucketCount));
        for (NodeId node = 0; node < n; ++node) {
            for (const AttribRecord &r : sink.records(node)) {
                if (r.kind != kind)
                    continue;
                auto it = hists.find(r.addr);
                if (it != hists.end())
                    it->second.sample(sub(r.t1, r.t0));
            }
        }
        for (const auto &[addr, h] : rows) {
            AttribHotSpot spot;
            spot.addr = addr;
            spot.home = h.home;
            spot.count = h.count;
            spot.totalWait = h.totalWait;
            spot.p99Wait = hists.at(addr).percentile(0.99);
            out.push_back(spot);
        }
    };
    buildHot(blockAcc, AttribRecord::Kind::DirDone, ar.hotBlocks);
    buildHot(lockAcc, AttribRecord::Kind::LockGrant, ar.hotLocks);

    return ar;
}

std::string
formatAttribution(const AttributionResult &ar)
{
    std::string out;
    if (!ar.enabled) {
        out = "attribution: disabled\n";
        return out;
    }
    append(out,
           "Causal stall attribution (%" PRIu64 " matched txns, %" PRIu64
           " unmatched home records; %" PRIu64 " matched lock acquires)\n",
           ar.matchedTxns, ar.unmatchedDir, ar.matchedLocks);
    append(out,
           "%-11s %9s %11s %9s %9s %9s %9s %9s %9s %9s %9s\n",
           "class", "count", "latency", "request", "dirQueue",
           "dirServ", "fetch", "fanout", "ackColl", "dataRet", "fill");
    for (unsigned c = 0; c < numAttribClasses; ++c) {
        const AttribSegments &row = ar.classes[c];
        if (!row.count)
            continue;
        append(out,
               "%-11s %9" PRIu64 " %11" PRIu64 " %9" PRIu64 " %9" PRIu64
               " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64
               " %9" PRIu64 " %9" PRIu64 "\n",
               attribClassName(c), row.count, row.latency, row.request,
               row.dirQueue, row.dirService, row.ownerFetch,
               row.invalFanout, row.ackCollect, row.dataReturn,
               row.fill);
    }
    if (ar.locks.count) {
        double hq = ar.locks.latency
                        ? 100.0 * ar.locks.homeQueue / ar.locks.latency
                        : 0.0;
        append(out,
               "locks: %" PRIu64 " acquires, latency %" PRIu64
               " (home queue %" PRIu64 " = %.1f%%, transfer %" PRIu64
               ")\n",
               ar.locks.count, ar.locks.latency, ar.locks.homeQueue,
               hq, ar.locks.transfer);
    }
    if (ar.fanoutTotal)
        append(out,
               "fan-outs: %" PRIu64 " (%" PRIu64
               " over inexact sharer sets)\n",
               ar.fanoutTotal, ar.fanoutImprecise);
    auto hotTable = [&](const char *title,
                        const std::vector<AttribHotSpot> &rows) {
        if (rows.empty())
            return;
        append(out, "%s:\n", title);
        append(out, "  %-14s %6s %9s %12s %10s %10s\n", "addr", "home",
               "count", "totalWait", "meanWait", "p99Wait");
        for (const AttribHotSpot &s : rows)
            append(out,
                   "  %#-14llx %6u %9" PRIu64 " %12" PRIu64
                   " %10.1f %10.1f\n",
                   static_cast<unsigned long long>(s.addr), s.home,
                   s.count, s.totalWait, s.meanWait(), s.p99Wait);
    };
    hotTable("hot blocks (by directory queue wait)", ar.hotBlocks);
    hotTable("hot locks (by home queue wait)", ar.hotLocks);
    return out;
}

} // namespace cpx
