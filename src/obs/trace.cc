#include "obs/trace.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace cpx
{

namespace
{

/** printf into a growing std::string. */
void
append(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
append(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

const char *
msgClassName(unsigned klass)
{
    static const char *const names[] = {"request", "data", "coherence",
                                        "update", "sync"};
    return klass < 5 ? names[klass] : "?";
}

const char *
slcStateName(std::uint64_t code)
{
    switch (code) {
      case 0: return "invalid";
      case 1: return "shared";
      case 2: return "dirty";
    }
    return "?";
}

/** Kind-specific detail column of a tail line. */
std::string
describeRecord(const TraceRecord &r)
{
    std::string out;
    auto u = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    switch (r.kind) {
      case TraceKind::MsgSend:
        append(out, "id=%llu -> node %u class=%s payload=%llu",
               u(r.arg), traceAuxPeer(r.aux),
               msgClassName(traceAuxClass(r.aux)), u(r.addr));
        break;
      case TraceKind::MsgRecv:
        append(out, "id=%llu <- node %u class=%s", u(r.arg),
               traceAuxPeer(r.aux),
               msgClassName(traceAuxClass(r.aux)));
        break;
      case TraceKind::SlcState:
        append(out, "blk=%#llx state=%s", u(r.addr),
               slcStateName(r.arg));
        break;
      case TraceKind::DirState:
        append(out, "blk=%#llx presence=%#llx owner=%d mod=%u",
               u(r.addr), u(r.arg),
               traceAuxPeer(r.aux) == tracePeerNone
                   ? -1
                   : static_cast<int>(traceAuxPeer(r.aux)),
               r.aux >> 16);
        break;
      case TraceKind::TxnStart:
        append(out, "blk=%#llx %s", u(r.addr), traceTxnName(r.aux));
        break;
      case TraceKind::TxnEnd:
        append(out, "blk=%#llx %s lat=%llu", u(r.addr),
               traceTxnName(r.aux), u(r.arg));
        break;
      case TraceKind::PrefetchIssue:
      case TraceKind::PrefetchDrop:
        append(out, "blk=%#llx", u(r.addr));
        break;
      case TraceKind::PrefetchFill:
        append(out, "blk=%#llx lat=%llu", u(r.addr), u(r.arg));
        break;
      case TraceKind::WcInsert:
      case TraceKind::WcCombine:
        append(out, "blk=%#llx", u(r.addr));
        break;
      case TraceKind::WcFlush:
        append(out, "blk=%#llx mask=%#llx", u(r.addr), u(r.arg));
        break;
      case TraceKind::LockAcquire:
        append(out, "lock=%#llx -> node %u", u(r.addr), r.aux);
        break;
      case TraceKind::LockRelease:
        append(out, "lock=%#llx by node %u", u(r.addr), r.aux);
        break;
    }
    return out;
}

} // anonymous namespace

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::MsgSend:       return "msg-send";
      case TraceKind::MsgRecv:       return "msg-recv";
      case TraceKind::SlcState:      return "slc-state";
      case TraceKind::DirState:      return "dir-state";
      case TraceKind::TxnStart:      return "txn-start";
      case TraceKind::TxnEnd:        return "txn-end";
      case TraceKind::PrefetchIssue: return "prefetch-issue";
      case TraceKind::PrefetchDrop:  return "prefetch-drop";
      case TraceKind::PrefetchFill:  return "prefetch-fill";
      case TraceKind::WcInsert:      return "wc-insert";
      case TraceKind::WcCombine:     return "wc-combine";
      case TraceKind::WcFlush:       return "wc-flush";
      case TraceKind::LockAcquire:   return "lock-acquire";
      case TraceKind::LockRelease:   return "lock-release";
    }
    return "?";
}

const char *
traceTxnName(std::uint32_t txn_code)
{
    switch (static_cast<TraceTxn>(txn_code)) {
      case TraceTxn::Read:      return "read";
      case TraceTxn::Prefetch:  return "prefetch";
      case TraceTxn::WriteMiss: return "write-miss";
      case TraceTxn::Upgrade:   return "upgrade";
      case TraceTxn::Update:    return "update";
    }
    return "?";
}

std::vector<TraceRecord>
TraceRing::snapshot() const
{
    std::vector<TraceRecord> out;
    std::size_t n = size();
    out.reserve(n);
    // Oldest record: at head once wrapped, at 0 before.
    std::size_t start = pushed > buf.size() ? head : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(buf[(start + i) % buf.size()]);
    return out;
}

TraceSink::TraceSink(unsigned num_nodes,
                     std::size_t capacity_per_node)
    : msgIds(num_nodes)
{
    if (num_nodes == 0)
        fatal("trace sink needs at least one node");
    rings.reserve(num_nodes);
    for (unsigned n = 0; n < num_nodes; ++n)
        rings.emplace_back(capacity_per_node);
}

TraceSink::~TraceSink()
{
    Logger::clearFailureHook(this);
}

std::uint64_t
TraceSink::recorded() const
{
    std::uint64_t total = 0;
    for (const TraceRing &ring : rings)
        total += ring.total();
    return total;
}

std::uint64_t
TraceSink::overwritten() const
{
    std::uint64_t total = 0;
    for (const TraceRing &ring : rings)
        total += ring.overwritten();
    return total;
}

// --------------------------------------------------------------------------
// Chrome trace export
// --------------------------------------------------------------------------

std::string
TraceSink::chromeTraceJson(const MetricTimeSeries *series) const
{
    std::string out;
    out.reserve(4096);
    out += "{\"traceEvents\":[\n";
    append(out,
           "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\"cpxsim\"}}");
    for (unsigned n = 0; n < rings.size(); ++n) {
        append(out,
               ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
               "\"name\":\"thread_name\","
               "\"args\":{\"name\":\"node %u\"}}",
               n, n);
    }

    // Async-event ids must be globally unique per pair: transactions
    // to different blocks overlap freely on one node, and two nodes
    // can fetch the same block concurrently, so neither block nor
    // node alone is usable as the id.
    std::uint64_t next_pair = 1;

    for (unsigned n = 0; n < rings.size(); ++n) {
        std::vector<TraceRecord> recs = rings[n].snapshot();

        // Pair TxnStart/TxnEnd per block. Unmatched records — the
        // start overwritten in the ring, or the transaction still in
        // flight — degrade to instants so "b"/"e" stay balanced.
        std::vector<char> role(recs.size(), 0);
        std::vector<std::uint64_t> pair(recs.size(), 0);
        std::unordered_map<Addr, std::vector<std::size_t>> open;
        for (std::size_t i = 0; i < recs.size(); ++i) {
            if (recs[i].kind == TraceKind::TxnStart) {
                open[recs[i].addr].push_back(i);
            } else if (recs[i].kind == TraceKind::TxnEnd) {
                auto it = open.find(recs[i].addr);
                if (it == open.end() || it->second.empty())
                    continue;
                std::size_t s = it->second.back();
                it->second.pop_back();
                role[s] = 'b';
                role[i] = 'e';
                pair[s] = pair[i] = next_pair++;
            }
        }

        for (std::size_t i = 0; i < recs.size(); ++i) {
            const TraceRecord &r = recs[i];
            auto u = [](std::uint64_t v) {
                return static_cast<unsigned long long>(v);
            };
            if (role[i] == 'b' || role[i] == 'e') {
                append(out,
                       ",\n{\"ph\":\"%c\",\"cat\":\"txn\","
                       "\"id\":\"0x%llx\",\"pid\":0,\"tid\":%u,"
                       "\"ts\":%llu,\"name\":\"%s\"",
                       role[i], u(pair[i]), n, u(r.tick),
                       traceTxnName(r.aux));
                if (role[i] == 'b')
                    append(out, ",\"args\":{\"block\":\"0x%llx\"}}",
                           u(r.addr));
                else
                    append(out, ",\"args\":{\"latency\":%llu}}",
                           u(r.arg));
                continue;
            }
            append(out,
                   ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                   "\"tid\":%u,\"ts\":%llu,\"name\":\"%s\","
                   "\"args\":{\"addr\":\"0x%llx\",\"arg\":%llu,"
                   "\"aux\":%u}}",
                   n, u(r.tick), traceKindName(r.kind), u(r.addr),
                   u(r.arg), r.aux);
        }
    }
    // Interval-metric counter tracks: one "C" series per metric,
    // stamped at each sampled window's end tick. Perfetto renders
    // these as value-over-time tracks alongside the node tracks.
    if (series && !series->empty()) {
        for (std::size_t row = 0; row < series->rows(); ++row) {
            for (std::size_t m = 0; m < series->names.size(); ++m) {
                append(out,
                       ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%llu,"
                       "\"name\":\"%s\",\"args\":{\"value\":%llu}}",
                       static_cast<unsigned long long>(
                           series->ticks[row]),
                       series->names[m].c_str(),
                       static_cast<unsigned long long>(
                           series->at(row, m)));
            }
        }
    }
    out += "\n],\"displayTimeUnit\":\"ns\"}\n";
    return out;
}

bool
TraceSink::writeChromeTrace(const std::string &path,
                            std::string &error,
                            const MetricTimeSeries *series) const
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }
    file << chromeTraceJson(series);
    if (!file.flush()) {
        error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

// --------------------------------------------------------------------------
// Flight-recorder dumps
// --------------------------------------------------------------------------

std::string
TraceSink::formatTails(std::size_t per_node) const
{
    std::string out;
    append(out, "=== flight recorder (last %zu events per node) ===\n",
           per_node);
    for (unsigned n = 0; n < rings.size(); ++n) {
        const TraceRing &ring = rings[n];
        append(out,
               "node %-2u: %" PRIu64 " recorded, %" PRIu64
               " overwritten\n",
               n, ring.total(), ring.overwritten());
        std::vector<TraceRecord> recs = ring.snapshot();
        std::size_t start =
            recs.size() > per_node ? recs.size() - per_node : 0;
        for (std::size_t i = start; i < recs.size(); ++i) {
            const TraceRecord &r = recs[i];
            append(out, "  t=%-10" PRIu64 " %-14s %s\n", r.tick,
                   traceKindName(r.kind), describeRecord(r).c_str());
        }
    }
    append(out, "=== end flight recorder ===\n");
    return out;
}

void
TraceSink::failureDump(void *ctx)
{
    const TraceSink *sink = static_cast<const TraceSink *>(ctx);
    std::fputs(sink->formatTails().c_str(), stderr);
}

void
TraceSink::installFailureDump()
{
    Logger::setFailureHook(&TraceSink::failureDump, this);
}

} // namespace cpx
