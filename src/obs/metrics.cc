/**
 * @file
 * Interval metrics implementation (see metrics.hh).
 */

#include "obs/metrics.hh"

#include "sim/logging.hh"

namespace cpx
{

void
MetricRegistry::add(std::string name, Fetch fetch)
{
    entries.push_back({std::move(name), std::move(fetch)});
}

void
MetricRegistry::addCounter(std::string name, const Counter &counter)
{
    add(std::move(name), [&counter] { return counter.value(); });
}

void
MetricRegistry::addValue(std::string name, const std::uint64_t &value)
{
    add(std::move(name), [&value] { return value; });
}

void
MetricRegistry::snapshot(std::vector<std::uint64_t> &out) const
{
    out.resize(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        out[i] = entries[i].fetch();
}

IntervalSampler::IntervalSampler(EventQueue &event_queue,
                                 const MetricRegistry &reg,
                                 Tick interval)
    : eq(event_queue), registry(reg)
{
    if (interval == 0)
        panic("IntervalSampler: interval must be > 0");
    series.interval = interval;
    series.names.reserve(registry.size());
    for (std::size_t i = 0; i < registry.size(); ++i)
        series.names.push_back(registry.name(i));
}

void
IntervalSampler::start(std::function<bool()> done)
{
    if (started)
        panic("IntervalSampler: start() called twice");
    started = true;
    registry.snapshot(prev);
    eq.scheduleEvery(series.interval, [this, done = std::move(done)] {
        sampleRow();
        return !done();
    });
}

void
IntervalSampler::sampleRow()
{
    registry.snapshot(cur);
    series.ticks.push_back(eq.now());
    for (std::size_t i = 0; i < cur.size(); ++i)
        series.deltas.push_back(cur[i] - prev[i]);
    prev.swap(cur);
}

MetricTimeSeries
IntervalSampler::takeSeries()
{
    return std::move(series);
}

} // namespace cpx
