/**
 * @file
 * Protocol flight recorder: per-node ring buffers of compact binary
 * trace records.
 *
 * Every node owns a fixed-capacity ring of 32-byte TraceRecords; new
 * records overwrite the oldest once the ring is full, so memory is
 * bounded no matter how long the run is. Recording goes through the
 * CPX_RECORD macro, which compiles to a single predictable null-check
 * branch when no TraceSink is installed — the common case pays
 * nothing beyond that branch, preserving the kernel's events/s.
 *
 * Three consumers read the rings:
 *  - the Chrome-trace-event JSON exporter (cpxsim --trace-out=PATH),
 *    loadable in Perfetto/catapult: one track per node, duration
 *    events for SLC transactions, instants for everything else;
 *  - formatTails(), a human-readable last-N-events-per-node dump
 *    appended to the stall diagnostics (Watchdog, System::run);
 *  - installFailureDump(), which registers the sink with the logging
 *    layer so panic()/fatal() print the tails before dying.
 */

#ifndef CPX_OBS_TRACE_HH
#define CPX_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace cpx
{

struct MetricTimeSeries;

/** What happened. Kept in sync with kindName() in trace.cc. */
enum class TraceKind : std::uint16_t
{
    MsgSend,        //!< protocol message injected (addr=payload bytes)
    MsgRecv,        //!< protocol message delivered at the receiver
    SlcState,       //!< SLC line state/contents changed (arg=new state)
    DirState,       //!< directory entry changed at its home
    TxnStart,       //!< SLC transaction entered the SLWB
    TxnEnd,         //!< SLC transaction completed (arg=latency)
    PrefetchIssue,  //!< hardware prefetch sent to the home
    PrefetchDrop,   //!< prefetch dropped (SLWB full)
    PrefetchFill,   //!< pure prefetch data arrived (arg=latency)
    WcInsert,       //!< write allocated a write-cache frame
    WcCombine,      //!< write combined into a resident frame
    WcFlush,        //!< combined-write flush issued (arg=dirty mask)
    LockAcquire,    //!< lock granted by its home (aux=holder)
    LockRelease,    //!< lock released at its home (aux=releaser)
};

/** SLC transaction kinds as recorded in TxnStart/TxnEnd aux. Mirrors
 *  SlcController::Txn::Kind (slc.cc converts explicitly). */
enum class TraceTxn : std::uint32_t
{
    Read,
    Prefetch,
    WriteMiss,
    Upgrade,
    Update,
};

/** Short name of a record kind ("msg-send", "txn-start", ...). */
const char *traceKindName(TraceKind kind);

/** Name of a TraceTxn code ("read", "write-miss", ...). */
const char *traceTxnName(std::uint32_t txn_code);

/** One flight-recorder entry. Meaning of addr/arg/aux is per-kind
 *  (see TraceKind); compact and trivially copyable by design. */
struct TraceRecord
{
    Tick tick = 0;           //!< simulated time of the event
    Addr addr = 0;           //!< block/lock address (payload for msgs)
    std::uint64_t arg = 0;   //!< kind-specific (msg id, latency, mask)
    TraceKind kind = TraceKind::MsgSend;
    std::uint16_t node = 0;  //!< recording node
    std::uint32_t aux = 0;   //!< kind-specific (peer|class, txn kind)
};

static_assert(sizeof(TraceRecord) == 32,
              "trace records are meant to stay compact");

/** Pack a message peer + class into a TraceRecord aux. */
constexpr std::uint32_t
traceMsgAux(NodeId peer, unsigned msg_class)
{
    return static_cast<std::uint32_t>(peer) | (msg_class << 16);
}

/**
 * Peer half of a packed aux word. `tracePeerNone` (sim/types.hh)
 * marks "no peer"; the static_assert there keeps every real NodeId
 * below it, so 256-node traces cannot alias the sentinel.
 */
constexpr NodeId
traceAuxPeer(std::uint32_t aux)
{
    return aux & tracePeerNone;
}
constexpr unsigned traceAuxClass(std::uint32_t aux) { return aux >> 16; }

/** Fixed-capacity overwrite-oldest record ring. */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity)
        : buf(capacity ? capacity : 1)
    {}

    void
    push(const TraceRecord &rec)
    {
        buf[head] = rec;
        head = head + 1 == buf.size() ? 0 : head + 1;
        ++pushed;
    }

    std::size_t capacity() const { return buf.size(); }

    /** Records currently resident (== capacity once wrapped). */
    std::size_t
    size() const
    {
        return pushed < buf.size() ? static_cast<std::size_t>(pushed)
                                   : buf.size();
    }

    /** Records ever pushed. */
    std::uint64_t total() const { return pushed; }

    /** Records lost to overwrite. */
    std::uint64_t overwritten() const { return pushed - size(); }

    /** Resident records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

  private:
    std::vector<TraceRecord> buf;
    std::size_t head = 0;      //!< next write position
    std::uint64_t pushed = 0;
};

/**
 * The per-system flight recorder: one ring per node plus the export
 * and dump machinery. Install on a Fabric with setTracer(); agents
 * reach it through CPX_RECORD. Timestamps come from the recording
 * thread's installed tick source (Logger::currentTick()): under the
 * parallel kernel each worker stamps with the queue of the node it is
 * executing, so records carry that node's time, not some other
 * partition's. Rings and message-id counters are per node, and a
 * node's records are only ever made by the worker that owns it, so
 * the sink is safe under the parallel kernel without locks.
 */
class TraceSink
{
  public:
    static constexpr std::size_t defaultRingCapacity = 4096;

    explicit TraceSink(unsigned num_nodes,
                       std::size_t capacity_per_node =
                           defaultRingCapacity);
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    void
    record(NodeId node, TraceKind kind, Addr addr,
           std::uint64_t arg = 0, std::uint32_t aux = 0)
    {
        rings[node].push(TraceRecord{Logger::currentTick(), addr, arg,
                                     kind,
                                     static_cast<std::uint16_t>(node),
                                     aux});
    }

    /**
     * Fresh correlation id for a message send/recv pair, drawn from
     * @p src's private counter and tagged with the node id so ids
     * stay globally unique (and nonzero) without shared state.
     */
    std::uint64_t
    nextMsgId(NodeId src)
    {
        return (static_cast<std::uint64_t>(src) << 40) |
               ++msgIds[src].count;
    }

    unsigned numNodes() const {
        return static_cast<unsigned>(rings.size());
    }
    const TraceRing &ring(NodeId node) const { return rings[node]; }

    /** Records pushed across all nodes (including overwritten). */
    std::uint64_t recorded() const;

    /** Records lost to ring overwrite across all nodes. */
    std::uint64_t overwritten() const;

    // --- exporters ----------------------------------------------------------
    /**
     * Render the rings as a Chrome-trace-event JSON document
     * (Perfetto/catapult loadable). One track per node; matched
     * TxnStart/TxnEnd pairs become async duration events ("b"/"e",
     * always balanced), everything else becomes instants. Pass the
     * run's interval-sampled series (--sample-interval) to also emit
     * one Perfetto counter track ("C" events) per metric, stamped at
     * each window's end tick, so protocol events and interval metrics
     * line up on one correlated timeline.
     */
    std::string chromeTraceJson(
        const MetricTimeSeries *series = nullptr) const;

    /** Write chromeTraceJson(@p series) to @p path; false + @p error
     *  on I/O failure. */
    bool writeChromeTrace(const std::string &path, std::string &error,
                          const MetricTimeSeries *series =
                              nullptr) const;

    /** Human-readable last-@p per_node events per node (stall dumps). */
    std::string formatTails(std::size_t per_node = 16) const;

    /**
     * Register this sink with the logging layer so panic()/fatal()
     * on this thread dump formatTails() to stderr before dying.
     * Deregistered automatically on destruction.
     */
    void installFailureDump();

  private:
    static void failureDump(void *ctx);

    //! Per-source message-id counter, cache-line padded: each is
    //! bumped only by the worker executing that node.
    struct alignas(64) MsgIdCounter { std::uint64_t count = 0; };

    std::vector<TraceRing> rings;
    std::vector<MsgIdCounter> msgIds;
};

} // namespace cpx

/**
 * Record a protocol event iff a TraceSink is installed. @p sink_expr
 * is typically fabric.tracer(); the extra arguments are evaluated
 * only when tracing is on, so the disabled path is exactly one
 * null-check branch.
 */
#define CPX_RECORD(sink_expr, node, kind, ...)                          \
    do {                                                                \
        if (::cpx::TraceSink *cpxSink_ = (sink_expr))                   \
            cpxSink_->record(node, kind, __VA_ARGS__);                  \
    } while (0)

#endif // CPX_OBS_TRACE_HH
