/**
 * @file
 * Interval metrics: time-series sampling of component counters.
 *
 * The flight recorder (obs/trace.hh) answers "what happened around
 * this event"; the interval metrics subsystem answers "where did the
 * time go, phase by phase". Components register named monotonically
 * increasing values with a MetricRegistry once, at system build time;
 * an IntervalSampler then snapshots every registered metric each
 * `interval` simulated ticks and stores the per-interval *deltas* in
 * a fixed-stride in-memory series. Sampling is passive — the sampler
 * event only reads counters — so simulated statistics are
 * bit-identical with sampling on or off, and two sampled runs of the
 * same configuration produce identical series (DESIGN.md §13).
 *
 * The registry keys columns by registration order, which is the
 * deterministic system build order (nodes ascending, then the mesh
 * links, then network totals). Series flow through RunResult into the
 * optional "timeseries" block of the cpx-sweep-1 JSON schema and feed
 * tools/cpxreport (utilization, phase-anomaly detection).
 */

#ifndef CPX_OBS_METRICS_HH
#define CPX_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cpx
{

/**
 * A named bag of metric sources. Each source is a closure returning
 * the metric's current cumulative value; the referenced component
 * must outlive the registry. Registration order defines the column
 * order of every series sampled from this registry.
 */
class MetricRegistry
{
  public:
    using Fetch = std::function<std::uint64_t()>;

    /** Register one metric source under @p name. */
    void add(std::string name, Fetch fetch);

    /** Convenience: register a Counter's value. */
    void addCounter(std::string name, const Counter &counter);

    /** Convenience: register a plain Tick/uint64 variable. */
    void addValue(std::string name, const std::uint64_t &value);

    std::size_t size() const { return entries.size(); }
    const std::string &name(std::size_t i) const {
        return entries[i].name;
    }

    /** Current cumulative value of metric @p i. */
    std::uint64_t value(std::size_t i) const {
        return entries[i].fetch();
    }

    /** Snapshot every metric, in column order, into @p out. */
    void snapshot(std::vector<std::uint64_t> &out) const;

  private:
    struct Entry
    {
        std::string name;
        Fetch fetch;
    };

    std::vector<Entry> entries;
};

/**
 * One sampled run: per-interval deltas of every registered metric,
 * row-major with a fixed stride of names.size() columns. Row r covers
 * the simulated-time window (ticks[r] - interval, ticks[r]]; the last
 * row is usually partial (the run finished mid-interval).
 */
struct MetricTimeSeries
{
    Tick interval = 0;                 //!< sampling period (0 = off)
    std::vector<std::string> names;    //!< column names, registry order
    std::vector<Tick> ticks;           //!< end tick of each row
    std::vector<std::uint64_t> deltas; //!< rows() x names.size()

    std::size_t
    rows() const
    {
        return names.empty() ? 0 : deltas.size() / names.size();
    }

    bool empty() const { return deltas.empty(); }

    /** Delta of column @p col over row @p row. */
    std::uint64_t
    at(std::size_t row, std::size_t col) const
    {
        return deltas[row * names.size() + col];
    }
};

/**
 * Samples a MetricRegistry every @p interval ticks via a repeating
 * event-queue event. The sampler stops itself: each firing asks the
 * @p done predicate (typically "all processors finished") and takes
 * one final sample — covering the tail window — before unscheduling,
 * so it never keeps the event queue alive once the run is over.
 */
class IntervalSampler
{
  public:
    /**
     * @param event_queue the system event queue
     * @param registry    metric sources; must outlive the sampler
     * @param interval    sampling period in ticks (> 0)
     */
    IntervalSampler(EventQueue &event_queue,
                    const MetricRegistry &registry, Tick interval);

    /**
     * Arm the sampler: the first sample fires @p interval ticks from
     * now. Call before EventQueue::run(). @p done is polled at each
     * firing; the firing at which it first returns true records the
     * final (partial) row and stops the repeat.
     */
    void start(std::function<bool()> done);

    /** Rows sampled so far. */
    std::size_t rows() const { return series.rows(); }

    /** Move the collected series out (sampler is spent afterwards). */
    MetricTimeSeries takeSeries();

  private:
    void sampleRow();

    EventQueue &eq;
    const MetricRegistry &registry;
    std::vector<std::uint64_t> prev;   //!< cumulative values at last row
    std::vector<std::uint64_t> cur;    //!< scratch snapshot
    MetricTimeSeries series;
    bool started = false;
};

} // namespace cpx

#endif // CPX_OBS_METRICS_HH
