/**
 * @file
 * Causal stall attribution: per-transaction critical-path profiling.
 *
 * The flight recorder (trace.hh) answers "what happened"; this sink
 * answers "where did the cycles go". Protocol agents deposit one
 * compact record per completed unit of work — an SLC transaction at
 * its requester, a directory service at its home, a lock grant at the
 * lock's home, a lock acquire at its requester — each carrying the
 * simulated-tick stamps of the causal milestones along its path.
 * After the run, aggregateAttribution() joins the requester-side and
 * home-side records of the same transaction (the per-(block,
 * requester) serialization the protocol already guarantees makes the
 * join a deterministic two-pointer walk in time order) and telescopes
 * each matched pair into attributed segments:
 *
 *   request     issue -> arrival in the home's per-block queue
 *   dirQueue    wait behind earlier requests to the same block
 *   dirService  the home's directory-state memory access
 *   ownerFetch  recall round-trip to a MODIFIED owner
 *   invalFanout inval/probe fan-out -> last ack (max over sharers)
 *   ackCollect  final ack -> grant leaves the home
 *   dataReturn  grant in flight back to the requester
 *   fill        delivery -> SLC transaction completion (port + fill)
 *
 * and each lock acquire into homeQueue (arrival at the lock home ->
 * grant sent, including the home's memory access) vs transfer
 * (everything else: both network traversals plus requester-side
 * waits).
 *
 * Recording is observation-only: agents stamp inert fields on state
 * they already own and append records behind a single null-check
 * branch (the CPX_RECORD discipline), so simulated stats are
 * bit-identical with attribution on or off. Records live in per-node
 * vectors appended only by the worker that owns the node, so the sink
 * is safe under the parallel kernel without locks; the kernel's
 * bit-identical execution order makes every vector's contents — and
 * therefore the aggregate — identical at any --sim-threads value.
 */

#ifndef CPX_OBS_ATTRIB_HH
#define CPX_OBS_ATTRIB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cpx
{

/** Bucket geometry of the per-home queue-wait histograms. */
constexpr std::uint64_t attribBucketWidth = 256;
constexpr std::size_t attribBucketCount = 64;

/** Rows kept in the hot-block / hot-lock tables. */
constexpr std::size_t attribTopN = 8;

/** One attribution record. Stamp meaning is per-kind (see fields). */
struct AttribRecord
{
    enum class Kind : std::uint8_t
    {
        TxnDone,    //!< SLC transaction completed (at the requester)
        DirDone,    //!< directory service finished (at the home)
        LockGrant,  //!< lock grant sent (at the lock home)
        LockDone,   //!< lock acquire completed (at the requester)
    };

    // flags bits
    static constexpr std::uint8_t flagFetch = 1u << 0;     //!< owner recall path
    static constexpr std::uint8_t flagImprecise = 1u << 1; //!< fan-out over inexact sharer set
    static constexpr std::uint8_t flagPrefetch = 1u << 2;  //!< request was a prefetch

    Kind kind = Kind::TxnDone;
    std::uint8_t flags = 0;
    std::uint16_t node = 0;   //!< recording node (home or requester)
    std::uint32_t aux = 0;    //!< DirDone: requester | class << 16;
                              //!< LockGrant: grantee node;
                              //!< TxnDone: SLC Txn::Kind code
    Addr addr = 0;            //!< block / lock address
    std::uint32_t fanout = 0; //!< DirDone: inval/probe targets
    // Kind-specific milestone ticks:
    //   TxnDone:   t0 issue, t1 reply delivered, t2 completed
    //   DirDone:   t0 enqueued, t1 dequeued, t2 acted, t3 fan-out
    //              sent (0 none), t4 last response (0 none), t5 done
    //   LockGrant: t0 arrived at home, t1 grant sent
    //   LockDone:  t0 issue, t1 granted (fiber resumed)
    Tick t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0, t5 = 0;
};

/**
 * Per-node append-only record store. Install on a Fabric with
 * setAttrib(); agents guard every deposit with one null check, so the
 * disabled path costs exactly one untaken branch.
 */
class AttribSink
{
  public:
    explicit AttribSink(unsigned num_nodes) : nodes(num_nodes) {}

    AttribSink(const AttribSink &) = delete;
    AttribSink &operator=(const AttribSink &) = delete;

    void
    record(NodeId node, const AttribRecord &rec)
    {
        nodes[node].recs.push_back(rec);
    }

    unsigned numNodes() const {
        return static_cast<unsigned>(nodes.size());
    }
    const std::vector<AttribRecord> &records(NodeId node) const {
        return nodes[node].recs;
    }

    /** Records deposited across all nodes. */
    std::uint64_t
    recorded() const
    {
        std::uint64_t n = 0;
        for (const auto &slot : nodes)
            n += slot.recs.size();
        return n;
    }

  private:
    //! Cache-line padded: each vector is appended only by the worker
    //! executing that node, never concurrently.
    struct alignas(64) NodeRecords
    {
        std::vector<AttribRecord> recs;
    };

    std::vector<NodeRecords> nodes;
};

/** Attributed segment totals for one transaction class. */
struct AttribSegments
{
    std::uint64_t count = 0;
    std::uint64_t latency = 0;     //!< end-to-end ticks
    std::uint64_t request = 0;
    std::uint64_t dirQueue = 0;
    std::uint64_t dirService = 0;
    std::uint64_t ownerFetch = 0;
    std::uint64_t invalFanout = 0;
    std::uint64_t ackCollect = 0;
    std::uint64_t dataReturn = 0;
    std::uint64_t fill = 0;
    std::uint64_t dataHops = 0;    //!< sum of data-return hop counts

    std::uint64_t
    segmentSum() const
    {
        return request + dirQueue + dirService + ownerFetch +
               invalFanout + ackCollect + dataReturn + fill;
    }
};

/** Transaction classes of the attribution matrix. WriteBack rows come
 *  from home-only records (no requester-side transaction exists). */
enum class AttribClass : unsigned
{
    Read,
    Prefetch,
    WriteMiss,
    Upgrade,
    Update,
    WriteBack,
    NumClasses,
};

constexpr unsigned numAttribClasses =
    static_cast<unsigned>(AttribClass::NumClasses);

/** Matrix row label ("read", "write-miss", ...). */
const char *attribClassName(unsigned cls);

/** One hot-block / hot-lock table row. */
struct AttribHotSpot
{
    Addr addr = 0;
    NodeId home = 0;
    std::uint64_t count = 0;      //!< requests (blocks) / grants (locks)
    std::uint64_t totalWait = 0;  //!< queue-wait ticks at the home
    double p99Wait = 0;           //!< per-address histogram p99

    double
    meanWait() const
    {
        return count ? static_cast<double>(totalWait) / count : 0.0;
    }
};

/** Queue-pressure summary for one home node (only active homes are
 *  kept; sorted by node id). */
struct AttribHomeStats
{
    NodeId node = 0;
    std::uint64_t dirRequests = 0;
    std::uint64_t dirWaitTotal = 0;
    double dirWaitP99 = 0;
    std::uint64_t lockGrants = 0;
    std::uint64_t lockWaitTotal = 0;
    double lockWaitP99 = 0;
};

/** Lock-path attribution totals. */
struct AttribLockStats
{
    std::uint64_t count = 0;     //!< matched acquires
    std::uint64_t latency = 0;   //!< issue -> grant delivered
    std::uint64_t homeQueue = 0; //!< arrival at home -> grant sent
    std::uint64_t transfer = 0;  //!< latency - homeQueue
};

/**
 * The aggregate a run carries in its RunResult: (class x segment)
 * matrix, lock split, per-home queue pressure, deterministic top-N
 * hot tables, and join/precision bookkeeping. Plain numbers only —
 * the working histograms are reduced at aggregation time so the
 * sweep wire format stays small and exact.
 */
struct AttributionResult
{
    bool enabled = false;
    AttribSegments classes[numAttribClasses];
    AttribLockStats locks;
    std::vector<AttribHomeStats> homes;
    std::vector<AttribHotSpot> hotBlocks;
    std::vector<AttribHotSpot> hotLocks;
    std::uint64_t matchedTxns = 0;
    std::uint64_t unmatchedDir = 0;   //!< non-writeback dir services
                                      //!< with no requester record
    std::uint64_t matchedLocks = 0;
    std::uint64_t unmatchedLocks = 0;
    std::uint64_t fanoutTotal = 0;     //!< fan-out rounds observed
    std::uint64_t fanoutImprecise = 0; //!< ... over inexact sharer sets
};

/**
 * Join and reduce a sink's records (see file header). @p hops maps a
 * (home, requester) pair to the network hop count charged to the
 * data-return segment — pass the mesh's Manhattan distance, or a
 * constant 1 for uniform networks. Deterministic: iterates nodes in
 * id order, aggregates in u64, breaks ties by address.
 */
AttributionResult aggregateAttribution(
    const AttribSink &sink,
    const std::function<unsigned(NodeId, NodeId)> &hops);

/** Render an AttributionResult as human-readable text (cpxsim). */
std::string formatAttribution(const AttributionResult &ar);

} // namespace cpx

#endif // CPX_OBS_ATTRIB_HH
