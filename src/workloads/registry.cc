#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "workloads/apps.hh"

namespace cpx
{

WorkloadRun
runWorkload(System &sys, Workload &w, Tick limit, Tick sample_interval)
{
    w.setup(sys);

    // Arm the interval sampler before the event loop starts so the
    // first window begins at tick 0. The registry and sampler live
    // on this frame: both are only read by the sampler event, which
    // stops itself once every processor has finished.
    MetricRegistry registry;
    std::unique_ptr<IntervalSampler> sampler;
    if (sample_interval > 0) {
        sys.registerMetrics(registry);
        sampler = std::make_unique<IntervalSampler>(
            sys.eq(), registry, sample_interval);
        sampler->start(
            [&sys] { return sys.allProcessorsFinished(); });
    }

    Tick exec_time = sys.run(
        [&w](Processor &p, unsigned id) { w.parallel(p, id); },
        limit);
    sys.flushFunctionalState();

    WorkloadRun result;
    result.execTime = exec_time;
    result.verified = w.verify(sys);
    result.stats = collectStats(sys, exec_time);
    if (sampler)
        result.stats.timeseries = sampler->takeSeries();
    if (const AttribSink *attrib = sys.attrib()) {
        // Per-hop attribution of data returns: Network::hops() is the
        // mesh's Manhattan distance, or one logical hop elsewhere.
        result.stats.attribution = aggregateAttribution(
            *attrib, [&sys](NodeId src, NodeId dst) {
                return sys.net().hops(src, dst);
            });
    }
    return result;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, double scale, std::uint64_t seed)
{
    if (name == "lu")
        return makeLu(scale);
    if (name == "lu_swpf")
        return makeLuSoftwarePrefetch(scale);
    if (name == "ocean")
        return makeOcean(scale);
    if (name == "water")
        return makeWater(scale);
    if (name == "mp3d")
        return makeMp3d(scale);
    if (name == "cholesky")
        return makeCholesky(scale);
    if (name == "fft")
        return makeFft(scale);
    if (name == "migratory")
        return makeMigratory(scale);
    if (name == "producer_consumer")
        return makeProducerConsumer(scale);
    if (name == "readonly")
        return makeReadOnly(scale, seed);
    if (name == "false_sharing")
        return makeFalseSharing(scale);
    if (name == "stress")
        return makeStress(scale, seed);
    fatal("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
paperApplications()
{
    static const std::vector<std::string> apps{
        "mp3d", "cholesky", "water", "lu", "ocean"};
    return apps;
}

} // namespace cpx
