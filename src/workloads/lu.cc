/**
 * @file
 * LU: dense LU factorization without pivoting (one of the two
 * Stanford applications of §4; the paper ran a 200×200 matrix).
 *
 * Columns are distributed round-robin; each elimination step scales
 * the pivot column (owner only) and then updates the trailing
 * submatrix column-by-column, with barriers separating the phases.
 * The sharing pattern is the paper's LU signature: very high spatial
 * locality, persistent cold misses (direct solution method), little
 * migratory sharing — adaptive sequential prefetching's best case.
 */

#include <cmath>
#include <vector>

#include "sim/random.hh"
#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

class LuWorkload : public Workload
{
  public:
    /**
     * @param n_dim    matrix dimension
     * @param sw_pf    insert software prefetches ([9]-style column
     *                 prefetching; shared for the pivot column,
     *                 exclusive for the column about to be written)
     */
    explicit LuWorkload(unsigned n_dim, bool sw_pf = false)
        : n(n_dim), softwarePf(sw_pf)
    {}

    std::string name() const override {
        return softwarePf ? "lu_swpf" : "lu";
    }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        matrix = sys.heap().allocBlockAligned(
            static_cast<std::size_t>(n) * n * 8);

        // Diagonally dominant matrix: LU without pivoting is stable.
        Rng rng(42);
        reference.assign(static_cast<std::size_t>(n) * n, 0.0);
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                double v = rng.uniform(0.0, 1.0);
                if (i == j)
                    v += n;
                reference[i * n + j] = v;
                sys.store().writeDouble(elem(i, j), v);
            }
        }

        // Host-side reference factorization (same algorithm).
        for (unsigned k = 0; k < n; ++k) {
            for (unsigned i = k + 1; i < n; ++i) {
                reference[i * n + k] /= reference[k * n + k];
                for (unsigned j = k + 1; j < n; ++j) {
                    reference[i * n + j] -=
                        reference[i * n + k] * reference[k * n + j];
                }
            }
        }
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        for (unsigned k = 0; k < n; ++k) {
            if (k % numProcs == id) {
                // Owner scales the pivot column.
                double pivot = p.readDouble(elem(k, k));
                for (unsigned i = k + 1; i < n; ++i) {
                    double v = p.readDouble(elem(i, k)) / pivot;
                    p.writeDouble(elem(i, k), v);
                    p.compute(8);  // FP divide
                }
            }
            barrier.wait(p, id);

            // Everyone updates their columns of the trailing matrix.
            for (unsigned j = k + 1; j < n; ++j) {
                if (j % numProcs != id)
                    continue;
                if (softwarePf) {
                    // Compiler-style block prefetching [9]: the
                    // pivot column is read-shared, the updated
                    // column is fetched exclusively (it is about to
                    // be written).
                    for (unsigned i = k + 1; i < n; i += 4) {
                        p.prefetch(elem(i, k), false);
                        p.prefetch(elem(i, j), true);
                    }
                }
                double akj = p.readDouble(elem(k, j));
                for (unsigned i = k + 1; i < n; ++i) {
                    double aik = p.readDouble(elem(i, k));
                    double aij = p.readDouble(elem(i, j));
                    p.writeDouble(elem(i, j), aij - aik * akj);
                    p.compute(4);  // FP multiply-add
                }
            }
            barrier.wait(p, id);
        }
    }

    bool
    verify(System &sys) override
    {
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                double got = sys.store().readDouble(elem(i, j));
                double want = reference[i * n + j];
                double tolerance =
                    1e-9 * std::max(1.0, std::fabs(want));
                if (std::fabs(got - want) > tolerance)
                    return false;
            }
        }
        return true;
    }

  private:
    Addr
    elem(unsigned i, unsigned j) const
    {
        // Column-major, as in SPLASH: column sweeps are sequential,
        // which is what sequential prefetching exploits.
        return matrix + (static_cast<Addr>(j) * n + i) * 8;
    }

    unsigned n;
    bool softwarePf;
    unsigned numProcs = 0;
    Addr matrix = 0;
    SimBarrier barrier;
    std::vector<double> reference;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeLu(double scale)
{
    unsigned n = std::max(8u, static_cast<unsigned>(128 * scale));
    return std::make_unique<LuWorkload>(n);
}

std::unique_ptr<Workload>
makeLuSoftwarePrefetch(double scale)
{
    unsigned n = std::max(8u, static_cast<unsigned>(128 * scale));
    return std::make_unique<LuWorkload>(n, /*sw_pf=*/true);
}

} // namespace cpx
