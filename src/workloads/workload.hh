/**
 * @file
 * Workload interface: a parallel program driving the simulator.
 *
 * Following the paper's methodology (§4), statistics cover the
 * parallel section only: setup() initializes shared data functionally
 * (no simulated time, caches stay cold), parallel() runs on every
 * simulated processor's fiber, and verify() checks functional
 * correctness after the caches have been flushed back to memory.
 */

#ifndef CPX_WORKLOADS_WORKLOAD_HH
#define CPX_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/report.hh"
#include "core/system.hh"

namespace cpx
{

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate and functionally initialize shared data. */
    virtual void setup(System &sys) = 0;

    /** The parallel section, executed by every simulated processor. */
    virtual void parallel(Processor &p, unsigned id) = 0;

    /** Check results (after System::flushFunctionalState()). */
    virtual bool verify(System &sys) = 0;
};

/** Result of one workload run. */
struct WorkloadRun
{
    Tick execTime = 0;
    bool verified = false;
    RunResult stats;
};

/**
 * Run @p w on @p sys: setup, parallel section, functional flush,
 * verification, statistics collection.
 *
 * @param sample_interval when > 0, sample every registered interval
 *        metric each @p sample_interval ticks; the collected series
 *        lands in WorkloadRun::stats.timeseries. Sampling is passive:
 *        simulated statistics are bit-identical either way
 *        (DESIGN.md §13).
 */
WorkloadRun runWorkload(System &sys, Workload &w, Tick limit = maxTick,
                        Tick sample_interval = 0);

/**
 * Factory: construct a workload by name. Names: "mp3d", "cholesky",
 * "water", "lu", "ocean" (the five applications of §4), the
 * extension application "fft", the synthetic kernels "migratory",
 * "producer_consumer", "readonly", "false_sharing", and the random
 * protocol stress tester "stress". (Trace replay is separate: see
 * workloads/trace.hh.)
 *
 * @param scale linear problem-size multiplier (1.0 = the harness
 *              default sizes; tests use smaller values)
 * @param seed  random seed for the workloads that use one
 *              ("readonly", "stress"); ignored by the rest
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       double scale = 1.0,
                                       std::uint64_t seed = 1);

/** The five application names in the paper's order. */
const std::vector<std::string> &paperApplications();

} // namespace cpx

#endif // CPX_WORKLOADS_WORKLOAD_HH
