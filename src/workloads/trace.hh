/**
 * @file
 * Trace-replay workload: drive the simulator from a recorded memory
 * reference trace instead of a program.
 *
 * The trace format is line-oriented text, one event per line:
 *
 *   # comment
 *   <proc> r <addr>          timed 32-bit read
 *   <proc> w <addr> <value>  timed 32-bit write
 *   <proc> c <cycles>        local computation
 *   <proc> l <lock-index>    acquire lock #index
 *   <proc> u <lock-index>    release lock #index
 *   <proc> b                 global barrier
 *
 * Addresses are hex offsets into a trace-owned shared region; locks
 * are allocated by index on first use. A trailing checksum check
 * verifies that lock-protected read-modify-writes were not lost.
 *
 * This is the entry point for replaying references captured from a
 * real application (the paper's methodology is program-driven, but
 * trace replay is the standard fallback when only traces exist).
 */

#ifndef CPX_WORKLOADS_TRACE_HH
#define CPX_WORKLOADS_TRACE_HH

#include <string>
#include <vector>

#include "workloads/barrier.hh"
#include "workloads/workload.hh"

namespace cpx
{

/** One parsed trace event. */
struct TraceEvent
{
    enum class Kind
    {
        Read,
        Write,
        Compute,
        Lock,
        Unlock,
        Barrier,
    };

    Kind kind;
    Addr addr = 0;           //!< region offset (Read/Write)
    std::uint32_t value = 0; //!< Write
    Tick cycles = 0;         //!< Compute
    unsigned lockIndex = 0;  //!< Lock/Unlock
};

class TraceWorkload : public Workload
{
  public:
    /**
     * @param text       the whole trace (see format above)
     * @param region_len bytes of shared data addressed by the trace
     */
    TraceWorkload(const std::string &text, std::size_t region_len);

    std::string name() const override { return "trace"; }
    void setup(System &sys) override;
    void parallel(Processor &p, unsigned id) override;
    bool verify(System &sys) override;

    /** Events parsed for processor @p id (inspection). */
    const std::vector<TraceEvent> &eventsFor(unsigned id) const {
        return perProc.at(id);
    }

    /** Base address of the trace's shared region after setup(). */
    Addr regionBase() const { return region; }

  private:
    std::size_t regionLen;
    std::vector<std::vector<TraceEvent>> perProc;
    std::vector<Addr> lockAddrs;
    unsigned maxLockIndex = 0;
    Addr region = 0;
    SimBarrier barrier;
    unsigned numProcs = 0;
};

/** Parse a trace; fatal() on malformed input. */
std::vector<std::pair<unsigned, TraceEvent>>
parseTrace(const std::string &text);

} // namespace cpx

#endif // CPX_WORKLOADS_TRACE_HH
