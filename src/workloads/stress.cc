/**
 * @file
 * Random protocol stress tester.
 *
 * A seeded fuzzer for the coherence protocol rather than a model of
 * any real program: every processor executes a deterministic,
 * per-processor random mix of reads, 4- and 8-byte writes,
 * lock-protected increments, software prefetches (shared and
 * exclusive) and short private streaming scans, all hammering a
 * deliberately tiny set of hot shared blocks so that invalidations,
 * fetches, upgrades, migratory handoffs and combined-write updates
 * collide as often as possible. Rounds are separated by barriers.
 *
 * The op lists are generated up front in setup() from the workload
 * seed, so verify() can recompute exactly what ran:
 *
 *  - lock-protected counters must total the number of increments;
 *  - every hot word's final value must be one of the values written
 *    to it during the last round in which anyone wrote it (barriers
 *    drain all write buffers between rounds, so older values or
 *    values never written prove the protocol lost or resurrected a
 *    write);
 *  - each processor's checksum over its streaming scans must match.
 *
 * One concession to the protocol under test: with the CW extension
 * enabled, writes are partitioned per processor (each proc owns a
 * subset of the hot word pairs). A competitive-update protocol
 * applies a write to the writer's own copy immediately, so two
 * processors racing on the *same word* legitimately end up with
 * divergent cached copies — a data race the paper's (data-race-free)
 * programs never exhibit. Partitioning removes same-word write races
 * while keeping same-block ones, which is what CW actually
 * serializes. Invalidate protocols get the full free-for-all.
 *
 * Meant to run under the CoherenceChecker with the ChaosNetwork
 * enabled (tests/test_stress.cc sweeps every protocol combination);
 * also registered as "stress" for `cpxsim --workload stress`.
 */

#include <algorithm>
#include <vector>

#include "sim/random.hh"
#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

class StressWorkload : public Workload
{
  public:
    StressWorkload(unsigned rounds, unsigned ops_per_round,
                   std::uint64_t seed)
        : numRounds(rounds), opsPerRound(ops_per_round), seed(seed)
    {}

    std::string name() const override { return "stress"; }

    void
    setup(System &sys) override
    {
        const MachineParams &params = sys.params();
        numProcs = params.numProcs;
        wordsPerBlock = params.blockBytes / wordBytes;
        barrier.init(sys, numProcs);

        hotBase = sys.heap().allocBlockAligned(
            hotBlocks * params.blockBytes);
        for (unsigned w = 0; w < hotBlocks * wordsPerBlock; ++w)
            sys.store().write32(hotBase + Addr(w) * wordBytes, 0);

        counters.resize(numCounters);
        for (auto &c : counters)
            c.init(sys, 0);

        streamBase = sys.heap().allocBlockAligned(
            Addr(numProcs) * streamWords * wordBytes);
        for (unsigned w = 0; w < numProcs * streamWords; ++w) {
            sys.store().write32(streamBase + Addr(w) * wordBytes,
                                w * 2654435761u);
        }
        resultBase = sys.heap().allocBlockAligned(
            Addr(numProcs) * params.blockBytes);
        resultStride = params.blockBytes;

        generateOps(params.protocol.compUpdate);
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        // Only the stream checksum is verifiable; hot-word reads
        // race by design and their values are just consumed.
        std::uint32_t stream_sum = 0;
        for (unsigned r = 0; r < numRounds; ++r) {
            for (const Op &op : ops[id][r])
                execute(p, id, op, stream_sum);
            barrier.wait(p, id);
        }
        p.write32(resultBase + Addr(id) * resultStride, stream_sum);
    }

    bool
    verify(System &sys) override
    {
        // 1. No lock-protected increment was lost or duplicated.
        std::uint64_t want_total = 0;
        for (unsigned id = 0; id < numProcs; ++id)
            for (const auto &round : ops[id])
                for (const Op &op : round)
                    if (op.kind == Op::Kind::LockedAdd)
                        ++want_total;
        std::uint64_t total = 0;
        for (const auto &c : counters)
            total += c.peek(sys);
        if (total != want_total)
            return false;

        // 2. Each hot word holds a value written during the last
        //    round that wrote it (or its initial zero if never
        //    written). Anything else is a lost or resurrected write.
        const unsigned hot_words = hotBlocks * wordsPerBlock;
        for (unsigned w = 0; w < hot_words; ++w) {
            int last_round = -1;
            for (unsigned id = 0; id < numProcs; ++id)
                for (unsigned r = 0; r < numRounds; ++r)
                    for (const Op &op : ops[id][r])
                        if (writesWord(op, w))
                            last_round = std::max(last_round, int(r));
            const std::uint32_t have =
                sys.store().read32(hotBase + Addr(w) * wordBytes);
            if (last_round < 0) {
                if (have != 0)
                    return false;
                continue;
            }
            bool member = false;
            for (unsigned id = 0; id < numProcs && !member; ++id)
                for (const Op &op : ops[id][unsigned(last_round)])
                    if (writesWord(op, w) &&
                        writtenValue(op, w) == have) {
                        member = true;
                        break;
                    }
            if (!member)
                return false;
        }

        // 3. Streaming checksums (private data; must be exact).
        for (unsigned id = 0; id < numProcs; ++id) {
            std::uint32_t want = 0;
            for (const auto &round : ops[id])
                for (const Op &op : round)
                    if (op.kind == Op::Kind::Stream)
                        for (unsigned i = 0; i < streamScan; ++i)
                            want += (id * streamWords + op.word + i) *
                                    2654435761u;
            const std::uint32_t have = sys.store().read32(
                resultBase + Addr(id) * resultStride);
            if (have != want)
                return false;
        }
        return true;
    }

  private:
    struct Op
    {
        enum class Kind
        {
            Read,       //!< read a hot word
            Write32,    //!< write a hot word
            Write64,    //!< write an aligned hot word pair
            LockedAdd,  //!< lock-protected counter increment
            Prefetch,   //!< software prefetch of a hot block
            Stream,     //!< sequential scan of private data
            Compute,    //!< local work (spaces the sharing out)
        };

        Kind kind = Kind::Read;
        unsigned word = 0;      //!< hot word / counter / stream index
        std::uint32_t value = 0;
        bool exclusive = false; //!< prefetch flavour
    };

    /** Values are unique per (proc, round, op): verify() can tell
     *  exactly which write a surviving value came from. */
    static std::uint32_t
    tagValue(unsigned id, unsigned round, unsigned op)
    {
        return (id << 24) | (round << 16) | (op + 1);
    }

    void
    generateOps(bool partition_writes)
    {
        const unsigned hot_words = hotBlocks * wordsPerBlock;
        const unsigned num_pairs = hot_words / 2;
        ops.assign(numProcs, {});
        for (unsigned id = 0; id < numProcs; ++id) {
            // CW: this proc may only write its own word pairs (see
            // the file comment); with more procs than pairs some
            // procs write nothing, which is still a valid stress.
            std::vector<unsigned> my_pairs;
            for (unsigned pr = 0; pr < num_pairs; ++pr)
                if (!partition_writes || pr % numProcs == id)
                    my_pairs.push_back(pr);

            // Per-processor stream: one Rng each keeps op lists
            // independent of numProcs ordering.
            Rng rng(seed * 0x100 + id);
            ops[id].resize(numRounds);
            for (unsigned r = 0; r < numRounds; ++r) {
                ops[id][r].reserve(opsPerRound);
                for (unsigned i = 0; i < opsPerRound; ++i) {
                    Op op;
                    unsigned kind = unsigned(rng.below(16));
                    if (my_pairs.empty() && kind >= 5 && kind <= 9)
                        kind = 0;
                    switch (kind) {
                      case 0: case 1: case 2: case 3: case 4:
                        op.kind = Op::Kind::Read;
                        op.word = unsigned(rng.below(hot_words));
                        break;
                      case 5: case 6: case 7: case 8: {
                        op.kind = Op::Kind::Write32;
                        unsigned pr = my_pairs[unsigned(
                            rng.below(my_pairs.size()))];
                        op.word = pr * 2 + unsigned(rng.below(2));
                        op.value = tagValue(id, r, i);
                        break;
                      }
                      case 9:
                        op.kind = Op::Kind::Write64;
                        // Aligned pair: never straddles a block.
                        op.word = my_pairs[unsigned(rng.below(
                                      my_pairs.size()))] * 2;
                        op.value = tagValue(id, r, i);
                        break;
                      case 10: case 11:
                        op.kind = Op::Kind::LockedAdd;
                        op.word = unsigned(rng.below(numCounters));
                        break;
                      case 12:
                        op.kind = Op::Kind::Prefetch;
                        op.word = unsigned(rng.below(hot_words));
                        op.exclusive = rng.below(2) != 0;
                        break;
                      case 13:
                        op.kind = Op::Kind::Stream;
                        op.word = unsigned(
                            rng.below(streamWords - streamScan));
                        break;
                      default:
                        op.kind = Op::Kind::Compute;
                        op.word = unsigned(rng.below(30)) + 1;
                        break;
                    }
                    ops[id][r].push_back(op);
                }
            }
        }
    }

    void
    execute(Processor &p, unsigned id, const Op &op,
            std::uint32_t &stream_sum)
    {
        switch (op.kind) {
          case Op::Kind::Read:
            (void)p.read32(hotAddr(op.word));
            break;
          case Op::Kind::Write32:
            p.write32(hotAddr(op.word), op.value);
            break;
          case Op::Kind::Write64:
            p.write64(hotAddr(op.word),
                      (std::uint64_t(op.value) << 32) | op.value);
            break;
          case Op::Kind::LockedAdd:
            counters[op.word].fetchAdd(p, 1);
            break;
          case Op::Kind::Prefetch:
            p.prefetch(hotAddr(op.word), op.exclusive);
            break;
          case Op::Kind::Stream:
            for (unsigned i = 0; i < streamScan; ++i) {
                stream_sum += p.read32(
                    streamBase +
                    (Addr(id) * streamWords + op.word + i) *
                        wordBytes);
            }
            break;
          case Op::Kind::Compute:
            p.compute(op.word);
            break;
        }
    }

    Addr hotAddr(unsigned word) const {
        return hotBase + Addr(word) * wordBytes;
    }

    bool
    writesWord(const Op &op, unsigned w) const
    {
        if (op.kind == Op::Kind::Write32)
            return op.word == w;
        if (op.kind == Op::Kind::Write64)
            return op.word == w || op.word + 1 == w;
        return false;
    }

    /** The 32-bit value @p op leaves in hot word @p w. */
    std::uint32_t
    writtenValue(const Op &op, unsigned w) const
    {
        (void)w;  // write64 stores the tag in both halves
        return op.value;
    }

    static constexpr unsigned hotBlocks = 4;
    static constexpr unsigned numCounters = 2;
    static constexpr unsigned streamWords = 64;
    static constexpr unsigned streamScan = 8;

    unsigned numRounds;
    unsigned opsPerRound;
    std::uint64_t seed;
    unsigned numProcs = 0;
    unsigned wordsPerBlock = 0;

    Addr hotBase = 0;
    Addr streamBase = 0;
    Addr resultBase = 0;
    Addr resultStride = 0;
    std::vector<SharedCounter> counters;
    /// ops[proc][round] — generated in setup(), replayed in verify().
    std::vector<std::vector<std::vector<Op>>> ops;
    SimBarrier barrier;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeStress(double scale, std::uint64_t seed)
{
    unsigned ops = std::max(16u, static_cast<unsigned>(120 * scale));
    return std::make_unique<StressWorkload>(4, ops, seed);
}

} // namespace cpx
