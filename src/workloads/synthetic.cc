/**
 * @file
 * Synthetic sharing-pattern kernels.
 *
 * These isolate one sharing behaviour each, for unit tests and for
 * the targeted ablation benches: "migratory" is the pure x := x + 1
 * pattern of §3.2, "producer_consumer" exercises update vs invalidate
 * trade-offs, "readonly" should be untouched by every extension, and
 * "false_sharing" is the pattern sequential prefetching must not make
 * worse (§3.1's argument against simply enlarging the block).
 */

#include <vector>

#include "sim/random.hh"
#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

/** Lock-protected counters incremented round-robin by all procs. */
class MigratoryWorkload : public Workload
{
  public:
    MigratoryWorkload(unsigned counters, unsigned increments)
        : numCounters(counters), incrementsPerProc(increments)
    {}

    std::string name() const override { return "migratory"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        counterAddrs.resize(numCounters);
        lockAddrs.resize(numCounters);
        for (unsigned c = 0; c < numCounters; ++c) {
            lockAddrs[c] = sys.heap().allocLock();
            counterAddrs[c] =
                sys.heap().allocBlockAligned(wordBytes);
            sys.store().write32(counterAddrs[c], 0);
        }
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        for (unsigned i = 0; i < incrementsPerProc; ++i) {
            unsigned c = (id + i) % numCounters;
            p.lock(lockAddrs[c]);
            std::uint32_t v = p.read32(counterAddrs[c]);
            p.compute(10);
            p.write32(counterAddrs[c], v + 1);
            p.unlock(lockAddrs[c]);
            p.compute(20);
        }
        barrier.wait(p, id);
    }

    bool
    verify(System &sys) override
    {
        std::uint64_t total = 0;
        for (unsigned c = 0; c < numCounters; ++c)
            total += sys.store().read32(counterAddrs[c]);
        return total ==
               static_cast<std::uint64_t>(numProcs) *
                   incrementsPerProc;
    }

  private:
    unsigned numCounters;
    unsigned incrementsPerProc;
    unsigned numProcs = 0;
    std::vector<Addr> counterAddrs;
    std::vector<Addr> lockAddrs;
    SimBarrier barrier;
};

/** Proc 0 produces an array each round; the others consume it. */
class ProducerConsumerWorkload : public Workload
{
  public:
    ProducerConsumerWorkload(unsigned words, unsigned rounds)
        : numWords(words), numRounds(rounds)
    {}

    std::string name() const override { return "producer_consumer"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        data = sys.heap().allocBlockAligned(numWords * wordBytes);
        checksum = sys.heap().allocBlockAligned(
            numProcs * sys.params().blockBytes);
        for (unsigned w = 0; w < numWords; ++w)
            sys.store().write32(data + w * wordBytes, 0);
        for (unsigned q = 0; q < numProcs; ++q)
            sys.store().write32(slot(sys, q), 0);
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        std::uint32_t sum = 0;
        for (unsigned round = 1; round <= numRounds; ++round) {
            if (id == 0) {
                for (unsigned w = 0; w < numWords; ++w)
                    p.write32(data + w * wordBytes,
                              round * 1000 + w);
            }
            barrier.wait(p, id);
            for (unsigned w = id; w < numWords; w += numProcs) {
                sum += p.read32(data + w * wordBytes);
                p.compute(4);
            }
            barrier.wait(p, id);
        }
        p.write32(checksumSlots[id], sum);
    }

    bool
    verify(System &sys) override
    {
        std::vector<std::uint32_t> per_proc(numProcs, 0);
        for (unsigned round = 1; round <= numRounds; ++round)
            for (unsigned w = 0; w < numWords; ++w)
                per_proc[w % numProcs] += round * 1000 + w;
        for (unsigned q = 0; q < numProcs; ++q) {
            if (sys.store().read32(checksumSlots[q]) != per_proc[q])
                return false;
        }
        return true;
    }

  private:
    Addr
    slot(System &sys, unsigned q)
    {
        Addr a = checksum + q * sys.params().blockBytes;
        if (checksumSlots.size() < numProcs)
            checksumSlots.resize(numProcs);
        checksumSlots[q] = a;
        return a;
    }

    unsigned numWords;
    unsigned numRounds;
    unsigned numProcs = 0;
    Addr data = 0;
    Addr checksum = 0;
    std::vector<Addr> checksumSlots;
    SimBarrier barrier;
};

/** All processors randomly read a shared table; no writes at all. */
class ReadOnlyWorkload : public Workload
{
  public:
    ReadOnlyWorkload(unsigned words, unsigned reads,
                     std::uint64_t seed)
        : numWords(words), readsPerProc(reads), seed(seed)
    {}

    std::string name() const override { return "readonly"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        table = sys.heap().allocBlockAligned(numWords * wordBytes);
        results = sys.heap().allocBlockAligned(
            numProcs * sys.params().blockBytes);
        for (unsigned w = 0; w < numWords; ++w)
            sys.store().write32(table + w * wordBytes, w * 2654435761u);
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        Rng rng(seed + id);
        std::uint32_t sum = 0;
        for (unsigned i = 0; i < readsPerProc; ++i) {
            unsigned w = static_cast<unsigned>(rng.below(numWords));
            sum += p.read32(table + w * wordBytes);
            p.compute(3);
        }
        p.write32(results + id * 32, sum);
        barrier.wait(p, id);
    }

    bool
    verify(System &sys) override
    {
        for (unsigned q = 0; q < numProcs; ++q) {
            Rng rng(seed + q);
            std::uint32_t want = 0;
            for (unsigned i = 0; i < readsPerProc; ++i) {
                unsigned w =
                    static_cast<unsigned>(rng.below(numWords));
                want += (w * 2654435761u);
            }
            if (sys.store().read32(results + q * 32) != want)
                return false;
        }
        return true;
    }

  private:
    unsigned numWords;
    unsigned readsPerProc;
    std::uint64_t seed;
    unsigned numProcs = 0;
    Addr table = 0;
    Addr results = 0;
    SimBarrier barrier;
};

/** Each processor hammers its own word of shared blocks. */
class FalseSharingWorkload : public Workload
{
  public:
    explicit FalseSharingWorkload(unsigned iterations)
        : iters(iterations)
    {}

    std::string name() const override { return "false_sharing"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        // One word per processor, all packed into as few blocks as
        // possible: every write invalidates the others' copies.
        array = sys.heap().allocBlockAligned(numProcs * wordBytes);
        for (unsigned q = 0; q < numProcs; ++q)
            sys.store().write32(array + q * wordBytes, 0);
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        Addr mine = array + id * wordBytes;
        for (unsigned i = 0; i < iters; ++i) {
            std::uint32_t v = p.read32(mine);
            p.write32(mine, v + 1);
            p.compute(6);
        }
        barrier.wait(p, id);
    }

    bool
    verify(System &sys) override
    {
        for (unsigned q = 0; q < numProcs; ++q)
            if (sys.store().read32(array + q * wordBytes) != iters)
                return false;
        return true;
    }

  private:
    unsigned iters;
    unsigned numProcs = 0;
    Addr array = 0;
    SimBarrier barrier;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeMigratory(double scale)
{
    unsigned incs = std::max(8u, static_cast<unsigned>(200 * scale));
    return std::make_unique<MigratoryWorkload>(4, incs);
}

std::unique_ptr<Workload>
makeProducerConsumer(double scale)
{
    unsigned words = std::max(32u, static_cast<unsigned>(256 * scale));
    return std::make_unique<ProducerConsumerWorkload>(words, 6);
}

std::unique_ptr<Workload>
makeReadOnly(double scale, std::uint64_t seed)
{
    unsigned reads = std::max(64u, static_cast<unsigned>(500 * scale));
    // seed 1 reproduces the historical per-proc streams Rng(id + 1).
    return std::make_unique<ReadOnlyWorkload>(1024, reads, seed);
}

std::unique_ptr<Workload>
makeFalseSharing(double scale)
{
    unsigned iters = std::max(32u, static_cast<unsigned>(300 * scale));
    return std::make_unique<FalseSharingWorkload>(iters);
}

} // namespace cpx
