/**
 * @file
 * Internal factory functions for the individual workloads; use
 * makeWorkload() (workload.hh) from outside the library.
 */

#ifndef CPX_WORKLOADS_APPS_HH
#define CPX_WORKLOADS_APPS_HH

#include <cstdint>
#include <memory>

#include "workloads/workload.hh"

namespace cpx
{

std::unique_ptr<Workload> makeLu(double scale);
std::unique_ptr<Workload> makeLuSoftwarePrefetch(double scale);
std::unique_ptr<Workload> makeOcean(double scale);
std::unique_ptr<Workload> makeWater(double scale);
std::unique_ptr<Workload> makeMp3d(double scale);
std::unique_ptr<Workload> makeCholesky(double scale);
std::unique_ptr<Workload> makeFft(double scale);

std::unique_ptr<Workload> makeMigratory(double scale);
std::unique_ptr<Workload> makeProducerConsumer(double scale);
std::unique_ptr<Workload> makeReadOnly(double scale,
                                       std::uint64_t seed = 1);
std::unique_ptr<Workload> makeFalseSharing(double scale);
std::unique_ptr<Workload> makeStress(double scale,
                                     std::uint64_t seed = 1);

} // namespace cpx

#endif // CPX_WORKLOADS_APPS_HH
