/**
 * @file
 * PARMACS-style synchronization helpers built on the simulator API.
 *
 * The barrier is the classic sense-reversing centralized barrier: a
 * lock-protected arrival counter plus a shared sense flag that
 * waiters spin on. The spinning generates real coherence traffic
 * (invalidation misses under BASIC, updates under CW), which is
 * exactly the behaviour the paper's acquire-stall component captures.
 */

#ifndef CPX_WORKLOADS_BARRIER_HH
#define CPX_WORKLOADS_BARRIER_HH

#include <vector>

#include "core/system.hh"

namespace cpx
{

class SimBarrier
{
  public:
    /** Allocate and initialize barrier state for @p num_procs. */
    void init(System &sys, unsigned num_procs);

    /** Block processor @p p (worker @p id) until all have arrived. */
    void wait(Processor &p, unsigned id);

  private:
    Addr lockAddr = 0;
    Addr countAddr = 0;
    Addr senseAddr = 0;
    unsigned numProcs = 0;
    std::vector<std::uint32_t> localSense;  //!< private per worker
};

/**
 * A lock-protected shared counter ("fetch-and-add" in software) —
 * the task-queue idiom of Cholesky and the cell updates of MP3D are
 * built on this pattern (the paper's x := x + 1 migratory example).
 */
class SharedCounter
{
  public:
    void init(System &sys, std::uint32_t initial = 0);

    /** Atomically add @p delta; returns the previous value. */
    std::uint32_t fetchAdd(Processor &p, std::uint32_t delta);

    /** Set the counter to @p value (under the lock). */
    void reset(Processor &p, std::uint32_t value);

    /** Unsynchronized read (for single-threaded phases / verify). */
    std::uint32_t peek(System &sys) const;

    Addr valueAddr() const { return valueAddr_; }

  private:
    Addr lockAddr = 0;
    Addr valueAddr_ = 0;
};

} // namespace cpx

#endif // CPX_WORKLOADS_BARRIER_HH
