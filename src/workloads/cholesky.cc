/**
 * @file
 * Cholesky: direct factorization of a symmetric positive-definite
 * matrix with a lock-protected dynamic task queue (§4; the paper ran
 * the SPLASH sparse Cholesky on bcsstk14 — this kernel reproduces
 * the dense right-looking variant with the same sharing signature).
 *
 * Per elimination step the pivot owner scales the pivot column, then
 * processors grab trailing columns from a shared work counter (the
 * migratory task-queue head) and apply the rank-1 update. Cholesky's
 * paper profile: persistent cold misses (direct method), substantial
 * migratory sharing via the queue and column handoffs.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.hh"
#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

class CholeskyWorkload : public Workload
{
  public:
    explicit CholeskyWorkload(unsigned n_dim) : n(n_dim) {}

    std::string name() const override { return "cholesky"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        taskCounter.init(sys, 0);
        matrix = sys.heap().allocBlockAligned(
            static_cast<std::size_t>(n) * n * 8);

        // Symmetric diagonally dominant => positive definite.
        Rng rng(2024);
        reference.assign(static_cast<std::size_t>(n) * n, 0.0);
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j <= i; ++j) {
                double v = i == j ? n * 1.0 : rng.uniform(0.0, 1.0);
                reference[i * n + j] = v;
                reference[j * n + i] = v;
            }
        }
        for (unsigned i = 0; i < n; ++i)
            for (unsigned j = 0; j < n; ++j)
                sys.store().writeDouble(elem(i, j),
                                        reference[i * n + j]);

        // Host reference factorization (lower triangle).
        for (unsigned k = 0; k < n; ++k) {
            reference[k * n + k] = std::sqrt(reference[k * n + k]);
            for (unsigned i = k + 1; i < n; ++i)
                reference[i * n + k] /= reference[k * n + k];
            for (unsigned j = k + 1; j < n; ++j)
                for (unsigned i = j; i < n; ++i)
                    reference[i * n + j] -= reference[i * n + k] *
                                            reference[j * n + k];
        }
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        // Columns grabbed from the task queue in small batches.
        constexpr unsigned task_width = 2;

        for (unsigned k = 0; k < n; ++k) {
            if (k % numProcs == id) {
                // Pivot owner rewinds the task queue for this step
                // (the others are still parked at the barrier) and
                // scales the pivot column.
                taskCounter.reset(p, 0);
                double pivot =
                    std::sqrt(p.readDouble(elem(k, k)));
                p.writeDouble(elem(k, k), pivot);
                p.compute(20);  // sqrt
                for (unsigned i = k + 1; i < n; ++i) {
                    p.writeDouble(elem(i, k),
                                  p.readDouble(elem(i, k)) / pivot);
                    p.compute(8);
                }
            }
            barrier.wait(p, id);

            // Dynamic task queue: grab trailing columns to update.
            for (;;) {
                std::uint32_t t = taskCounter.fetchAdd(p, task_width);
                if (k + 1 + t >= n)
                    break;
                unsigned j_hi =
                    std::min(n, k + 1 + t + task_width);
                for (unsigned j = k + 1 + t; j < j_hi; ++j) {
                    double ajk = p.readDouble(elem(j, k));
                    for (unsigned i = j; i < n; ++i) {
                        double aik = p.readDouble(elem(i, k));
                        double aij = p.readDouble(elem(i, j));
                        p.writeDouble(elem(i, j), aij - aik * ajk);
                        p.compute(4);
                    }
                }
            }
            barrier.wait(p, id);
        }
    }

    bool
    verify(System &sys) override
    {
        // Each element is updated by exactly one processor per step
        // in a fixed arithmetic order: exact (tolerance only for
        // the unused upper triangle's stale symmetric values).
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j <= i; ++j) {
                double got = sys.store().readDouble(elem(i, j));
                double want = reference[i * n + j];
                if (std::fabs(got - want) >
                    1e-9 * std::max(1.0, std::fabs(want)))
                    return false;
            }
        }
        return true;
    }

  private:
    Addr
    elem(unsigned i, unsigned j) const
    {
        // Column-major, as in SPLASH: column sweeps are sequential,
        // which is what sequential prefetching exploits.
        return matrix + (static_cast<Addr>(j) * n + i) * 8;
    }

    unsigned n;
    unsigned numProcs = 0;
    Addr matrix = 0;
    SimBarrier barrier;
    SharedCounter taskCounter;
    std::vector<double> reference;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeCholesky(double scale)
{
    unsigned n = std::max(8u, static_cast<unsigned>(96 * scale));
    return std::make_unique<CholeskyWorkload>(n);
}

} // namespace cpx
