/**
 * @file
 * FFT: iterative radix-2 Cooley-Tukey transform over a shared
 * complex array (an extension workload beyond the paper's five; the
 * SPLASH-2 suite added FFT for the same reason).
 *
 * Why it is interesting here: the butterfly phases access the array
 * at power-of-two *strides*, the worst case for sequential
 * prefetching (the adaptive controller should throttle the degree
 * down), while the final stages become contiguous again. Stage
 * barriers dominate synchronization; there is no migratory sharing.
 */

#include <cmath>
#include <complex>
#include <vector>

#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(unsigned log2n) : logN(log2n), n(1u << log2n)
    {}

    std::string name() const override { return "fft"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        // data[i] = complex: two doubles (re, im), 16 bytes/point.
        data = sys.heap().allocBlockAligned(
            static_cast<std::size_t>(n) * 16);

        host.resize(n);
        for (unsigned i = 0; i < n; ++i) {
            // A deterministic, non-trivial signal.
            double re = std::sin(0.3 * i) + 0.25 * std::cos(1.7 * i);
            double im = 0.1 * std::sin(2.1 * i);
            host[i] = {re, im};
            sys.store().writeDouble(reAddr(i), re);
            sys.store().writeDouble(imAddr(i), im);
        }

        referenceFft();
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        // Phase 1: bit-reversal permutation (each processor swaps
        // the pairs whose smaller index it owns).
        for (unsigned i = id; i < n; i += numProcs) {
            unsigned j = bitReverse(i);
            if (i < j) {
                double re_i = p.readDouble(reAddr(i));
                double im_i = p.readDouble(imAddr(i));
                double re_j = p.readDouble(reAddr(j));
                double im_j = p.readDouble(imAddr(j));
                p.writeDouble(reAddr(i), re_j);
                p.writeDouble(imAddr(i), im_j);
                p.writeDouble(reAddr(j), re_i);
                p.writeDouble(imAddr(j), im_i);
                p.compute(6);
            }
        }
        barrier.wait(p, id);

        // Phase 2: logN butterfly stages, one barrier each.
        for (unsigned stage = 1; stage <= logN; ++stage) {
            unsigned m = 1u << stage;   // butterfly span
            unsigned half = m >> 1;
            // Butterflies are indexed by (group, k); each processor
            // takes whole butterflies round-robin.
            unsigned butterflies = n / 2;
            for (unsigned b = id; b < butterflies; b += numProcs) {
                unsigned group = b / half;
                unsigned k = b % half;
                unsigned top = group * m + k;
                unsigned bot = top + half;
                double angle = -2.0 * pi * k / m;
                double wr = std::cos(angle);
                double wi = std::sin(angle);
                p.compute(12);  // twiddle + complex multiply

                double tr = p.readDouble(reAddr(bot));
                double ti = p.readDouble(imAddr(bot));
                double xr = tr * wr - ti * wi;
                double xi = tr * wi + ti * wr;
                double ur = p.readDouble(reAddr(top));
                double ui = p.readDouble(imAddr(top));
                p.writeDouble(reAddr(top), ur + xr);
                p.writeDouble(imAddr(top), ui + xi);
                p.writeDouble(reAddr(bot), ur - xr);
                p.writeDouble(imAddr(bot), ui - xi);
                p.compute(8);
            }
            barrier.wait(p, id);
        }
    }

    bool
    verify(System &sys) override
    {
        // Butterflies of one stage touch disjoint points, so the
        // parallel schedule computes exactly the host reference.
        for (unsigned i = 0; i < n; ++i) {
            double re = sys.store().readDouble(reAddr(i));
            double im = sys.store().readDouble(imAddr(i));
            if (std::fabs(re - host[i].real()) > 1e-9 * (1 + n) ||
                std::fabs(im - host[i].imag()) > 1e-9 * (1 + n))
                return false;
        }
        return true;
    }

  private:
    static constexpr double pi = 3.14159265358979323846;

    Addr reAddr(unsigned i) const { return data + i * 16; }
    Addr imAddr(unsigned i) const { return data + i * 16 + 8; }

    unsigned
    bitReverse(unsigned i) const
    {
        unsigned r = 0;
        for (unsigned bit = 0; bit < logN; ++bit)
            if (i & (1u << bit))
                r |= 1u << (logN - 1 - bit);
        return r;
    }

    void
    referenceFft()
    {
        // Identical algorithm, sequential.
        for (unsigned i = 0; i < n; ++i) {
            unsigned j = bitReverse(i);
            if (i < j)
                std::swap(host[i], host[j]);
        }
        for (unsigned stage = 1; stage <= logN; ++stage) {
            unsigned m = 1u << stage;
            unsigned half = m >> 1;
            for (unsigned b = 0; b < n / 2; ++b) {
                unsigned group = b / half;
                unsigned k = b % half;
                unsigned top = group * m + k;
                unsigned bot = top + half;
                double angle = -2.0 * pi * k / m;
                std::complex<double> w(std::cos(angle),
                                       std::sin(angle));
                std::complex<double> x = host[bot] * w;
                std::complex<double> u = host[top];
                host[top] = u + x;
                host[bot] = u - x;
            }
        }
    }

    unsigned logN;
    unsigned n;
    unsigned numProcs = 0;
    Addr data = 0;
    SimBarrier barrier;
    std::vector<std::complex<double>> host;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeFft(double scale)
{
    // scale moves the transform size along powers of two.
    unsigned log2n = 10;  // 1024 points at scale 1
    if (scale < 0.75)
        log2n = 8;
    else if (scale < 1.5)
        log2n = 10;
    else
        log2n = 12;
    return std::make_unique<FftWorkload>(log2n);
}

} // namespace cpx
