/**
 * @file
 * Water: N-body molecular dynamics in the style of SPLASH Water
 * (§4; the paper ran 288 molecules for 4 time steps).
 *
 * Each time step zeroes the force arrays, computes O(n²/2) pairwise
 * interactions with per-molecule locks guarding the force
 * accumulations, then integrates positions. The lock-protected
 * read-modify-write of force records is the migratory sharing the
 * paper attributes to Water; positions are read-shared by everyone
 * during the force phase.
 */

#include <cmath>
#include <vector>

#include "sim/random.hh"
#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

class WaterWorkload : public Workload
{
  public:
    WaterWorkload(unsigned molecules, unsigned steps)
        : n(molecules), numSteps(steps)
    {}

    std::string name() const override { return "water"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);

        pos = sys.heap().allocBlockAligned(n * 3 * 8);
        vel = sys.heap().allocBlockAligned(n * 3 * 8);
        force = sys.heap().allocBlockAligned(n * 3 * 8);
        molLocks.resize(n);
        for (unsigned i = 0; i < n; ++i)
            molLocks[i] = sys.heap().allocLock();

        Rng rng(1234);
        hostPos.assign(n * 3, 0.0);
        hostVel.assign(n * 3, 0.0);
        for (unsigned i = 0; i < n * 3; ++i) {
            hostPos[i] = rng.uniform(0.0, boxSize);
            hostVel[i] = rng.uniform(-0.5, 0.5);
            sys.store().writeDouble(pos + i * 8, hostPos[i]);
            sys.store().writeDouble(vel + i * 8, hostVel[i]);
            sys.store().writeDouble(force + i * 8, 0.0);
        }

        referenceRun();
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        for (unsigned step = 0; step < numSteps; ++step) {
            // Phase 1: zero the forces of owned molecules.
            for (unsigned i = id; i < n; i += numProcs)
                for (unsigned d = 0; d < 3; ++d)
                    p.writeDouble(f3(i, d), 0.0);
            barrier.wait(p, id);

            // Phase 2: pairwise forces; each processor handles the
            // pairs whose first molecule it owns.
            for (unsigned i = id; i < n; i += numProcs) {
                double pi[3];
                for (unsigned d = 0; d < 3; ++d)
                    pi[d] = p.readDouble(x3(i, d));
                for (unsigned j = i + 1; j < n; ++j) {
                    double diff[3];
                    double dist2 = softening;
                    for (unsigned d = 0; d < 3; ++d) {
                        diff[d] = p.readDouble(x3(j, d)) - pi[d];
                        dist2 += diff[d] * diff[d];
                    }
                    p.compute(20);  // distance + force evaluation
                    double scale = couplingK / dist2;

                    p.lock(molLocks[i]);
                    for (unsigned d = 0; d < 3; ++d) {
                        double fi = p.readDouble(f3(i, d));
                        p.writeDouble(f3(i, d),
                                      fi + diff[d] * scale);
                    }
                    p.unlock(molLocks[i]);

                    p.lock(molLocks[j]);
                    for (unsigned d = 0; d < 3; ++d) {
                        double fj = p.readDouble(f3(j, d));
                        p.writeDouble(f3(j, d),
                                      fj - diff[d] * scale);
                    }
                    p.unlock(molLocks[j]);
                }
            }
            barrier.wait(p, id);

            // Phase 3: integrate owned molecules.
            for (unsigned i = id; i < n; i += numProcs) {
                for (unsigned d = 0; d < 3; ++d) {
                    double v = p.readDouble(v3(i, d)) +
                               p.readDouble(f3(i, d)) * dt;
                    double x = p.readDouble(x3(i, d)) + v * dt;
                    p.writeDouble(v3(i, d), v);
                    p.writeDouble(x3(i, d), x);
                    p.compute(8);
                }
            }
            barrier.wait(p, id);
        }
    }

    bool
    verify(System &sys) override
    {
        // Force accumulation order differs between processors, and
        // the dynamics amplify rounding differences, so positions
        // carry a loose tolerance. A *lost* force update, however,
        // breaks the pairwise antisymmetry, so total momentum is the
        // strict check: it is conserved to rounding regardless of
        // accumulation order.
        for (unsigned i = 0; i < n * 3; ++i) {
            double got = sys.store().readDouble(pos + i * 8);
            double want = hostPos[i];
            if (std::fabs(got - want) >
                1e-4 * std::max(1.0, std::fabs(want))) {
                warn("water: pos[%u] diverged (%g vs %g)", i, got,
                     want);
                return false;
            }
        }
        for (unsigned d = 0; d < 3; ++d) {
            double momentum = 0.0;
            double host_momentum = 0.0;
            for (unsigned i = 0; i < n; ++i) {
                momentum += sys.store().readDouble(v3(i, d));
                host_momentum += hostVel[i * 3 + d];
            }
            if (std::fabs(momentum - host_momentum) > 1e-9) {
                warn("water: momentum[%u] broke (%g vs %g) — a "
                     "force update was lost",
                     d, momentum, host_momentum);
                return false;
            }
        }
        return true;
    }

  private:
    static constexpr double boxSize = 10.0;
    static constexpr double couplingK = 0.05;
    static constexpr double softening = 0.5;
    static constexpr double dt = 0.01;

    Addr x3(unsigned i, unsigned d) const { return pos + (i * 3 + d) * 8; }
    Addr v3(unsigned i, unsigned d) const { return vel + (i * 3 + d) * 8; }
    Addr f3(unsigned i, unsigned d) const {
        return force + (i * 3 + d) * 8;
    }

    void
    referenceRun()
    {
        std::vector<double> f(n * 3, 0.0);
        for (unsigned step = 0; step < numSteps; ++step) {
            std::fill(f.begin(), f.end(), 0.0);
            for (unsigned i = 0; i < n; ++i) {
                for (unsigned j = i + 1; j < n; ++j) {
                    double diff[3];
                    double dist2 = softening;
                    for (unsigned d = 0; d < 3; ++d) {
                        diff[d] =
                            hostPos[j * 3 + d] - hostPos[i * 3 + d];
                        dist2 += diff[d] * diff[d];
                    }
                    double scale = couplingK / dist2;
                    for (unsigned d = 0; d < 3; ++d) {
                        f[i * 3 + d] += diff[d] * scale;
                        f[j * 3 + d] -= diff[d] * scale;
                    }
                }
            }
            for (unsigned i = 0; i < n * 3; ++i) {
                hostVel[i] += f[i] * dt;
                hostPos[i] += hostVel[i] * dt;
            }
        }
    }

    unsigned n;
    unsigned numSteps;
    unsigned numProcs = 0;
    Addr pos = 0;
    Addr vel = 0;
    Addr force = 0;
    std::vector<Addr> molLocks;
    SimBarrier barrier;
    std::vector<double> hostPos;
    std::vector<double> hostVel;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeWater(double scale)
{
    unsigned n = std::max(8u, static_cast<unsigned>(64 * scale));
    return std::make_unique<WaterWorkload>(n, 3);
}

} // namespace cpx
