/**
 * @file
 * MP3D: rarefied hypersonic flow simulation in the style of SPLASH
 * MP3D (§4; the paper ran 10 K particles for 10 time steps).
 *
 * Particles fly through a 3-D cell grid; every move performs a
 * read-modify-write on the occupancy record of the source and
 * destination cells (the paper's canonical "x := x + 1" migratory
 * pattern — MP3D is its most coherence-intensive application).
 * Particle records are owned by fixed processors; cell records are
 * the heavily migratory shared state. Cell updates are protected by
 * per-cell locks so the occupancy bookkeeping stays exact and the
 * run is verifiable.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.hh"
#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

class Mp3dWorkload : public Workload
{
  public:
    Mp3dWorkload(unsigned particles, unsigned grid_dim, unsigned steps)
        : n(particles), g(grid_dim), numSteps(steps)
    {}

    std::string name() const override { return "mp3d"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);

        pos = sys.heap().allocBlockAligned(n * 3 * 8);
        vel = sys.heap().allocBlockAligned(n * 3 * 8);
        unsigned cells = g * g * g;
        cellCount = sys.heap().allocBlockAligned(cells * wordBytes);
        cellHits = sys.heap().allocBlockAligned(cells * wordBytes);
        cellLocks.resize(cells);
        for (unsigned c = 0; c < cells; ++c)
            cellLocks[c] = sys.heap().allocLock();

        Rng rng(99);
        hostPos.assign(n * 3, 0.0);
        hostVel.assign(n * 3, 0.0);
        hostCount.assign(cells, 0);
        hostHits.assign(cells, 0);
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned d = 0; d < 3; ++d) {
                hostPos[i * 3 + d] = rng.uniform(0.0, g * 1.0);
                hostVel[i * 3 + d] = rng.uniform(-0.9, 0.9);
                sys.store().writeDouble(pos + (i * 3 + d) * 8,
                                        hostPos[i * 3 + d]);
                sys.store().writeDouble(vel + (i * 3 + d) * 8,
                                        hostVel[i * 3 + d]);
            }
            ++hostCount[cellOfHost(i)];
        }
        for (unsigned c = 0; c < cells; ++c) {
            sys.store().write32(cellCount + c * wordBytes,
                                hostCount[c]);
            sys.store().write32(cellHits + c * wordBytes, 0);
        }

        referenceRun();
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        // Contiguous particle chunks (as in SPLASH MP3D): each
        // processor sweeps its particles sequentially in memory.
        unsigned chunk = (n + numProcs - 1) / numProcs;
        unsigned lo = id * chunk;
        unsigned hi = std::min(n, lo + chunk);
        for (unsigned step = 0; step < numSteps; ++step) {
            for (unsigned i = lo; i < hi; ++i) {
                double x[3], v[3];
                for (unsigned d = 0; d < 3; ++d) {
                    x[d] = p.readDouble(pos + (i * 3 + d) * 8);
                    v[d] = p.readDouble(vel + (i * 3 + d) * 8);
                }
                unsigned old_cell = cellOf(x);

                // Collision sampling: consult the occupancy of the
                // current cell (read sharing on hot cells).
                std::uint32_t occupancy = p.read32(
                    cellCount + old_cell * wordBytes);
                p.compute(10 + (occupancy & 3));

                // Move, reflecting at the walls.
                bool bounced = false;
                for (unsigned d = 0; d < 3; ++d) {
                    x[d] += v[d] * dt;
                    if (x[d] < 0.0) {
                        x[d] = -x[d];
                        v[d] = -v[d];
                        bounced = true;
                    } else if (x[d] >= g) {
                        x[d] = 2.0 * g - x[d];
                        v[d] = -v[d];
                        bounced = true;
                    }
                    p.writeDouble(pos + (i * 3 + d) * 8, x[d]);
                }
                if (bounced) {
                    for (unsigned d = 0; d < 3; ++d)
                        p.writeDouble(vel + (i * 3 + d) * 8, v[d]);
                }

                unsigned new_cell = cellOf(x);
                if (new_cell != old_cell) {
                    // Migratory read-modify-writes on both cells.
                    p.lock(cellLocks[old_cell]);
                    std::uint32_t c = p.read32(
                        cellCount + old_cell * wordBytes);
                    p.write32(cellCount + old_cell * wordBytes,
                              c - 1);
                    p.unlock(cellLocks[old_cell]);

                    p.lock(cellLocks[new_cell]);
                    c = p.read32(cellCount + new_cell * wordBytes);
                    p.write32(cellCount + new_cell * wordBytes,
                              c + 1);
                    std::uint32_t h = p.read32(
                        cellHits + new_cell * wordBytes);
                    p.write32(cellHits + new_cell * wordBytes, h + 1);
                    p.unlock(cellLocks[new_cell]);
                }
            }
            barrier.wait(p, id);
        }
    }

    bool
    verify(System &sys) override
    {
        // Particle trajectories are independent: exact match.
        for (unsigned i = 0; i < n * 3; ++i) {
            double got = sys.store().readDouble(pos + i * 8);
            if (std::fabs(got - hostPos[i]) > 1e-12)
                return false;
        }
        // Integer cell bookkeeping is order-insensitive: exact.
        std::uint64_t total = 0;
        for (unsigned c = 0; c < g * g * g; ++c) {
            std::uint32_t cnt =
                sys.store().read32(cellCount + c * wordBytes);
            if (cnt != hostCount[c])
                return false;
            if (sys.store().read32(cellHits + c * wordBytes) !=
                hostHits[c])
                return false;
            total += cnt;
        }
        return total == n;
    }

  private:
    static constexpr double dt = 0.3;

    unsigned
    cellOf(const double x[3]) const
    {
        unsigned c = 0;
        for (unsigned d = 0; d < 3; ++d) {
            unsigned idx = static_cast<unsigned>(x[d]);
            if (idx >= g)
                idx = g - 1;
            c = c * g + idx;
        }
        return c;
    }

    unsigned
    cellOfHost(unsigned i) const
    {
        double x[3] = {hostPos[i * 3], hostPos[i * 3 + 1],
                       hostPos[i * 3 + 2]};
        return cellOf(x);
    }

    void
    referenceRun()
    {
        for (unsigned step = 0; step < numSteps; ++step) {
            for (unsigned i = 0; i < n; ++i) {
                double x[3], v[3];
                for (unsigned d = 0; d < 3; ++d) {
                    x[d] = hostPos[i * 3 + d];
                    v[d] = hostVel[i * 3 + d];
                }
                unsigned old_cell = cellOf(x);
                for (unsigned d = 0; d < 3; ++d) {
                    x[d] += v[d] * dt;
                    if (x[d] < 0.0) {
                        x[d] = -x[d];
                        v[d] = -v[d];
                    } else if (x[d] >= g) {
                        x[d] = 2.0 * g - x[d];
                        v[d] = -v[d];
                    }
                    hostPos[i * 3 + d] = x[d];
                    hostVel[i * 3 + d] = v[d];
                }
                unsigned new_cell = cellOf(x);
                if (new_cell != old_cell) {
                    --hostCount[old_cell];
                    ++hostCount[new_cell];
                    ++hostHits[new_cell];
                }
            }
        }
    }

    unsigned n;
    unsigned g;
    unsigned numSteps;
    unsigned numProcs = 0;
    Addr pos = 0;
    Addr vel = 0;
    Addr cellCount = 0;
    Addr cellHits = 0;
    std::vector<Addr> cellLocks;
    SimBarrier barrier;
    std::vector<double> hostPos;
    std::vector<double> hostVel;
    std::vector<std::uint32_t> hostCount;
    std::vector<std::uint32_t> hostHits;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeMp3d(double scale)
{
    unsigned particles =
        std::max(64u, static_cast<unsigned>(2048 * scale));
    return std::make_unique<Mp3dWorkload>(particles, 6, 4);
}

} // namespace cpx
