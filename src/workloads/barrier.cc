#include "workloads/barrier.hh"

#include "sim/logging.hh"

namespace cpx
{

void
SimBarrier::init(System &sys, unsigned num_procs)
{
    numProcs = num_procs;
    localSense.assign(num_procs, 0);
    lockAddr = sys.heap().allocLock();
    // Counter and sense flag in separate blocks: spinning on the
    // sense flag must not collide with arrival-counter updates.
    countAddr = sys.heap().allocIsolated(wordBytes);
    senseAddr = sys.heap().allocIsolated(wordBytes);
    sys.store().write32(countAddr, 0);
    sys.store().write32(senseAddr, 0);
}

void
SimBarrier::wait(Processor &p, unsigned id)
{
    std::uint32_t my_sense = localSense[id] ^ 1u;
    localSense[id] = my_sense;

    p.lock(lockAddr);
    std::uint32_t arrived = p.read32(countAddr) + 1;
    // The counter reset must happen inside the critical section: the
    // release fence then guarantees the next barrier's first arriver
    // (who must acquire this lock) sees it performed.
    p.write32(countAddr, arrived == numProcs ? 0 : arrived);
    p.unlock(lockAddr);

    if (arrived == numProcs) {
        // Last arriver flips the sense; spinners observe the flip
        // when coherence reaches their caches. The sense write is a
        // labelled release: without the fence it could linger in the
        // CW write cache indefinitely.
        p.write32(senseAddr, my_sense);
        p.releaseFence();
        return;
    }

    // Spin on the sense flag. The compute() models loop overhead and
    // paces the re-reads (each re-read is a real cache access).
    while (p.read32(senseAddr) != my_sense)
        p.compute(8);
}

void
SharedCounter::init(System &sys, std::uint32_t initial)
{
    lockAddr = sys.heap().allocLock();
    valueAddr_ = sys.heap().allocIsolated(wordBytes);
    sys.store().write32(valueAddr_, initial);
}

std::uint32_t
SharedCounter::fetchAdd(Processor &p, std::uint32_t delta)
{
    p.lock(lockAddr);
    std::uint32_t old = p.read32(valueAddr_);
    p.write32(valueAddr_, old + delta);
    p.unlock(lockAddr);
    return old;
}

void
SharedCounter::reset(Processor &p, std::uint32_t value)
{
    p.lock(lockAddr);
    p.write32(valueAddr_, value);
    p.unlock(lockAddr);
}

std::uint32_t
SharedCounter::peek(System &sys) const
{
    return sys.store().read32(valueAddr_);
}

} // namespace cpx
