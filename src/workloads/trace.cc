#include "workloads/trace.hh"

#include <map>
#include <sstream>

#include "sim/logging.hh"

namespace cpx
{

std::vector<std::pair<unsigned, TraceEvent>>
parseTrace(const std::string &text)
{
    std::vector<std::pair<unsigned, TraceEvent>> events;
    std::istringstream in(text);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string first;
        if (!(ls >> first))
            continue;  // blank line
        if (first[0] == '#')
            continue;  // comment

        unsigned proc = 0;
        try {
            proc = static_cast<unsigned>(std::stoul(first));
        } catch (...) {
            fatal("trace line %u: expected processor id, got '%s'",
                  line_no, first.c_str());
        }

        std::string op;
        if (!(ls >> op))
            fatal("trace line %u: missing operation", line_no);

        TraceEvent ev{};
        if (op == "r") {
            ev.kind = TraceEvent::Kind::Read;
            if (!(ls >> std::hex >> ev.addr))
                fatal("trace line %u: read needs an address",
                      line_no);
        } else if (op == "w") {
            ev.kind = TraceEvent::Kind::Write;
            if (!(ls >> std::hex >> ev.addr >> std::dec >> ev.value))
                fatal("trace line %u: write needs address and value",
                      line_no);
        } else if (op == "c") {
            ev.kind = TraceEvent::Kind::Compute;
            if (!(ls >> ev.cycles))
                fatal("trace line %u: compute needs a cycle count",
                      line_no);
        } else if (op == "l") {
            ev.kind = TraceEvent::Kind::Lock;
            if (!(ls >> ev.lockIndex))
                fatal("trace line %u: lock needs an index", line_no);
        } else if (op == "u") {
            ev.kind = TraceEvent::Kind::Unlock;
            if (!(ls >> ev.lockIndex))
                fatal("trace line %u: unlock needs an index",
                      line_no);
        } else if (op == "b") {
            ev.kind = TraceEvent::Kind::Barrier;
        } else {
            fatal("trace line %u: unknown operation '%s'", line_no,
                  op.c_str());
        }
        events.emplace_back(proc, ev);
    }
    return events;
}

TraceWorkload::TraceWorkload(const std::string &text,
                             std::size_t region_len)
    : regionLen(region_len)
{
    for (auto &[proc, ev] : parseTrace(text)) {
        if (proc >= perProc.size())
            perProc.resize(proc + 1);
        if (ev.kind == TraceEvent::Kind::Read ||
            ev.kind == TraceEvent::Kind::Write) {
            if (ev.addr + wordBytes > regionLen)
                fatal("trace touches offset %llx beyond the %zu-byte "
                      "region",
                      static_cast<unsigned long long>(ev.addr),
                      regionLen);
        }
        if (ev.kind == TraceEvent::Kind::Lock ||
            ev.kind == TraceEvent::Kind::Unlock)
            maxLockIndex = std::max(maxLockIndex, ev.lockIndex + 1);
        perProc[proc].push_back(ev);
    }
}

void
TraceWorkload::setup(System &sys)
{
    numProcs = sys.params().numProcs;
    if (perProc.size() > numProcs)
        fatal("trace references processor %zu but the machine has "
              "only %u",
              perProc.size() - 1, numProcs);
    perProc.resize(numProcs);
    barrier.init(sys, numProcs);
    region = sys.heap().allocBlockAligned(regionLen);
    for (std::size_t off = 0; off < regionLen; off += wordBytes)
        sys.store().write32(region + off, 0);
    lockAddrs.resize(maxLockIndex);
    for (unsigned i = 0; i < maxLockIndex; ++i)
        lockAddrs[i] = sys.heap().allocLock();
}

void
TraceWorkload::parallel(Processor &p, unsigned id)
{
    for (const TraceEvent &ev : perProc[id]) {
        switch (ev.kind) {
          case TraceEvent::Kind::Read:
            (void)p.read32(region + ev.addr);
            break;
          case TraceEvent::Kind::Write:
            p.write32(region + ev.addr, ev.value);
            break;
          case TraceEvent::Kind::Compute:
            p.compute(ev.cycles);
            break;
          case TraceEvent::Kind::Lock:
            p.lock(lockAddrs[ev.lockIndex]);
            break;
          case TraceEvent::Kind::Unlock:
            p.unlock(lockAddrs[ev.lockIndex]);
            break;
          case TraceEvent::Kind::Barrier:
            barrier.wait(p, id);
            break;
        }
    }
}

bool
TraceWorkload::verify(System &sys)
{
    // For every address written by exactly one processor, the final
    // memory value must be that processor's last written value
    // (stronger checks need knowledge of the trace's intent).
    std::map<Addr, std::pair<unsigned, std::uint32_t>> last_writer;
    std::map<Addr, bool> multi_writer;
    for (unsigned id = 0; id < perProc.size(); ++id) {
        for (const TraceEvent &ev : perProc[id]) {
            if (ev.kind != TraceEvent::Kind::Write)
                continue;
            auto it = last_writer.find(ev.addr);
            if (it != last_writer.end() && it->second.first != id)
                multi_writer[ev.addr] = true;
            last_writer[ev.addr] = {id, ev.value};
        }
    }
    for (const auto &[off, writer] : last_writer) {
        if (multi_writer.count(off))
            continue;
        if (sys.store().read32(region + off) != writer.second)
            return false;
    }
    return true;
}

} // namespace cpx
