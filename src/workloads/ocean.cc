/**
 * @file
 * Ocean: iterative red-black Gauss-Seidel relaxation on a 2-D grid
 * (the second Stanford application of §4; the paper ran a 128×128
 * grid with a convergence tolerance).
 *
 * Rows are block-partitioned across processors. Each iteration
 * relaxes the red then the black points with a barrier after each
 * half-sweep, accumulates the local residual into a lock-protected
 * global, and tests convergence. Sharing is near-neighbour (boundary
 * rows ping-pong between adjacent processors), with barrier-heavy
 * synchronization and little migratory sharing — the paper's Ocean
 * profile.
 */

#include <cmath>
#include <vector>

#include "sim/random.hh"
#include "workloads/apps.hh"
#include "workloads/barrier.hh"

namespace cpx
{

namespace
{

class OceanWorkload : public Workload
{
  public:
    OceanWorkload(unsigned interior, unsigned max_iters,
                  double tolerance)
        : n(interior), maxIters(max_iters), tol(tolerance)
    {}

    std::string name() const override { return "ocean"; }

    void
    setup(System &sys) override
    {
        numProcs = sys.params().numProcs;
        barrier.init(sys, numProcs);
        grid = sys.heap().allocBlockAligned(
            static_cast<std::size_t>(n + 2) * (n + 2) * 8);
        errLock = sys.heap().allocLock();
        errAddr = sys.heap().allocIsolated(8);
        doneAddr = sys.heap().allocIsolated(wordBytes);

        Rng rng(7);
        hostGrid.assign(static_cast<std::size_t>(n + 2) * (n + 2),
                        0.0);
        for (unsigned i = 0; i < n + 2; ++i) {
            for (unsigned j = 0; j < n + 2; ++j) {
                bool border =
                    i == 0 || j == 0 || i == n + 1 || j == n + 1;
                double v = border ? std::sin(0.1 * i) +
                                        std::cos(0.1 * j)
                                  : rng.uniform(-1.0, 1.0);
                hostGrid[i * (n + 2) + j] = v;
                sys.store().writeDouble(elem(i, j), v);
            }
        }
        sys.store().writeDouble(errAddr, 0.0);
        sys.store().write32(doneAddr, 0);

        hostIterations = referenceSolve();
    }

    void
    parallel(Processor &p, unsigned id) override
    {
        unsigned row_lo, row_hi;
        myRows(id, row_lo, row_hi);

        for (unsigned iter = 0; iter < maxIters; ++iter) {
            double local_err = 0.0;
            for (unsigned colour = 0; colour < 2; ++colour) {
                for (unsigned i = row_lo; i <= row_hi; ++i) {
                    for (unsigned j = 1; j <= n; ++j) {
                        if ((i + j) % 2 != colour)
                            continue;
                        double up = p.readDouble(elem(i - 1, j));
                        double down = p.readDouble(elem(i + 1, j));
                        double left = p.readDouble(elem(i, j - 1));
                        double right = p.readDouble(elem(i, j + 1));
                        double old = p.readDouble(elem(i, j));
                        double next =
                            0.25 * (up + down + left + right);
                        p.writeDouble(elem(i, j), next);
                        p.compute(6);  // stencil FP work
                        // Max-norm residual: the max is insensitive
                        // to accumulation order, so the parallel run
                        // converges on exactly the same iteration as
                        // the host reference.
                        local_err = std::max(local_err,
                                             std::fabs(next - old));
                    }
                }
                barrier.wait(p, id);
            }

            // Fold the local residual into the global max-norm.
            p.lock(errLock);
            double global = p.readDouble(errAddr);
            if (local_err > global)
                p.writeDouble(errAddr, local_err);
            p.unlock(errLock);
            barrier.wait(p, id);

            if (id == 0) {
                double err = p.readDouble(errAddr);
                p.write32(doneAddr, err < tol ? 1u : 0u);
                p.writeDouble(errAddr, 0.0);
            }
            barrier.wait(p, id);
            if (p.read32(doneAddr) != 0) {
                simIterations = iter + 1;
                break;
            }
        }
    }

    bool
    verify(System &sys) override
    {
        // The simulated run must produce the same grid as the host
        // reference (same algorithm, same schedule).
        for (unsigned i = 0; i < n + 2; ++i) {
            for (unsigned j = 0; j < n + 2; ++j) {
                double got = sys.store().readDouble(elem(i, j));
                double want = hostGrid[i * (n + 2) + j];
                if (std::fabs(got - want) >
                    1e-9 * std::max(1.0, std::fabs(want))) {
                    return false;
                }
            }
        }
        return true;
    }

  private:
    Addr
    elem(unsigned i, unsigned j) const
    {
        return grid + (static_cast<Addr>(i) * (n + 2) + j) * 8;
    }

    void
    myRows(unsigned id, unsigned &lo, unsigned &hi) const
    {
        unsigned rows = n / numProcs;
        unsigned extra = n % numProcs;
        lo = 1 + id * rows + std::min(id, extra);
        hi = lo + rows - 1 + (id < extra ? 1 : 0);
        if (rows == 0 && id >= extra) {
            lo = 1;
            hi = 0;  // no rows for this processor
        }
    }

    /** Host-side reference run; returns the iteration count. */
    unsigned
    referenceSolve()
    {
        unsigned stride = n + 2;
        for (unsigned iter = 0; iter < maxIters; ++iter) {
            double err = 0.0;
            for (unsigned colour = 0; colour < 2; ++colour) {
                for (unsigned i = 1; i <= n; ++i) {
                    for (unsigned j = 1; j <= n; ++j) {
                        if ((i + j) % 2 != colour)
                            continue;
                        double old = hostGrid[i * stride + j];
                        double next =
                            0.25 * (hostGrid[(i - 1) * stride + j] +
                                    hostGrid[(i + 1) * stride + j] +
                                    hostGrid[i * stride + j - 1] +
                                    hostGrid[i * stride + j + 1]);
                        hostGrid[i * stride + j] = next;
                        err = std::max(err, std::fabs(next - old));
                    }
                }
            }
            if (err < tol)
                return iter + 1;
        }
        return maxIters;
    }

    unsigned n;
    unsigned maxIters;
    double tol;
    unsigned numProcs = 0;
    Addr grid = 0;
    Addr errLock = 0;
    Addr errAddr = 0;
    Addr doneAddr = 0;
    SimBarrier barrier;
    std::vector<double> hostGrid;
    unsigned hostIterations = 0;
    unsigned simIterations = 0;
};

} // anonymous namespace

std::unique_ptr<Workload>
makeOcean(double scale)
{
    unsigned n = std::max(16u, static_cast<unsigned>(80 * scale));
    return std::make_unique<OceanWorkload>(n, 20, 1e-3);
}

} // namespace cpx
