/**
 * @file
 * Interconnection network abstraction.
 *
 * The paper evaluates two network models: the default contention-free
 * uniform-latency network (54 pclocks node to node) used in §5.1–5.2,
 * and wormhole-routed meshes with 64/32/16-bit links used for the
 * contention study (§5.3, Table 3). Both implement this interface.
 *
 * Traffic accounting for Figure 4 also lives here: every message is
 * charged its header + payload bytes as it enters the network.
 */

#ifndef CPX_NET_NETWORK_HH
#define CPX_NET_NETWORK_HH

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cpx
{

/** Fixed per-message header charge (address + type + routing info). */
constexpr unsigned messageHeaderBytes = 8;

/** Message class, for the per-category traffic breakdown. */
enum class MsgClass
{
    Request,    //!< read/write/upgrade/update requests to a home
    Data,       //!< block data replies, fetch responses, write-backs
    Coherence,  //!< invalidations, fetches, acks, migratory probes
    Update,     //!< forwarded combined-write updates
    Sync,       //!< lock acquire/release/grant traffic
    NumClasses,
};

class Network
{
  public:
    using DeliverFn = EventQueue::Callback;

    explicit Network(EventQueue &event_queue) : eq(event_queue) {}
    virtual ~Network() = default;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /**
     * Send a message. @p payload_bytes excludes the header, which is
     * added internally. @p on_deliver runs at the destination when
     * the tail of the message arrives.
     */
    void
    send(NodeId src, NodeId dst, unsigned payload_bytes,
         DeliverFn on_deliver, MsgClass klass = MsgClass::Request)
    {
        unsigned total = payload_bytes + messageHeaderBytes;
        if (src != dst) {
            // Node-local traffic never enters the network; only the
            // local bus (charged by the sender) sees it.
            ++messages_;
            bytes_ += total;
            classBytes[static_cast<unsigned>(klass)] += total;
        }
        Tick arrival = route(src, dst, total);
        latency.sample(static_cast<double>(arrival - eq.now()));
        eq.schedule(arrival, std::move(on_deliver));
    }

    std::uint64_t totalMessages() const { return messages_.value(); }
    std::uint64_t totalBytes() const { return bytes_.value(); }

    /** Bytes injected for one message class. */
    std::uint64_t
    bytesOf(MsgClass klass) const
    {
        return classBytes[static_cast<unsigned>(klass)].value();
    }

    const Accumulator &latencyStats() const { return latency; }

    /**
     * Model-specific routing: return the absolute arrival tick of a
     * @p total_bytes message from @p src to @p dst injected now.
     * Public so that decorators (ChaosNetwork) can delegate to the
     * model they wrap; everything else goes through send().
     */
    virtual Tick route(NodeId src, NodeId dst, unsigned total_bytes) = 0;

  protected:
    EventQueue &eq;

  private:
    Counter messages_;
    Counter bytes_;
    Counter classBytes[static_cast<unsigned>(MsgClass::NumClasses)];
    Accumulator latency;
};

/**
 * The paper's default network: contention-free, uniform node-to-node
 * latency (54 pclocks), with node-local contention modelled elsewhere
 * (bus and memory module).
 */
class UniformNetwork : public Network
{
  public:
    UniformNetwork(EventQueue &event_queue, Tick hop_latency = 54,
                   Tick local_latency = 2)
        : Network(event_queue), hopLatency(hop_latency),
          localLatency(local_latency)
    {}

    Tick
    route(NodeId src, NodeId dst, unsigned) override
    {
        Tick delay = (src == dst) ? localLatency : hopLatency;
        return eq.now() + delay;
    }

  private:
    Tick hopLatency;
    Tick localLatency;
};

} // namespace cpx

#endif // CPX_NET_NETWORK_HH
