/**
 * @file
 * Interconnection network abstraction.
 *
 * The paper evaluates two network models: the default contention-free
 * uniform-latency network (54 pclocks node to node) used in §5.1–5.2,
 * and wormhole-routed meshes with 64/32/16-bit links used for the
 * contention study (§5.3, Table 3). Both implement this interface.
 *
 * Traffic accounting for Figure 4 also lives here: every message is
 * charged its header + payload bytes as it enters the network.
 */

#ifndef CPX_NET_NETWORK_HH
#define CPX_NET_NETWORK_HH

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cpx
{

/** Fixed per-message header charge (address + type + routing info). */
constexpr unsigned messageHeaderBytes = 8;

/** Message class, for the per-category traffic breakdown. */
enum class MsgClass
{
    Request,    //!< read/write/upgrade/update requests to a home
    Data,       //!< block data replies, fetch responses, write-backs
    Coherence,  //!< invalidations, fetches, acks, migratory probes
    Update,     //!< forwarded combined-write updates
    Sync,       //!< lock acquire/release/grant traffic
    NumClasses,
};

/**
 * Kernel-side hooks the parallel slab engine installs on a System's
 * network (DESIGN.md §15). While a bridge is installed, node-local
 * sends are scheduled on the queue of the node currently executing on
 * this host thread, and cross-node sends are deferred — routing,
 * traffic accounting and latency sampling all happen at the slab
 * barrier, in canonical (send tick, source node, send sequence)
 * order, via acceptCross(). Without a bridge the legacy inline path
 * is used, so a bare Network over a private queue (unit tests) keeps
 * its original semantics.
 */
class ParallelBridge
{
  public:
    virtual ~ParallelBridge() = default;

    /** Queue of the node currently executing on this host thread. */
    virtual EventQueue &activeQueue() = 0;

    /** Park a cross-node message in the sender's outbox until the
     *  slab barrier. @p total_bytes includes the header. */
    virtual void crossSend(NodeId src, NodeId dst,
                           unsigned total_bytes, MsgClass klass,
                           EventQueue::Callback on_deliver) = 0;
};

class Network
{
  public:
    using DeliverFn = EventQueue::Callback;

    explicit Network(EventQueue &event_queue) : eq(event_queue) {}
    virtual ~Network() = default;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /**
     * Send a message. @p payload_bytes excludes the header, which is
     * added internally. @p on_deliver runs at the destination when
     * the tail of the message arrives.
     */
    void
    send(NodeId src, NodeId dst, unsigned payload_bytes,
         DeliverFn on_deliver, MsgClass klass = MsgClass::Request)
    {
        unsigned total = payload_bytes + messageHeaderBytes;
        if (src != dst && bridge_) {
            bridge_->crossSend(src, dst, total, klass,
                               std::move(on_deliver));
            return;
        }
        EventQueue &q = bridge_ ? bridge_->activeQueue() : eq;
        if (src != dst) {
            acceptCross(src, dst, total, klass, q.now(), q,
                        std::move(on_deliver));
            return;
        }
        // Node-local traffic never enters the network; only the
        // local bus (charged by the sender) sees it. Sampled into a
        // per-source accumulator: under the parallel kernel only
        // src's worker touches it.
        Tick arrival = route(src, dst, total, q.now());
        localLat[src].acc.sample(static_cast<double>(arrival - q.now()));
        q.schedule(arrival, std::move(on_deliver));
    }

    /**
     * Deliver one cross-node message: charge traffic counters, route,
     * sample latency and schedule @p on_deliver on @p dst_queue. The
     * inline path of send() comes here directly; the parallel engine
     * calls it at the slab barrier, once per mailbox entry, in
     * canonical order — so a run's sequence of calls (and therefore
     * every counter, link reservation and jitter draw) is identical
     * at every --sim-threads value.
     */
    void
    acceptCross(NodeId src, NodeId dst, unsigned total_bytes,
                MsgClass klass, Tick send_tick, EventQueue &dst_queue,
                DeliverFn on_deliver)
    {
        ++messages_;
        bytes_ += total_bytes;
        classBytes[static_cast<unsigned>(klass)] += total_bytes;
        Tick arrival = route(src, dst, total_bytes, send_tick);
        crossLat.sample(static_cast<double>(arrival - send_tick));
        dst_queue.schedule(arrival, std::move(on_deliver));
    }

    /** Install (or, with nullptr, remove) the parallel kernel hooks. */
    void setParallelBridge(ParallelBridge *bridge) { bridge_ = bridge; }

    std::uint64_t totalMessages() const { return messages_.value(); }
    std::uint64_t totalBytes() const { return bytes_.value(); }

    /** Bytes injected for one message class. */
    std::uint64_t
    bytesOf(MsgClass klass) const
    {
        return classBytes[static_cast<unsigned>(klass)].value();
    }

    /**
     * Merged view of cross-node and node-local message latencies.
     * Merge order is fixed (cross, then locals by node id); all
     * samples are integer tick counts whose running sums stay far
     * below 2^53, so the merged count/sum/min/max are exact and
     * independent of sampling interleaving — the report is
     * bit-identical at every --sim-threads value.
     */
    const Accumulator &
    latencyStats() const
    {
        mergedLat.reset();
        mergedLat.merge(crossLat);
        for (const auto &l : localLat)
            mergedLat.merge(l.acc);
        return mergedLat;
    }

    /**
     * Model-specific routing: return the absolute arrival tick of a
     * @p total_bytes message from @p src to @p dst injected at
     * @p now. Public so that decorators (ChaosNetwork) can delegate
     * to the model they wrap; everything else goes through send() /
     * acceptCross().
     */
    virtual Tick route(NodeId src, NodeId dst, unsigned total_bytes,
                       Tick now) = 0;

    /**
     * Smallest possible cross-node (src != dst) delivery delay, in
     * ticks. The parallel kernel's lookahead: a message sent at tick
     * t cannot act on another node before t + minCrossLatency(), so
     * workers may safely advance that far without synchronizing.
     */
    virtual Tick minCrossLatency() const = 0;

    /**
     * Topological hop count from @p src to @p dst, for per-hop
     * attribution of network segments (src/obs/attrib.hh). The
     * uniform network is a single logical hop; the mesh overrides
     * this with its Manhattan distance. Purely informational — no
     * routing or timing decision reads it.
     */
    virtual unsigned
    hops(NodeId src, NodeId dst) const
    {
        return src == dst ? 0 : 1;
    }

  protected:
    EventQueue &eq;

  private:
    Counter messages_;
    Counter bytes_;
    Counter classBytes[static_cast<unsigned>(MsgClass::NumClasses)];
    //! Cross-node latency: sampled only in acceptCross (under the
    //! parallel kernel: only at the barrier, in canonical order).
    Accumulator crossLat;
    //! Node-local latency, one slot per source node, cache-line
    //! padded so concurrent workers never share a line.
    struct alignas(64) LocalLat { Accumulator acc; };
    LocalLat localLat[maxNodes];
    mutable Accumulator mergedLat;
    ParallelBridge *bridge_ = nullptr;
};

/**
 * The paper's default network: contention-free, uniform node-to-node
 * latency (54 pclocks), with node-local contention modelled elsewhere
 * (bus and memory module).
 */
class UniformNetwork : public Network
{
  public:
    UniformNetwork(EventQueue &event_queue, Tick hop_latency = 54,
                   Tick local_latency = 2)
        : Network(event_queue), hopLatency(hop_latency),
          localLatency(local_latency)
    {}

    Tick
    route(NodeId src, NodeId dst, unsigned, Tick now) override
    {
        Tick delay = (src == dst) ? localLatency : hopLatency;
        return now + delay;
    }

    Tick minCrossLatency() const override { return hopLatency; }

  private:
    Tick hopLatency;
    Tick localLatency;
};

} // namespace cpx

#endif // CPX_NET_NETWORK_HH
