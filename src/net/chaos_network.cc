#include "net/chaos_network.hh"

namespace cpx
{

ChaosNetwork::ChaosNetwork(EventQueue &event_queue,
                           std::unique_ptr<Network> inner,
                           const ChaosParams &chaos)
    : Network(event_queue), inner_(std::move(inner)), cfg(chaos),
      rng(chaos.seed)
{
}

Tick
ChaosNetwork::route(NodeId src, NodeId dst, unsigned total_bytes,
                    Tick now)
{
    Tick arrival = inner_->route(src, dst, total_bytes, now);
    if (src == dst)
        return arrival;  // node-local: never crosses the network

    Tick jitter = cfg.maxJitter ? rng.below(cfg.maxJitter + 1) : 0;
    if (cfg.spikePercent && rng.below(100) < cfg.spikePercent)
        jitter += 10 * cfg.maxJitter;
    jitterTicks += jitter;
    arrival += jitter;

    std::uint64_t pair = (std::uint64_t(src) << 32) | dst;
    Tick &last = lastArrival[pair];
    if (arrival < last) {
        if (cfg.preservePairFifo) {
            ++clamps;
            arrival = last;
        } else {
            ++reordered;
        }
    }
    if (arrival > last)
        last = arrival;
    return arrival;
}

} // namespace cpx
