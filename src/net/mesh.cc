#include "net/mesh.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace cpx
{

MeshNetwork::MeshNetwork(EventQueue &event_queue, unsigned num_nodes,
                         unsigned link_width_bits)
    : Network(event_queue), linkBits(link_width_bits)
{
    if (num_nodes == 0)
        fatal("mesh needs at least one node");
    if (link_width_bits == 0)
        fatal("mesh link width must be positive");

    // Near-square factorization, wider than tall (4x4 for 16 nodes).
    cols = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    rowCount = (num_nodes + cols - 1) / cols;

    linkFreeAt.assign(
        static_cast<std::size_t>(cols) * rowCount * numDirections, 0);
}

unsigned
MeshNetwork::linkIndex(unsigned x, unsigned y, Direction d) const
{
    return (y * cols + x) * numDirections + d;
}

unsigned
MeshNetwork::hopCount(NodeId src, NodeId dst) const
{
    unsigned sx = src % cols, sy = src / cols;
    unsigned dx = dst % cols, dy = dst / cols;
    unsigned manhattan =
        (sx > dx ? sx - dx : dx - sx) + (sy > dy ? sy - dy : dy - sy);
    return manhattan;
}

Tick
MeshNetwork::route(NodeId src, NodeId dst, unsigned total_bytes)
{
    // Flit count: payload cut into link-width pieces; at least one.
    unsigned msg_flits =
        std::max(1u, (total_bytes * 8 + linkBits - 1) / linkBits);

    if (src == dst) {
        // Memory-to-cache traffic inside a node never enters the
        // mesh; the local bus models that cost.
        return eq.now() + 2;
    }
    flits += msg_flits;

    unsigned x = src % cols, y = src / cols;
    unsigned dx = dst % cols, dy = dst / cols;

    // Head departure time from the previous router.
    Tick head = eq.now();

    auto traverse = [&](Direction d, unsigned &coord, unsigned target) {
        while (coord != target) {
            unsigned idx = linkIndex(x, y, d);
            Tick start = std::max(head, linkFreeAt[idx]);
            // The link is busy until the tail flit has crossed.
            linkFreeAt[idx] = start + msg_flits;
            // The head reaches the next router after the two hop
            // pipeline phases.
            head = start + hopPipelineDepth;
            if (d == east)
                ++coord;
            else if (d == west)
                --coord;
            else if (d == south)
                ++coord;
            else
                --coord;
        }
    };

    // Dimension-order: X first, then Y.
    if (dx > x)
        traverse(east, x, dx);
    else if (dx < x)
        traverse(west, x, dx);
    if (dy > y)
        traverse(south, y, dy);
    else if (dy < y)
        traverse(north, y, dy);

    // Tail arrival: head arrival plus the pipelined flit train.
    return head + msg_flits;
}

} // namespace cpx
