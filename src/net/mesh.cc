#include "net/mesh.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace cpx
{

MeshNetwork::MeshNetwork(EventQueue &event_queue, unsigned num_nodes,
                         unsigned link_width_bits)
    : Network(event_queue), linkBits(link_width_bits)
{
    if (num_nodes == 0)
        fatal("mesh needs at least one node");
    if (num_nodes > maxNodes)
        fatal("mesh supports at most %u nodes (got %u)", maxNodes,
              num_nodes);
    if (link_width_bits == 0)
        fatal("mesh link width must be positive");

    // Near-square factorization, wider than tall (4x4 for 16 nodes,
    // 8x8 for 64, 16x16 for 256). Non-square counts leave "holes" —
    // router positions in the last row with no node attached. Those
    // positions still route (link state covers the full cols×rows
    // rectangle and XY paths may legitimately cross them); they just
    // never source or sink traffic.
    cols = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    rowCount = (num_nodes + cols - 1) / cols;

    std::size_t num_links =
        static_cast<std::size_t>(cols) * rowCount * numDirections;
    linkFreeAt.assign(num_links, 0);
    linkFlits.assign(num_links, 0);
    linkWait.assign(num_links, 0);
}

unsigned
MeshNetwork::linkIndex(unsigned x, unsigned y, Direction d) const
{
    return (y * cols + x) * numDirections + d;
}

void
MeshNetwork::registerMetrics(MetricRegistry &registry) const
{
    // Register every in-grid link (boundary-leaving directions carry
    // no traffic and are skipped). XY routing can cross router
    // positions beyond the last node of a non-square grid, so links
    // are keyed by grid coordinates, not node ids.
    static const char *const dirName[numDirections] = {
        "east", "west", "north", "south"};
    // Coordinates are zero-padded to the grid's digit width so names
    // stay unambiguous and lexically sortable past 9 columns ("x12" /
    // "x02", not "x12" mixing with "x1"). Grids up to 10 wide keep
    // the historical single-digit names (committed baselines and
    // golden reports depend on them).
    auto coordName = [](unsigned v, unsigned extent) {
        std::string s = std::to_string(v);
        std::string width = std::to_string(extent - 1);
        while (s.size() < width.size())
            s.insert(s.begin(), '0');
        return s;
    };
    for (unsigned y = 0; y < rowCount; ++y) {
        for (unsigned x = 0; x < cols; ++x) {
            for (unsigned d = 0; d < numDirections; ++d) {
                if ((d == east && x + 1 >= cols) ||
                    (d == west && x == 0) ||
                    (d == south && y + 1 >= rowCount) ||
                    (d == north && y == 0)) {
                    continue;
                }
                unsigned idx =
                    linkIndex(x, y, static_cast<Direction>(d));
                std::string base = "mesh.x" + coordName(x, cols) +
                                   "y" + coordName(y, rowCount) + "." +
                                   dirName[d];
                registry.addValue(base + ".flits", linkFlits[idx]);
                registry.addValue(base + ".waitTicks", linkWait[idx]);
            }
        }
    }
}

unsigned
MeshNetwork::hopCount(NodeId src, NodeId dst) const
{
    unsigned sx = src % cols, sy = src / cols;
    unsigned dx = dst % cols, dy = dst / cols;
    unsigned manhattan =
        (sx > dx ? sx - dx : dx - sx) + (sy > dy ? sy - dy : dy - sy);
    return manhattan;
}

Tick
MeshNetwork::route(NodeId src, NodeId dst, unsigned total_bytes,
                   Tick now)
{
    // Flit count: payload cut into link-width pieces; at least one.
    unsigned msg_flits =
        std::max(1u, (total_bytes * 8 + linkBits - 1) / linkBits);

    if (src == dst) {
        // Memory-to-cache traffic inside a node never enters the
        // mesh; the local bus models that cost. No link state is
        // touched, so concurrent workers may take this path freely.
        return now + 2;
    }
    flits += msg_flits;

    unsigned x = src % cols, y = src / cols;
    unsigned dx = dst % cols, dy = dst / cols;

    // Head departure time from the previous router.
    Tick head = now;

    auto traverse = [&](Direction d, unsigned &coord, unsigned target) {
        while (coord != target) {
            unsigned idx = linkIndex(x, y, d);
            Tick start = std::max(head, linkFreeAt[idx]);
            // Head-flit queueing delay: how long this link's earlier
            // traffic held the head up beyond its pipeline arrival.
            linkWait[idx] += start - head;
            linkFlits[idx] += msg_flits;
            // The link is busy until the tail flit has crossed.
            linkFreeAt[idx] = start + msg_flits;
            // The head reaches the next router after the two hop
            // pipeline phases.
            head = start + hopPipelineDepth;
            if (d == east)
                ++coord;
            else if (d == west)
                --coord;
            else if (d == south)
                ++coord;
            else
                --coord;
        }
    };

    // Dimension-order: X first, then Y.
    if (dx > x)
        traverse(east, x, dx);
    else if (dx < x)
        traverse(west, x, dx);
    if (dy > y)
        traverse(south, y, dy);
    else if (dy < y)
        traverse(north, y, dy);

    // Tail arrival: head arrival plus the pipelined flit train.
    return head + msg_flits;
}

} // namespace cpx
