/**
 * @file
 * Chaos decorator over any Network model (stress testing).
 *
 * Wraps another network and perturbs every remote message's arrival
 * tick with seeded, deterministic jitter — bounded uniform delay plus
 * occasional long spikes — so directory and cache controllers see
 * message interleavings the well-behaved timing models never produce.
 * Cross-pair reordering always results; same-pair reordering is
 * gated by ChaosParams::preservePairFifo because the protocol relies
 * on pairwise FIFO delivery (see DESIGN.md §"Stress harness").
 *
 * Determinism: the jitter stream is drawn from one Rng in injection
 * order, and the simulator is single-threaded, so a (seed, workload,
 * machine) triple replays bit-identically — a failing fuzz run can
 * be reproduced from its command line.
 */

#ifndef CPX_NET_CHAOS_NETWORK_HH
#define CPX_NET_CHAOS_NETWORK_HH

#include <memory>
#include <unordered_map>

#include "net/network.hh"
#include "proto/params.hh"
#include "sim/random.hh"

namespace cpx
{

class ChaosNetwork : public Network
{
  public:
    /**
     * @param event_queue the simulation event queue (shared with
     *                    @p inner, which was built on the same one)
     * @param inner       the real network model to perturb
     * @param chaos       jitter configuration (seed, bounds, FIFO)
     */
    ChaosNetwork(EventQueue &event_queue,
                 std::unique_ptr<Network> inner,
                 const ChaosParams &chaos);

    Tick route(NodeId src, NodeId dst, unsigned total_bytes,
               Tick now) override;

    /**
     * Jitter only ever delays a message and the pairwise FIFO clamp
     * only raises arrivals, so the wrapped model's minimum is still a
     * valid conservative lookahead.
     */
    Tick minCrossLatency() const override {
        return inner_->minCrossLatency();
    }

    /** Total jitter added across all messages, in pclocks. */
    std::uint64_t jitterInjected() const { return jitterTicks.value(); }

    /** Messages whose jittered arrival passed an earlier same-pair
     *  message (only possible with preservePairFifo off). */
    std::uint64_t reorderedDeliveries() const {
        return reordered.value();
    }

    /** Arrivals clamped to keep their (src, dst) pair FIFO. */
    std::uint64_t fifoClamps() const { return clamps.value(); }

    const Network &innerNetwork() const { return *inner_; }

  private:
    std::unique_ptr<Network> inner_;
    ChaosParams cfg;
    Rng rng;
    /** Latest arrival tick per (src, dst) pair, for FIFO clamping. */
    std::unordered_map<std::uint64_t, Tick> lastArrival;
    Counter jitterTicks;
    Counter reordered;
    Counter clamps;
};

} // namespace cpx

#endif // CPX_NET_CHAOS_NETWORK_HH
