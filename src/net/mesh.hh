/**
 * @file
 * Wormhole-routed 2-D mesh with per-link contention (§5.3).
 *
 * Geometry: nodes arranged in a near-square mesh (4×4 for 16 nodes),
 * dimension-order (X then Y) routing, unidirectional links in each
 * direction. Links are clocked with the processors (100 MHz) and are
 * `linkWidthBits` wide, so one flit of linkWidthBits crosses a link
 * per pclock. Each hop has two pipeline phases (routing + transfer),
 * as in the paper.
 *
 * Contention model: virtual cut-through approximation of wormhole
 * routing. Each unidirectional link keeps a "free at" time; a
 * message's head must wait for every link on its path to drain
 * earlier messages, and occupies each link for its full flit count.
 * Because simulator events execute in time order, eager path
 * reservation at injection time is consistent and cheap. This
 * captures the saturation behaviour Table 3 measures; it does not
 * model flit-level buffer backpressure (documented in DESIGN.md).
 */

#ifndef CPX_NET_MESH_HH
#define CPX_NET_MESH_HH

#include <vector>

#include "net/network.hh"

namespace cpx
{

class MetricRegistry;

class MeshNetwork : public Network
{
  public:
    /**
     * @param event_queue     the system event queue
     * @param num_nodes       number of nodes (16 in the paper)
     * @param link_width_bits link width: 64, 32 or 16 in the paper
     */
    MeshNetwork(EventQueue &event_queue, unsigned num_nodes,
                unsigned link_width_bits);

    unsigned columns() const { return cols; }
    unsigned rows() const { return rowCount; }
    unsigned linkWidthBits() const { return linkBits; }

    /** Total flits injected (for traffic reports). */
    std::uint64_t totalFlits() const { return flits.value(); }

    /** Hops traversed by an src→dst message (Manhattan distance). */
    unsigned hopCount(NodeId src, NodeId dst) const;

    unsigned
    hops(NodeId src, NodeId dst) const override
    {
        return hopCount(src, dst);
    }

    /**
     * Register one `mesh.xXyY.DIR.flits` and `.waitTicks` metric per
     * in-grid unidirectional link (interval metrics, DESIGN.md §13).
     * Links are clocked at one flit per pclock, so a link's flit
     * count doubles as its busy-tick count: delta-flits over an
     * interval is the link's utilization numerator. waitTicks
     * accumulates head-flit queueing delay — the contention signal.
     */
    void registerMetrics(MetricRegistry &registry) const;

    /** Flits that crossed one link (test/report hook). */
    std::uint64_t
    linkFlitCount(unsigned x, unsigned y, unsigned direction) const
    {
        return linkFlits[linkIndex(x, y,
                                   static_cast<Direction>(direction))];
    }

    /**
     * One hop minimum: two pipeline phases plus the single-flit tail
     * of the smallest message. Adjacent nodes bound the lookahead,
     * so the parallel kernel runs the mesh with much shorter slabs
     * than the 54-tick uniform fabric.
     */
    Tick minCrossLatency() const override { return hopPipelineDepth + 1; }

  protected:
    Tick route(NodeId src, NodeId dst, unsigned total_bytes,
               Tick now) override;

  private:
    /// Phases per hop: routing decision + transfer (paper: "two
    /// phases (routing + transfer)").
    static constexpr Tick hopPipelineDepth = 2;

    enum Direction { east, west, north, south, numDirections };

    unsigned linkIndex(unsigned x, unsigned y, Direction d) const;

    unsigned cols;
    unsigned rowCount;
    unsigned linkBits;
    std::vector<Tick> linkFreeAt;
    //! Per-link cumulative flits (== busy ticks at 1 flit/pclock) and
    //! head-flit wait ticks; same indexing as linkFreeAt. Never
    //! resized after construction, so MetricRegistry may hold
    //! references to individual elements.
    std::vector<std::uint64_t> linkFlits;
    std::vector<std::uint64_t> linkWait;
    Counter flits;
};

} // namespace cpx

#endif // CPX_NET_MESH_HH
