#include "core/engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cpx
{

thread_local EventQueue *activeNodeQueue = nullptr;

SlabEngine::SlabEngine(
    EventQueue &kernel_queue,
    const std::vector<std::unique_ptr<EventQueue>> &node_queues,
    Network &network, unsigned num_workers, NodeHooks node_hooks)
    : kernelQueue(kernel_queue), nodeQueues(node_queues), net(network),
      workers(std::max(1u,
                       std::min(num_workers,
                                static_cast<unsigned>(
                                    node_queues.size())))),
      hooks(std::move(node_hooks)),
      outboxes(node_queues.size()),
      barrier(workers)
{
    stats.lookahead = net.minCrossLatency();
    stats.simThreads = workers;
    if (stats.lookahead == 0)
        panic("network reports zero cross-node latency; the slab "
              "kernel needs lookahead >= 1");
    net.setParallelBridge(this);
}

SlabEngine::~SlabEngine()
{
    net.setParallelBridge(nullptr);
}

EventQueue &
SlabEngine::activeQueue()
{
    if (!activeNodeQueue)
        panic("network send outside node execution while the "
              "parallel kernel is active");
    return *activeNodeQueue;
}

void
SlabEngine::crossSend(NodeId src, NodeId dst, unsigned total_bytes,
                      MsgClass klass, EventQueue::Callback on_deliver)
{
    outboxes[src].msgs.push_back(PendingMsg{
        activeQueue().now(), src, dst, total_bytes, klass,
        std::move(on_deliver)});
}

Tick
SlabEngine::earliestNodeTick() const
{
    Tick t = maxTick;
    for (const auto &q : nodeQueues)
        t = std::min(t, q->nextPendingTick());
    return t;
}

void
SlabEngine::runPartition(unsigned worker, Tick slab_end)
{
    // Static interleaved partition: node n belongs to worker n % W.
    // The assignment only affects which thread advances a queue,
    // never what the queue does, so it is free to be this simple.
    for (std::size_t n = worker; n < nodeQueues.size(); n += workers) {
        EventQueue &q = *nodeQueues[n];
        activeNodeQueue = &q;
        Logger::setTickSource(q.tickPtr());
        if (hooks.enter)
            hooks.enter(static_cast<unsigned>(n));
        q.runUntil(slab_end);
        if (hooks.leave)
            hooks.leave(static_cast<unsigned>(n));
        activeNodeQueue = nullptr;
        Logger::clearTickSource(q.tickPtr());
    }
}

void
SlabEngine::workerLoop(unsigned worker)
{
    for (;;) {
        barrier.arriveAndWait();  // slab start (or shutdown)
        if (stopping)
            return;
        runPartition(worker, slabEnd);
        barrier.arriveAndWait();  // slab end
    }
}

void
SlabEngine::drainOutboxes()
{
    // Canonical order: gather source-ascending (each outbox is
    // already send-ordered), then stable-sort by send tick. The
    // result is (send tick, source node, send sequence) — a total
    // order independent of how many workers produced the messages.
    drainScratch.clear();
    for (auto &box : outboxes) {
        for (auto &msg : box.msgs)
            drainScratch.push_back(std::move(msg));
        box.msgs.clear();
    }
    std::stable_sort(drainScratch.begin(), drainScratch.end(),
                     [](const PendingMsg &a, const PendingMsg &b) {
                         return a.sendTick < b.sendTick;
                     });
    stats.crossMessages += drainScratch.size();
    for (PendingMsg &msg : drainScratch) {
        // Arrival >= sendTick + lookahead >= slab end: never lands
        // inside the slab just executed, so no queue sees the past.
        net.acceptCross(msg.src, msg.dst, msg.totalBytes, msg.klass,
                        msg.sendTick, *nodeQueues[msg.dst],
                        std::move(msg.onDeliver));
    }
    drainScratch.clear();
}

void
SlabEngine::run(Tick limit)
{
    // Everything the coordinator schedules between slabs stamps
    // kernel time; workers install their node queues themselves.
    const std::uint64_t *coordinator_tick = kernelQueue.tickPtr();
    Logger::setTickSource(coordinator_tick);

    threads.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads.emplace_back([this, w] { workerLoop(w); });

    const Tick end_cap = limit == maxTick ? maxTick : limit + 1;
    for (;;) {
        const Tick kernel_next = kernelQueue.nextPendingTick();
        const Tick node_next = earliestNodeTick();
        const Tick t = std::min(kernel_next, node_next);
        if (t == maxTick || t > limit)
            break;
        if (kernel_next <= t) {
            // Kernel slice: sampler/watchdog events at this tick run
            // before any node event at the same tick, with every
            // worker parked — they may read node state race-free.
            kernelQueue.runUntil(kernel_next + 1);
            continue;
        }
        Tick slab_limit = t > maxTick - stats.lookahead
                              ? maxTick
                              : t + stats.lookahead;
        const Tick end =
            std::min({slab_limit, kernel_next, end_cap});
        ++stats.slabRounds;
        slabEnd = end;
        barrier.arriveAndWait();  // publish slabEnd; slab start
        runPartition(0, end);
        Logger::setTickSource(coordinator_tick);
        barrier.arriveAndWait();  // slab end
        drainOutboxes();
        if (hooks.commit)
            hooks.commit();
    }

    stopping = true;
    barrier.arriveAndWait();
    for (std::thread &th : threads)
        th.join();
    threads.clear();
}

} // namespace cpx
