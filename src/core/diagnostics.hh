/**
 * @file
 * Structured protocol-state diagnostics for wedged runs.
 *
 * When a run stalls — a deadlocked workload drains the event queue
 * with processors still suspended, or the tick limit cuts a livelock
 * short — a one-line panic tells you nothing about *why*. This dump
 * walks the whole machine and reports, per node, the outstanding SLC
 * transactions (with ages), write-buffer and write-cache occupancy,
 * the directory blocks mid-transaction with their service-queue
 * depths and entry state, and every held lock with its waiter queue,
 * plus event-queue statistics — everything needed to reconstruct the
 * protocol-level wait cycle.
 *
 * System::run() prints this automatically when processors fail to
 * finish; the Watchdog (src/check) prints it when it detects a stall
 * mid-run.
 */

#ifndef CPX_CORE_DIAGNOSTICS_HH
#define CPX_CORE_DIAGNOSTICS_HH

#include <string>

#include "core/system.hh"

namespace cpx
{

/** Render the full stall-diagnostic report for @p sys. */
std::string formatStallDiagnostics(System &sys);

} // namespace cpx

#endif // CPX_CORE_DIAGNOSTICS_HH
