#include "core/system.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/diagnostics.hh"
#include "net/chaos_network.hh"
#include "proto/sharer_set.hh"
#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace cpx
{

System::System(const MachineParams &machine_params,
               unsigned sim_threads)
    : params_(machine_params), simThreads_(sim_threads),
      addressMap(params_.blockBytes, params_.pageBytes,
                 params_.numProcs),
      backingStore(params_.pageBytes),
      sharedHeap(addressMap)
{
    if (params_.numProcs == 0 || params_.numProcs > maxNodes)
        fatal("numProcs must be in 1..%u (maxNodes)", maxNodes);
    switch (params_.directory.rep) {
      case DirRep::FullMap:
        break;
      case DirRep::LimitedPtr:
        // Two pointers minimum: a fetch downgrade re-installs the
        // requester AND the previous owner in one step
        // (directory.cc onFetchResp) and must never overflow.
        if (params_.directory.pointers < 2 ||
            params_.directory.pointers > SharerSet::maxPointers) {
            fatal("limited-pointer directory needs 2..%u pointers "
                  "(got %u)",
                  SharerSet::maxPointers, params_.directory.pointers);
        }
        break;
      case DirRep::CoarseVector:
        if (params_.directory.coarseness == 0)
            fatal("coarse-vector directory needs coarseness >= 1");
        break;
    }
    if (simThreads_ == 0 || simThreads_ > 64)
        fatal("sim-threads must be in 1..64");
    if (params_.protocol.compUpdate &&
        params_.consistency == Consistency::SequentialConsistency) {
        fatal("the competitive-update extension (CW) requires "
              "release consistency (paper §3.3/§5.2)");
    }
    if (params_.slwbEntries == 0 || params_.flwbEntries == 0)
        fatal("write buffers need at least one entry");

    switch (params_.networkKind) {
      case NetworkKind::Uniform:
        network = std::make_unique<UniformNetwork>(
            eventQueue, params_.uniformHopLatency);
        break;
      case NetworkKind::Mesh: {
        auto mesh_net = std::make_unique<MeshNetwork>(
            eventQueue, params_.numProcs, params_.meshLinkBits);
        meshPtr = mesh_net.get();
        network = std::move(mesh_net);
        break;
      }
    }

    if (params_.chaos.enabled) {
        // Fault injection: wrap the timing model in the jittering
        // decorator. Traffic accounting moves to the wrapper (it is
        // what send() runs on); mesh link stats stay on the inner
        // model, still reachable through meshPtr.
        network = std::make_unique<ChaosNetwork>(
            eventQueue, std::move(network), params_.chaos);
    }

    nodeQueues.reserve(params_.numProcs);
    nodes.reserve(params_.numProcs);
    for (NodeId n = 0; n < params_.numProcs; ++n) {
        nodeQueues.push_back(std::make_unique<EventQueue>());
        nodes.push_back(std::make_unique<Node>(n, *this));
    }
    // Each EventQueue constructor installed itself as this thread's
    // trace tick source; outside node execution the system-level
    // kernel queue is the right one.
    Logger::setTickSource(eventQueue.tickPtr());
}

void
System::registerMetrics(MetricRegistry &registry) const
{
    for (NodeId n = 0; n < params_.numProcs; ++n) {
        std::string prefix = "node" + std::to_string(n);
        nodes[n]->proc.registerMetrics(registry, prefix);
        nodes[n]->slc.registerMetrics(registry, prefix);
    }
    if (meshPtr)
        meshPtr->registerMetrics(registry);
    const Network *net_model = network.get();
    registry.add("net.messages",
                 [net_model] { return net_model->totalMessages(); });
    registry.add("net.bytes",
                 [net_model] { return net_model->totalBytes(); });
}

bool
System::allProcessorsFinished() const
{
    for (const auto &n : nodes)
        if (!n->proc.finished())
            return false;
    return true;
}

Tick
System::run(const std::function<void(Processor &, unsigned)> &body,
            Tick limit)
{
    if (ran)
        fatal("System::run called twice; construct a fresh System "
              "per run (caches would be warm)");
    ran = true;

    unsigned workers = simThreads_;
    if (observer() && workers > 1) {
        // The coherence checker keeps order-dependent state across
        // nodes; running it sharded would race. Checked runs are a
        // debugging tool — correctness beats speed here.
        warn("protocol observer installed: forcing --sim-threads=1 "
             "(was %u)", workers);
        workers = 1;
    }

    for (NodeId n = 0; n < params_.numProcs; ++n) {
        Processor &p = nodes[n]->proc;
        unsigned id = n;
        // The initial fiber resume must land on the node's own
        // queue: point eq() at it for the duration of start().
        activeNodeQueue = nodeQueues[n].get();
        p.start([&body, &p, id] { body(p, id); });
    }
    activeNodeQueue = nullptr;

    // Functional memory runs behind per-node slab write overlays for
    // the whole engine run — at every worker count, so there is one
    // canonical memory semantics (backing_store.hh, DESIGN.md §15).
    backingStore.beginSlabOverlays(params_.numProcs);
    SlabEngine::NodeHooks hooks;
    hooks.enter = [this](unsigned n) { backingStore.enterNode(n); };
    hooks.leave = [this](unsigned) { backingStore.leaveNode(); };
    hooks.commit = [this] { backingStore.commitSlab(); };
    {
        SlabEngine engine(eventQueue, nodeQueues, *network, workers,
                          std::move(hooks));
        engine.run(limit);
        telemetry = engine.telemetry();
    }
    backingStore.endSlabOverlays();

    Tick finish = 0;
    for (NodeId n = 0; n < params_.numProcs; ++n) {
        const Processor &p = nodes[n]->proc;
        if (!p.finished()) {
            // Dump the full protocol state before dying: a bare
            // panic on a wedged run hides the wait cycle.
            std::fputs(formatStallDiagnostics(*this).c_str(), stderr);
            panic("processor %u did not finish (deadlock or tick "
                  "limit %llu reached at t=%llu; %zu events pending; "
                  "diagnostics above)",
                  n, static_cast<unsigned long long>(limit),
                  static_cast<unsigned long long>(simNow()),
                  totalPending());
        }
        finish = std::max(finish, p.finishTick());
    }
    return finish;
}

std::uint64_t
System::totalEventsExecuted() const
{
    std::uint64_t total = eventQueue.executed();
    for (const auto &q : nodeQueues)
        total += q->executed();
    return total;
}

std::size_t
System::totalPending() const
{
    std::size_t total = eventQueue.pending();
    for (const auto &q : nodeQueues)
        total += q->pending();
    return total;
}

std::size_t
System::totalPeakPending() const
{
    std::size_t total = eventQueue.peakPending();
    for (const auto &q : nodeQueues)
        total += q->peakPending();
    return total;
}

std::uint64_t
System::totalScheduleAllocs() const
{
    std::uint64_t total = eventQueue.scheduleAllocs();
    for (const auto &q : nodeQueues)
        total += q->scheduleAllocs();
    return total;
}

Tick
System::simNow() const
{
    Tick t = eventQueue.now();
    for (const auto &q : nodeQueues)
        t = std::max(t, q->now());
    return t;
}

void
System::flushFunctionalState()
{
    if (ProtocolObserver *obs = observer())
        obs->onBeforeFunctionalFlush();
    for (auto &n : nodes)
        n->slc.flushFunctionalState();
}

bool
System::quiescent() const
{
    for (const auto &n : nodes) {
        if (n->slc.pendingTransactions() != 0)
            return false;
        if (n->slc.pendingWriteClass() != 0)
            return false;
        if (n->dir.blocksInService() != 0)
            return false;
        if (n->locks.heldLocks() != 0)
            return false;
    }
    return true;
}

} // namespace cpx
