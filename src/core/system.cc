#include "core/system.hh"

#include <cstdio>
#include <string>

#include "core/diagnostics.hh"
#include "net/chaos_network.hh"
#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace cpx
{

System::System(const MachineParams &machine_params)
    : params_(machine_params),
      addressMap(params_.blockBytes, params_.pageBytes,
                 params_.numProcs),
      backingStore(params_.pageBytes),
      sharedHeap(addressMap)
{
    if (params_.numProcs == 0 || params_.numProcs > 64)
        fatal("numProcs must be in 1..64 (presence vector width)");
    if (params_.protocol.compUpdate &&
        params_.consistency == Consistency::SequentialConsistency) {
        fatal("the competitive-update extension (CW) requires "
              "release consistency (paper §3.3/§5.2)");
    }
    if (params_.slwbEntries == 0 || params_.flwbEntries == 0)
        fatal("write buffers need at least one entry");

    switch (params_.networkKind) {
      case NetworkKind::Uniform:
        network = std::make_unique<UniformNetwork>(
            eventQueue, params_.uniformHopLatency);
        break;
      case NetworkKind::Mesh: {
        auto mesh_net = std::make_unique<MeshNetwork>(
            eventQueue, params_.numProcs, params_.meshLinkBits);
        meshPtr = mesh_net.get();
        network = std::move(mesh_net);
        break;
      }
    }

    if (params_.chaos.enabled) {
        // Fault injection: wrap the timing model in the jittering
        // decorator. Traffic accounting moves to the wrapper (it is
        // what send() runs on); mesh link stats stay on the inner
        // model, still reachable through meshPtr.
        network = std::make_unique<ChaosNetwork>(
            eventQueue, std::move(network), params_.chaos);
    }

    nodes.reserve(params_.numProcs);
    for (NodeId n = 0; n < params_.numProcs; ++n)
        nodes.push_back(std::make_unique<Node>(n, *this));
}

void
System::registerMetrics(MetricRegistry &registry) const
{
    for (NodeId n = 0; n < params_.numProcs; ++n) {
        std::string prefix = "node" + std::to_string(n);
        nodes[n]->proc.registerMetrics(registry, prefix);
        nodes[n]->slc.registerMetrics(registry, prefix);
    }
    if (meshPtr)
        meshPtr->registerMetrics(registry);
    const Network *net_model = network.get();
    registry.add("net.messages",
                 [net_model] { return net_model->totalMessages(); });
    registry.add("net.bytes",
                 [net_model] { return net_model->totalBytes(); });
}

bool
System::allProcessorsFinished() const
{
    for (const auto &n : nodes)
        if (!n->proc.finished())
            return false;
    return true;
}

Tick
System::run(const std::function<void(Processor &, unsigned)> &body,
            Tick limit)
{
    if (ran)
        fatal("System::run called twice; construct a fresh System "
              "per run (caches would be warm)");
    ran = true;

    for (NodeId n = 0; n < params_.numProcs; ++n) {
        Processor &p = nodes[n]->proc;
        unsigned id = n;
        p.start([&body, &p, id] { body(p, id); });
    }

    eventQueue.run(limit);

    Tick finish = 0;
    for (NodeId n = 0; n < params_.numProcs; ++n) {
        const Processor &p = nodes[n]->proc;
        if (!p.finished()) {
            // Dump the full protocol state before dying: a bare
            // panic on a wedged run hides the wait cycle.
            std::fputs(formatStallDiagnostics(*this).c_str(), stderr);
            panic("processor %u did not finish (deadlock or tick "
                  "limit %llu reached at t=%llu; %zu events pending; "
                  "diagnostics above)",
                  n, static_cast<unsigned long long>(limit),
                  static_cast<unsigned long long>(eventQueue.now()),
                  eventQueue.pending());
        }
        finish = std::max(finish, p.finishTick());
    }
    return finish;
}

void
System::flushFunctionalState()
{
    if (ProtocolObserver *obs = observer())
        obs->onBeforeFunctionalFlush();
    for (auto &n : nodes)
        n->slc.flushFunctionalState();
}

bool
System::quiescent() const
{
    for (const auto &n : nodes) {
        if (n->slc.pendingTransactions() != 0)
            return false;
        if (n->slc.pendingWriteClass() != 0)
            return false;
        if (n->dir.blocksInService() != 0)
            return false;
        if (n->locks.heldLocks() != 0)
            return false;
    }
    return true;
}

} // namespace cpx
