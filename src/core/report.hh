/**
 * @file
 * Statistics collection and report formatting.
 *
 * collectStats() aggregates one finished System run into a RunResult;
 * the printing helpers render the relative execution-time bars of
 * Figures 2/3 and the rate/traffic tables as text.
 */

#ifndef CPX_CORE_REPORT_HH
#define CPX_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/system.hh"
#include "obs/attrib.hh"
#include "obs/metrics.hh"

namespace cpx
{

/** Aggregated results of one workload × configuration run. */
struct RunResult
{
    std::string protocol;    //!< "BASIC", "P+CW", ...
    std::string consistency; //!< "RC" or "SC"
    Tick execTime = 0;       //!< parallel-section execution time

    // Per-processor time breakdown, averaged across processors.
    double busy = 0;
    double readStall = 0;
    double writeStall = 0;
    double acquireStall = 0;
    double releaseStall = 0;

    std::uint64_t sharedAccesses = 0;
    std::uint64_t coldReadMisses = 0;
    std::uint64_t cohReadMisses = 0;
    std::uint64_t replReadMisses = 0;
    std::uint64_t writeMissesTotal = 0;

    std::uint64_t netBytes = 0;
    std::uint64_t netMessages = 0;
    /** Bytes by message class, indexed by MsgClass. */
    std::uint64_t classBytes[static_cast<unsigned>(
        MsgClass::NumClasses)] = {};

    std::uint64_t
    bytesOf(MsgClass klass) const
    {
        return classBytes[static_cast<unsigned>(klass)];
    }

    std::uint64_t ownershipRequests = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t updatesForwarded = 0;
    std::uint64_t migratoryDetections = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;
    std::uint64_t softwarePrefetches = 0;
    std::uint64_t combinedWrites = 0;       //!< CW write-cache merges
    std::uint64_t counterInvalidations = 0; //!< CW competitive expiries
    std::uint64_t dirOverflowBroadcasts = 0; //!< limptr sets gone broadcast
    std::uint64_t dirPointerEvictions = 0;  //!< limptr+E sharers evicted
    double avgReadMissLatency = 0;

    // Per-transaction latency distributions, merged across nodes
    // (geometry from SlcController so the merge lines up).
    Histogram readMissLatency{SlcController::latencyBucketWidth,
                              SlcController::latencyBucketCount};
    Histogram ownershipLatency{SlcController::latencyBucketWidth,
                               SlcController::latencyBucketCount};
    Histogram prefetchFillLatency{SlcController::latencyBucketWidth,
                                  SlcController::latencyBucketCount};

    // Simulation-kernel telemetry (host-side throughput trajectory;
    // identical across hosts except where divided by host time).
    // Aggregated across the kernel queue and every node queue; each
    // per-queue value — and so each sum — is independent of
    // --sim-threads.
    std::uint64_t eventsExecuted = 0;   //!< events the kernel dispatched
    std::uint64_t peakPendingEvents = 0; //!< sum of per-queue peaks
    std::uint64_t scheduleAllocs = 0;   //!< schedule() calls that hit the heap
    std::uint64_t slabRounds = 0;       //!< parallel-kernel slabs run
    std::uint64_t crossMessages = 0;    //!< messages drained at barriers
    std::uint64_t lookahead = 0;        //!< slab width bound, ticks
    unsigned simThreads = 1;            //!< worker threads used

    /**
     * Interval-sampled metric deltas (empty unless the run sampled,
     * --sample-interval > 0). Rides along so one RunResult carries
     * everything the JSON writer and cpxreport need per point.
     */
    MetricTimeSeries timeseries;

    /**
     * Causal stall attribution (disabled unless the run profiled,
     * --attrib). Like the time series, purely additive: no simulated
     * stat above depends on it, and formatSystemStats() never prints
     * it — the stats dump stays byte-identical attributed or not.
     */
    AttributionResult attribution;

    /** Cold miss rate in percent of shared accesses (Table 2). */
    double
    coldMissRate() const
    {
        return sharedAccesses
                   ? 100.0 * coldReadMisses / sharedAccesses
                   : 0.0;
    }

    /** Coherence miss rate in percent of shared accesses (Table 2). */
    double
    cohMissRate() const
    {
        return sharedAccesses ? 100.0 * cohReadMisses / sharedAccesses
                              : 0.0;
    }
};

/** Gather statistics from a finished run. */
RunResult collectStats(System &sys, Tick exec_time);

/**
 * Print a Figure-2/3-style table: one row per result, execution time
 * relative to @p baseline (=100), decomposed into stall components.
 */
void printRelativeExecutionTimes(const std::string &title,
                                 const std::vector<RunResult> &results,
                                 const RunResult &baseline);

/** Print absolute traffic normalized to @p baseline (Figure 4). */
void printRelativeTraffic(const std::string &title,
                          const std::vector<RunResult> &results,
                          const RunResult &baseline);

/**
 * Render every component statistic of a finished system —
 * per-processor time breakdowns, per-node cache/directory/lock/
 * prefetch counters, resource occupancy, and network totals — as
 * "component.stat value" lines (gem5-style stats dump).
 */
std::string formatSystemStats(System &sys);

} // namespace cpx

#endif // CPX_CORE_REPORT_HH
