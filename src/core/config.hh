/**
 * @file
 * Convenience factories for the paper's experiment configurations.
 */

#ifndef CPX_CORE_CONFIG_HH
#define CPX_CORE_CONFIG_HH

#include <array>

#include "proto/params.hh"

namespace cpx
{

/**
 * Build a MachineParams for one protocol/consistency/network
 * combination, applying the paper's consistency-dependent buffer
 * sizing (§5.1/§5.2).
 */
inline MachineParams
makeParams(ProtocolConfig protocol,
           Consistency consistency = Consistency::ReleaseConsistency,
           NetworkKind network = NetworkKind::Uniform,
           unsigned mesh_link_bits = 64)
{
    MachineParams p;
    p.protocol = protocol;
    p.consistency = consistency;
    p.networkKind = network;
    p.meshLinkBits = mesh_link_bits;
    p.applyConsistencyDefaults();
    return p;
}

/**
 * Scaled-machine variant: node count and directory representation on
 * top of makeParams (the scaling-matrix experiments; node counts
 * past 64 need a directory whose sharer set can cover them —
 * System construction validates, see system.cc).
 */
inline MachineParams
makeScaledParams(ProtocolConfig protocol, Consistency consistency,
                 unsigned num_nodes, DirectoryParams directory,
                 NetworkKind network = NetworkKind::Uniform,
                 unsigned mesh_link_bits = 64)
{
    MachineParams p =
        makeParams(protocol, consistency, network, mesh_link_bits);
    p.numProcs = num_nodes;
    p.directory = directory;
    return p;
}

/** The paper's Figure 2 protocol order (left to right). */
inline std::array<ProtocolConfig, 8>
figure2Protocols()
{
    return {ProtocolConfig::basic(), ProtocolConfig::p(),
            ProtocolConfig::cw(),    ProtocolConfig::m(),
            ProtocolConfig::pcw(),   ProtocolConfig::pm(),
            ProtocolConfig::cwm(),   ProtocolConfig::pcwm()};
}

/** The protocols Figure 4 (traffic) plots. */
inline std::array<ProtocolConfig, 6>
figure4Protocols()
{
    return {ProtocolConfig::basic(), ProtocolConfig::p(),
            ProtocolConfig::cw(),    ProtocolConfig::m(),
            ProtocolConfig::pcw(),   ProtocolConfig::pm()};
}

} // namespace cpx

#endif // CPX_CORE_CONFIG_HH
