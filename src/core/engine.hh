/**
 * @file
 * Parallel discrete-event kernel: conservative time-slab execution
 * of one System's nodes across host worker threads (DESIGN.md §15).
 *
 * Every node owns a private event queue. The engine repeatedly picks
 * the earliest pending tick t across all queues and lets workers
 * advance their node partitions through the slab [t, t + L), where L
 * is the network's minimum cross-node latency (the lookahead): a
 * message sent inside the slab cannot arrive before the slab ends,
 * so nodes never need to observe each other mid-slab. Cross-node
 * sends park in per-source outboxes; at the slab barrier the
 * coordinator drains them in canonical (send tick, source node, send
 * sequence) order — routing, traffic accounting and latency sampling
 * all happen there, so their history is identical at every worker
 * count, which is what makes the simulated statistics bit-identical
 * across --sim-threads values (including 1: the engine is the only
 * kernel; a single worker just runs every partition itself).
 *
 * Kernel-queue events (interval sampler, watchdog — anything
 * scheduled through System::eq() from outside node execution) run
 * between slabs on the coordinator, with all workers parked: they
 * may read any node's statistics race-free. At a given tick, kernel
 * events run before node events.
 */

#ifndef CPX_CORE_ENGINE_HH
#define CPX_CORE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/network.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cpx
{

/**
 * The event queue of the node currently executing on this host
 * thread, or nullptr outside node execution. System::eq() resolves
 * through this so that every component reaches the right queue
 * without carrying one; the engine sets it around each partition
 * advance (and System::run around Processor::start).
 */
extern thread_local EventQueue *activeNodeQueue;

/** Kernel counters reported per run (RunResult, bench JSON). */
struct SlabTelemetry
{
    std::uint64_t slabRounds = 0;    //!< barrier-delimited slabs run
    std::uint64_t crossMessages = 0; //!< messages drained at barriers
    Tick lookahead = 0;              //!< slab width bound L, in ticks
    unsigned simThreads = 1;         //!< worker threads actually used
};

class SlabEngine : public ParallelBridge
{
  public:
    /**
     * Execution-context callbacks the owning System supplies so that
     * node-private state living outside the engine (the backing
     * store's slab write overlays) tracks the engine's schedule
     * without the engine knowing about memory at all. All three are
     * optional. enter/leave bracket each node's partition advance on
     * the worker thread running it; commit runs on the coordinator
     * after every slab's outboxes drain, with all workers parked.
     */
    struct NodeHooks
    {
        std::function<void(unsigned node)> enter;
        std::function<void(unsigned node)> leave;
        std::function<void()> commit;
    };

    /**
     * @param kernel_queue System-level queue (sampler, watchdog)
     * @param node_queues  one queue per node, index == node id
     * @param network      the system's (outermost) network model;
     *                     the engine installs itself as its bridge
     *                     for the duration of the engine's lifetime
     * @param num_workers  host threads to shard nodes across
     *                     (clamped to the node count)
     */
    SlabEngine(EventQueue &kernel_queue,
               const std::vector<std::unique_ptr<EventQueue>> &node_queues,
               Network &network, unsigned num_workers,
               NodeHooks hooks = {});
    ~SlabEngine() override;

    SlabEngine(const SlabEngine &) = delete;
    SlabEngine &operator=(const SlabEngine &) = delete;

    /** Run all queues until drained or past @p limit. */
    void run(Tick limit);

    const SlabTelemetry &telemetry() const { return stats; }

    // --- ParallelBridge -----------------------------------------------------
    EventQueue &activeQueue() override;
    void crossSend(NodeId src, NodeId dst, unsigned total_bytes,
                   MsgClass klass,
                   EventQueue::Callback on_deliver) override;

  private:
    /** A cross-node message parked until the slab barrier. */
    struct PendingMsg
    {
        Tick sendTick;
        NodeId src;
        NodeId dst;
        unsigned totalBytes;
        MsgClass klass;
        EventQueue::Callback onDeliver;
    };

    /**
     * Per-source mailbox; cache-line padded because each is filled
     * only by the worker executing that source node. Entries are
     * appended in send order, which is exactly the (send tick, send
     * sequence) order within the source.
     */
    struct alignas(64) Outbox
    {
        std::vector<PendingMsg> msgs;
    };

    /**
     * Sense-reversing spin barrier. Spins briefly then yields, so it
     * stays cheap on dedicated cores without starving oversubscribed
     * ones (CI runners). Plain atomics: ThreadSanitizer models the
     * acquire/release pairs directly, no annotations needed.
     */
    class Barrier
    {
      public:
        explicit Barrier(unsigned n) : total(n) {}

        void
        arriveAndWait()
        {
            unsigned sense = phase.load(std::memory_order_relaxed);
            if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                total) {
                arrived.store(0, std::memory_order_relaxed);
                phase.fetch_add(1, std::memory_order_release);
            } else {
                unsigned spins = 0;
                while (phase.load(std::memory_order_acquire) == sense) {
                    if (++spins > 4096) {
                        std::this_thread::yield();
                        spins = 0;
                    }
                }
            }
        }

      private:
        const unsigned total;
        std::atomic<unsigned> arrived{0};
        std::atomic<unsigned> phase{0};
    };

    void workerLoop(unsigned worker);
    void runPartition(unsigned worker, Tick slab_end);
    void drainOutboxes();
    Tick earliestNodeTick() const;

    EventQueue &kernelQueue;
    const std::vector<std::unique_ptr<EventQueue>> &nodeQueues;
    Network &net;
    unsigned workers;
    NodeHooks hooks;
    SlabTelemetry stats;

    std::vector<Outbox> outboxes;     //!< index == source node id
    std::vector<PendingMsg> drainScratch;
    std::vector<std::thread> threads; //!< workers 1..W-1 (0 = caller)
    Barrier barrier;
    Tick slabEnd = 0;                 //!< published before the start barrier
    bool stopping = false;            //!< published before the start barrier
};

} // namespace cpx

#endif // CPX_CORE_ENGINE_HH
