#include "core/diagnostics.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/trace.hh"

namespace cpx
{

namespace
{

/** printf into a growing std::string. */
void
append(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
append(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

} // anonymous namespace

std::string
formatStallDiagnostics(System &sys)
{
    const MachineParams &params = sys.params();
    const Tick now = sys.simNow();
    std::string out;

    append(out,
           "=== protocol stall diagnostics @ tick %" PRIu64 " ===\n",
           now);
    append(out,
           "event queues   : %zu pending, %" PRIu64 " executed\n",
           sys.totalPending(), sys.totalEventsExecuted());
    append(out, "quiescent      : %s\n",
           sys.quiescent() ? "yes" : "NO");

    unsigned unfinished = 0;
    for (NodeId n = 0; n < params.numProcs; ++n)
        if (!sys.processor(n).finished())
            ++unfinished;
    append(out, "processors     : %u of %u still running\n",
           unfinished, params.numProcs);

    for (NodeId n = 0; n < params.numProcs; ++n) {
        const Processor &p = sys.processor(n);
        const SlcController &slc = sys.node(n).slc;
        const DirectoryController &dir = sys.node(n).dir;
        const LockManager &locks = sys.node(n).locks;

        auto slc_txns = slc.pendingTransactionDump();
        auto dir_blocks = dir.inServiceDump();
        auto held = locks.heldLockDump();

        bool quiet = p.finished() && slc_txns.empty() &&
                     dir_blocks.empty() && held.empty() &&
                     slc.pendingWriteClass() == 0;
        if (quiet)
            continue;

        append(out, "node %-2u %s at t=%" PRIu64
               "; reads %" PRIu64 " writes %" PRIu64
               " acquires %" PRIu64 "\n",
               n, p.finished() ? "finished" : "RUNNING ",
               p.finishTick(), p.sharedReads(), p.sharedWrites(),
               p.lockAcquires());
        append(out,
               "  slc: %zu txns, slwb %u/%u, write-class %u, "
               "wcache %u/%u\n",
               slc.pendingTransactions(), slc.slwbInUse(),
               params.slwbEntries, slc.pendingWriteClass(),
               slc.writeCacheUnit().occupancy(),
               slc.writeCacheUnit().capacity());
        for (const auto &t : slc_txns) {
            append(out,
                   "    blk %#" PRIx64 " %-9s since t=%" PRIu64
                   " (age %" PRIu64 ")\n",
                   t.block, t.kind, t.start, now - t.start);
        }
        if (!dir_blocks.empty()) {
            append(out, "  dir: %zu blocks in service\n",
                   dir_blocks.size());
            for (const auto &d : dir_blocks) {
                append(out,
                       "    blk %#" PRIx64 " requester %d acks %u "
                       "queued %zu | mod=%d owner=%d pres=%#" PRIx64
                       "\n",
                       d.block,
                       d.requester == invalidNode
                           ? -1
                           : static_cast<int>(d.requester),
                       d.pendingAcks, d.queueDepth, d.modified,
                       d.owner == invalidNode
                           ? -1
                           : static_cast<int>(d.owner),
                       d.presence);
            }
        }
        for (const auto &l : held) {
            append(out,
                   "  lock %#" PRIx64 " held by node %u, %zu "
                   "waiting\n",
                   l.addr, l.holder, l.waiters);
        }
    }
    // With a flight recorder installed, the last protocol events per
    // node usually point straight at the stalled transaction.
    if (const TraceSink *tracer = sys.tracer())
        out += tracer->formatTails();

    append(out, "=== end diagnostics ===\n");
    return out;
}

} // namespace cpx
